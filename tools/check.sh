#!/usr/bin/env bash
# CI-style gate: tier-1 tests + greenlint in strict mode.
#
# Usage:  tools/check.sh
#
# Exits non-zero on the first failing stage.  This is the same pair of
# checks the test suite itself enforces (tests/test_lint_self.py runs
# the linter as a tier-1 test), packaged for pre-push / CI use.

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== greenlint (strict: warnings fail too) =="
python -m repro.cli lint --strict src/repro

echo "All checks passed."
