#!/usr/bin/env bash
# CI-style gate: tier-1 tests + greenlint in strict mode.
#
# Usage:  tools/check.sh
#
# Exits non-zero on the first failing stage.  This is the same pair of
# checks the test suite itself enforces (tests/test_lint_self.py runs
# the linter as a tier-1 test), packaged for pre-push / CI use.

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== greenlint (strict: warnings fail too) =="
python -m repro.cli lint --strict src/repro

echo "== greenlint whole-program (GL6-GL18, baselined) =="
# On failure, leave the machine-readable findings where CI can pick
# them up as an artifact (see .github/workflows/ci.yml) — both the
# stable JSON contract and SARIF for code-host diff annotation.
PROJECT_RULES=GL6,GL7,GL8,GL9,GL10,GL11,GL12,GL13,GL14,GL15,GL16,GL17,GL18
mkdir -p tools/out
if ! python -m repro.cli lint --strict \
    --select "$PROJECT_RULES" \
    --baseline tools/greenlint-baseline.json \
    src tests tools; then
  python -m repro.cli lint --json \
      --select "$PROJECT_RULES" \
      src tests tools > tools/out/greenlint-findings.json || true
  python -m repro.cli lint --format sarif \
      --select "$PROJECT_RULES" \
      src tests tools > tools/out/greenlint-findings.sarif || true
  echo "findings written to tools/out/greenlint-findings.json" \
       "and tools/out/greenlint-findings.sarif" >&2
  exit 1
fi

echo "== greenlint runtime budget (full rule set, warm cache) =="
# The linter is a tier-1 test, so its own latency is a gated quantity:
# a full 18-rule run over src/repro must finish inside the budget.  The
# first run above has warmed the per-file cache; the JSON stats double
# as a CI artifact next to the findings file.
python - <<'PY'
import json
import time

from repro.lint import lint_paths

BUDGET_S = 6.0
start = time.perf_counter()
result = lint_paths(["src/repro"],
                    cache_dir="tools/out/lint-cache")
elapsed = time.perf_counter() - start
stats = {
    "elapsed_s": round(elapsed, 3),
    "budget_s": BUDGET_S,
    "files_checked": result.files_checked,
    "cache": {"hits": result.cache_hits, "misses": result.cache_misses},
}
with open("tools/out/lint-cache-stats.json", "w") as fh:
    json.dump(stats, fh, indent=2)
    fh.write("\n")
print(f"lint src/repro: {elapsed:.2f}s (budget {BUDGET_S:.1f}s, "
      f"{result.cache_hits} hits / {result.cache_misses} misses)")
raise SystemExit(0 if elapsed <= BUDGET_S else 1)
PY

echo "== serve smoke (in-process service, coalescing) =="
python - <<'PY'
import threading

from repro.service import ExperimentService, ServiceConfig

with ExperimentService(ServiceConfig(jobs=2)) as service:
    # A storm of identical concurrent queries must coalesce onto one
    # underlying compute; repeats after it must hit the memory tier.
    n_threads = 8
    barrier = threading.Barrier(n_threads)

    def request():
        barrier.wait()
        service.serve("fig4")

    threads = [threading.Thread(target=request) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    repeat = service.serve("fig4")
    stats = service.stats()

print(f"serve: computed={stats['computed']} coalesced={stats['coalesced']} "
      f"memory_hits={stats['memory']['hits']} repeat_source={repeat.source}")
assert stats["computed"] == 1, stats
assert stats["coalesced"] + stats["memory"]["hits"] == n_threads, stats
assert repeat.source == "memory", repeat
PY

echo "== cluster smoke (router + shards, byte-identity) =="
python - <<'PY'
import tempfile

from repro.cluster import ClusterConfig, LocalCluster
from repro.experiments.engine import warm_lab
from repro.rng import DEFAULT_SEED
from repro.service.client import ServiceClient
from repro.service.http import result_digest
from repro.experiments.figures import Lab
from repro.experiments.registry import run_experiment

with tempfile.TemporaryDirectory() as cache_dir:
    warm_lab(DEFAULT_SEED, cache_dir)
    config = ClusterConfig(shards=2, replicas=1, jobs=1, cache_dir=cache_dir)
    with LocalCluster(config) as cluster:
        client = ServiceClient(*cluster.router_address)
        reply = client.run("fig4", DEFAULT_SEED)
        repeat = client.run("fig4", DEFAULT_SEED)
        stats = client.stats()
        client.close()

expected = result_digest(run_experiment("fig4", Lab(seed=DEFAULT_SEED)))
print(f"cluster: shards={len(stats['shards'])} "
      f"first={reply['source']} repeat={repeat['source']} "
      f"computed={stats['totals']['computed']}")
assert reply["digest"] == expected, (reply["digest"], expected)
assert repeat["digest"] == expected
assert stats["totals"]["computed"] == 1, stats["totals"]
assert repeat["source"] == "memory", repeat["source"]
PY

echo "== cluster benchmark gate (committed JSON self-consistency) =="
# The committed BENCH_serve.json must pass its own cluster gate: the
# storm computed exactly once cluster-wide, digests agree across
# cluster sizes, and the scaling factor clears the core-aware floor
# recorded alongside it.  CI additionally compares a fresh run against
# this baseline (see .github/workflows/ci.yml, serve-regression).
python benchmarks/compare_cluster.py \
    benchmarks/output/BENCH_serve.json benchmarks/output/BENCH_serve.json

echo "== perf smoke (run_all under ceiling) =="
python - <<'PY'
import os
import time
from repro.experiments.registry import run_all

# Raw-speed ceiling: with the fused kernels, science cache, and memoized
# Lab the suite's first in-process run lands around 1.7 s on the
# reference container (14.77 s at the pre-optimization baseline; repeat
# runs take ~0.35 s once the process caches are warm); tripping 3 s
# means a real regression, not scheduler noise.  Shared CI runners are
# far noisier than the reference container, so the workflow raises the
# ceiling via REPRO_PERF_CEILING_S instead of weakening the default.
CEILING_S = float(os.environ.get("REPRO_PERF_CEILING_S", "3.0"))
start = time.perf_counter()
run_all()
elapsed = time.perf_counter() - start
print(f"run_all: {elapsed:.2f}s (ceiling {CEILING_S:.1f}s)")
raise SystemExit(0 if elapsed <= CEILING_S else 1)
PY

echo "All checks passed."
