"""Ablation: access pattern vs disk energy, with model predictions.

Sweeps the full pattern family (sequential, reverse, strided, shuffled,
zipf) over the same bytes and overlays the runtime disk-power model's
predictions on the measurements — the validation a deployed advisor
would need before trusting the model's recommendations.
"""

from conftest import run_once

from repro.machine import HddModel, Node
from repro.machine.specs import DiskSpec, paper_testbed
from repro.power import MeterRig
from repro.rng import RngRegistry
from repro.runtime import DiskPowerModel, WorkloadDescriptor
from repro.system import BlockQueue
from repro.trace import Timeline
from repro.units import GiB, KiB
from repro.workloads.patterns import request_stream

PATTERNS = ("sequential", "reverse", "strided", "shuffled", "zipf")
REGION = 1 * GiB
BLOCK = 64 * KiB


def test_pattern_energy(benchmark):
    model = DiskPowerModel.from_spec(paper_testbed().disk)

    def sweep():
        out = {}
        for pattern in PATTERNS:
            queue = BlockQueue(HddModel(DiskSpec()))
            from repro.machine.disk import OpKind

            requests = request_stream(OpKind.READ, pattern, REGION, BLOCK,
                                      region_offset=2 * GiB,
                                      rng=RngRegistry(2015))
            stats = queue.submit(requests)
            timeline = Timeline()
            timeline.record(pattern, stats.busy_time, stats.activity())
            rig = MeterRig(Node(), jitter=0, rng=RngRegistry(23))
            profile = rig.sample(timeline)
            n_ops = len(requests)
            # Note: "reverse" is *random* to a drive — mechanical disks
            # cannot stream backwards, so every step pays a reposition.
            predicted = model.predict_power(WorkloadDescriptor(
                accesses_per_s=n_ops / stats.busy_time,
                access_bytes=BLOCK,
                read_fraction=1.0,
                pattern="sequential" if pattern == "sequential" else "random",
            )) - model.idle_w
            measured_disk = (
                profile.average() - Node().static_power_w
            )
            out[pattern] = {
                "time_s": stats.busy_time,
                "energy_j": profile.energy(),
                "measured_disk_dyn_w": measured_disk,
                "predicted_disk_dyn_w": predicted,
            }
        return out

    data = run_once(benchmark, sweep)
    print("\nAblation: access pattern vs energy (1 GiB in 64 KiB reads)")
    for pattern, row in data.items():
        print(f"  {pattern:10s}: {row['time_s']:7.2f} s, "
              f"{row['energy_j'] / 1000:6.2f} kJ, disk dyn "
              f"{row['measured_disk_dyn_w']:5.2f} W "
              f"(model: {row['predicted_disk_dyn_w']:5.2f} W)")

    # Sequential-family patterns are far cheaper than scattered ones.
    assert data["sequential"]["energy_j"] < 0.2 * data["shuffled"]["energy_j"]
    assert data["strided"]["energy_j"] > data["sequential"]["energy_j"]
    # zipf's repeats make it at least as seek-heavy as shuffled per byte.
    assert data["zipf"]["energy_j"] > 0.5 * data["shuffled"]["energy_j"]
    # The runtime model tracks the measured dynamic power to a few watts
    # on the patterns it claims to cover.
    for pattern in ("sequential", "shuffled"):
        row = data[pattern]
        assert abs(row["measured_disk_dyn_w"] - row["predicted_disk_dyn_w"]) < 4.0
