"""Fig 5: instantaneous power profiles, both pipelines x three cases."""

import os

from conftest import run_once

from repro.analysis import save_csv
from repro.experiments import run_experiment


def test_fig5(benchmark, lab, output_dir):
    result = run_once(benchmark, run_experiment, "fig5", lab)
    print("\n" + result.text)
    profiles = result.data
    assert len(profiles) == 6

    for (kind, case), profile in profiles.items():
        save_csv(
            os.path.join(output_dir, f"fig5_{kind}_case{case}.csv"),
            profile.to_columns(),
        )

    # Post-processing shows two distinct power phases (Sec V.A)...
    post1 = profiles[("post-processing", 1)]
    phases = post1.phase_average()
    assert phases["simulate+write"] - phases["read+visualize"] > 5.0
    # ...while in-situ has none.
    assert len(profiles[("in-situ", 1)].phase_average()) == 1
    # Processor and DRAM channels sit below the system channel.
    assert post1["processor"].mean() < post1["system"].mean()
    assert post1["dram"].mean() < post1["processor"].mean()


def test_fig5_phase_power_levels(benchmark, lab):
    """The paper's phase averages: ~143 W then ~121 W in the profile."""
    def phase_powers():
        post1 = lab.outcomes()[1].post.profile
        return post1.phase_average()

    phases = run_once(benchmark, phase_powers)
    # Phase averages mix compute with I/O events, so they land between
    # the stage extremes; the ordering and gap are the testable shape.
    assert 120 < phases["simulate+write"] < 143
    assert 110 < phases["read+visualize"] < 125
