"""Perf trajectory: wall time for every experiment id and for ``run_all``.

Unlike the figure benches (which reproduce one artifact each), this
suite times the whole evaluation and writes the numbers to
``benchmarks/output/BENCH_suite.json`` so future PRs can diff the perf
trajectory against the recorded baseline.

Methodology: each round builds a cold :class:`Lab` and runs the registry
in order; per-experiment and whole-suite times are the best over
``ROUNDS`` rounds (best-of-N discards scheduler noise, which on a busy
box easily exceeds the 20% headroom a mean would leave).
"""

import json
import os
import time

from repro.experiments import EXPERIMENTS, Lab

#: Serial ``run_all()`` wall time measured immediately before the batch
#: kernels / caching work landed (commit de149e0, same container class).
BASELINE_RUN_ALL_S = 14.77

#: The optimization work gates on a 5x improvement over that baseline.
REQUIRED_SPEEDUP = 5.0

#: Experiment ids added after the 14.77 s baseline was recorded.  They
#: count toward ``run_all_s`` in the payload (the regression job diffs
#: that), but the speedup gate compares like against like and excludes
#: them — otherwise growing the registry would erode the gate.
POST_BASELINE_IDS = frozenset({"ext-faults"})

ROUNDS = 3


def test_perf_suite(output_dir):
    per_experiment: dict[str, float] = {}
    suite_samples = []
    for _ in range(ROUNDS):
        lab = Lab(seed=2015)
        round_start = time.perf_counter()
        for eid, fn in EXPERIMENTS.items():
            start = time.perf_counter()
            fn(lab)
            elapsed = time.perf_counter() - start
            per_experiment[eid] = min(per_experiment.get(eid, elapsed), elapsed)
        suite_samples.append(time.perf_counter() - round_start)

    run_all_s = min(suite_samples)
    baseline_era_s = sum(t for eid, t in per_experiment.items()
                         if eid not in POST_BASELINE_IDS)
    speedup = BASELINE_RUN_ALL_S / baseline_era_s
    payload = {
        "baseline_run_all_s": BASELINE_RUN_ALL_S,
        "run_all_s": round(run_all_s, 4),
        "baseline_era_s": round(baseline_era_s, 4),
        "speedup": round(speedup, 2),
        "rounds": ROUNDS,
        "method": "best-of-rounds, cold Lab per round",
        "experiments": {eid: round(t, 4) for eid, t in per_experiment.items()},
    }
    path = os.path.join(output_dir, "BENCH_suite.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nrun_all: best {run_all_s:.2f}s of {suite_samples}"
          f" (baseline-era {baseline_era_s:.2f}s, {speedup:.1f}x over"
          f" {BASELINE_RUN_ALL_S:.2f}s baseline)")

    assert per_experiment.keys() == EXPERIMENTS.keys()
    assert speedup >= REQUIRED_SPEEDUP, (
        f"baseline-era experiments took {baseline_era_s:.2f}s, only"
        f" {speedup:.1f}x over the {BASELINE_RUN_ALL_S:.2f}s baseline"
        f" (need {REQUIRED_SPEEDUP:.0f}x)"
    )
