"""Perf trajectory: wall time for every experiment id and for ``run_all``.

Unlike the figure benches (which reproduce one artifact each), this
suite times the whole evaluation and writes the numbers to
``benchmarks/output/BENCH_suite.json`` so future PRs can diff the perf
trajectory against the recorded baseline.

Methodology: each round builds a cold :class:`Lab` and runs the registry
in order; per-experiment and whole-suite times are the best over
``ROUNDS`` rounds (best-of-N discards scheduler noise, which on a busy
box easily exceeds the 20% headroom a mean would leave).

Two extra series ride along:

* **Stage breakdown** — one extra round runs with the stage chokepoints
  (FTCS solvers, pipeline frame rendering, storage reader/writer + fio)
  wrapped in wall-clock accumulators, splitting every experiment's time
  into ``sim`` / ``render`` / ``io`` / ``other``.  The instrumented
  round is separate so wrapper overhead never pollutes the headline
  ``run_all_s``.
* **Transport** — a separate engine pass (``jobs=2`` plus a throwaway
  result cache) times the parent-side codec work: encoding results into
  cache entries and decoding worker frames / cache hits back.
"""

import json
import os
import sys
import tempfile
import time

from repro.experiments import EXPERIMENTS, Lab

#: Serial ``run_all()`` wall time measured immediately before the batch
#: kernels / caching work landed (commit de149e0, same container class).
BASELINE_RUN_ALL_S = 14.77

#: The optimization work gates on a 5x improvement over that baseline.
REQUIRED_SPEEDUP = 5.0

#: Raw-speed floor for the whole serial suite on the reference
#: container.  The committed BENCH_suite.json must come in under this;
#: in-process the assert allows 3x for scheduler noise (CI gates via
#: ``compare_baseline.py`` with the same tolerance).
CEILING_RUN_ALL_S = 0.4

#: Experiment ids added after the 14.77 s baseline was recorded.  They
#: count toward ``run_all_s`` in the payload (the regression job diffs
#: that), but the speedup gate compares like against like and excludes
#: them — otherwise growing the registry would erode the gate.
POST_BASELINE_IDS = frozenset({"ext-faults"})

ROUNDS = 3

STAGE_BUCKETS = ("sim", "render", "io")


class StageTimer:
    """Wall-clock accumulators patched over the stage chokepoints.

    Each bucket keeps one reentrancy depth, so nested calls inside a
    stage (``render_with_contours`` calling the base render) count once.
    Function patching rebinds every ``repro.*`` module attribute that
    references the target, so from-imports are covered too.
    """

    def __init__(self) -> None:
        self.acc = dict.fromkeys(STAGE_BUCKETS, 0.0)
        self._depth = dict.fromkeys(STAGE_BUCKETS, 0)
        self._undo: list = []

    def _timed(self, bucket: str, orig):
        def call(*args, **kwargs):
            if self._depth[bucket]:
                return orig(*args, **kwargs)
            self._depth[bucket] += 1
            start = time.perf_counter()
            try:
                return orig(*args, **kwargs)
            finally:
                self.acc[bucket] += time.perf_counter() - start
                self._depth[bucket] -= 1
        return call

    def patch_method(self, bucket: str, cls: type, name: str) -> None:
        orig = cls.__dict__[name]
        setattr(cls, name, self._timed(bucket, orig))
        self._undo.append(lambda c=cls, n=name, o=orig: setattr(c, n, o))

    def patch_function(self, bucket: str, module, name: str) -> None:
        orig = getattr(module, name)
        timed = self._timed(bucket, orig)
        for mod in list(sys.modules.values()):
            if not getattr(mod, "__name__", "").startswith("repro"):
                continue
            for attr, value in list(vars(mod).items()):
                if value is orig:
                    setattr(mod, attr, timed)
                    self._undo.append(
                        lambda m=mod, a=attr, o=orig: setattr(m, a, o))

    def unpatch(self) -> None:
        while self._undo:
            self._undo.pop()()

    def snapshot(self) -> dict:
        return dict(self.acc)


def _instrument() -> StageTimer:
    from repro.pipelines import base as pipelines_base
    from repro.sim.heat import HeatSolver
    from repro.sim.heat3d import HeatSolver3D
    from repro.storage.reader import DataReader
    from repro.storage.writer import DataWriter
    from repro.viz import render as viz_render
    from repro.workloads.fio import FioRunner

    timer = StageTimer()
    timer.patch_method("sim", HeatSolver, "step")
    timer.patch_method("sim", HeatSolver3D, "step")
    timer.patch_function("render", pipelines_base, "render_pipeline_frame")
    timer.patch_function("render", viz_render, "render_field")
    timer.patch_function("render", viz_render, "render_with_contours")
    timer.patch_method("io", DataWriter, "write_timestep")
    timer.patch_method("io", DataReader, "read_timestep")
    timer.patch_method("io", DataReader, "read_grid")
    timer.patch_method("io", DataReader, "read_chunk")
    timer.patch_method("io", FioRunner, "run")
    return timer


def _measure_transport() -> dict:
    """Parent-side codec time across a cold-store + warm-load engine pass."""
    from repro.experiments import engine

    acc = {"encode_s": 0.0, "decode_s": 0.0, "encodes": 0, "decodes": 0}

    def wrap(name: str, time_key: str, count_key: str):
        orig = getattr(engine, name)

        def call(*args, **kwargs):
            start = time.perf_counter()
            try:
                return orig(*args, **kwargs)
            finally:
                acc[time_key] += time.perf_counter() - start
                acc[count_key] += 1
        setattr(engine, name, call)
        return lambda: setattr(engine, name, orig)

    undo = [wrap("encode_result", "encode_s", "encodes"),
            wrap("decode_result", "decode_s", "decodes")]
    try:
        with tempfile.TemporaryDirectory() as cache_dir:
            start = time.perf_counter()
            engine.run_experiments(seed=2015, jobs=2, cache_dir=cache_dir)
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            warm = engine.run_experiments(seed=2015, jobs=2,
                                          cache_dir=cache_dir)
            warm_s = time.perf_counter() - start
            assert warm.cache_misses == ()
    finally:
        for restore in undo:
            restore()
    return {
        "workload": "jobs=2 engine: cold compute+store, then warm load",
        "engine_cold_s": round(cold_s, 4),
        "engine_warm_s": round(warm_s, 4),
        "encode_s": round(acc["encode_s"], 4),
        "decode_s": round(acc["decode_s"], 4),
        "encodes": acc["encodes"],
        "decodes": acc["decodes"],
    }


def _measure_stage_breakdown() -> dict:
    """One instrumented registry round; per-experiment stage splits."""
    breakdown: dict[str, dict[str, float]] = {}
    timer = _instrument()
    try:
        lab = Lab(seed=2015)
        for eid, fn in EXPERIMENTS.items():
            before = timer.snapshot()
            start = time.perf_counter()
            fn(lab)
            elapsed = time.perf_counter() - start
            stages = {b: timer.acc[b] - before[b] for b in STAGE_BUCKETS}
            stages["other"] = max(0.0, elapsed - sum(stages.values()))
            breakdown[eid] = {k: round(v, 4) for k, v in stages.items()}
    finally:
        timer.unpatch()
    return breakdown


def test_perf_suite(output_dir):
    per_experiment: dict[str, float] = {}
    suite_samples = []
    for _ in range(ROUNDS):
        lab = Lab(seed=2015)
        round_start = time.perf_counter()
        for eid, fn in EXPERIMENTS.items():
            start = time.perf_counter()
            fn(lab)
            elapsed = time.perf_counter() - start
            per_experiment[eid] = min(per_experiment.get(eid, elapsed),
                                      elapsed)
        suite_samples.append(time.perf_counter() - round_start)

    stage_breakdown = _measure_stage_breakdown()
    transport = _measure_transport()
    run_all_s = min(suite_samples)
    baseline_era_s = sum(t for eid, t in per_experiment.items()
                         if eid not in POST_BASELINE_IDS)
    speedup = BASELINE_RUN_ALL_S / baseline_era_s
    payload = {
        "baseline_run_all_s": BASELINE_RUN_ALL_S,
        "ceiling_run_all_s": CEILING_RUN_ALL_S,
        "run_all_s": round(run_all_s, 4),
        "baseline_era_s": round(baseline_era_s, 4),
        "speedup": round(speedup, 2),
        "rounds": ROUNDS,
        "method": "best-of-rounds, cold Lab per round",
        "experiments": {eid: round(t, 4) for eid, t in per_experiment.items()},
        "stage_breakdown": stage_breakdown,
        "transport": transport,
    }
    path = os.path.join(output_dir, "BENCH_suite.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nrun_all: best {run_all_s:.2f}s of {suite_samples}"
          f" (baseline-era {baseline_era_s:.2f}s, {speedup:.1f}x over"
          f" {BASELINE_RUN_ALL_S:.2f}s baseline; ceiling"
          f" {CEILING_RUN_ALL_S:.1f}s)")

    assert per_experiment.keys() == EXPERIMENTS.keys()
    assert speedup >= REQUIRED_SPEEDUP, (
        f"baseline-era experiments took {baseline_era_s:.2f}s, only"
        f" {speedup:.1f}x over the {BASELINE_RUN_ALL_S:.2f}s baseline"
        f" (need {REQUIRED_SPEEDUP:.0f}x)"
    )
    assert run_all_s < CEILING_RUN_ALL_S * 3, (
        f"run_all took {run_all_s:.2f}s, past even 3x the"
        f" {CEILING_RUN_ALL_S:.1f}s raw-speed ceiling"
    )
