"""Ablation: data-volume scaling (the exascale argument).

The paper's 128 KiB dumps make its write events barrier-dominated.  This
ablation grows the per-timestep dump volume (grid_scale^2 x 128 KiB)
while holding compute time fixed — the exascale premise that processor
capability keeps pace with the problem while I/O does not ("faster
processors have encouraged scientists to perform larger simulations,
producing more simulation data, which cannot be handled by the slower
I/O").  As transfers come to dominate the I/O events, the share of time
spent in I/O — and with it the in-situ advantage — grows.
"""

from conftest import run_once

from repro.calibration import CASE_STUDIES
from repro.pipelines import (
    InSituPipeline,
    PipelineConfig,
    PipelineRunner,
    PostProcessingPipeline,
)


def test_volume_scaling(benchmark):
    def sweep():
        from dataclasses import replace

        runner = PipelineRunner(seed=2015, jitter=0)
        # Case-3 cadence, shortened to 16 iterations so the real numerics
        # on the x32 grid (4096^2) stay laptop-fast; the derived ratios
        # are iteration-count invariant (linear cost model).
        case = replace(CASE_STUDIES[3], total_iterations=16)
        out = {}
        for scale in (1, 8, 16, 32):
            config = PipelineConfig(
                case=case,
                grid_scale=scale, solver_sub_steps=1, verify_data=False,
                scale_sim_with_grid=False,
            )
            post = runner.run(PostProcessingPipeline(config),
                              run_id=f"vol-post-{scale}")
            insitu = runner.run(InSituPipeline(config),
                                run_id=f"vol-ins-{scale}")
            io_share = 1 - post.timeline.stage_fractions().get("simulation", 0)
            out[scale] = {
                "dump_mib": scale * scale * 128 / 1024,
                "savings": 1 - insitu.energy_j / post.energy_j,
                "io_share": io_share,
            }
        return out

    data = run_once(benchmark, sweep)
    print("\nAblation: dump volume vs in-situ advantage "
          "(case 3 cadence, compute held fixed)")
    for scale, row in data.items():
        print(f"  grid x{scale:2d} ({row['dump_mib']:7.1f} MiB/dump): "
              f"I/O share {row['io_share']:.0%}, "
              f"in-situ saves {row['savings']:.1%}")
    savings = [row["savings"] for row in data.values()]
    io_shares = [row["io_share"] for row in data.values()]
    # Both the I/O share and the in-situ advantage grow with volume
    # (monotone once the transfer term emerges from the barrier floor).
    assert savings[1:] == sorted(savings[1:])
    assert io_shares[-1] > io_shares[0] + 0.05
    assert savings[-1] > savings[0] + 0.05
