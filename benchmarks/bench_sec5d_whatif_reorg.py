"""Section V.D: the reorganized post-processing hypothetical.

Paper: a random-I/O application saves 242.2 kJ by going in-situ, but
data-rearrangement techniques cut the post-processing cost to 7.3 kJ
while keeping exploratory analysis.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_sec5d(benchmark, lab):
    result = run_once(benchmark, run_experiment, "sec5d", lab)
    print("\n" + result.text)
    report = result.data
    assert abs(report.random_io_energy_j - 242_200) / 242_200 < 0.03
    assert abs(report.sequential_io_energy_j - 7_300) / 7_300 < 0.06
    # Reorganization recovers >95 % of the random-I/O energy...
    assert report.reorg_saves_fraction > 0.95
    # ...and the one-time rewrite amortizes within a single analysis pass.
    assert report.break_even_passes < 1.0
