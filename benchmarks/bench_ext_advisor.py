"""Future-work extension: the runtime power-optimization advisor."""

from conftest import run_once

from repro.experiments import run_experiment
from repro.runtime import Technique


def test_ext_advisor(benchmark, lab):
    result = run_once(benchmark, run_experiment, "ext-advisor", lab)
    print("\n" + result.text)
    decisions = {name: rec.technique for name, rec in result.data.items()}
    assert decisions["batch, random I/O, no exploration"] is Technique.IN_SITU
    assert (decisions["random I/O, exploration needed"]
            is Technique.DATA_REORGANIZATION)
    for rec in result.data.values():
        assert 0 <= rec.estimated_savings_fraction <= 0.95
        assert rec.rationale
