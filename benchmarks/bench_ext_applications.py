"""Future-work extension: synthetic real-application profiles.

Section VI.A item 1 asks for evaluation on real applications (MPAS,
xRAGE).  This bench runs the pipeline comparison across application
*shapes*: the paper's proxy, an ocean-model-like dense-output large-state
profile, and an AMR-hydro-like bursty-output profile.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_ext_applications(benchmark, lab):
    result = run_once(benchmark, run_experiment, "ext-applications", lab)
    print("\n" + result.text)
    outcomes = result.data
    savings = {name: o.energy_savings_fraction for name, o in outcomes.items()}
    # In-situ wins for every application shape...
    assert all(s > 0.02 for s in savings.values())
    # ...most for the dense-output, large-state ocean-model shape, least
    # for the compute-heavy bursty AMR shape.
    assert savings["mpas-ocean-like"] == max(savings.values())
    assert savings["xrage-like"] == min(savings.values())
