"""Table II: average total/dynamic power of the nnread/nnwrite stages."""

from conftest import run_once

from repro.calibration import PAPER
from repro.experiments import run_experiment


def test_table2(benchmark, lab):
    result = run_once(benchmark, run_experiment, "table2", lab)
    print("\n" + result.text)
    table = result.data
    expected = PAPER["table2"]
    for stage in ("nnread", "nnwrite"):
        assert abs(table[stage].avg_total_w - expected[stage]["total_w"]) < 1.0
        assert abs(table[stage].avg_dynamic_w - expected[stage]["dynamic_w"]) < 1.0
        # The static residue is the 104.8 W floor of the whole study.
        assert abs(table[stage].static_w - PAPER["static_floor_w"]) < 1.0
