"""Ablation: strong-scaling energy of the decomposed in-situ pipeline.

The multi-node future-work question, run as a sweep: one fixed global
problem over 1..36 nodes.  Wall time falls ~1/N (the physics really runs
decomposed, with bitwise-identical results), while *total* cluster
energy stays roughly flat under perfect scaling and then drifts up as
halo-exchange and compositing traffic accumulate — more nodes never make
the fixed problem cheaper in joules.
"""

from conftest import run_once

from repro.calibration import CASE_STUDIES
from repro.pipelines import ClusterInSituPipeline, PipelineConfig, PipelineRunner


def test_cluster_strong_scaling(benchmark):
    def sweep():
        runner = PipelineRunner(seed=2015, jitter=0)
        config = PipelineConfig(case=CASE_STUDIES[1])
        out = {}
        for n in (1, 4, 9, 36):
            run = runner.run(ClusterInSituPipeline(config, n_nodes=n),
                             run_id=f"strong-{n}")
            out[n] = {
                "time_s": run.execution_time_s,
                "total_energy_j": run.extra["total_energy_j"],
                "mesh": run.extra["mesh"],
                "mean_t": run.extra["final_mean_temperature"],
            }
        return out

    data = run_once(benchmark, sweep)
    print("\nAblation: strong scaling of decomposed in-situ (case 1)")
    for n, row in data.items():
        print(f"  {n:2d} nodes {str(row['mesh']):8s}: "
              f"T={row['time_s']:7.2f} s, cluster E={row['total_energy_j'] / 1000:6.2f} kJ")

    # The decomposed physics is the same physics.
    temps = {row["mean_t"] for row in data.values()}
    assert max(temps) - min(temps) < 1e-9
    # Time scales down steeply.
    assert data[4]["time_s"] < data[1]["time_s"] / 3
    assert data[36]["time_s"] < data[9]["time_s"]
    # Energy: flat under perfect scaling, never better than 1 node.
    e1 = data[1]["total_energy_j"]
    for n, row in data.items():
        assert row["total_energy_j"] > 0.9 * e1
    assert data[36]["total_energy_j"] >= data[4]["total_energy_j"] * 0.98
