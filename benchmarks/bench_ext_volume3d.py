"""Future-work extension: 3-D fields and volume rendering.

The in-situ systems the paper cites are volume renderers; this bench
runs the 3-D proxy through the ray-casting in-situ pipeline and
quantifies the data-reduction argument in three dimensions: a raw n^3
float64 dump per timestep versus a handful of composited PNG views.
"""

from conftest import run_once

from repro.calibration import CASE_STUDIES
from repro.pipelines import PipelineConfig, PipelineRunner
from repro.pipelines.volumetric import VolumetricInSituPipeline


def test_volume3d_insitu(benchmark):
    def sweep():
        runner = PipelineRunner(seed=2015, jitter=0)
        config = PipelineConfig(case=CASE_STUDIES[3])
        out = {}
        for axes in ((0,), (0, 1, 2)):
            run = runner.run(
                VolumetricInSituPipeline(config, resolution=32,
                                         axes=axes, samples=32),
                run_id=f"v3d-{len(axes)}")
            raw_dump = 32 ** 3 * 8 * len(config.case.io_iterations())
            out[len(axes)] = {
                "energy_j": run.energy_j,
                "image_bytes": run.image_bytes,
                "raw_dump_bytes": raw_dump,
                "frames": run.images_rendered,
                "range": run.extra["field_range"],
            }
        return out

    data = run_once(benchmark, sweep)
    print("\nExt: 3-D volume-rendered in-situ (32^3 field, case-3 cadence)")
    for n_axes, row in data.items():
        reduction = row["raw_dump_bytes"] / row["image_bytes"]
        print(f"  {n_axes} view(s)/event: {row['energy_j'] / 1000:6.2f} kJ, "
              f"{row['frames']} frames, images are {reduction:.0f}x smaller "
              "than raw volume dumps")

    # More views cost more energy (each is a real ray-cast)...
    assert data[3]["energy_j"] > data[1]["energy_j"]
    # ...while even three views stay far smaller than the raw volumes.
    assert data[3]["raw_dump_bytes"] > 10 * data[3]["image_bytes"]
    # The physics ran: the hot box warmed the volume.
    assert data[1]["range"][1] > 25.0
