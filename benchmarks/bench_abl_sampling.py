"""Ablation: the sampling hybrid's energy/quality trade-off.

Sec V.C: "If the source of energy savings is significant for the dynamic
component, data sampling technique is preferred, which may result in
loss of useful information."  The sweep quantifies both halves of that
sentence: bytes kept and reconstruction error per sampling factor, and
the energy relative to the two extremes.
"""

from conftest import run_once

from repro.calibration import CASE_STUDIES
from repro.pipelines import (
    InSituPipeline,
    PipelineConfig,
    PipelineRunner,
    PostProcessingPipeline,
    SamplingInSituPipeline,
)


def test_sampling_tradeoff(benchmark):
    def sweep():
        runner = PipelineRunner(seed=2015, jitter=0)
        config = PipelineConfig(case=CASE_STUDIES[1])
        post = runner.run(PostProcessingPipeline(config), run_id="smp-post")
        insitu = runner.run(InSituPipeline(config), run_id="smp-ins")
        rows = {}
        for factor in (2, 4, 8, 16):
            run = runner.run(SamplingInSituPipeline(config, factor),
                             run_id=f"smp-{factor}")
            rows[factor] = {
                "energy_j": run.energy_j,
                "nrmse": run.extra["mean_nrmse"],
                "byte_fraction": run.extra["byte_fraction"],
            }
        return post.energy_j, insitu.energy_j, rows

    post_j, insitu_j, rows = run_once(benchmark, sweep)
    print(f"\nAblation: sampling factor sweep (case 1)")
    print(f"  post-processing: {post_j / 1000:6.2f} kJ (all data, exact)")
    for factor, row in rows.items():
        print(f"  sampling 1/{factor:<2d}   : {row['energy_j'] / 1000:6.2f} kJ, "
              f"{row['byte_fraction']:.1%} of bytes kept, "
              f"NRMSE {row['nrmse']:.3f}")
    print(f"  pure in-situ   : {insitu_j / 1000:6.2f} kJ (no raw data)")

    energies = [row["energy_j"] for row in rows.values()]
    errors = [row["nrmse"] for row in rows.values()]
    # Every hybrid sits between the extremes...
    assert all(insitu_j < e < post_j for e in energies)
    # ...information loss grows with the factor (the paper's warning)...
    assert errors == sorted(errors)
    # ...and at the paper's 128 KiB dumps even aggressive sampling cannot
    # approach in-situ: the write events are barrier-dominated, another
    # face of "only 9 % of the energy is dynamic".
    assert min(energies) > insitu_j * 1.2
