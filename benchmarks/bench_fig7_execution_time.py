"""Fig 7: execution time of post-processing vs in-situ pipelines."""

import os

from conftest import run_once

from repro.analysis import save_csv
from repro.experiments import run_experiment


def test_fig7(benchmark, lab, output_dir):
    result = run_once(benchmark, run_experiment, "fig7", lab)
    print("\n" + result.text)
    rows = result.data
    save_csv(os.path.join(output_dir, "fig7_execution_time.csv"), {
        "case": [r.case_index for r in rows],
        "post_s": [r.time_post_s for r in rows],
        "insitu_s": [r.time_insitu_s for r in rows],
    })
    by_case = {r.case_index: r for r in rows}
    # In-situ always wins, and the margin shrinks with the I/O share.
    for r in rows:
        assert r.time_insitu_s < r.time_post_s
    assert (by_case[1].time_reduction_pct
            > by_case[2].time_reduction_pct
            > by_case[3].time_reduction_pct)
    # Energy-consistent anchors (see EXPERIMENTS.md on the paper's
    # internally-inconsistent "92/52/26% lower" claim).
    assert abs(by_case[1].time_reduction_pct - 47) < 3
    assert abs(by_case[1].time_post_s - 240.6) < 3
