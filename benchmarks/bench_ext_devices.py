"""Future-work extension: the fio read jobs on SSD, NVRAM, and RAID 0.

The paper's Section VI proposes evaluating "RAID disks, solid-state
drives, and other flash-based devices such as NVRAM".  The testable
shape: the random/sequential energy gap that powers the whole Section
V.D argument is a mechanical-disk artifact and collapses on flash.
"""

import os

from conftest import run_once

from repro.analysis import save_csv
from repro.experiments import run_experiment


def test_ext_devices(benchmark, lab, output_dir):
    result = run_once(benchmark, run_experiment, "ext-devices", lab)
    print("\n" + result.text)
    data = result.data
    save_csv(os.path.join(output_dir, "ext_devices.csv"), {
        "device": list(data),
        "seq_read_s": [d["seq_read_s"] for d in data.values()],
        "rand_read_s": [d["rand_read_s"] for d in data.values()],
        "rand_seq_energy_ratio": [d["rand_seq_energy_ratio"] for d in data.values()],
    })
    assert data["hdd"]["rand_seq_energy_ratio"] > 20
    assert data["ssd"]["rand_seq_energy_ratio"] < 5
    assert data["nvram"]["rand_seq_energy_ratio"] < 2
    # RAID 0 multiplies sequential bandwidth but not random behaviour.
    assert data["raid0-4xhdd"]["seq_read_s"] < data["hdd"]["seq_read_s"] / 1.5
    assert data["raid0-4xhdd"]["rand_seq_energy_ratio"] > 20
