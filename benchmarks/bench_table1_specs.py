"""Table I: hardware specification of the system under test."""

from conftest import run_once

from repro.experiments import run_experiment


def test_table1(benchmark, lab):
    result = run_once(benchmark, run_experiment, "table1", lab)
    print("\n" + result.text)
    assert result.data["CPU"] == "2x Intel Xeon E5-2665"
    assert result.data["Memory size"] == "64 GB"
    assert result.data["Disk bandwidth"] == "6.0 Gbps"
