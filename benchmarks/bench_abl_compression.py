"""Ablation: dump compression on volume-scaled post-processing.

Application-driven compression [22] is the other data-reduction family
the related work covers.  At the paper's 128 KiB dumps the write event
is barrier-dominated and compression is pointless; on volume-scaled
dumps (where the transfer term dominates) a lossless codec's byte
savings convert into wall time and energy directly.  The sweep measures
both regimes plus the achieved compression ratios on real solver output.
"""

from conftest import run_once

from repro.pipelines.base import make_solver
from repro.rng import RngRegistry
from repro.storage.compression import CODECS, compression_ratio
from repro.calibration import STAGE


def test_compression_ablation(benchmark):
    def sweep():
        # Real solver output after 25 steps: smooth field, compresses well.
        solver = make_solver(RngRegistry(2015))
        solver.step(25)
        payload = solver.grid.to_bytes()
        ratios = {
            name: compression_ratio(payload, codec)
            for name, codec in CODECS.items() if name != "identity"
        }
        # Write-event durations with/without compression at two volumes.
        wr = STAGE["nnwrite"]
        timings = {}
        for label, nbytes in (("128 KiB", 128 * 1024), ("512 MiB", 512 << 20)):
            raw = wr.duration_for(nbytes)
            best = max(ratios.values())
            compressed = wr.duration_for(max(1, int(nbytes / best)))
            timings[label] = {"raw_s": raw, "compressed_s": compressed,
                              "speedup": raw / compressed}
        return ratios, timings

    ratios, timings = run_once(benchmark, sweep)
    print("\nAblation: dump compression (real solver output)")
    for name, ratio in ratios.items():
        print(f"  codec {name:9s}: {ratio:5.2f}x")
    for label, row in timings.items():
        print(f"  {label} write event: {row['raw_s']:7.2f} s raw -> "
              f"{row['compressed_s']:7.2f} s compressed "
              f"({row['speedup']:.2f}x)")

    # Real float64 solver output carries mantissa entropy from the noisy
    # initial condition: zlib alone is modest, demote-then-deflate wins.
    assert ratios["zlib"] > 1.1
    assert ratios["f32"] == 2.0
    assert ratios["f32+zlib"] > 2.5
    assert ratios["f32+zlib"] > ratios["zlib"]
    # Barrier-dominated regime: compression buys nothing at 128 KiB...
    assert timings["128 KiB"]["speedup"] < 1.01
    # ...transfer-dominated regime: it buys a lot.
    assert timings["512 MiB"]["speedup"] > 1.5
