"""Shared fixtures for the benchmark harness.

One session-scoped :class:`~repro.experiments.figures.Lab` memoizes the
paired pipeline runs and the fio sweep, so each figure's bench measures
its own reproduction step without re-running the whole evaluation.

Every bench prints the reproduced artifact (table / ASCII chart) and
writes its data series to ``benchmarks/output/`` as CSV.
"""

import os

import pytest

from repro.experiments import Lab

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def lab() -> Lab:
    return Lab(seed=2015)


@pytest.fixture(scope="session")
def output_dir() -> str:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


def run_once(benchmark, fn, *args):
    """Run a reproduction exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
