"""Fig 9: peak power of post-processing vs in-situ pipelines."""

import os

from conftest import run_once

from repro.analysis import save_csv
from repro.experiments import run_experiment


def test_fig9(benchmark, lab, output_dir):
    result = run_once(benchmark, run_experiment, "fig9", lab)
    print("\n" + result.text)
    rows = result.data
    save_csv(os.path.join(output_dir, "fig9_peak_power.csv"), {
        "case": [r.case_index for r in rows],
        "post_w": [r.peak_power_post_w for r in rows],
        "insitu_w": [r.peak_power_insitu_w for r in rows],
    })
    # Paper: "There is no significant difference in the peak power" —
    # the metric that matters for power-capped systems.
    for r in rows:
        assert abs(r.peak_power_delta_pct) < 4
        assert 140 < r.peak_power_post_w < 152  # simulation stage ~143 W + noise
