"""Compare a fresh BENCH_serve.json against a recorded baseline.

Usage::

    python benchmarks/compare_serve.py FRESH.json BASELINE.json

The serving benchmark's gate is throughput, so unlike
``compare_baseline.py`` (lower-is-better wall times) this checks
higher-is-better request rates: the fresh hot-repeat rate must clear an
absolute floor *and* stay within ``TOLERANCE`` of the recorded baseline
rate.  The snapshot-primed cold-miss sweep gates the same way against
its committed floor (with noise headroom).  Coalescing is a correctness
property, not a noise-prone timing — any fresh storm that needed more
than one compute fails outright.
Stdlib only — runs before any project install.
"""

from __future__ import annotations

import json
import sys

#: Absolute floor on hot-repeat serving throughput.  The reference
#: container sustains tens of thousands req/s; even a shared CI runner
#: has two orders of magnitude of headroom over this.
FLOOR_HOT_REQ_PER_S = 500.0
#: ...and the rate must not fall below baseline/TOLERANCE.
TOLERANCE = 10.0
#: Snapshot-primed cold-miss sweeps are genuine computes, so their CI
#: floor carries the same 3x scheduler-noise headroom the in-process
#: assert uses.  The target itself rides in the committed payload
#: (``cold_misses.min_req_per_s``); this is only the fallback.
DEFAULT_MIN_COLD_REQ_PER_S = 30.0
COLD_NOISE_HEADROOM = 3.0


def compare(fresh: dict, baseline: dict) -> list[str]:
    """Return a list of human-readable regression descriptions."""
    regressions: list[str] = []

    fresh_hot = fresh.get("hot_repeats", {}).get("req_per_s", 0.0)
    base_hot = baseline.get("hot_repeats", {}).get("req_per_s", 0.0)
    if fresh_hot < FLOOR_HOT_REQ_PER_S:
        regressions.append(
            f"hot repeats: {fresh_hot:.0f} req/s is below the "
            f"{FLOOR_HOT_REQ_PER_S:.0f} req/s floor")
    if base_hot > 0 and fresh_hot < base_hot / TOLERANCE:
        regressions.append(
            f"hot repeats: {fresh_hot:.0f} req/s vs baseline "
            f"{base_hot:.0f} req/s ({base_hot / max(fresh_hot, 1e-9):.1f}x "
            f"slower, tolerance {TOLERANCE:.0f}x)")

    cold = fresh.get("cold_misses", {})
    cold_rps = cold.get("req_per_s", 0.0)
    cold_floor = cold.get(
        "min_req_per_s",
        baseline.get("cold_misses", {}).get("min_req_per_s",
                                            DEFAULT_MIN_COLD_REQ_PER_S))
    if cold_rps < cold_floor / COLD_NOISE_HEADROOM:
        regressions.append(
            f"cold misses: {cold_rps:.1f} req/s is below the "
            f"{cold_floor:.0f} req/s floor even with "
            f"{COLD_NOISE_HEADROOM:.0f}x noise headroom")

    storm = fresh.get("coalescing_storm", {})
    computes = storm.get("computes")
    if computes != 1:
        regressions.append(
            f"coalescing storm: {computes} underlying computes for one "
            f"key (must be exactly 1)")

    speedup = fresh.get("hot_repeats", {}).get("speedup_vs_cold", 0.0)
    need = fresh.get("min_hot_speedup", 10.0)
    if speedup < need:
        regressions.append(
            f"hot repeats: only {speedup:.1f}x the cold baseline "
            f"(need {need:.0f}x)")
    return regressions


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as fh:
        fresh = json.load(fh)
    with open(argv[2]) as fh:
        baseline = json.load(fh)
    regressions = compare(fresh, baseline)
    if regressions:
        print("SERVE REGRESSION:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"serve ok: hot {fresh['hot_repeats']['req_per_s']:,.0f} req/s "
          f"(baseline {baseline['hot_repeats']['req_per_s']:,.0f}), "
          f"cold {fresh.get('cold_misses', {}).get('req_per_s', 0.0):.1f} "
          f"req/s, storm computes {fresh['coalescing_storm']['computes']}, "
          f"floor {FLOOR_HOT_REQ_PER_S:.0f} req/s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
