"""Ablation: RAPL sampling rate — overhead vs profile fidelity.

Section IV.B: RAPL can sample at over 1 kHz, but the paper throttles to
1 Hz because on-node monitoring costs power (+0.2 W at 1 Hz).  The sweep
reproduces that trade-off: higher rates resolve the sub-second stage
structure better while drawing measurably more power.
"""

import numpy as np
from conftest import run_once

from repro.calibration import STAGE
from repro.machine import Node
from repro.power import MeterRig
from repro.rng import RngRegistry
from repro.trace import Timeline
from repro.units import KiB


def _alternating_timeline() -> Timeline:
    """20 s alternating sim (1.588 s) / write (1.444 s) events."""
    tl = Timeline()
    sim, wr = STAGE["simulation"], STAGE["nnwrite"]
    while tl.now < 20.0:
        tl.record("simulation", sim.duration_s, sim.activity())
        tl.record("nnwrite", wr.duration_s,
                  wr.activity(disk_write_bytes=128 * KiB))
    return tl


def test_monitoring_rate(benchmark):
    timeline = _alternating_timeline()

    def sweep():
        out = {}
        for hz in (1.0, 10.0, 100.0):
            rig = MeterRig(Node(), sample_hz=hz, jitter=0,
                           rng=RngRegistry(55))
            profile = rig.sample(timeline)
            sys = profile["system"]
            out[hz] = {
                "avg_w": float(np.mean(sys)),
                "spread_w": float(np.max(sys) - np.min(sys)),
            }
        return out

    data = run_once(benchmark, sweep)
    print("\nAblation: RAPL monitoring rate (alternating 143 W / 115 W stages)")
    for hz, row in data.items():
        print(f"  {hz:6.1f} Hz: avg {row['avg_w']:6.2f} W, observed stage "
              f"spread {row['spread_w']:5.1f} W")
    # Fidelity: at 1 Hz the 1.4-1.6 s stages blur together; at 100 Hz the
    # meter resolves nearly the full 143-115 W swing.
    assert data[100.0]["spread_w"] > data[1.0]["spread_w"]
    assert data[100.0]["spread_w"] > 25.0
    # Overhead: the paper's +0.2 W/Hz monitoring cost accumulates.
    assert data[100.0]["avg_w"] > data[1.0]["avg_w"] + 15.0
