"""Ablation: how fragile is the headline 43 % to the calibration?

Perturbs every calibrated parameter by +/-10 % and reports the tornado
of headline (case-1 energy savings) swings.  The reproduction's claim to
faithfulness rests on this: the conclusion must not hinge on any single
calibrated constant.
"""

from conftest import run_once

from repro.analysis.sensitivity import headline_savings, sensitivity_analysis


def test_sensitivity_tornado(benchmark):
    entries = run_once(benchmark, sensitivity_analysis, 0.10)
    baseline = headline_savings()
    print(f"\nAblation: calibration sensitivity of the headline "
          f"(baseline savings {baseline:.1%}, parameters scaled +/-10%)")
    for e in entries:
        print(f"  {e.parameter:32s} savings {e.low:.1%} .. {e.high:.1%} "
              f"(swing {e.swing:.1%})")

    # The time-shares of the I/O events carry the result...
    top = {e.parameter for e in entries[:3]}
    assert {"duration[nnwrite]", "duration[nnread]"} <= top
    # ...but no single +/-10% error moves the headline out of 35-50%.
    for e in entries:
        assert 0.35 < e.low < 0.50
        assert 0.35 < e.high < 0.50
