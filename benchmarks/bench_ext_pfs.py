"""Future-work extension: parallel-filesystem stripe width vs energy.

Section VI.A item 4: "evaluation on multi-node systems running parallel
file systems to understand the impact of file system on energy
consumption".  The sweep writes a campaign of volume-scaled timestep
dumps at different stripe widths and accounts both sides of striping:
wall time falls with width (OSTs service shares concurrently), while the
storage subsystem's static floor scales with every spindle that must
spin for the campaign.
"""

from conftest import run_once

from repro.system.pfs import ParallelFileSystem
from repro.units import MiB


CLIENT_STATIC_W = 104.8      # the compute node waits while dumping
DUMPS = 25
DUMP_BYTES = 32 * MiB


def test_pfs_stripe_sweep(benchmark):
    def sweep():
        out = {}
        for stripe in (1, 2, 4, 8):
            pfs = ParallelFileSystem(n_osts=8, stripe_count=stripe)
            payload = b"\x37" * DUMP_BYTES
            elapsed = 0.0
            disk_energy = 0.0
            for i in range(DUMPS):
                result = pfs.write(f"ts{i:04d}.dat", payload)
                elapsed += result.elapsed_s
                # Dynamic disk energy: write-channel + actuator work.
                spec = pfs.osts[0].device.spec
                disk_energy += (
                    spec.write_energy_per_byte_j * result.io.bytes_written
                    + spec.actuator_w * result.io.arm_time
                )
            # Campaign energy: client waits + all 8 OST spindles spinning
            # for the duration + the dynamic write work.
            total = elapsed * (CLIENT_STATIC_W + pfs.idle_power_w) + disk_energy
            out[stripe] = {"elapsed_s": elapsed, "energy_j": total}
        return out

    data = run_once(benchmark, sweep)
    print("\nExt: PFS stripe-width sweep "
          f"({DUMPS} dumps x {DUMP_BYTES // MiB} MiB over 8 OSTs)")
    for stripe, row in data.items():
        print(f"  stripe {stripe}: {row['elapsed_s']:6.2f} s dump time, "
              f"{row['energy_j'] / 1000:6.2f} kJ campaign energy")
    times = [row["elapsed_s"] for row in data.values()]
    energies = [row["energy_j"] for row in data.values()]
    # Wall time falls monotonically with stripe width...
    assert times == sorted(times, reverse=True)
    assert times[-1] < 0.5 * times[0]
    # ...and with all 8 spindles spinning regardless, the shorter campaign
    # is also the cheaper one — the PFS counterpart of the paper's
    # "savings come from reducing idle time".
    assert energies == sorted(energies, reverse=True)
