"""Compare a fresh BENCH_suite.json against a recorded baseline.

Usage::

    python benchmarks/compare_baseline.py FRESH.json BASELINE.json

Exits non-zero when the fresh run regresses past tolerance.  CI runners
are shared and noisy, so the gate is deliberately loose: a per-metric
regression only fails when the fresh time exceeds ``TOLERANCE`` times
the baseline *and* the absolute slowdown is larger than ``FLOOR_S``
(sub-tenth-of-a-second experiments triple on scheduler jitter alone).
Stdlib only — runs before any project install.
"""

from __future__ import annotations

import json
import sys

#: A metric must be this many times slower than baseline to fail...
TOLERANCE = 3.0
#: ...and slower by at least this many absolute seconds.
FLOOR_S = 0.5

#: Raw-speed ceiling on the whole serial suite, mirrored from
#: ``bench_perf_suite.CEILING_RUN_ALL_S`` via the committed payload.
#: Unlike the relative checks above, this gate is absolute: whatever
#: the baseline drifts to, a fresh ``run_all`` past TOLERANCE times the
#: recorded ceiling fails.
DEFAULT_CEILING_RUN_ALL_S = 0.4


def compare(fresh: dict, baseline: dict) -> list[str]:
    """Return a list of human-readable regression descriptions."""
    regressions: list[str] = []

    def check(label: str, new_s: float, old_s: float) -> None:
        if new_s > old_s * TOLERANCE and new_s - old_s > FLOOR_S:
            regressions.append(
                f"{label}: {new_s:.3f}s vs baseline {old_s:.3f}s "
                f"({new_s / old_s:.1f}x, tolerance {TOLERANCE:.0f}x)"
            )

    check("run_all", fresh.get("run_all_s", 0.0),
          baseline.get("run_all_s", 0.0))
    ceiling_s = fresh.get("ceiling_run_all_s",
                          baseline.get("ceiling_run_all_s",
                                       DEFAULT_CEILING_RUN_ALL_S))
    run_all_s = fresh.get("run_all_s", 0.0)
    if run_all_s > ceiling_s * TOLERANCE:
        regressions.append(
            f"run_all: {run_all_s:.3f}s breaks the absolute "
            f"{ceiling_s:.1f}s raw-speed ceiling "
            f"(tolerance {TOLERANCE:.0f}x)"
        )
    old_experiments = baseline.get("experiments", {})
    for eid, new_s in sorted(fresh.get("experiments", {}).items()):
        old_s = old_experiments.get(eid)
        if old_s is None:
            print(f"note: {eid} has no baseline entry; skipping")
            continue
        check(eid, new_s, old_s)
    return regressions


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as fh:
        fresh = json.load(fh)
    with open(argv[2]) as fh:
        baseline = json.load(fh)
    regressions = compare(fresh, baseline)
    if regressions:
        print("PERF REGRESSION:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"perf ok: run_all {fresh.get('run_all_s', 0.0):.2f}s vs baseline "
          f"{baseline.get('run_all_s', 0.0):.2f}s "
          f"(tolerance {TOLERANCE:.0f}x, floor {FLOOR_S}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
