"""Section V.C: breakdown of the in-situ energy savings.

Paper: for case study 1, 12.8 kJ of the savings is static (avoided
idling) and 1.2 kJ dynamic (avoided data movement) — "as much as 91% of
the energy is saved by avoiding system idling."
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_sec5c(benchmark, lab):
    result = run_once(benchmark, run_experiment, "sec5c", lab)
    print("\n" + result.text)
    analyses = result.data
    case1 = analyses[1].breakdown
    assert abs(case1.static_fraction - 0.91) < 0.03
    assert abs(case1.dynamic_savings_j - 1_200) < 300
    # The paper's printed static figure (12.8 kJ) plus its dynamic figure
    # (1.2 kJ) exceeds 43 % of its own ~30 kJ Fig 10 baseline; the
    # consistent static value is ~11.7 kJ (see EXPERIMENTS.md).
    assert abs(case1.static_savings_j - 11_700) < 1_200
    # The static/dynamic split is a property of the machine, not the
    # I/O cadence: it holds across all three case studies.
    for analysis in analyses.values():
        assert analysis.breakdown.static_fraction > 0.85
        # Table II input sanity.
        assert abs(analysis.io_dynamic_power_w - 10.15) < 1.0
