"""Future-work extension: in-situ image databases (Cinema, ref [12]).

Sweeps the number of rendered parameter combinations per timestep and
finds the crossover against classic post-processing: with the proxy
app's cheap dumps, an image database of more than a few combinations
costs more energy than keeping the raw data — the image-based answer to
in-situ's exploration loss is only free when dumps are expensive
relative to renders.
"""

from conftest import run_once

from repro.calibration import CASE_STUDIES
from repro.pipelines import (
    InSituPipeline,
    PipelineConfig,
    PipelineRunner,
    PostProcessingPipeline,
)
from repro.pipelines.cinema import CinemaPipeline, default_spec


def test_cinema_crossover(benchmark):
    def sweep():
        runner = PipelineRunner(seed=2015, jitter=0)
        config = PipelineConfig(case=CASE_STUDIES[1], verify_data=False)
        post = runner.run(PostProcessingPipeline(config), run_id="cinb-post")
        insitu = runner.run(InSituPipeline(config), run_id="cinb-ins")
        rows = {}
        for n in (1, 2, 4, 8):
            spec = default_spec(n)
            run = runner.run(CinemaPipeline(config, spec),
                             run_id=f"cinb-{n}")
            rows[spec.n_combinations] = {
                "energy_j": run.energy_j,
                "frames": run.images_rendered,
            }
        return post.energy_j, insitu.energy_j, rows

    post_j, insitu_j, rows = run_once(benchmark, sweep)
    print("\nExt: Cinema image database vs raw-data post-processing (case 1)")
    print(f"  post-processing (raw data) : {post_j / 1000:6.2f} kJ")
    print(f"  plain in-situ (1 frame)    : {insitu_j / 1000:6.2f} kJ")
    for combos, row in sorted(rows.items()):
        verdict = "cheaper" if row["energy_j"] < post_j else "MORE expensive"
        print(f"  cinema x{combos:2d} combos         : "
              f"{row['energy_j'] / 1000:6.2f} kJ ({row['frames']} frames) "
              f"-> {verdict} than raw dumps")

    energies = [rows[k]["energy_j"] for k in sorted(rows)]
    # Cost grows monotonically with database richness...
    assert energies == sorted(energies)
    # ...small databases beat raw dumps, rich ones lose to them.
    assert energies[0] < post_j
    assert energies[-1] > post_j
