"""Ablation: frequency scaling during I/O phases (Sec V.C's suggestion).

The paper's savings breakdown names frequency scaling as a candidate for
attacking the post-processing pipeline's bill.  The ablation quantifies
it: because the I/O stages run at 1.5 % CPU utilization, cutting their
clock shrinks only the (already tiny) dynamic CPU term — the ~105 W
static floor is untouched.  Result: ~1 % savings, reinforcing the
paper's point that the bill is static-dominated.
"""

from conftest import run_once

from repro.machine import Node
from repro.pipelines import io_phase_dvfs
from repro.power import MeterRig
from repro.rng import RngRegistry


def test_dvfs_on_io_phases(benchmark, lab):
    post = lab.outcomes()[1].post

    def ablation():
        results = {}
        for ratio in (1.0, 0.7, 0.4):
            scaled = io_phase_dvfs(post.timeline, ratio)
            rig = MeterRig(Node(), jitter=0, rng=RngRegistry(77))
            results[ratio] = rig.sample(scaled).energy()
        return results

    energies = run_once(benchmark, ablation)
    base = energies[1.0]
    print("\nAblation: I/O-phase DVFS on post-processing (case 1)")
    for ratio, energy in energies.items():
        print(f"  freq ratio {ratio:.1f}: {energy / 1000:7.2f} kJ "
              f"({100 * (1 - energy / base):+.2f}% vs full clock)")
    # Lower clock monotonically helps...
    assert energies[0.4] < energies[0.7] < energies[1.0]
    # ...but by ~1%: nothing like in-situ's 43%.
    assert 1 - energies[0.4] / base < 0.02
