"""Fig 11: normalized energy efficiency of the two pipelines."""

import os

from conftest import run_once

from repro.analysis import save_csv
from repro.experiments import run_experiment


def test_fig11(benchmark, lab, output_dir):
    result = run_once(benchmark, run_experiment, "fig11", lab)
    print("\n" + result.text)
    norm = result.data
    save_csv(os.path.join(output_dir, "fig11_efficiency.csv"), {
        "case": list(norm),
        "post_norm": [v[0] for v in norm.values()],
        "insitu_norm": [v[1] for v in norm.values()],
    })
    # In-situ is more efficient everywhere; the best configuration
    # normalizes to 1.0.
    for post_eff, insitu_eff in norm.values():
        assert insitu_eff > post_eff
    assert max(v for pair in norm.values() for v in pair) == 1.0
    # Paper: "improvement ... varies from 22% to 72% depending on the
    # time spent in I/O" — case 1 gives the top of that range.
    improvement_case1 = norm[1][1] / norm[1][0] - 1
    assert 0.65 < improvement_case1 < 0.85
