"""Ablation: measurement-noise robustness of the headline numbers.

Every profile in this reproduction carries seeded meter noise, workload
jitter, and RAPL model error.  Rerunning the case-1 comparison across
many seeds shows how much of the headline is signal: the paper reports
single runs, so its percentages carry this same (small) uncertainty.
"""

import statistics

from conftest import run_once

from repro.pipelines import PipelineRunner
from repro.workloads import run_case_study


def test_seed_robustness(benchmark):
    def sweep():
        savings = []
        power_deltas = []
        for seed in range(10):
            outcome = run_case_study(1, PipelineRunner(seed=seed))
            savings.append(outcome.energy_savings_fraction)
            power_deltas.append(outcome.avg_power_increase_fraction)
        return savings, power_deltas

    savings, power_deltas = run_once(benchmark, sweep)
    mean_s = statistics.mean(savings)
    sd_s = statistics.stdev(savings)
    mean_p = statistics.mean(power_deltas)
    print("\nAblation: headline across 10 measurement seeds")
    print(f"  energy savings    : {mean_s:.2%} +/- {sd_s:.2%} "
          f"(min {min(savings):.2%}, max {max(savings):.2%})")
    print(f"  avg power increase: {mean_p:+.2%} "
          f"+/- {statistics.stdev(power_deltas):.2%}")

    # The conclusion is insensitive to the measurement noise realization.
    assert abs(mean_s - 0.428) < 0.01
    assert sd_s < 0.01
    assert all(0.40 < s < 0.46 for s in savings)
    assert all(p > 0 for p in power_deltas)
