"""Fig 6: power profiles of isolated nnread and nnwrite stages."""

import os

from conftest import run_once

from repro.analysis import save_csv
from repro.experiments import run_experiment


def test_fig6(benchmark, lab, output_dir):
    result = run_once(benchmark, run_experiment, "fig6", lab)
    print("\n" + result.text)
    profiles = result.data
    for stage, profile in profiles.items():
        save_csv(os.path.join(output_dir, f"fig6_{stage}.csv"),
                 profile.to_columns())
    # Section V.A: "the average power consumed by the reads and the
    # writes is nearly the same."
    read_avg = profiles["nnread"].average()
    write_avg = profiles["nnwrite"].average()
    assert abs(read_avg - write_avg) < 2.0
    assert 113.5 < read_avg < 116.5    # paper: 115.1 W
    assert 113.0 < write_avg < 116.5   # paper: 114.8 W
