"""Fig 8: average power of post-processing vs in-situ pipelines."""

import os

from conftest import run_once

from repro.analysis import save_csv
from repro.experiments import run_experiment


def test_fig8(benchmark, lab, output_dir):
    result = run_once(benchmark, run_experiment, "fig8", lab)
    print("\n" + result.text)
    rows = result.data
    save_csv(os.path.join(output_dir, "fig8_average_power.csv"), {
        "case": [r.case_index for r in rows],
        "post_w": [r.avg_power_post_w for r in rows],
        "insitu_w": [r.avg_power_insitu_w for r in rows],
    })
    by_case = {r.case_index: r for r in rows}
    # Paper: in-situ consumed 8 %, 5 %, 3 % more power on average.
    assert abs(by_case[1].avg_power_increase_pct - 8) < 1.5
    assert abs(by_case[2].avg_power_increase_pct - 5) < 2.0
    assert abs(by_case[3].avg_power_increase_pct - 3) < 1.5
    for r in rows:
        assert r.avg_power_insitu_w > r.avg_power_post_w
        assert 120 < r.avg_power_post_w < 145
