"""Ablation: trace-based cross-device what-if.

Records the exact block trace the post-processing pipeline's storage
stack issues (through a recording block queue), then replays it against
other devices and schedulers — the characterization-driven methodology
the paper's future-work runtime is meant to automate.
"""

import numpy as np
from conftest import run_once

from repro.machine import HddModel, NvramModel, SsdModel
from repro.machine.specs import DiskSpec
from repro.system import ScanScheduler
from repro.workloads.replay import RecordingQueue, replay
from repro.machine.disk import DiskRequest, OpKind
from repro.units import GiB, KiB


def test_trace_replay_what_if(benchmark):
    def study():
        # Record: a scattered read phase, as an aged-filesystem
        # post-processing read pass would issue it.
        rng = np.random.default_rng(2015)
        queue = RecordingQueue(HddModel(DiskSpec()))
        # Offsets stay within every device, including the 64 GiB NVRAM.
        requests = [DiskRequest(OpKind.READ, int(o), 128 * KiB)
                    for o in rng.integers(0, 40 * GiB, 400)]
        queue.submit(requests)
        trace = queue.trace
        # Trace survives serialization (ship it to another lab).
        from repro.workloads.replay import IoTrace

        trace = IoTrace.from_csv(trace.to_csv())
        out = {}
        for label, device, sched in (
            ("hdd/fifo", HddModel(DiskSpec()), None),
            ("hdd/scan", HddModel(DiskSpec()), ScanScheduler()),
            ("ssd", SsdModel(), None),
            ("nvram", NvramModel(), None),
        ):
            stats = replay(trace, device, sched, batch=64)
            out[label] = stats.busy_time
        return out

    times = run_once(benchmark, study)
    print("\nAblation: replaying one recorded I/O trace across devices")
    for label, t in times.items():
        print(f"  {label:9s}: {t:8.3f} s")
    assert times["hdd/scan"] < times["hdd/fifo"]
    assert times["ssd"] < times["hdd/scan"] / 10
    assert times["nvram"] < times["ssd"]
