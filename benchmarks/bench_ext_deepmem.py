"""Future-work extension: deep memory hierarchies (Gamell et al. [26]).

Stages the post-processing pipeline's dumps in progressively faster
tiers — the HDD of Table I, a flash tier, and byte-addressable NVRAM —
by overriding the I/O stages' transfer rates while keeping the
device-independent software barrier (sync + drop_caches + VFS work).

The shape the related work reports, reproduced: at the paper's 128 KiB
dumps the barrier dominates and the storage tier barely matters; on
volume-scaled dumps NVRAM staging pulls post-processing most of the way
toward in-situ energy — the data still exists, and the deep hierarchy
pays for the exploration.
"""

from dataclasses import replace

from conftest import run_once

from repro.calibration import CASE_STUDIES, STAGE
from repro.machine.nvram import NvramSpec
from repro.machine.ssd import SsdSpec
from repro.pipelines import (
    InSituPipeline,
    PipelineConfig,
    PipelineRunner,
    PostProcessingPipeline,
)

TIERS = {
    "hdd": (STAGE["nnwrite"].bytes_per_s, STAGE["nnread"].bytes_per_s),
    "ssd": (SsdSpec().seq_write_bw, SsdSpec().seq_read_bw),
    "nvram": (NvramSpec().seq_write_bw, NvramSpec().seq_read_bw),
}


def _config(scale: int, write_bw: float, read_bw: float) -> PipelineConfig:
    overrides = (
        ("nnwrite", replace(STAGE["nnwrite"], bytes_per_s=write_bw)),
        ("nnread", replace(STAGE["nnread"], bytes_per_s=read_bw)),
    )
    # Case-3 cadence shortened to 16 iterations so the x32 grid's real
    # numerics stay fast; the energy *ratios* are iteration-invariant.
    case = replace(CASE_STUDIES[3], total_iterations=16)
    return PipelineConfig(
        case=case, grid_scale=scale, solver_sub_steps=1,
        scale_sim_with_grid=False, verify_data=False,
        stage_overrides=overrides,
    )


def test_deep_memory_hierarchy(benchmark):
    def sweep():
        runner = PipelineRunner(seed=2015, jitter=0)
        out = {}
        for scale, label in ((1, "128 KiB dumps"), (32, "128 MiB dumps")):
            insitu = runner.run(
                InSituPipeline(_config(scale, *TIERS["hdd"])),
                run_id=f"dm-ins-{scale}")
            row = {"insitu_j": insitu.energy_j}
            for tier, (wbw, rbw) in TIERS.items():
                run = runner.run(
                    PostProcessingPipeline(_config(scale, wbw, rbw)),
                    run_id=f"dm-{tier}-{scale}")
                row[tier] = run.energy_j
            out[label] = row
        return out

    data = run_once(benchmark, sweep)
    print("\nExt: post-processing dumps staged in deeper memory tiers")
    for label, row in data.items():
        print(f"  {label}: hdd {row['hdd'] / 1000:6.2f} kJ, "
              f"ssd {row['ssd'] / 1000:6.2f} kJ, "
              f"nvram {row['nvram'] / 1000:6.2f} kJ "
              f"(in-situ floor {row['insitu_j'] / 1000:6.2f} kJ)")

    small, big = data["128 KiB dumps"], data["128 MiB dumps"]
    # Barrier-dominated regime: the tier hardly matters at 128 KiB...
    assert abs(small["hdd"] - small["nvram"]) / small["hdd"] < 0.01
    # ...transfer-dominated regime: each faster tier strictly helps...
    assert big["hdd"] > big["ssd"] > big["nvram"]
    # ...and NVRAM recovers most of the gap toward in-situ.
    recovered = (big["hdd"] - big["nvram"]) / (big["hdd"] - big["insitu_j"])
    assert recovered > 0.3
