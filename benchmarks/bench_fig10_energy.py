"""Fig 10: energy consumption of post-processing vs in-situ pipelines.

The paper's headline: in-situ consumes 43 %, 30 %, 18 % less energy for
the three case studies.  (We measure ~43/31/11 — case 3's printed 18 % is
inconsistent with the paper's own Figs 8+10 arithmetic; EXPERIMENTS.md.)
"""

import os

from conftest import run_once

from repro.analysis import save_csv
from repro.experiments import run_experiment


def test_fig10(benchmark, lab, output_dir):
    result = run_once(benchmark, run_experiment, "fig10", lab)
    print("\n" + result.text)
    rows = result.data
    save_csv(os.path.join(output_dir, "fig10_energy.csv"), {
        "case": [r.case_index for r in rows],
        "post_j": [r.energy_post_j for r in rows],
        "insitu_j": [r.energy_insitu_j for r in rows],
    })
    by_case = {r.case_index: r for r in rows}
    # Headline: 43 % savings for the realistic I/O load.
    assert abs(by_case[1].energy_savings_pct - 43) < 2
    assert abs(by_case[2].energy_savings_pct - 30) < 2.5
    # Savings decline monotonically as I/O cadence drops.
    assert (by_case[1].energy_savings_pct
            > by_case[2].energy_savings_pct
            > by_case[3].energy_savings_pct > 5)
    # Absolute scale: traditional case 1 ~30 kJ (Fig 10's y-axis).
    assert abs(by_case[1].energy_post_j - 30_000) < 1_500
