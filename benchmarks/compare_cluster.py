"""Compare a fresh BENCH_serve.json's cluster section against a baseline.

Usage::

    python benchmarks/compare_cluster.py FRESH.json BASELINE.json

Companion gate to ``compare_serve.py`` for the sharded serving tier.
Two of its checks are correctness properties and fail outright on any
deviation: the 32-thread cold-key storm must have performed exactly one
compute cluster-wide, and every cluster size must have served
byte-identical results (equal sha256 digest maps).  The throughput
checks are noise-tolerant: the 4-shard-vs-single-node scaling factor
must clear the *committed* core-aware floor (``cluster.min_scaling_4x``
rides in the payload: 2.5x on >= 4 cores, degraded floors below since
forked shards cannot out-compute the cores the runner actually has)
with headroom, and must not collapse relative to the recorded baseline.
Stdlib only — runs before any project install.
"""

from __future__ import annotations

import json
import sys

#: Scaling floors carry the same noise headroom the in-bench assert uses.
SCALING_HEADROOM = 1.5
#: ...and the factor must not fall below baseline/SCALING_TOLERANCE.
SCALING_TOLERANCE = 2.0
#: Absolute mixed-workload throughput must stay within this of baseline.
THROUGHPUT_TOLERANCE = 10.0


def compare(fresh: dict, baseline: dict) -> list[str]:
    """Return a list of human-readable regression descriptions."""
    regressions: list[str] = []
    cluster = fresh.get("cluster")
    if not cluster:
        return ["cluster: fresh payload has no cluster section "
                "(bench_serve.py did not run the scaling curve)"]
    base = baseline.get("cluster", {})

    computes = cluster.get("storm", {}).get("computes")
    if computes != 1:
        regressions.append(
            f"cluster storm: {computes} computes cluster-wide for one "
            f"cold key (must be exactly 1)")

    if cluster.get("digests_consistent") is not True:
        regressions.append(
            "cluster: result digests differ across cluster sizes "
            "(sharded serving changed bytes)")

    scaling = cluster.get("scaling_4x", 0.0)
    floor = cluster.get("min_scaling_4x",
                        base.get("min_scaling_4x", 0.5))
    if scaling < floor / SCALING_HEADROOM:
        regressions.append(
            f"cluster scaling: 4-shard mixed zipf only {scaling:.2f}x "
            f"single-node (floor {floor:.2f}x on "
            f"{cluster.get('cores', '?')} core(s), even with "
            f"{SCALING_HEADROOM:.1f}x headroom)")
    base_scaling = base.get("scaling_4x", 0.0)
    if base_scaling > 0 and scaling < base_scaling / SCALING_TOLERANCE:
        regressions.append(
            f"cluster scaling: {scaling:.2f}x vs baseline "
            f"{base_scaling:.2f}x (tolerance {SCALING_TOLERANCE:.0f}x)")

    fresh_rps = (cluster.get("sizes", {}).get("4", {})
                 .get("mixed_req_per_s", 0.0))
    base_rps = base.get("sizes", {}).get("4", {}).get("mixed_req_per_s", 0.0)
    if base_rps > 0 and fresh_rps < base_rps / THROUGHPUT_TOLERANCE:
        regressions.append(
            f"cluster throughput: 4-shard mixed zipf {fresh_rps:.0f} req/s "
            f"vs baseline {base_rps:.0f} req/s "
            f"(tolerance {THROUGHPUT_TOLERANCE:.0f}x)")

    transport = fresh.get("http_transport", {})
    if transport and transport.get("keep_alive_connects") != 1:
        regressions.append(
            f"http transport: keep-alive client opened "
            f"{transport.get('keep_alive_connects')} connections "
            f"(must re-use exactly 1)")
    return regressions


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as fh:
        fresh = json.load(fh)
    with open(argv[2]) as fh:
        baseline = json.load(fh)
    regressions = compare(fresh, baseline)
    if regressions:
        print("CLUSTER REGRESSION:")
        for line in regressions:
            print(f"  {line}")
        return 1
    cluster = fresh["cluster"]
    print(f"cluster ok: scaling_4x {cluster['scaling_4x']:.2f} "
          f"(floor {cluster['min_scaling_4x']:.2f} on "
          f"{cluster['cores']} core(s)), storm computes "
          f"{cluster['storm']['computes']}, digests consistent, "
          f"4-shard mixed {cluster['sizes']['4']['mixed_req_per_s']:.0f} "
          f"req/s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
