"""Future-work extension: multi-node in-transit vs single-node pipelines."""

from conftest import run_once

from repro.experiments import run_experiment


def test_ext_multinode(benchmark, lab):
    result = run_once(benchmark, run_experiment, "ext-multinode", lab)
    print("\n" + result.text)
    data = result.data
    post, insitu, transit = data["post"], data["insitu"], data["intransit"]
    # Shipping over the interconnect beats storing on disk: the compute
    # node finishes faster than the post-processing pipeline.
    assert transit.execution_time_s < post.execution_time_s
    assert transit.energy_j < post.energy_j
    # But once the staging node's static draw is charged, the two-node
    # total exceeds single-node in-situ.
    assert data["total_energy_j"] > insitu.energy_j
