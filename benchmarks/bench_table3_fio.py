"""Table III: performance, power, and energy for the fio tests."""

import os

from conftest import run_once

from repro.analysis import save_csv
from repro.calibration import PAPER
from repro.experiments import run_experiment


def test_table3(benchmark, lab, output_dir):
    result = run_once(benchmark, run_experiment, "table3", lab)
    print("\n" + result.text)
    results = result.data
    save_csv(os.path.join(output_dir, "table3_fio.csv"), {
        "job": list(results),
        "time_s": [r.elapsed_s for r in results.values()],
        "system_w": [r.system_power_w for r in results.values()],
        "disk_dyn_w": [r.disk_dynamic_power_w for r in results.values()],
        "system_kj": [r.system_energy_j / 1000 for r in results.values()],
    })
    paper = PAPER["table3"]
    for job, expected in paper.items():
        r = results[job]
        assert abs(r.elapsed_s - expected["time_s"]) / expected["time_s"] < 0.03, job
        assert abs(r.system_power_w - expected["system_w"]) < 1.5, job
        assert abs(r.disk_dynamic_power_w - expected["disk_dyn_w"]) < 0.7, job
    # The qualitative story: random reads are catastrophically expensive;
    # random writes are rescued by write-back caching + reordering.
    assert results["rand_read"].elapsed_s > 50 * results["seq_read"].elapsed_s
    assert results["rand_write"].elapsed_s < 1.3 * results["seq_write"].elapsed_s
