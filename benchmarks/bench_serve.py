"""Serving-layer throughput: warm pool + two-tier cache vs cold runs.

Drives the in-process :class:`~repro.service.core.ExperimentService`
with three concurrent mixed workloads and records sustained request
rates plus latency percentiles to ``benchmarks/output/BENCH_serve.json``:

* **hot repeats** — one key warmed, then ``HOT_THREADS`` request threads
  hammering it; every request is a memory-tier hit.
* **cold misses** — a fresh service fans the whole registry out over the
  worker pool with no *result* cached.  The cache directory holds only a
  warm-Lab snapshot (what a prior batch run or serve leaves behind), so
  workers deserialize primed Labs in milliseconds and every request is
  still a genuine compute.
* **coalescing storm** — ``STORM_THREADS`` threads released by a barrier
  onto one cold key; the single-flight layer must run *exactly one*
  underlying compute.

The baseline is the pre-serving cost model: every request constructs a
:class:`Lab` and runs the experiment serially.  The acceptance gate is
``hot req/s >= MIN_HOT_SPEEDUP x baseline req/s`` — the measured value
is orders of magnitude past it.  Every served payload is digest-checked
against a cold serial ``run_experiment``, so the speed is provably not
changing a byte.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import tempfile
import threading
import time

from repro.cluster import ClusterConfig, SpawnedCluster
from repro.experiments import EXPERIMENTS, Lab
from repro.experiments.engine import warm_lab
from repro.experiments.registry import get_experiment
from repro.service import ExperimentService, ServiceConfig, result_digest
from repro.service.client import ServiceClient, query
from repro.service.http import make_server

SEED = 2015
#: The hot-repeat key; a mid-weight experiment (full case-study sweep).
HOT_ID = "fig4"
#: The storm key; distinct from HOT_ID so the storm starts cold.
STORM_ID = "table2"

BASELINE_REQUESTS = 3
HOT_THREADS = 8
HOT_REQUESTS_PER_THREAD = 50
STORM_THREADS = 32

#: Warm-pool serving must beat per-request cold Labs by at least this
#: factor on the hot-repeat workload (the PR's acceptance criterion).
MIN_HOT_SPEEDUP = 10.0

#: Snapshot-primed cold-miss floor: computing the whole registry on a
#: fresh service must sustain at least this many requests per second on
#: the reference container.  In-process the assert allows 3x for
#: scheduler noise (CI gates via ``compare_serve.py`` the same way).
MIN_COLD_REQ_PER_S = 30.0

#: HTTP-transport before/after: requests per client style.
TRANSPORT_REQUESTS = 150

#: Cluster scaling curve: shard counts, driver width, and the mixed
#: hot/cold zipf workload shape.
CLUSTER_SIZES = (1, 2, 4)
CLUSTER_DRIVER_THREADS = 16
ZIPF_ALPHA = 1.1
ZIPF_HOT_SAMPLES = 360
#: Seeds whose (id, seed) keys stay cold until the mixed phase; their
#: warm-Lab snapshots are primed up front so a "cold" request costs a
#: genuine compute, not testbed construction.
CLUSTER_COLD_SEEDS = (SEED + 1, SEED + 2)


def _cluster_min_scaling() -> tuple[int, float]:
    """(usable cores, 4-shard scaling floor for this machine).

    Shards are OS processes, so aggregate throughput scales with the
    cores the kernel lets us use: on >= 4 cores a 4-shard cluster must
    sustain >= 2.5x the single-node rate; with fewer cores the computes
    time-slice one or two CPUs and the floor only guards against the
    cluster *collapsing* (routing hop + IPC overhead running away).
    ``REPRO_CLUSTER_MIN_SCALING`` overrides for noisy shared runners.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    if cores >= 4:
        floor = 2.5
    elif cores >= 2:
        floor = 1.2
    else:
        floor = 0.5
    floor = float(os.environ.get("REPRO_CLUSTER_MIN_SCALING", floor))
    return cores, floor


def _percentiles(samples_s: list[float]) -> dict[str, float]:
    ordered = sorted(samples_s)
    grid = statistics.quantiles(ordered, n=100, method="inclusive")
    return {
        "p50_ms": round(grid[49] * 1000.0, 4),
        "p95_ms": round(grid[94] * 1000.0, 4),
        "p99_ms": round(grid[98] * 1000.0, 4),
        "max_ms": round(ordered[-1] * 1000.0, 4),
    }


def _drive(service: ExperimentService, experiment_id: str, threads: int,
           requests_per_thread: int) -> tuple[float, list[float]]:
    """Hammer one key from many threads; (elapsed, per-request latencies)."""
    latencies: list[list[float]] = [[] for _ in range(threads)]
    barrier = threading.Barrier(threads + 1)

    def worker(slot: int) -> None:
        barrier.wait()
        for _ in range(requests_per_thread):
            start = time.perf_counter()
            service.run(experiment_id, SEED)
            latencies[slot].append(time.perf_counter() - start)

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - start
    return elapsed, [s for slot in latencies for s in slot]


def _drive_router(host: str, port: int, stream: list[tuple[str, int]],
                  threads: int) -> tuple[float, list[dict]]:
    """Drain a (experiment, seed) work stream through keep-alive clients.

    Every driver thread owns one :class:`ServiceClient` and pulls the
    next item from the shared stream, so the request mix arrives at the
    router exactly as generated.  Raises on the first failed request.
    """
    it = iter(stream)
    lock = threading.Lock()
    replies: list[dict] = []
    errors: list[Exception] = []
    barrier = threading.Barrier(threads + 1)

    def worker() -> None:
        with ServiceClient(host, port) as client:
            barrier.wait()
            while True:
                with lock:
                    item = next(it, None)
                if item is None:
                    return
                try:
                    reply = client.run(*item)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    replies.append(reply)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"cluster request failed: {errors[0]}"
    assert len(replies) == len(stream)
    return elapsed, replies


def _zipf_stream(rng: random.Random,
                 hot_keys: list[tuple[str, int]],
                 cold_keys: list[tuple[str, int]]) -> list[tuple[str, int]]:
    """The mixed workload: zipf-weighted hot traffic + one-shot cold keys.

    Hot samples follow a zipf(``ZIPF_ALPHA``) popularity curve over the
    cached keys (the head gets hot enough to trigger replication); each
    cold key appears exactly once, shuffled uniformly into the stream,
    so misses arrive *during* the hot traffic rather than as a separate
    phase.
    """
    weights = [1.0 / (rank + 1) ** ZIPF_ALPHA
               for rank in range(len(hot_keys))]
    stream = rng.choices(hot_keys, weights=weights, k=ZIPF_HOT_SAMPLES)
    stream.extend(cold_keys)
    rng.shuffle(stream)
    return stream


def _clear_results(cache_dir: str) -> None:
    """Drop result entries between cluster sizes; keep Lab snapshots."""
    for name in os.listdir(cache_dir):
        if name.endswith(".pkl"):
            os.unlink(os.path.join(cache_dir, name))


def _totals(host: str, port: int) -> dict:
    with ServiceClient(host, port) as client:
        stats = client.stats()
    return {**stats["totals"],
            "promotions": stats["router"]["promotions"],
            "router_sheds": stats["router"]["sheds"]}


def test_bench_serve(output_dir):
    # -- baseline: per-request cold Lab construction + serial run -------------
    reference = get_experiment(HOT_ID)(Lab(seed=SEED))
    reference_digest = result_digest(reference)
    baseline_samples_s = []
    for _ in range(BASELINE_REQUESTS):
        start = time.perf_counter()
        result = get_experiment(HOT_ID)(Lab(seed=SEED))
        baseline_samples_s.append(time.perf_counter() - start)
        assert result_digest(result) == reference_digest
    baseline_s_per_request = min(baseline_samples_s)
    baseline_rps = 1.0 / baseline_s_per_request

    # -- hot repeats: every request a memory-tier hit -------------------------
    with ExperimentService(ServiceConfig(jobs=4)) as service:
        warm = service.serve(HOT_ID, SEED)
        assert result_digest(warm.result) == reference_digest
        hot_elapsed_s, hot_latencies_s = _drive(
            service, HOT_ID, HOT_THREADS, HOT_REQUESTS_PER_THREAD)
        hot_requests = HOT_THREADS * HOT_REQUESTS_PER_THREAD
        hot_stats = service.stats()
        assert hot_stats["memory"]["hits"] >= hot_requests
        assert service.run(HOT_ID, SEED).text == reference.text
    hot_rps = hot_requests / hot_elapsed_s
    hot_speedup = hot_rps / baseline_rps

    # -- cold misses: the whole registry, snapshot-primed labs ----------------
    with tempfile.TemporaryDirectory() as snap_dir:
        # A prior batch run (or serve) left a warm-Lab snapshot behind;
        # no result entries exist, so every request still computes.
        warm_lab(SEED, snap_dir)
        with ExperimentService(ServiceConfig(jobs=4,
                                             cache_dir=snap_dir)) as service:
            start = time.perf_counter()
            results = service.run_many(list(EXPERIMENTS), seed=SEED)
            cold_elapsed_s = time.perf_counter() - start
            cold_stats = service.stats()
            assert set(results) == set(EXPERIMENTS)
            assert cold_stats["computed"] == len(EXPERIMENTS)
            assert cold_stats["labs_restored"] >= 1, cold_stats
            assert cold_stats["labs_built"] == 0, cold_stats
    cold_rps = len(EXPERIMENTS) / cold_elapsed_s

    # -- coalescing storm: N concurrent identical cold requests ---------------
    with ExperimentService(ServiceConfig(jobs=4)) as service:
        storm_elapsed_s, storm_latencies_s = _drive(
            service, STORM_ID, STORM_THREADS, 1)
        storm_stats = service.stats()
        assert storm_stats["computed"] == 1, (
            f"coalescing failed: {storm_stats['computed']} computes "
            f"for one key under a {STORM_THREADS}-thread storm")
        # Every non-computing thread either joined the in-flight compute
        # or arrived after it finished and hit the memory tier; both are
        # dedup wins, and their split depends only on compute latency.
        storm_mem_hits = storm_stats["memory"]["hits"]
        assert (storm_stats["coalesced"] + storm_mem_hits
                == STORM_THREADS - 1), storm_stats

    # -- HTTP transport: per-request connections vs keep-alive ----------------
    # The same warm key over real loopback HTTP, first with a fresh TCP
    # connection per request (the pre-keep-alive client shape), then
    # over one persistent HTTP/1.1 connection.
    with ExperimentService(ServiceConfig(jobs=2)) as service:
        server = make_server("127.0.0.1", 0, service)
        server_thread = threading.Thread(target=server.serve_forever,
                                         daemon=True)
        server_thread.start()
        try:
            port = server.port
            assert query(HOT_ID, SEED, port=port)["digest"] == reference_digest
            start = time.perf_counter()
            for _ in range(TRANSPORT_REQUESTS):
                query(HOT_ID, SEED, port=port)  # one-shot: connect per call
            per_request_s = time.perf_counter() - start
            with ServiceClient("127.0.0.1", port) as client:
                client.run(HOT_ID, SEED)
                start = time.perf_counter()
                for _ in range(TRANSPORT_REQUESTS):
                    client.run(HOT_ID, SEED)
                keep_alive_s = time.perf_counter() - start
                transport_connects = client.transport_stats()["connects"]
        finally:
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=5)
    per_request_rps = TRANSPORT_REQUESTS / per_request_s
    keep_alive_rps = TRANSPORT_REQUESTS / keep_alive_s
    assert transport_connects == 1, (
        f"keep-alive client reconnected: {transport_connects} connects "
        f"for {TRANSPORT_REQUESTS + 1} requests")

    # -- cluster scaling: mixed hot/cold zipf across shard counts -------------
    cores, min_scaling_4x = _cluster_min_scaling()
    hot_keys = [(eid, SEED) for eid in sorted(EXPERIMENTS)]
    cold_keys = [(eid, seed) for seed in CLUSTER_COLD_SEEDS
                 for eid in sorted(EXPERIMENTS)]
    cluster_sizes: dict[str, dict] = {}
    digest_maps: dict[int, dict[tuple[str, int], str]] = {}
    storm_section = {}
    with tempfile.TemporaryDirectory() as cluster_dir:
        # Prime a warm-Lab snapshot per seed once: every shard process
        # restores Labs in milliseconds, so a cold key costs one genuine
        # compute and nothing else (what a prior batch run leaves behind).
        for seed in (SEED, *CLUSTER_COLD_SEEDS):
            warm_lab(seed, cluster_dir)
        for shards in CLUSTER_SIZES:
            _clear_results(cluster_dir)
            config = ClusterConfig(shards=shards, replicas=2, jobs=2,
                                   cache_dir=cluster_dir, hot_threshold=4)
            with SpawnedCluster(config) as cluster:
                host, port = cluster.serve_in_background()

                # Phase 1: cold sweep — every registry id computes once.
                sweep_elapsed_s, sweep_replies = _drive_router(
                    host, port, list(hot_keys), CLUSTER_DRIVER_THREADS)
                after_sweep = _totals(host, port)
                assert after_sweep["computed"] == len(hot_keys), after_sweep

                # Phase 2: mixed zipf — hot traffic over the cached keys
                # with the cold keys shuffled in, all at once.
                stream = _zipf_stream(random.Random(SEED),
                                      hot_keys, cold_keys)
                mixed_elapsed_s, mixed_replies = _drive_router(
                    host, port, stream, CLUSTER_DRIVER_THREADS)
                totals = _totals(host, port)
                assert (totals["computed"] - after_sweep["computed"]
                        == len(cold_keys)), totals

                digests: dict[tuple[str, int], str] = {}
                for reply in sweep_replies + mixed_replies:
                    key = (reply["experiment"], reply["seed"])
                    seen = digests.setdefault(key, reply["digest"])
                    assert seen == reply["digest"], (
                        f"shards disagree on {key}")
                digest_maps[shards] = digests

                cluster_sizes[str(shards)] = {
                    "cold_req_per_s": round(
                        len(hot_keys) / sweep_elapsed_s, 2),
                    "mixed_req_per_s": round(
                        len(stream) / mixed_elapsed_s, 2),
                    "mixed_requests": len(stream),
                    "computed": totals["computed"],
                    "memory_hits": totals["memory_hits"],
                    "disk_hits": totals["disk_hits"],
                    "promotions": totals["promotions"],
                    "shed": totals["shed"],
                }

                if shards == max(CLUSTER_SIZES):
                    # Phase 3: 32-thread cold-key storm through the
                    # router — exactly one compute cluster-wide.
                    with ServiceClient(host, port) as client:
                        client.invalidate(STORM_ID, SEED)
                    before_storm = _totals(host, port)
                    storm_elapsed_s, storm_replies = _drive_router(
                        host, port, [(STORM_ID, SEED)] * STORM_THREADS,
                        STORM_THREADS)
                    storm_computes = (_totals(host, port)["computed"]
                                      - before_storm["computed"])
                    assert storm_computes == 1, (
                        f"{storm_computes} computes cluster-wide for one "
                        f"cold key under a {STORM_THREADS}-thread storm")
                    assert len({r["digest"] for r in storm_replies}) == 1
                    storm_section = {
                        "threads": STORM_THREADS,
                        "computes": storm_computes,
                        "elapsed_s": round(storm_elapsed_s, 4),
                    }

    # Byte identity across cluster sizes: every key served by every
    # cluster size carries the same sha256 digest as the 1-shard
    # (single-node) run.
    digests_consistent = all(digest_maps[shards] == digest_maps[1]
                             for shards in CLUSTER_SIZES)
    assert digests_consistent, "cluster sizes disagree on result digests"
    assert digest_maps[1][(HOT_ID, SEED)] == reference_digest

    scaling_4x = (cluster_sizes["4"]["mixed_req_per_s"]
                  / cluster_sizes["1"]["mixed_req_per_s"])
    cold_scaling_4x = (cluster_sizes["4"]["cold_req_per_s"]
                       / cluster_sizes["1"]["cold_req_per_s"])

    payload = {
        "seed": SEED,
        "baseline": {
            "workload": f"per-request cold Lab, serial {HOT_ID}",
            "requests": BASELINE_REQUESTS,
            "s_per_request": round(baseline_s_per_request, 4),
            "req_per_s": round(baseline_rps, 4),
        },
        "hot_repeats": {
            "workload": f"{HOT_THREADS} threads x "
                        f"{HOT_REQUESTS_PER_THREAD} requests of {HOT_ID}",
            "requests": hot_requests,
            "elapsed_s": round(hot_elapsed_s, 4),
            "req_per_s": round(hot_rps, 1),
            "speedup_vs_cold": round(hot_speedup, 1),
            **_percentiles(hot_latencies_s),
        },
        "cold_misses": {
            "workload": f"whole registry ({len(EXPERIMENTS)} ids), "
                        "snapshot-primed labs, no results cached, jobs=4",
            "requests": len(EXPERIMENTS),
            "elapsed_s": round(cold_elapsed_s, 4),
            "req_per_s": round(cold_rps, 2),
            "min_req_per_s": MIN_COLD_REQ_PER_S,
        },
        "coalescing_storm": {
            "workload": f"{STORM_THREADS} concurrent requests of one "
                        f"cold key ({STORM_ID})",
            "requests": STORM_THREADS,
            "computes": storm_stats["computed"],
            "coalesced": storm_stats["coalesced"],
            "memory_hits": storm_mem_hits,
            "elapsed_s": round(storm_elapsed_s, 4),
            **_percentiles(storm_latencies_s),
        },
        "http_transport": {
            "workload": f"{TRANSPORT_REQUESTS} hot requests of {HOT_ID} "
                        "over loopback HTTP",
            "per_request_req_per_s": round(per_request_rps, 1),
            "keep_alive_req_per_s": round(keep_alive_rps, 1),
            "keep_alive_speedup": round(keep_alive_rps / per_request_rps, 2),
            "keep_alive_connects": transport_connects,
        },
        "cluster": {
            "workload": f"{CLUSTER_DRIVER_THREADS} drivers, zipf("
                        f"{ZIPF_ALPHA}) over {len(hot_keys)} hot keys "
                        f"({ZIPF_HOT_SAMPLES} samples) + {len(cold_keys)} "
                        "one-shot cold keys, shards as forked processes",
            "cores": cores,
            "sizes": cluster_sizes,
            "scaling_4x": round(scaling_4x, 2),
            "cold_scaling_4x": round(cold_scaling_4x, 2),
            "min_scaling_4x": min_scaling_4x,
            "digests_consistent": digests_consistent,
            "storm": storm_section,
        },
        "min_hot_speedup": MIN_HOT_SPEEDUP,
    }
    path = os.path.join(output_dir, "BENCH_serve.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nhot {hot_rps:,.0f} req/s ({hot_speedup:,.0f}x cold baseline "
          f"{baseline_rps:.2f} req/s); cold sweep {cold_rps:.2f} req/s; "
          f"storm: {storm_stats['computed']} compute / "
          f"{storm_stats['coalesced']} coalesced")
    print(f"transport: keep-alive {keep_alive_rps:,.0f} req/s vs "
          f"{per_request_rps:,.0f} per-connection "
          f"({keep_alive_rps / per_request_rps:.2f}x); "
          f"cluster mixed zipf on {cores} core(s): "
          + ", ".join(f"{n}sh {cluster_sizes[str(n)]['mixed_req_per_s']:,.0f}"
                      f" req/s" for n in CLUSTER_SIZES)
          + f" -> scaling_4x {scaling_4x:.2f} (floor {min_scaling_4x:.2f}), "
            f"cluster storm computes {storm_section['computes']}")

    assert hot_speedup >= MIN_HOT_SPEEDUP, (
        f"hot-repeat serving only {hot_speedup:.1f}x the cold baseline "
        f"(need {MIN_HOT_SPEEDUP:.0f}x)")
    assert cold_rps >= MIN_COLD_REQ_PER_S / 3, (
        f"snapshot-primed cold sweep only {cold_rps:.1f} req/s, past even "
        f"3x headroom under the {MIN_COLD_REQ_PER_S:.0f} req/s floor")
    # The same 1.5x noise headroom the serve gates use; the committed
    # floor itself is core-aware (2.5x on >= 4 cores).
    assert scaling_4x >= min_scaling_4x / 1.5, (
        f"4-shard mixed-zipf throughput only {scaling_4x:.2f}x single-node "
        f"(floor {min_scaling_4x:.2f}x on {cores} core(s))")
