"""Serving-layer throughput: warm pool + two-tier cache vs cold runs.

Drives the in-process :class:`~repro.service.core.ExperimentService`
with three concurrent mixed workloads and records sustained request
rates plus latency percentiles to ``benchmarks/output/BENCH_serve.json``:

* **hot repeats** — one key warmed, then ``HOT_THREADS`` request threads
  hammering it; every request is a memory-tier hit.
* **cold misses** — a fresh service fans the whole registry out over the
  worker pool with no *result* cached.  The cache directory holds only a
  warm-Lab snapshot (what a prior batch run or serve leaves behind), so
  workers deserialize primed Labs in milliseconds and every request is
  still a genuine compute.
* **coalescing storm** — ``STORM_THREADS`` threads released by a barrier
  onto one cold key; the single-flight layer must run *exactly one*
  underlying compute.

The baseline is the pre-serving cost model: every request constructs a
:class:`Lab` and runs the experiment serially.  The acceptance gate is
``hot req/s >= MIN_HOT_SPEEDUP x baseline req/s`` — the measured value
is orders of magnitude past it.  Every served payload is digest-checked
against a cold serial ``run_experiment``, so the speed is provably not
changing a byte.
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import threading
import time

from repro.experiments import EXPERIMENTS, Lab
from repro.experiments.engine import warm_lab
from repro.experiments.registry import get_experiment
from repro.service import ExperimentService, ServiceConfig, result_digest

SEED = 2015
#: The hot-repeat key; a mid-weight experiment (full case-study sweep).
HOT_ID = "fig4"
#: The storm key; distinct from HOT_ID so the storm starts cold.
STORM_ID = "table2"

BASELINE_REQUESTS = 3
HOT_THREADS = 8
HOT_REQUESTS_PER_THREAD = 50
STORM_THREADS = 32

#: Warm-pool serving must beat per-request cold Labs by at least this
#: factor on the hot-repeat workload (the PR's acceptance criterion).
MIN_HOT_SPEEDUP = 10.0

#: Snapshot-primed cold-miss floor: computing the whole registry on a
#: fresh service must sustain at least this many requests per second on
#: the reference container.  In-process the assert allows 3x for
#: scheduler noise (CI gates via ``compare_serve.py`` the same way).
MIN_COLD_REQ_PER_S = 30.0


def _percentiles(samples_s: list[float]) -> dict[str, float]:
    ordered = sorted(samples_s)
    grid = statistics.quantiles(ordered, n=100, method="inclusive")
    return {
        "p50_ms": round(grid[49] * 1000.0, 4),
        "p95_ms": round(grid[94] * 1000.0, 4),
        "p99_ms": round(grid[98] * 1000.0, 4),
        "max_ms": round(ordered[-1] * 1000.0, 4),
    }


def _drive(service: ExperimentService, experiment_id: str, threads: int,
           requests_per_thread: int) -> tuple[float, list[float]]:
    """Hammer one key from many threads; (elapsed, per-request latencies)."""
    latencies: list[list[float]] = [[] for _ in range(threads)]
    barrier = threading.Barrier(threads + 1)

    def worker(slot: int) -> None:
        barrier.wait()
        for _ in range(requests_per_thread):
            start = time.perf_counter()
            service.run(experiment_id, SEED)
            latencies[slot].append(time.perf_counter() - start)

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - start
    return elapsed, [s for slot in latencies for s in slot]


def test_bench_serve(output_dir):
    # -- baseline: per-request cold Lab construction + serial run -------------
    reference = get_experiment(HOT_ID)(Lab(seed=SEED))
    reference_digest = result_digest(reference)
    baseline_samples_s = []
    for _ in range(BASELINE_REQUESTS):
        start = time.perf_counter()
        result = get_experiment(HOT_ID)(Lab(seed=SEED))
        baseline_samples_s.append(time.perf_counter() - start)
        assert result_digest(result) == reference_digest
    baseline_s_per_request = min(baseline_samples_s)
    baseline_rps = 1.0 / baseline_s_per_request

    # -- hot repeats: every request a memory-tier hit -------------------------
    with ExperimentService(ServiceConfig(jobs=4)) as service:
        warm = service.serve(HOT_ID, SEED)
        assert result_digest(warm.result) == reference_digest
        hot_elapsed_s, hot_latencies_s = _drive(
            service, HOT_ID, HOT_THREADS, HOT_REQUESTS_PER_THREAD)
        hot_requests = HOT_THREADS * HOT_REQUESTS_PER_THREAD
        hot_stats = service.stats()
        assert hot_stats["memory"]["hits"] >= hot_requests
        assert service.run(HOT_ID, SEED).text == reference.text
    hot_rps = hot_requests / hot_elapsed_s
    hot_speedup = hot_rps / baseline_rps

    # -- cold misses: the whole registry, snapshot-primed labs ----------------
    with tempfile.TemporaryDirectory() as snap_dir:
        # A prior batch run (or serve) left a warm-Lab snapshot behind;
        # no result entries exist, so every request still computes.
        warm_lab(SEED, snap_dir)
        with ExperimentService(ServiceConfig(jobs=4,
                                             cache_dir=snap_dir)) as service:
            start = time.perf_counter()
            results = service.run_many(list(EXPERIMENTS), seed=SEED)
            cold_elapsed_s = time.perf_counter() - start
            cold_stats = service.stats()
            assert set(results) == set(EXPERIMENTS)
            assert cold_stats["computed"] == len(EXPERIMENTS)
            assert cold_stats["labs_restored"] >= 1, cold_stats
            assert cold_stats["labs_built"] == 0, cold_stats
    cold_rps = len(EXPERIMENTS) / cold_elapsed_s

    # -- coalescing storm: N concurrent identical cold requests ---------------
    with ExperimentService(ServiceConfig(jobs=4)) as service:
        storm_elapsed_s, storm_latencies_s = _drive(
            service, STORM_ID, STORM_THREADS, 1)
        storm_stats = service.stats()
        assert storm_stats["computed"] == 1, (
            f"coalescing failed: {storm_stats['computed']} computes "
            f"for one key under a {STORM_THREADS}-thread storm")
        # Every non-computing thread either joined the in-flight compute
        # or arrived after it finished and hit the memory tier; both are
        # dedup wins, and their split depends only on compute latency.
        storm_mem_hits = storm_stats["memory"]["hits"]
        assert (storm_stats["coalesced"] + storm_mem_hits
                == STORM_THREADS - 1), storm_stats

    payload = {
        "seed": SEED,
        "baseline": {
            "workload": f"per-request cold Lab, serial {HOT_ID}",
            "requests": BASELINE_REQUESTS,
            "s_per_request": round(baseline_s_per_request, 4),
            "req_per_s": round(baseline_rps, 4),
        },
        "hot_repeats": {
            "workload": f"{HOT_THREADS} threads x "
                        f"{HOT_REQUESTS_PER_THREAD} requests of {HOT_ID}",
            "requests": hot_requests,
            "elapsed_s": round(hot_elapsed_s, 4),
            "req_per_s": round(hot_rps, 1),
            "speedup_vs_cold": round(hot_speedup, 1),
            **_percentiles(hot_latencies_s),
        },
        "cold_misses": {
            "workload": f"whole registry ({len(EXPERIMENTS)} ids), "
                        "snapshot-primed labs, no results cached, jobs=4",
            "requests": len(EXPERIMENTS),
            "elapsed_s": round(cold_elapsed_s, 4),
            "req_per_s": round(cold_rps, 2),
            "min_req_per_s": MIN_COLD_REQ_PER_S,
        },
        "coalescing_storm": {
            "workload": f"{STORM_THREADS} concurrent requests of one "
                        f"cold key ({STORM_ID})",
            "requests": STORM_THREADS,
            "computes": storm_stats["computed"],
            "coalesced": storm_stats["coalesced"],
            "memory_hits": storm_mem_hits,
            "elapsed_s": round(storm_elapsed_s, 4),
            **_percentiles(storm_latencies_s),
        },
        "min_hot_speedup": MIN_HOT_SPEEDUP,
    }
    path = os.path.join(output_dir, "BENCH_serve.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nhot {hot_rps:,.0f} req/s ({hot_speedup:,.0f}x cold baseline "
          f"{baseline_rps:.2f} req/s); cold sweep {cold_rps:.2f} req/s; "
          f"storm: {storm_stats['computed']} compute / "
          f"{storm_stats['coalesced']} coalesced")

    assert hot_speedup >= MIN_HOT_SPEEDUP, (
        f"hot-repeat serving only {hot_speedup:.1f}x the cold baseline "
        f"(need {MIN_HOT_SPEEDUP:.0f}x)")
    assert cold_rps >= MIN_COLD_REQ_PER_S / 3, (
        f"snapshot-primed cold sweep only {cold_rps:.1f} req/s, past even "
        f"3x headroom under the {MIN_COLD_REQ_PER_S:.0f} req/s floor")
