"""Ablation: running the pipelines under a node power cap.

Fig 9's observation — in-situ does not raise peak power — matters
because power-capped systems throttle whatever exceeds the budget.  The
sweep fits both pipelines under tightening caps and measures the
time/energy cost of compliance, plus whether in-situ's cap behaviour
really matches post-processing's.
"""

from conftest import run_once

from repro.analysis import fit_under_cap
from repro.machine import Node
from repro.power import MeterRig
from repro.rng import RngRegistry


def test_powercap_sweep(benchmark, lab):
    outcome = lab.outcomes()[1]
    node = Node()

    def sweep():
        out = {}
        for cap in (150.0, 135.0, 120.0):
            row = {}
            for kind, run in (("post", outcome.post),
                              ("insitu", outcome.insitu)):
                report = fit_under_cap(run.timeline, node, cap)
                rig = MeterRig(node, jitter=0, rng=RngRegistry(17))
                profile = rig.sample(report.capped_timeline)
                row[kind] = {
                    "slowdown": report.slowdown,
                    "energy_j": profile.energy(),
                    "feasible": report.feasible,
                }
            out[cap] = row
        return out

    data = run_once(benchmark, sweep)
    print("\nAblation: pipelines under a node power cap")
    for cap, row in data.items():
        print(f"  cap {cap:5.1f} W: post slowdown {row['post']['slowdown']:.3f}x "
              f"({row['post']['energy_j'] / 1000:6.2f} kJ), "
              f"in-situ slowdown {row['insitu']['slowdown']:.3f}x "
              f"({row['insitu']['energy_j'] / 1000:6.2f} kJ)")

    # A cap above both peaks is free for everyone.
    assert data[150.0]["post"]["slowdown"] == 1.0
    assert data[150.0]["insitu"]["slowdown"] == 1.0
    # Tight caps hurt in-situ *more* in relative slowdown — it spends a
    # larger fraction of its time in the 143 W simulation stage — yet it
    # remains the lower-energy pipeline at every cap.
    assert data[120.0]["insitu"]["slowdown"] > data[120.0]["post"]["slowdown"]
    for cap, row in data.items():
        assert row["insitu"]["feasible"] and row["post"]["feasible"]
        assert row["insitu"]["energy_j"] < row["post"]["energy_j"]
