"""Fig 4: percentage of execution time per stage, three case studies."""

from conftest import run_once

from repro.calibration import PAPER
from repro.experiments import run_experiment


def test_fig4(benchmark, lab):
    result = run_once(benchmark, run_experiment, "fig4", lab)
    print("\n" + result.text)
    shares = result.data
    for case, expected in PAPER["fig4_shares"].items():
        for stage, frac in expected.items():
            measured = shares[case][stage]
            assert abs(measured - frac) < 0.015, (case, stage, measured, frac)
    # Simulation share grows as I/O cadence drops: 33% -> 50% -> 80%.
    assert shares[1]["simulation"] < shares[2]["simulation"] < shares[3]["simulation"]
