"""Ablation: block-layer I/O scheduler vs random-read energy.

Software-directed access scheduling [30] is the cheapest form of the
Sec V.D reorganization family: reorder requests before dispatch.  The
sweep services the same scattered read batch under FIFO, SCAN and
deadline schedulers and meters the full-system energy of each.
"""

import numpy as np
from conftest import run_once

from repro.machine import DiskRequest, HddModel, Node, OpKind
from repro.machine.specs import DiskSpec
from repro.power import MeterRig
from repro.rng import RngRegistry
from repro.system import BlockQueue, DeadlineScheduler, NoopScheduler, ScanScheduler
from repro.trace import Timeline
from repro.units import GiB, KiB


def test_scheduler_energy(benchmark):
    rng = np.random.default_rng(404)
    offsets = [int(o) for o in rng.integers(0, 400 * GiB, 2000)]
    requests = [DiskRequest(OpKind.READ, o, 16 * KiB) for o in offsets]

    def sweep():
        out = {}
        for sched in (NoopScheduler(), ScanScheduler(),
                      DeadlineScheduler(batch_limit=64)):
            node = Node()
            queue = BlockQueue(HddModel(DiskSpec()), sched)
            stats = queue.submit(requests)
            timeline = Timeline()
            timeline.record("random-read", stats.busy_time, stats.activity())
            rig = MeterRig(node, jitter=0, rng=RngRegistry(11))
            profile = rig.sample(timeline)
            out[sched.name] = {
                "time_s": stats.busy_time,
                "energy_j": profile.energy(),
            }
        return out

    data = run_once(benchmark, sweep)
    print("\nAblation: I/O scheduler on a 2000-request scattered read batch")
    for name, row in data.items():
        print(f"  {name:9s}: {row['time_s']:6.2f} s, {row['energy_j']:8.1f} J")
    # SCAN (elevator) collapses seek time and therefore static energy.
    assert data["scan"]["energy_j"] < 0.7 * data["noop"]["energy_j"]
    # Deadline trades a bounded amount of that back for fairness.
    assert (data["scan"]["energy_j"] <= data["deadline"]["energy_j"]
            <= data["noop"]["energy_j"])
