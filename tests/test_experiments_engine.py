"""The parallel + cached experiment engine is bitwise-faithful.

Whatever combination of ``jobs`` and ``cache_dir`` the engine runs
under, it must hand back the same :class:`ExperimentResult` payloads the
serial registry path produces — compared here at the pickle-byte level,
which is also the representation the on-disk cache stores.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import CodecError, ConfigError
from repro.experiments.engine import (
    _cache_path,
    _snapshot_path,
    cache_key,
    lab_snapshot_key,
    load_lab_snapshot,
    restore_lab,
    run_experiments,
    save_lab_snapshot,
    snapshot_lab,
    warm_lab,
)
from repro.experiments.figures import Lab
from repro.experiments.registry import get_experiment

SEED = 2015

#: A small registry subset keeps these tests fast; the two ids share the
#: Lab's memoized pipeline runs, exercising the worker-sharing path.
IDS = ["fig4", "table2"]


def _bytes(result) -> bytes:
    return pickle.dumps(result, protocol=4)


@pytest.fixture(scope="module")
def serial() -> dict[str, bytes]:
    """Reference payloads straight from the registry path."""
    lab = Lab(seed=SEED)
    return {eid: _bytes(get_experiment(eid)(lab)) for eid in IDS}


def test_serial_engine_matches_registry(serial):
    report = run_experiments(IDS, seed=SEED, jobs=1)
    assert list(report.results) == IDS
    for eid in IDS:
        assert _bytes(report.results[eid]) == serial[eid]


def test_parallel_engine_matches_serial_bitwise(serial):
    report = run_experiments(IDS, seed=SEED, jobs=2)
    assert report.jobs == 2
    assert list(report.results) == IDS
    for eid in IDS:
        assert _bytes(report.results[eid]) == serial[eid]


def test_cache_round_trip(tmp_path, serial):
    cache = str(tmp_path)
    cold = run_experiments(IDS, seed=SEED, jobs=1, cache_dir=cache)
    assert cold.cache_hits == ()
    assert cold.cache_misses == tuple(IDS)

    warm = run_experiments(IDS, seed=SEED, jobs=1, cache_dir=cache)
    assert warm.cache_hits == tuple(IDS)
    assert warm.cache_misses == ()
    for eid in IDS:
        assert _bytes(warm.results[eid]) == serial[eid]


def test_corrupt_cache_entry_is_recomputed(tmp_path, serial):
    cache = str(tmp_path)
    run_experiments(["fig4"], seed=SEED, jobs=1, cache_dir=cache)
    with open(_cache_path(cache, "fig4", SEED), "wb") as fh:
        fh.write(b"definitely not a pickle")

    report = run_experiments(["fig4"], seed=SEED, jobs=1, cache_dir=cache)
    assert report.cache_misses == ("fig4",)
    assert _bytes(report.results["fig4"]) == serial["fig4"]

    # The recompute overwrote the corrupt entry with a good one.
    again = run_experiments(["fig4"], seed=SEED, jobs=1, cache_dir=cache)
    assert again.cache_hits == ("fig4",)


def test_cache_key_covers_its_inputs():
    base = cache_key("fig4", SEED)
    assert cache_key("fig4", SEED) == base
    assert cache_key("fig5", SEED) != base
    assert cache_key("fig4", SEED + 1) != base


def test_unknown_experiment_rejected_before_any_work():
    with pytest.raises(ConfigError):
        run_experiments(["no-such-figure"], seed=SEED)


def test_nonpositive_jobs_rejected():
    with pytest.raises(ConfigError):
        run_experiments(IDS, seed=SEED, jobs=0)


# -- warm-Lab snapshots ---------------------------------------------------------


class TestLabSnapshot:
    def test_experiments_from_restored_lab_are_bitwise_identical(self, serial):
        fresh = Lab(seed=SEED)
        fresh.outcomes()
        fresh.fio()
        lab = restore_lab(snapshot_lab(fresh), SEED)
        for eid in IDS:
            assert _bytes(get_experiment(eid)(lab)) == serial[eid]

    def test_warm_lab_writes_then_restores_snapshot(self, tmp_path, serial):
        cache = str(tmp_path)
        assert load_lab_snapshot(cache, SEED) is None
        warm_lab(SEED, cache)  # cold: primes and saves
        restored = load_lab_snapshot(cache, SEED)
        assert restored is not None and restored.seed == SEED
        for eid in IDS:
            assert _bytes(get_experiment(eid)(restored)) == serial[eid]

    def test_apps_memo_survives_snapshot_round_trip(self):
        """The heaviest memo (application-profile runs) restores intact."""
        fresh = Lab(seed=SEED)
        fresh.apps()
        lab = restore_lab(snapshot_lab(fresh), SEED)
        run = get_experiment("ext-applications")
        assert _bytes(run(lab)) == _bytes(run(Lab(seed=SEED)))

    def test_wrong_seed_and_corrupt_blobs_rejected(self, tmp_path):
        lab = Lab(seed=SEED)
        blob = snapshot_lab(lab)
        with pytest.raises(CodecError):
            restore_lab(blob, SEED + 1)
        with pytest.raises(CodecError):
            restore_lab(b"not a snapshot", SEED)
        with pytest.raises(CodecError):
            restore_lab(blob[: len(blob) // 2], SEED)
        # The never-raise loader degrades every failure to a miss.
        cache = str(tmp_path)
        save_lab_snapshot(cache, lab)
        with open(_snapshot_path(cache, SEED), "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert load_lab_snapshot(cache, SEED) is None

    def test_snapshot_key_covers_seed(self):
        assert lab_snapshot_key(SEED) != lab_snapshot_key(SEED + 1)
        assert lab_snapshot_key(SEED) == lab_snapshot_key(SEED)
