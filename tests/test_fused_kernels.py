"""Fused sim/viz sweeps must be bit-identical to the scalar references.

The render, contour, and FTCS kernels were fused into single vectorized
passes for speed; these tests pin each fused path against a straight
transliteration of the original per-cell / per-stage implementation so
any drift — a reassociated sum, a folded divide, a different rounding —
fails loudly instead of silently shifting the paper anchors.
"""

import numpy as np
import pytest

from repro.sim.grid import Grid2D
from repro.sim.heat import BoundaryCondition, HeatSolver
from repro.sim.stencil import laplacian_5pt
from repro.viz.colormap import get_colormap
from repro.viz.contour import _CASE_EDGES, _interp, marching_squares
from repro.viz.render import render_field, render_with_contours


def reference_marching_squares(field, level):
    """The original per-cell walk, verbatim."""
    arr = np.asarray(field, dtype=float)
    tl, tr = arr[:-1, :-1], arr[:-1, 1:]
    bl, br = arr[1:, :-1], arr[1:, 1:]
    case = (
        (tl >= level).astype(np.uint8)
        | ((tr >= level).astype(np.uint8) << 1)
        | ((br >= level).astype(np.uint8) << 2)
        | ((bl >= level).astype(np.uint8) << 3)
    )
    rows, cols = np.nonzero((case != 0) & (case != 15))
    segments = []
    for r, c in zip(rows.tolist(), cols.tolist()):
        v_tl, v_tr = float(arr[r, c]), float(arr[r, c + 1])
        v_bl, v_br = float(arr[r + 1, c]), float(arr[r + 1, c + 1])

        def edge_point(edge):
            if edge == 0:
                return (float(r), c + _interp(v_tl, v_tr, level))
            if edge == 1:
                return (r + _interp(v_tr, v_br, level), float(c + 1))
            if edge == 2:
                return (float(r + 1), c + _interp(v_bl, v_br, level))
            return (r + _interp(v_tl, v_bl, level), float(c))

        k = int(case[r, c])
        if k in (5, 10):
            center = (v_tl + v_tr + v_bl + v_br) / 4.0
            if k == 5:
                pairs = ((0, 1), (2, 3)) if center >= level else ((0, 3), (1, 2))
            else:
                pairs = ((0, 3), (1, 2)) if center >= level else ((0, 1), (2, 3))
        else:
            pairs = _CASE_EDGES[k]
        for e0, e1 in pairs:
            segments.append((edge_point(e0), edge_point(e1)))
    return segments


def reference_render(field, colormap, height, width, vmin=None, vmax=None):
    """The original resample -> normalize -> colormap chain, verbatim."""
    cmap = get_colormap(colormap)
    arr = np.asarray(field, dtype=float)
    rows = np.minimum((np.arange(height) * arr.shape[0] / height).astype(int),
                      arr.shape[0] - 1)
    cols = np.minimum((np.arange(width) * arr.shape[1] / width).astype(int),
                      arr.shape[1] - 1)
    resampled = arr[np.ix_(rows, cols)]
    lo = float(resampled.min()) if vmin is None else vmin
    hi = float(resampled.max()) if vmax is None else vmax
    if hi <= lo:
        v = np.full_like(resampled, 0.5, dtype=float)
    else:
        v = np.clip((resampled - lo) / (hi - lo), 0.0, 1.0)
    v = np.clip(np.asarray(v, dtype=float), 0.0, 1.0)
    positions = np.array([p for p, _ in cmap.stops])
    colors = np.array([rgb for _, rgb in cmap.stops], dtype=float)
    out = np.empty(v.shape + (3,), dtype=np.uint8)
    for ch in range(3):
        out[..., ch] = np.interp(v, positions, colors[:, ch]).round().astype(np.uint8)
    return out


class TestMarchingSquaresBitIdentity:
    def test_random_fields_match_reference_exactly(self):
        rng = np.random.default_rng(7)
        for trial in range(120):
            n, m = rng.integers(2, 24, 2)
            field = rng.normal(size=(n, m))
            if trial % 3 == 0:
                # Coarse quantization forces plateaus, equal corners and
                # saddle cells — the branches most likely to drift.
                field = np.round(field, 1)
            level = float(rng.normal())
            assert marching_squares(field, level) == \
                reference_marching_squares(field, level)

    def test_saddle_heavy_checkerboard_matches(self):
        field = np.indices((8, 8)).sum(axis=0) % 2 * 1.0
        for level in (0.25, 0.5, 0.75):
            assert marching_squares(field, level) == \
                reference_marching_squares(field, level)


class TestRenderBitIdentity:
    @pytest.mark.parametrize("shape,height,width", [
        ((128, 128), 256, 256),   # integer upscale (block-duplication path)
        ((100, 60), 256, 256),    # non-integer upscale
        ((512, 512), 256, 256),   # downsample
        ((300, 40), 120, 250),    # mixed: down rows, up cols
    ])
    def test_shapes_match_reference_exactly(self, shape, height, width):
        rng = np.random.default_rng(11)
        field = rng.normal(size=shape) * 40.0
        for cmap in ("heat", "viridis-like"):
            got = render_field(field, cmap, height, width).image.pixels
            ref = reference_render(field, cmap, height, width)
            assert np.array_equal(got, ref)

    def test_explicit_bounds_and_constant_fields(self):
        rng = np.random.default_rng(13)
        field = rng.normal(size=(64, 64))
        got = render_field(field, "gray", 256, 256, vmin=-1.0, vmax=1.0)
        ref = reference_render(field, "gray", 256, 256, vmin=-1.0, vmax=1.0)
        assert np.array_equal(got.image.pixels, ref)
        flat = np.full((64, 64), 3.25)
        got = render_field(flat, "heat", 128, 128)
        ref = reference_render(flat, "heat", 128, 128)
        assert np.array_equal(got.image.pixels, ref)

    def test_contour_overlay_unchanged(self):
        x, y = np.meshgrid(np.linspace(-1, 1, 64), np.linspace(-1, 1, 64),
                           indexing="ij")
        field = np.sqrt(x ** 2 + y ** 2)
        frame = render_with_contours(field, levels=(0.3, 0.6), height=128,
                                     width=128)
        ref = reference_render(field, "heat", 128, 128)
        # Off-contour pixels are the fused base render; contour pixels the
        # burn-in color.
        diff = frame.image.pixels != ref
        changed = np.nonzero(diff.any(axis=2))
        assert frame.contour_segments > 0
        assert (frame.image.pixels[changed] == (255, 255, 255)).all()
        # Segment geometry itself is pinned by TestMarchingSquaresBitIdentity.


class TestFtcsBitIdentity:
    def test_fused_step_matches_unfused_sequence(self):
        rng = np.random.default_rng(17)
        grid = Grid2D(48, 40)
        grid.data[:] = rng.normal(size=(48, 40))
        fused = HeatSolver(grid, alpha=1e-4, bc=BoundaryCondition.NEUMANN,
                           sub_steps=3)

        ref_grid = Grid2D(48, 40)
        ref_grid.data[:] = grid.data
        ref = HeatSolver(ref_grid, alpha=1e-4, bc=BoundaryCondition.NEUMANN,
                         sub_steps=3)
        # Drive the reference with the original unfused update sequence.
        lap_out = np.empty((46, 38))
        scratch = np.empty_like(lap_out)
        for _ in range(ref.sub_steps * 5):
            u = ref.grid.data
            lap = laplacian_5pt(u, ref.grid.dx, ref.grid.dy, out=lap_out,
                                scratch=scratch)
            lap *= ref.alpha * ref.dt
            u[1:-1, 1:-1] += lap
            ref.apply_boundary()
        fused.step(5)
        assert np.array_equal(fused.grid.data, ref.grid.data)
