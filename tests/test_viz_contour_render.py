"""Marching squares and field rendering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RenderError
from repro.viz import marching_squares, render_field, render_with_contours, resample_nearest
from repro.viz.contour import contour_length
from repro.viz.render import normalize


def radial_field(n=40):
    x, y = np.meshgrid(np.linspace(-1, 1, n), np.linspace(-1, 1, n), indexing="ij")
    return np.sqrt(x ** 2 + y ** 2)


class TestMarchingSquares:
    def test_empty_when_level_outside_range(self):
        assert marching_squares(radial_field(), 5.0) == []
        assert marching_squares(radial_field(), -1.0) == []

    def test_circle_contour_has_right_length(self):
        """The r=0.5 isoline of a radial field is a circle of known length."""
        n = 81
        field = radial_field(n)
        segments = marching_squares(field, 0.5)
        # Field spacing: 2/(n-1) units per cell; circumference pi in field
        # units = pi * (n-1)/2 in index units.
        expected = np.pi * (n - 1) / 2
        assert contour_length(segments) == pytest.approx(expected, rel=0.02)

    def test_segments_lie_on_level(self):
        field = radial_field(41)
        for (r0, c0), (r1, c1) in marching_squares(field, 0.5):
            # Sample the field bilinearly at segment endpoints.
            for r, c in ((r0, c0), (r1, c1)):
                ri, ci = int(r), int(c)
                fr, fc = r - ri, c - ci
                ri2, ci2 = min(ri + 1, 40), min(ci + 1, 40)
                val = (
                    field[ri, ci] * (1 - fr) * (1 - fc)
                    + field[ri2, ci] * fr * (1 - fc)
                    + field[ri, ci2] * (1 - fr) * fc
                    + field[ri2, ci2] * fr * fc
                )
                assert val == pytest.approx(0.5, abs=0.02)

    def test_saddle_cases_produce_two_segments(self):
        field = np.array([[1.0, 0.0], [0.0, 1.0]])
        segments = marching_squares(field, 0.5)
        assert len(segments) == 2

    def test_rejects_bad_fields(self):
        with pytest.raises(RenderError):
            marching_squares(np.zeros(5), 0.5)
        with pytest.raises(RenderError):
            marching_squares(np.array([[np.nan, 1.0], [0.0, 1.0]]), 0.5)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), level=st.floats(0.1, 0.9))
    def test_closed_on_random_fields(self, seed, level):
        """Every segment endpoint sits on a cell edge (sanity invariant)."""
        field = np.random.default_rng(seed).random((12, 12))
        for (r0, c0), (r1, c1) in marching_squares(field, level):
            for r, c in ((r0, c0), (r1, c1)):
                on_row_edge = abs(r - round(r)) < 1e-9
                on_col_edge = abs(c - round(c)) < 1e-9
                assert on_row_edge or on_col_edge


class TestResample:
    def test_identity(self):
        f = np.arange(16.0).reshape(4, 4)
        np.testing.assert_array_equal(resample_nearest(f, 4, 4), f)

    def test_upsample_shape(self):
        assert resample_nearest(np.zeros((4, 4)), 16, 8).shape == (16, 8)

    def test_downsample_picks_members(self):
        f = np.arange(64.0).reshape(8, 8)
        small = resample_nearest(f, 2, 2)
        assert set(small.ravel()).issubset(set(f.ravel()))

    def test_rejects_bad_target(self):
        with pytest.raises(RenderError):
            resample_nearest(np.zeros((4, 4)), 0, 4)


class TestNormalize:
    def test_full_range(self):
        out = normalize(np.array([[0.0, 50.0], [100.0, 25.0]]))
        assert out.min() == 0.0 and out.max() == 1.0

    def test_constant_field_is_half(self):
        assert (normalize(np.full((3, 3), 7.0)) == 0.5).all()

    def test_explicit_limits_clip(self):
        out = normalize(np.array([[0.0, 200.0]]), vmin=50, vmax=100)
        assert out[0, 0] == 0.0 and out[0, 1] == 1.0


class TestRenderField:
    def test_shape_and_accounting(self):
        result = render_field(radial_field(), height=64, width=48)
        assert result.image.pixels.shape == (64, 48, 3)
        assert result.pixels_shaded == 64 * 48
        assert result.nbytes == 64 * 48 * 3

    def test_hot_pixels_brighter(self):
        field = radial_field()
        result = render_field(field, "gray", height=40, width=40)
        center = result.image.pixels[20, 20].astype(int).sum()
        corner = result.image.pixels[0, 0].astype(int).sum()
        assert corner > center  # radial field: corners hottest

    def test_contour_overlay_marks_pixels(self):
        result = render_with_contours(
            radial_field(), levels=(0.5,), colormap="gray",
            line_color=(255, 0, 0),
        )
        reds = (
            (result.image.pixels[..., 0] == 255)
            & (result.image.pixels[..., 1] == 0)
        ).sum()
        assert reds > 20
        assert result.contour_segments > 20

    def test_contours_require_levels(self):
        with pytest.raises(RenderError):
            render_with_contours(radial_field(), levels=())

    def test_deterministic(self):
        a = render_field(radial_field()).image.pixels
        b = render_field(radial_field()).image.pixels
        np.testing.assert_array_equal(a, b)
