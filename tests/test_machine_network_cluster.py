"""Network link / NIC models and the multi-node cluster extension."""

import pytest

from repro.errors import ConfigError, MachineError
from repro.machine import Cluster, LinkModel, NicModel
from repro.machine.specs import NetworkSpec
from repro.trace import Activity
from repro.units import MiB


@pytest.fixture
def link() -> LinkModel:
    return LinkModel(NetworkSpec())


class TestLink:
    def test_zero_bytes_is_free(self, link):
        assert link.transfer_time(0) == 0.0

    def test_alpha_beta_model(self, link):
        t = link.transfer_time(4 * 10 ** 9)
        assert t == pytest.approx(link.spec.latency_s + 1.0)

    def test_small_messages_latency_bound(self, link):
        assert link.effective_bandwidth(64) < link.spec.link_bw_bytes_per_s / 10

    def test_large_messages_reach_bandwidth(self, link):
        eff = link.effective_bandwidth(1 * 10 ** 9)
        assert eff == pytest.approx(link.spec.link_bw_bytes_per_s, rel=0.01)

    def test_rejects_negative(self, link):
        with pytest.raises(MachineError):
            link.transfer_time(-1)


class TestNic:
    def test_idle_power(self):
        assert NicModel(NetworkSpec()).power(0) == pytest.approx(2.0)

    def test_traffic_power_linear(self):
        nic = NicModel(NetworkSpec())
        assert nic.dynamic_power(1e9) == pytest.approx(0.3)

    def test_overload_rejected(self):
        with pytest.raises(MachineError):
            NicModel(NetworkSpec()).power(1e12)


class TestCluster:
    def test_needs_positive_nodes(self):
        with pytest.raises(ConfigError):
            Cluster(0)

    def test_idle_power_scales_with_nodes(self):
        assert Cluster(4).idle_power().total == pytest.approx(
            4 * Cluster(1).idle_power().total
        )

    def test_halo_exchange_pairwise_phases(self):
        c = Cluster(4)
        one_phase = c.link.transfer_time(2 * MiB)
        assert c.halo_exchange_time(1 * MiB, neighbors=4) == pytest.approx(2 * one_phase)
        assert c.halo_exchange_time(1 * MiB, neighbors=2) == pytest.approx(one_phase)

    def test_gather_bottlenecked_by_staging_nic(self):
        c = Cluster(9)
        t = c.gather_time(100 * MiB)
        expected = c.link.spec.latency_s + 8 * 100 * MiB / c.link.spec.link_bw_bytes_per_s
        assert t == pytest.approx(expected)

    def test_gather_no_senders(self):
        assert Cluster(1).gather_time(1 * MiB) == 0.0

    def test_power_requires_activity_per_node(self):
        c = Cluster(2)
        with pytest.raises(MachineError):
            c.power([Activity()])

    def test_power_aggregates(self):
        c = Cluster(2)
        p = c.power([Activity(cpu_util=1.0), Activity()])
        assert p.per_node[0] > p.per_node[1]
        assert p.total == pytest.approx(sum(p.per_node))
