"""Compression codecs and their writer/reader integration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.machine import HddModel
from repro.machine.specs import DiskSpec
from repro.sim import Grid2D
from repro.storage import DataReader, DataWriter
from repro.storage.compression import (
    CODECS,
    ChainCodec,
    Float32Codec,
    IdentityCodec,
    ZlibCodec,
    codec_from_id,
    codec_id,
    compression_ratio,
    get_codec,
)
from repro.system import BlockQueue, FileSystem, PageCache


class TestZlib:
    def test_roundtrip(self):
        codec = ZlibCodec()
        raw = b"hello " * 1000
        assert codec.decode(codec.encode(raw)) == raw

    def test_compresses_redundant_data(self):
        assert compression_ratio(b"\x00" * 65536, ZlibCodec()) > 50

    def test_level_validated(self):
        with pytest.raises(StorageError):
            ZlibCodec(level=0)

    def test_garbage_decode_rejected(self):
        with pytest.raises(StorageError):
            ZlibCodec().decode(b"not zlib data")

    @settings(max_examples=40)
    @given(raw=st.binary(min_size=0, max_size=4096))
    def test_lossless_on_any_bytes(self, raw):
        codec = ZlibCodec()
        assert codec.decode(codec.encode(raw)) == raw


class TestFloat32:
    def test_halves_payload(self):
        raw = np.arange(1000, dtype="<f8").tobytes()
        assert len(Float32Codec().encode(raw)) == len(raw) // 2

    def test_small_relative_error(self):
        data = np.linspace(1.0, 1e6, 5000)
        raw = data.astype("<f8").tobytes()
        codec = Float32Codec()
        back = np.frombuffer(codec.decode(codec.encode(raw)), dtype="<f8")
        assert np.max(np.abs(back - data) / data) < 1e-6
        assert Float32Codec.max_relative_error(raw) < 1e-6

    def test_not_lossless_flag(self):
        assert not Float32Codec().lossless
        assert ZlibCodec().lossless

    def test_misaligned_payload_rejected(self):
        with pytest.raises(StorageError):
            Float32Codec().encode(b"12345")
        with pytest.raises(StorageError):
            Float32Codec().decode(b"123")


class TestChain:
    def test_roundtrip_f32_zlib(self):
        codec = ChainCodec(Float32Codec(), ZlibCodec())
        data = np.random.default_rng(0).random(4096)
        raw = data.astype("<f8").tobytes()
        back = np.frombuffer(codec.decode(codec.encode(raw)), dtype="<f8")
        np.testing.assert_allclose(back, data, rtol=1e-6)

    def test_name_and_losslessness(self):
        codec = ChainCodec(Float32Codec(), ZlibCodec())
        assert codec.name == "f32+zlib6"
        assert not codec.lossless

    def test_empty_chain_rejected(self):
        with pytest.raises(StorageError):
            ChainCodec()


class TestRegistry:
    def test_ids_roundtrip(self):
        for name in ("identity", "zlib", "f32", "f32+zlib"):
            codec = CODECS[name]
            assert codec_from_id(codec_id(codec)).name == codec.name or True
            # id resolves back to a codec of the same registry slot
            assert codec_from_id(codec_id(codec)) is CODECS[name]

    def test_unknown_rejected(self):
        with pytest.raises(StorageError):
            get_codec("lz4")
        with pytest.raises(StorageError):
            codec_from_id(99)

    def test_identity_passthrough(self):
        assert IdentityCodec().encode(b"x") == b"x"

    def test_ratio_requires_payload(self):
        with pytest.raises(StorageError):
            compression_ratio(b"", ZlibCodec())


class TestWriterIntegration:
    @pytest.fixture
    def fs(self):
        queue = BlockQueue(HddModel(DiskSpec()))
        return FileSystem(queue, cache=PageCache(queue))

    def smooth_grid(self):
        g = Grid2D.paper_grid()
        x = np.linspace(0, 1, 128)
        g.data[:] = np.outer(np.sin(x), np.cos(x)) * 20 + 20
        return g

    def test_zlib_roundtrip_through_fs(self, fs):
        grid = self.smooth_grid()
        DataWriter(fs, codec=get_codec("zlib")).write_timestep(grid, 0)
        back, _ = DataReader(fs).read_grid(0)
        np.testing.assert_array_equal(back.data, grid.data)

    def test_zlib_shrinks_file(self, fs):
        grid = self.smooth_grid()
        DataWriter(fs, prefix="raw").write_timestep(grid, 0)
        DataWriter(fs, prefix="cmp", codec=get_codec("zlib")).write_timestep(grid, 0)
        assert fs.size("cmp0000.dat") < 0.9 * fs.size("raw0000.dat")

    def test_f32_roundtrip_with_tolerance(self, fs):
        grid = self.smooth_grid()
        DataWriter(fs, codec=get_codec("f32")).write_timestep(grid, 3)
        back, _ = DataReader(fs).read_grid(3)
        np.testing.assert_allclose(back.data, grid.data, rtol=1e-6)
        assert fs.size("ts0003.dat") < 0.6 * grid.nbytes
