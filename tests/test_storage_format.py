"""Chunked container format: round-trips, validation, selective reads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FileFormatError
from repro.storage import decode_container, encode_container
from repro.storage.format import chunk_extent, header_size


class TestRoundTrip:
    def test_basic(self):
        chunks = [b"aaaa", b"bbbbbb", b"c"]
        blob = encode_container(chunks, nx=4, ny=4, timestep=7, physical_time=1.5)
        back = decode_container(blob)
        assert back.chunks == tuple(chunks)
        assert back.nx == 4 and back.ny == 4
        assert back.timestep == 7
        assert back.physical_time == pytest.approx(1.5)
        assert back.payload == b"aaaabbbbbbc"
        assert back.nbytes == 11

    @settings(max_examples=40)
    @given(chunks=st.lists(st.binary(min_size=1, max_size=512), min_size=1, max_size=16))
    def test_any_chunks_roundtrip(self, chunks):
        blob = encode_container(chunks, nx=8, ny=8)
        assert decode_container(blob).chunks == tuple(chunks)


class TestValidation:
    def test_empty_container_rejected(self):
        with pytest.raises(FileFormatError):
            encode_container([], 4, 4)

    def test_empty_chunk_rejected(self):
        with pytest.raises(FileFormatError):
            encode_container([b""], 4, 4)

    def test_bad_dims_rejected(self):
        with pytest.raises(FileFormatError):
            encode_container([b"x"], 0, 4)
        with pytest.raises(FileFormatError):
            encode_container([b"x"], 4, 4, timestep=-1)

    def test_bad_magic_detected(self):
        blob = bytearray(encode_container([b"data"], 4, 4))
        blob[0] = ord("X")
        with pytest.raises(FileFormatError):
            decode_container(bytes(blob))

    def test_corrupt_payload_fails_crc(self):
        blob = bytearray(encode_container([b"hello world!"], 4, 4))
        blob[-3] ^= 0xFF
        with pytest.raises(FileFormatError, match="CRC"):
            decode_container(bytes(blob))

    def test_truncation_detected(self):
        blob = encode_container([b"hello world!"], 4, 4)
        with pytest.raises(FileFormatError):
            decode_container(blob[:10])
        with pytest.raises(FileFormatError):
            decode_container(blob[:-4])


class TestSelectiveAccess:
    def test_chunk_extent_matches_decode(self):
        chunks = [b"0" * 100, b"1" * 200, b"2" * 50]
        blob = encode_container(chunks, 4, 4)
        for i, chunk in enumerate(chunks):
            offset, nbytes = chunk_extent(blob, i)
            assert blob[offset : offset + nbytes] == chunk

    def test_header_size_covers_index(self):
        chunks = [b"ab"] * 5
        blob = encode_container(chunks, 4, 4)
        head = blob[: header_size(5)]
        offset, nbytes = chunk_extent(head, 4)
        assert nbytes == 2

    def test_out_of_range_chunk(self):
        blob = encode_container([b"x"], 4, 4)
        with pytest.raises(FileFormatError):
            chunk_extent(blob, 3)
