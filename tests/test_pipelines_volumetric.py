"""3-D volumetric in-situ pipeline."""

import pytest

from repro.calibration import CASE_STUDIES
from repro.errors import PipelineError
from repro.pipelines import PipelineConfig, PipelineRunner
from repro.pipelines.volumetric import VolumetricInSituPipeline


@pytest.fixture(scope="module")
def runner():
    return PipelineRunner(seed=67, jitter=0)


@pytest.fixture(scope="module")
def cfg():
    return PipelineConfig(case=CASE_STUDIES[3])  # sparse cadence: fast


@pytest.fixture(scope="module")
def run(runner, cfg):
    return runner.run(VolumetricInSituPipeline(cfg, resolution=24,
                                               axes=(0, 2), samples=24))


class TestVolumetricPipeline:
    def test_frames_per_event_per_axis(self, run):
        # 6 I/O events x 2 axes.
        assert run.images_rendered == 12

    def test_no_raw_data_io(self, run):
        assert run.data_bytes_written == 0
        assert "nnwrite" not in run.timeline.stage_totals()

    def test_render_cost_scales_with_volume(self, runner, cfg):
        small = runner.run(
            VolumetricInSituPipeline(cfg, resolution=16, samples=16),
            run_id="vol16")
        big = runner.run(
            VolumetricInSituPipeline(cfg, resolution=32, samples=32),
            run_id="vol32")
        vis_small = small.timeline.stage_totals()["visualization"].total_time
        vis_big = big.timeline.stage_totals()["visualization"].total_time
        # 32^3 vs 16^3 shaded samples: 8x the render work.
        assert vis_big == pytest.approx(8 * vis_small, rel=1e-6)

    def test_sim_cost_scales_with_cells(self, runner, cfg):
        run16 = runner.run(VolumetricInSituPipeline(cfg, resolution=16),
                           run_id="vs16")
        sim = run16.timeline.stage_totals()["simulation"].total_time
        # 16^3 cells vs the 2-D 128^2 reference: 0.25x per iteration.
        assert sim == pytest.approx(50 * 1.588 * (16 ** 3) / (128 ** 2),
                                    rel=1e-6)

    def test_physics_evolved(self, run):
        lo, hi = run.extra["field_range"]
        assert hi > 25.0  # the hot box heated the volume
        assert lo >= 19.0

    def test_validation(self, cfg):
        with pytest.raises(PipelineError):
            VolumetricInSituPipeline(cfg, axes=())
        with pytest.raises(PipelineError):
            VolumetricInSituPipeline(cfg, axes=(3,))
        with pytest.raises(PipelineError):
            VolumetricInSituPipeline(cfg, resolution=2)

    def test_deterministic(self, cfg):
        a = PipelineRunner(seed=5, jitter=0).run(
            VolumetricInSituPipeline(cfg, resolution=16))
        b = PipelineRunner(seed=5, jitter=0).run(
            VolumetricInSituPipeline(cfg, resolution=16))
        assert a.energy_j == b.energy_j
        assert a.image_bytes == b.image_bytes
