"""Unit constants and formatting helpers."""

import math

import pytest

from repro import units


class TestConstants:
    def test_binary_sizes(self):
        assert units.KiB == 1024
        assert units.MiB == 1024 ** 2
        assert units.GiB == 1024 ** 3
        assert units.TiB == 1024 ** 4

    def test_decimal_sizes(self):
        assert units.GB == 10 ** 9
        assert units.TB == 10 ** 12

    def test_rapl_energy_unit_is_sandy_bridge_quantum(self):
        assert units.RAPL_ENERGY_UNIT_J == pytest.approx(15.2587890625e-6)

    def test_rapl_energy_unit_round_trip(self):
        # The MSR counts in 1/2**16 J quanta; 2**16 ticks are exactly 1 J.
        assert units.RAPL_ENERGY_UNIT_J * 2 ** 16 == 1.0

    def test_frequency_constants(self):
        assert units.GHZ == 1000 * units.MHZ == 1e9


class TestFormatting:
    def test_fmt_bytes(self):
        assert units.fmt_bytes(131072) == "128.0 KiB"
        assert units.fmt_bytes(500) == "500 B"
        assert units.fmt_bytes(4 * units.GiB) == "4.0 GiB"

    def test_fmt_bytes_unit_boundaries(self):
        # Exactly at a unit boundary the larger suffix wins; one byte
        # below it stays in the smaller unit.
        assert units.fmt_bytes(units.KiB) == "1.0 KiB"
        assert units.fmt_bytes(units.KiB - 1) == "1023 B"
        assert units.fmt_bytes(units.MiB) == "1.0 MiB"
        assert units.fmt_bytes(units.MiB - 1) == "1024.0 KiB"
        assert units.fmt_bytes(units.GiB) == "1.0 GiB"
        assert units.fmt_bytes(units.GiB - 1) == "1024.0 MiB"
        assert units.fmt_bytes(units.TiB) == "1.0 TiB"

    def test_fmt_bytes_zero_and_negative(self):
        assert units.fmt_bytes(0) == "0 B"
        assert units.fmt_bytes(-2 * units.MiB) == "-2.0 MiB"
        assert units.fmt_bytes(-500) == "-500 B"

    def test_fmt_seconds_ranges(self):
        assert units.fmt_seconds(5e-7) == "0.5 us"
        assert units.fmt_seconds(0.0012) == "1.20 ms"
        assert units.fmt_seconds(35.9) == "35.90 s"
        assert units.fmt_seconds(95) == "1m35.0s"

    def test_fmt_seconds_negative(self):
        assert units.fmt_seconds(-2).startswith("-")

    def test_fmt_seconds_boundaries(self):
        assert units.fmt_seconds(0.0) == "0.0 us"
        assert units.fmt_seconds(1e-3) == "1.00 ms"
        assert units.fmt_seconds(1.0) == "1.00 s"
        assert units.fmt_seconds(units.MINUTE) == "1m0.0s"
        assert units.fmt_seconds(units.HOUR) == "60m0.0s"

    def test_fmt_power(self):
        assert units.fmt_power(143.21) == "143.2 W"
        assert units.fmt_power(20e6) == "20.00 MW"  # DOE exascale budget

    def test_fmt_energy(self):
        assert units.fmt_energy(32650) == "32.65 kJ"
        assert units.fmt_energy(238600) == "238.60 kJ"
        assert units.fmt_energy(5.2) == "5.2 J"


class TestConversions:
    def test_sata_rate(self):
        # Table I: 6.0 Gbps SATA = 750 MB/s
        assert units.gbps_to_bytes_per_s(6.0) == pytest.approx(750e6)

    def test_rev_time_7200rpm(self):
        assert units.rpm_to_rev_time(7200) == pytest.approx(1 / 120)

    def test_rev_time_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.rpm_to_rev_time(0)
        with pytest.raises(ValueError):
            units.rpm_to_rev_time(-7200)
