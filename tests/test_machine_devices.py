"""SSD / NVRAM / RAID device models (future-work extensions)."""

import pytest

from repro.errors import DeviceError
from repro.machine import (
    DiskRequest,
    HddModel,
    NvramModel,
    OpKind,
    RaidArray,
    RaidLevel,
    SsdModel,
)
from repro.machine.specs import DiskSpec
from repro.units import GiB, KiB, MiB


class TestSsd:
    def test_random_equals_sequential_nearly(self):
        """The headline flash property: no mechanical access gap."""
        ssd = SsdModel()
        seq = ssd.service(DiskRequest(OpKind.READ, 0, 64 * KiB))
        rnd = ssd.service(DiskRequest(OpKind.READ, 123 * GiB, 64 * KiB))
        assert rnd.service_time == pytest.approx(seq.service_time)

    def test_latency_plus_bandwidth(self):
        ssd = SsdModel()
        r = ssd.service(DiskRequest(OpKind.READ, 0, 52 * MiB))
        expected = ssd.spec.read_latency_s + 52 * MiB / ssd.spec.seq_read_bw
        assert r.service_time == pytest.approx(expected)

    def test_no_mechanics_reported(self):
        r = SsdModel().service(DiskRequest(OpKind.WRITE, 0, 1 * MiB))
        assert r.arm_time == 0 and r.rotation_time == 0

    def test_bounds_checked(self):
        ssd = SsdModel()
        with pytest.raises(DeviceError):
            ssd.service(DiskRequest(OpKind.READ, ssd.spec.capacity_bytes, 512))

    def test_writes_cost_more_energy_per_byte(self):
        s = SsdModel().spec
        assert s.write_energy_per_byte_j > s.read_energy_per_byte_j


class TestNvram:
    def test_much_faster_than_ssd(self):
        nv, ssd = NvramModel(), SsdModel()
        req = DiskRequest(OpKind.READ, 0, 4 * KiB)
        assert nv.service(req).service_time < ssd.service(req).service_time / 10

    def test_asymmetric_write(self):
        nv = NvramModel()
        r = nv.service(DiskRequest(OpKind.READ, 0, 16 * MiB))
        w = nv.service(DiskRequest(OpKind.WRITE, 0, 16 * MiB))
        assert w.service_time > r.service_time


def _hdds(n):
    return [HddModel(DiskSpec()) for _ in range(n)]


class TestRaid0:
    def test_capacity_sums(self):
        array = RaidArray(_hdds(4), RaidLevel.RAID0)
        assert array.capacity_bytes == 4 * 500 * 10 ** 9

    def test_large_stream_parallelizes(self):
        single = HddModel(DiskSpec())
        array = RaidArray(_hdds(4), RaidLevel.RAID0)
        n = 1 * GiB
        assert array.stream_time(n, OpKind.READ) < single.stream_time(n, OpKind.READ) / 2

    def test_slices_cover_extent(self):
        array = RaidArray(_hdds(3), RaidLevel.RAID0, stripe_bytes=64 * KiB)
        slices = array._slices(10 * KiB, 300 * KiB)
        assert sum(s.nbytes for s in slices) == 300 * KiB
        assert {s.member for s in slices} == {0, 1, 2}

    def test_bounds_checked(self):
        array = RaidArray(_hdds(2), RaidLevel.RAID0)
        with pytest.raises(DeviceError):
            array.service(DiskRequest(OpKind.READ, array.capacity_bytes, 512))


class TestRaid1:
    def test_capacity_is_one_member(self):
        array = RaidArray(_hdds(2), RaidLevel.RAID1)
        assert array.capacity_bytes == 500 * 10 ** 9

    def test_needs_two_members(self):
        with pytest.raises(DeviceError):
            RaidArray(_hdds(1), RaidLevel.RAID1)

    def test_reads_round_robin(self):
        array = RaidArray(_hdds(2), RaidLevel.RAID1)
        array.service(DiskRequest(OpKind.READ, 0, 64 * KiB))
        assert array._rr == 1

    def test_write_gated_by_slowest_member(self):
        array = RaidArray(_hdds(2), RaidLevel.RAID1)
        single = HddModel(DiskSpec())
        req = DiskRequest(OpKind.WRITE, 1 * GiB, 1 * MiB)
        assert array.service(req).service_time >= single.service(req).service_time - 1e-9


class TestRaid5:
    def test_needs_three_members(self):
        with pytest.raises(DeviceError):
            RaidArray(_hdds(2), RaidLevel.RAID5)

    def test_capacity_loses_one_member(self):
        array = RaidArray(_hdds(4), RaidLevel.RAID5)
        assert array.capacity_bytes == 3 * 500 * 10 ** 9

    def test_small_write_penalty(self):
        """RAID 5 small writes pay read-modify-write: slower than RAID 0."""
        r0 = RaidArray(_hdds(3), RaidLevel.RAID0)
        r5 = RaidArray(_hdds(3), RaidLevel.RAID5)
        req = DiskRequest(OpKind.WRITE, 1 * GiB, 16 * KiB)
        assert r5.service(req).service_time > r0.service(req).service_time

    def test_reads_behave_like_striped(self):
        r5 = RaidArray(_hdds(3), RaidLevel.RAID5)
        r = r5.service(DiskRequest(OpKind.READ, 0, 64 * KiB))
        assert r.service_time > 0


class TestRaidCommon:
    def test_idle_power_sums_members(self):
        array = RaidArray(_hdds(4), RaidLevel.RAID0)
        assert array.idle_w == pytest.approx(4 * 5.5)

    def test_flush_cache_aggregates(self):
        array = RaidArray(_hdds(2), RaidLevel.RAID0)
        array.submit_write(DiskRequest(OpKind.WRITE, 0, 8 * MiB))
        assert array.dirty_bytes == 8 * MiB
        flushed = array.flush_cache()
        assert array.dirty_bytes == 0
        assert flushed.nbytes == 8 * MiB

    def test_empty_members_rejected(self):
        with pytest.raises(DeviceError):
            RaidArray([], RaidLevel.RAID0)

    def test_bad_stripe_rejected(self):
        with pytest.raises(DeviceError):
            RaidArray(_hdds(2), RaidLevel.RAID0, stripe_bytes=0)
