"""Mechanical disk model: service times, cache behaviour, fio anchors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeviceError
from repro.machine import DiskRequest, HddModel, OpKind
from repro.machine.specs import DiskSpec
from repro.units import GiB, KiB, MiB


@pytest.fixture
def disk() -> HddModel:
    return HddModel(DiskSpec())


class TestRequests:
    def test_rejects_negative_offset(self):
        with pytest.raises(DeviceError):
            DiskRequest(OpKind.READ, -1, 512)

    def test_rejects_zero_size(self):
        with pytest.raises(DeviceError):
            DiskRequest(OpKind.READ, 0, 0)

    def test_rejects_extent_past_device(self, disk):
        with pytest.raises(DeviceError):
            disk.service(DiskRequest(OpKind.READ, disk.spec.capacity_bytes - 10, 100))


class TestMechanics:
    def test_seek_time_zero_distance(self, disk):
        assert disk.seek_time(0) == 0.0

    def test_seek_time_monotone_in_distance(self, disk):
        d1 = disk.seek_time(1 * MiB)
        d2 = disk.seek_time(100 * GiB)
        d3 = disk.seek_time(400 * 10 ** 9)
        assert 0 < d1 < d2 < d3

    def test_average_seek_near_vendor_spec(self, disk):
        # Seek over one third of the stroke ~ vendor "average seek" ~ 8.5 ms.
        third = disk.spec.capacity_bytes // 3
        assert disk.seek_time(third) == pytest.approx(8.5e-3, rel=0.05)

    def test_rotational_latency_7200rpm(self, disk):
        assert disk.avg_rotational_latency == pytest.approx(1 / 240)

    def test_contiguous_requests_skip_mechanics(self, disk):
        first = disk.service(DiskRequest(OpKind.READ, 0, 128 * KiB))
        second = disk.service(DiskRequest(OpKind.READ, 128 * KiB, 128 * KiB))
        assert first.arm_time > 0 or first.rotation_time > 0
        assert second.arm_time == 0
        assert second.rotation_time == 0
        assert second.service_time == pytest.approx(second.transfer_time)

    def test_direction_change_costs_mechanics(self, disk):
        disk.service(DiskRequest(OpKind.READ, 0, 128 * KiB))
        w = disk.service(DiskRequest(OpKind.WRITE, 128 * KiB, 128 * KiB))
        assert w.service_time > w.transfer_time  # op switch repositions


class TestFioAnchors:
    """The disk model must land on Table III's timing."""

    def test_sequential_read_4gib(self, disk):
        t = disk.stream_time(4 * GiB, OpKind.READ)
        assert t == pytest.approx(35.9, rel=0.01)

    def test_sequential_write_media_rate(self, disk):
        assert 4 * GiB / disk.spec.seq_write_bw == pytest.approx(27.0, rel=0.01)

    def test_random_read_16kib_blocks(self, disk):
        """Random 16 KiB reads over a 4 GiB span: ~8.5 ms/op => ~2230 s."""
        rng = np.random.default_rng(42)
        n_probe = 2000
        offsets = rng.integers(0, 4 * GiB - 16 * KiB, n_probe)
        total = sum(
            disk.service(DiskRequest(OpKind.READ, int(o), 16 * KiB)).service_time
            for o in offsets
        )
        per_op = total / n_probe
        n_ops = 4 * GiB // (16 * KiB)
        assert per_op * n_ops == pytest.approx(2230, rel=0.05)

    def test_random_write_absorbed_by_cache(self, disk):
        """Write-back caching makes 4 GiB of random writes cost ~31 s."""
        rng = np.random.default_rng(7)
        block = 1 * MiB  # coarse blocks keep the test fast; same total bytes
        n_ops = 4 * GiB // block
        offsets = rng.permutation(n_ops) * block
        total = 0.0
        for o in offsets:
            total += disk.submit_write(DiskRequest(OpKind.WRITE, int(o), block)).service_time
        total += disk.flush_cache().service_time
        assert total == pytest.approx(31.0, rel=0.10)


class TestWriteCache:
    def test_cached_write_is_interface_speed(self, disk):
        r = disk.submit_write(DiskRequest(OpKind.WRITE, 0, 1 * MiB))
        assert r.cached
        assert r.service_time == pytest.approx(1 * MiB / 750e6)
        assert disk.dirty_bytes == 1 * MiB

    def test_flush_clears_dirty(self, disk):
        disk.submit_write(DiskRequest(OpKind.WRITE, 0, 1 * MiB))
        flushed = disk.flush_cache()
        assert flushed.nbytes == 1 * MiB
        assert disk.dirty_bytes == 0

    def test_flush_empty_cache_is_free(self, disk):
        assert disk.flush_cache().service_time == 0.0

    def test_single_extent_flush_has_no_penalty(self, disk):
        accept = disk.submit_write(DiskRequest(OpKind.WRITE, 0, 8 * MiB)).service_time
        flushed = disk.flush_cache()
        # Drain overlaps the accept already paid for over the interface.
        assert flushed.service_time == pytest.approx(
            8 * MiB / disk.spec.seq_write_bw - accept
        )
        assert flushed.arm_time == 0.0

    def test_scattered_extents_flush_pays_penalty(self, disk):
        accepted = 0.0
        for i in range(8):
            accepted += disk.submit_write(
                DiskRequest(OpKind.WRITE, i * 100 * MiB, 1 * MiB)
            ).service_time
        flushed = disk.flush_cache()
        stream = 8 * MiB / disk.spec.seq_write_bw
        assert flushed.service_time == pytest.approx(
            stream * disk.spec.random_write_penalty - accepted
        )
        assert flushed.arm_time > 0

    def test_cache_overflow_forces_flush(self, disk):
        cache = disk.spec.cache_bytes
        disk.submit_write(DiskRequest(OpKind.WRITE, 0, cache))
        r = disk.submit_write(DiskRequest(OpKind.WRITE, 200 * MiB, 1 * MiB))
        assert r.service_time > 1 * MiB / 750e6  # paid for the forced flush
        assert disk.dirty_bytes == 1 * MiB

    def test_write_cache_disabled_goes_to_platter(self):
        disk = HddModel(DiskSpec(write_cache=False))
        r = disk.submit_write(DiskRequest(OpKind.WRITE, 0, 1 * MiB))
        assert not r.cached
        assert r.service_time > 1 * MiB / 750e6

    def test_submit_write_rejects_reads(self, disk):
        with pytest.raises(DeviceError):
            disk.submit_write(DiskRequest(OpKind.READ, 0, 512))


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        offsets=st.lists(st.integers(0, 10 * GiB), min_size=1, max_size=50),
        size=st.sampled_from([4 * KiB, 64 * KiB, 1 * MiB]),
    )
    def test_service_times_always_positive_and_decomposed(self, offsets, size):
        disk = HddModel(DiskSpec())
        for o in offsets:
            r = disk.service(DiskRequest(OpKind.READ, o, size))
            assert r.service_time > 0
            assert r.arm_time >= 0 and r.rotation_time >= 0
            assert r.transfer_time > 0
            # settle overhead means service >= parts
            assert r.service_time >= r.arm_time + r.rotation_time + r.transfer_time - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(sizes=st.lists(st.integers(1, 4 * MiB), min_size=1, max_size=30))
    def test_cache_conserves_bytes(self, sizes):
        disk = HddModel(DiskSpec())
        flushed_total = 0
        pos = 0
        for s in sizes:
            disk.submit_write(DiskRequest(OpKind.WRITE, pos, s))
            pos += s + 10 * MiB
        flushed_total += disk.flush_cache().nbytes
        assert flushed_total + disk.dirty_bytes == sum(sizes)

    def test_reset_restores_initial_state(self, disk):
        disk.submit_write(DiskRequest(OpKind.WRITE, 0, 1 * MiB))
        disk.reset()
        assert disk.dirty_bytes == 0
        r1 = HddModel(DiskSpec()).service(DiskRequest(OpKind.READ, 1 * GiB, 4 * KiB))
        r2 = disk.service(DiskRequest(OpKind.READ, 1 * GiB, 4 * KiB))
        assert r1.service_time == pytest.approx(r2.service_time)
