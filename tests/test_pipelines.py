"""Pipeline behaviour: structure, data integrity, calibration anchors."""

import numpy as np
import pytest

from repro.calibration import CASE_STUDIES
from repro.errors import PipelineError
from repro.machine import Node
from repro.pipelines import (
    InSituPipeline,
    InTransitPipeline,
    PipelineConfig,
    PipelineRunner,
    PostProcessingPipeline,
)


@pytest.fixture(scope="module")
def runner() -> PipelineRunner:
    return PipelineRunner(seed=11)


@pytest.fixture(scope="module")
def case1_runs(runner):
    config = PipelineConfig(case=CASE_STUDIES[1])
    return (
        runner.run(PostProcessingPipeline(config)),
        runner.run(InSituPipeline(config)),
    )


class TestConfig:
    def test_bad_format_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(case=CASE_STUDIES[1], image_format="jpeg")

    def test_bad_resolution_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(case=CASE_STUDIES[1], render_height=0)

    def test_case3_io_iterations(self):
        assert CASE_STUDIES[3].io_iterations() == [8, 16, 24, 32, 40, 48]

    def test_case1_io_every_iteration(self):
        assert len(CASE_STUDIES[1].io_iterations()) == 50


class TestPostProcessing:
    def test_two_phases(self, case1_runs):
        post, _ = case1_runs
        bounds = post.timeline.phase_bounds()
        assert set(bounds) == {"simulate+write", "read+visualize"}
        p1, p2 = bounds["simulate+write"], bounds["read+visualize"]
        assert p1[1] == pytest.approx(p2[0])

    def test_stage_structure(self, case1_runs):
        post, _ = case1_runs
        totals = post.timeline.stage_totals()
        assert totals["simulation"].span_count == 50
        assert totals["nnwrite"].span_count == 50
        assert totals["nnread"].span_count == 50
        assert totals["visualization"].span_count == 50

    def test_fig4_shares(self, case1_runs):
        post, _ = case1_runs
        fracs = post.timeline.stage_fractions()
        assert fracs["simulation"] == pytest.approx(0.33, abs=0.005)
        assert fracs["nnwrite"] == pytest.approx(0.30, abs=0.005)
        assert fracs["nnread"] == pytest.approx(0.27, abs=0.005)
        assert fracs["visualization"] == pytest.approx(0.10, abs=0.005)

    def test_data_round_trips(self, case1_runs):
        post, _ = case1_runs
        assert post.verification.ok
        assert post.verification.grids_checked == 50

    def test_bytes_written_and_read_match(self, case1_runs):
        post, _ = case1_runs
        assert post.data_bytes_written == post.data_bytes_read
        assert post.data_bytes_written > 50 * 128 * 1024

    def test_images_rendered(self, case1_runs):
        post, _ = case1_runs
        assert post.images_rendered == 50
        assert post.image_bytes > 0


class TestInSitu:
    def test_no_simulation_data_io(self, case1_runs):
        _, insitu = case1_runs
        assert insitu.data_bytes_written == 0
        assert insitu.data_bytes_read == 0

    def test_single_phase(self, case1_runs):
        _, insitu = case1_runs
        assert set(insitu.timeline.phase_bounds()) == {"simulate+visualize"}

    def test_no_io_stages(self, case1_runs):
        _, insitu = case1_runs
        totals = insitu.timeline.stage_totals()
        assert "nnread" not in totals
        assert "nnwrite" not in totals

    def test_renders_every_io_iteration(self, case1_runs):
        _, insitu = case1_runs
        assert insitu.images_rendered == 50

    def test_same_science_as_post(self, case1_runs):
        post, insitu = case1_runs
        assert insitu.extra["final_mean_temperature"] == pytest.approx(
            post.extra["final_mean_temperature"]
        )


class TestHeadlineComparison:
    """The paper's core results, on case study 1."""

    def test_insitu_faster(self, case1_runs):
        post, insitu = case1_runs
        assert insitu.execution_time_s < post.execution_time_s
        assert post.execution_time_s == pytest.approx(240.6, rel=0.01)
        assert insitu.execution_time_s == pytest.approx(127.5, rel=0.01)

    def test_energy_savings_43_pct(self, case1_runs):
        post, insitu = case1_runs
        savings = 1 - insitu.energy_j / post.energy_j
        assert savings == pytest.approx(0.43, abs=0.02)

    def test_avg_power_8_pct_higher(self, case1_runs):
        post, insitu = case1_runs
        increase = insitu.average_power_w / post.average_power_w - 1
        assert increase == pytest.approx(0.08, abs=0.015)

    def test_peak_power_similar(self, case1_runs):
        post, insitu = case1_runs
        assert insitu.peak_power_w == pytest.approx(post.peak_power_w, rel=0.03)

    def test_efficiency_improvement(self, case1_runs):
        post, insitu = case1_runs
        improvement = insitu.energy_efficiency / post.energy_efficiency - 1
        assert improvement == pytest.approx(0.75, abs=0.06)  # paper: ~72%

    def test_unmetered_run_refuses_metrics(self):
        config = PipelineConfig(case=CASE_STUDIES[3])
        result = InSituPipeline(config).run(Node())
        with pytest.raises(PipelineError):
            _ = result.energy_j


class TestInTransit:
    def test_runs_and_meters_both_nodes(self, runner):
        config = PipelineConfig(case=CASE_STUDIES[2])
        result = runner.run(InTransitPipeline(config))
        assert result.images_rendered == 25
        assert "staging_energy_j" in result.extra
        assert result.extra["total_energy_j"] > result.energy_j

    def test_compute_node_cheaper_than_post(self, runner):
        config = PipelineConfig(case=CASE_STUDIES[1])
        post = runner.run(PostProcessingPipeline(config))
        transit = runner.run(InTransitPipeline(config))
        assert transit.energy_j < post.energy_j


class TestDeterminism:
    def test_same_seed_same_energy(self):
        a = PipelineRunner(seed=5).run(
            InSituPipeline(PipelineConfig(case=CASE_STUDIES[3])))
        b = PipelineRunner(seed=5).run(
            InSituPipeline(PipelineConfig(case=CASE_STUDIES[3])))
        assert a.energy_j == b.energy_j
        np.testing.assert_array_equal(a.profile["system"], b.profile["system"])

    def test_different_seed_different_noise(self):
        a = PipelineRunner(seed=5).run(
            InSituPipeline(PipelineConfig(case=CASE_STUDIES[3])))
        b = PipelineRunner(seed=6).run(
            InSituPipeline(PipelineConfig(case=CASE_STUDIES[3])))
        assert not np.array_equal(a.profile["system"], b.profile["system"])
        # But the modeled time is seed-independent.
        assert a.execution_time_s == b.execution_time_s
