"""The binary result codec round-trips bit-identically and fails safely.

Three properties are load-bearing:

* **Byte identity** — a decoded result must re-pickle to exactly the
  bytes the original pickles to.  That is stronger than value equality:
  pickle bytes encode the object graph's sharing structure, and the
  engine's determinism checks compare at the byte level.
* **Never crash** — truncated, corrupt, or foreign buffers raise
  :class:`~repro.errors.CodecError` (a ``ReproError``), never an
  uncaught ``struct.error``/``IndexError``, so a pool worker or cache
  reader degrades to recompute.
* **Cache interop** — codec-written cache entries load through the same
  ``_cache_load`` that still accepts legacy pickle entries, and both
  formats answer to the same sha256 cache key.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import CodecError, ReproError
from repro.experiments.codec import (
    decode_result,
    decode_value,
    encode_result,
    encode_value,
    is_codec_frame,
)
from repro.experiments.engine import (
    _cache_load,
    _cache_path,
    codec_result,
    load_result,
    pickle_result,
    store_result,
)
from repro.experiments.figures import ExperimentResult
from repro.machine.disk import DiskResult, OpKind
from repro.power.breakdown import StagePower
from repro.sim.grid import Grid2D
from repro.system.blockdev import IoStats
from repro.viz.image import Image
from repro.viz.render import RenderResult

SEED = 99


def random_iostats(rng) -> IoStats:
    return IoStats(
        busy_time=float(rng.random()), arm_time=float(rng.random()),
        rotation_time=float(rng.random()), transfer_time=float(rng.random()),
        bytes_read=int(rng.integers(0, 1 << 40)),
        bytes_written=int(rng.integers(0, 1 << 40)),
        n_reads=int(rng.integers(0, 1 << 30)),
        n_writes=int(rng.integers(0, 1 << 30)),
        fault_time=float(rng.random()),
        n_faults=int(rng.integers(0, 100)),
        n_retries=int(rng.integers(0, 100)))


def random_stagepower(rng) -> StagePower:
    return StagePower(
        stage=str(rng.choice(["simulation", "nnread", "nnwrite", "viz"])),
        avg_total_w=float(rng.random() * 300),
        avg_dynamic_w=float(rng.random() * 100))


def random_grid(rng) -> Grid2D:
    nx, ny = int(rng.integers(3, 24)), int(rng.integers(3, 24))
    grid = Grid2D(nx, ny, lx=float(rng.random() + 0.5),
                  ly=float(rng.random() + 0.5))
    grid.data[:] = rng.normal(size=(nx, ny))
    return grid


def wrap(data) -> ExperimentResult:
    return ExperimentResult(id="t", title="codec test", data=data, text="x")


class Custom:
    """A type the codec does not know: exercises the pickle fallback."""

    def __init__(self, payload):
        self.payload = payload

    def __eq__(self, other):
        return type(other) is Custom and other.payload == self.payload


class TestRoundTrip:
    def test_random_records_bit_identical(self):
        rng = np.random.default_rng(SEED)
        for _ in range(50):
            result = wrap({
                "io": random_iostats(rng),
                "power": [random_stagepower(rng) for _ in range(3)],
                "grid": random_grid(rng),
            })
            back = decode_result(encode_result(result))
            assert pickle_result(back) == pickle_result(result)

    def test_scalar_and_container_values(self):
        values = [None, True, False, 0, -1, 1 << 40, -(1 << 62), 3.5,
                  float("inf"), -0.0, "", "unicode ✓", b"", b"\x00\xff",
                  (), (1, (2, 3)), [], [1, [2]], {}, {"k": [1.5, None]},
                  1 << 100, OpKind.READ, OpKind.WRITE]
        for v in values:
            assert decode_value(encode_value(v)) == v

    def test_nan_and_signed_zero_bits_survive(self):
        back = decode_value(encode_value([float("nan"), -0.0, 0.0]))
        assert np.isnan(back[0])
        assert np.signbit(back[1]) and not np.signbit(back[2])

    def test_ndarray_dtypes_and_shapes(self):
        rng = np.random.default_rng(SEED)
        for arr in (rng.normal(size=(7, 5)), rng.integers(0, 255, 9,
                                                          dtype=np.uint8),
                    np.zeros((0, 4)), np.float32(rng.normal(size=3)),
                    np.array(3.25)):
            back = decode_value(encode_value(arr))
            assert back.dtype == arr.dtype and back.shape == arr.shape
            assert np.array_equal(back, arr)

    def test_disk_result_and_render_result(self):
        disk = DiskResult(service_time=0.25, arm_time=0.1,
                          rotation_time=0.05, transfer_time=0.1,
                          nbytes=4096, op=OpKind.WRITE, cached=True, n_ops=7)
        pixels = np.arange(2 * 3 * 3, dtype=np.uint8).reshape(2, 3, 3)
        render = RenderResult(image=Image.from_array(pixels),
                              pixels_shaded=6, contour_segments=2)
        result = wrap({"disk": disk, "render": render})
        back = decode_result(encode_result(result))
        assert pickle_result(back) == pickle_result(result)
        assert np.array_equal(back.data["render"].image.pixels, pixels)

    def test_sharing_structure_preserved(self):
        # The same object reachable twice must decode to one object —
        # pickle-byte identity depends on it.
        shared_str = "shared-stage-name!"
        shared_io = IoStats(busy_time=1.0)
        shared_list = [1, 2, 3]
        result = wrap({
            "a": shared_io, "b": shared_io,
            "s1": shared_str, "s2": shared_str,
            "l": (shared_list, shared_list),
        })
        back = decode_result(encode_result(result))
        assert back.data["a"] is back.data["b"]
        assert back.data["s1"] is back.data["s2"]
        assert back.data["l"][0] is back.data["l"][1]
        assert pickle_result(back) == pickle_result(result)

    def test_sharing_across_pickle_fallback_boundary(self):
        # An object first seen inside a fallback frame then referenced
        # from the flat tree (and vice versa) must stay one object.
        inner = "inside-then-outside"
        custom = Custom(inner)
        result = wrap({"fallback": custom, "flat": inner,
                       "again": custom})
        back = decode_result(encode_result(result))
        assert back.data["fallback"] is back.data["again"]
        assert back.data["fallback"].payload is back.data["flat"]
        assert pickle_result(back) == pickle_result(result)

    def test_grid_geometry_survives(self):
        grid = Grid2D(5, 7, lx=2.5, ly=0.5)
        grid.data[:] = np.arange(35, dtype=float).reshape(5, 7)
        back = decode_value(encode_value(grid))
        assert (back.nx, back.ny, back.lx, back.ly) == (5, 7, 2.5, 0.5)
        assert np.array_equal(back.data, grid.data)
        back.data[0, 0] = -1.0  # decoded arrays are independent + writable
        assert grid.data[0, 0] == 0.0


class TestFailureSafety:
    def test_truncated_frames_raise_codec_error(self):
        blob = encode_result(wrap({"io": IoStats(busy_time=1.0),
                                   "grid": Grid2D(4, 4)}))
        for cut in (0, 1, 5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CodecError):
                decode_result(blob[:cut])

    def test_corrupt_bytes_raise_codec_error_never_crash(self):
        blob = bytearray(encode_result(wrap([1.5, "x", IoStats()])))
        rng = np.random.default_rng(SEED)
        for _ in range(200):
            corrupt = bytearray(blob)
            for _ in range(int(rng.integers(1, 4))):
                corrupt[int(rng.integers(0, len(corrupt)))] = int(
                    rng.integers(0, 256))
            try:
                decode_result(bytes(corrupt))
            except ReproError:
                pass  # CodecError (or a ReproError from a constructor)

    def test_foreign_bytes_rejected(self):
        with pytest.raises(CodecError):
            decode_result(b"definitely not a codec frame")
        with pytest.raises(CodecError):
            decode_result(pickle.dumps(wrap(1), protocol=4))
        assert not is_codec_frame(pickle.dumps(wrap(1), protocol=4))
        assert is_codec_frame(encode_result(wrap(1)))

    def test_wrong_version_rejected(self):
        blob = bytearray(encode_result(wrap(1)))
        blob[4] = 0xEE  # version u16 lives right after the 4-byte magic
        with pytest.raises(CodecError):
            decode_result(bytes(blob))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CodecError):
            decode_result(encode_result(wrap(1)) + b"\x00")

    def test_non_result_frame_rejected(self):
        framed = encode_result(wrap(1))
        header, payload = framed[:6], encode_value({"not": "a result"})
        with pytest.raises(CodecError):
            decode_result(header + payload)


class TestCacheInterop:
    def test_store_writes_codec_entries_loader_reads_both(self, tmp_path):
        cache = str(tmp_path)
        result = wrap({"io": IoStats(busy_time=2.0), "grid": Grid2D(4, 5)})
        store_result(cache, "t", SEED, result)
        path = _cache_path(cache, "t", SEED)
        with open(path, "rb") as fh:
            raw = fh.read()
        assert is_codec_frame(raw)
        loaded = load_result(cache, "t", SEED)
        assert pickle_result(loaded) == pickle_result(result)

        # A legacy pickle entry at the same key still loads.
        with open(path, "wb") as fh:
            fh.write(pickle.dumps(result, protocol=4))
        legacy = load_result(cache, "t", SEED)
        assert pickle_result(legacy) == pickle_result(result)

    def test_corrupt_codec_entry_reads_as_miss(self, tmp_path):
        cache = str(tmp_path)
        result = wrap([1, 2, 3])
        store_result(cache, "t", SEED, result)
        path = _cache_path(cache, "t", SEED)
        with open(path, "rb") as fh:
            raw = bytearray(fh.read())
        raw[len(raw) // 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(raw[: len(raw) - 3]))
        assert _cache_load(path) is None

    def test_codec_result_is_decodable_frame(self):
        result = wrap({"power": StagePower("simulation", 100.0, 25.0)})
        blob = codec_result(result)
        assert is_codec_frame(blob)
        assert pickle_result(decode_result(blob)) == pickle_result(result)
