"""Interprocedural dataflow rules (GL11–GL14) against synthetic modules.

Each rule gets a positive fixture (must fire) and a negative (idiomatic
code that must stay clean), plus summary-level checks on the dataflow
engine itself so a silent fixpoint regression shows up here rather than
as vacuously-clean self-lint runs.
"""

import ast
import textwrap

import pytest

from repro.lint import lint_source
from repro.lint.dataflow import UNKNOWN, DimDataflow
from repro.lint.dims import DIMENSIONLESS, ENERGY, POWER, TIME
from repro.lint.engine import ModuleContext, ProjectContext
from repro.lint.graph import ProjectGraph


def run(source: str, select=None, path: str = "flow_mod.py"):
    return lint_source(textwrap.dedent(source), path=path, select=select)


def codes(result):
    return [f.code for f in result.findings]


def flow_for(source: str, path: str = "flow_mod.py") -> DimDataflow:
    src = textwrap.dedent(source)
    ctx = ModuleContext(path=path, source=src, tree=ast.parse(src),
                        project=ProjectContext())
    graph = ProjectGraph.build([ctx])
    return DimDataflow(graph, [ctx])


# ---------------------------------------------------------------------------
# Dataflow summaries (the engine under the rules)
# ---------------------------------------------------------------------------

class TestSummaries:
    def test_return_dim_inferred_through_arithmetic(self):
        flow = flow_for(
            """
            def stage_energy(power_w, dt_s):
                return power_w * dt_s
            """)
        assert flow.summary_for_call("stage_energy").dim == ENERGY

    def test_summary_chains_to_fixpoint(self):
        # outer's dim is only known once inner's summary has settled.
        flow = flow_for(
            """
            def outer(dt_s):
                return inner(dt_s) / dt_s

            def inner(dt_s):
                return 3.0 * dt_s * 2.0
            """)
        assert flow.summary_for_call("inner").dim == TIME
        assert flow.summary_for_call("outer").dim == DIMENSIONLESS

    def test_declared_suffix_is_the_contract(self):
        # A suffixed function name wins over whatever the body infers.
        flow = flow_for(
            """
            def read_power_w(row):
                return row["power"]
            """)
        assert flow.summary_for_call("read_power_w").dim == POWER

    def test_tuple_returns_carry_element_dims(self):
        flow = flow_for(
            """
            def split(energy_j, dt_s):
                return energy_j, dt_s
            """)
        s = flow.summary_for_call("split")
        assert s.elems is not None
        assert [e.dim for e in s.elems] == [ENERGY, TIME]

    def test_disagreeing_overloads_resolve_to_unknown(self):
        flow = flow_for(
            """
            class A:
                def cost(self, dt_s):
                    return dt_s

            class B:
                def cost(self, energy_j):
                    return energy_j
            """)
        assert flow.summary_for_call("cost") == UNKNOWN


# ---------------------------------------------------------------------------
# GL11: flow-level unit mixing
# ---------------------------------------------------------------------------

class TestGL11FlowUnits:
    def test_positive_joules_flow_into_seconds_add(self):
        result = run(
            """
            def stage_energy(power_w, dt_s):
                return power_w * dt_s

            def total(dt_s):
                e = stage_energy(3.0, dt_s)
                return e + dt_s
            """,
            select=["GL11"])
        assert codes(result) == ["GL11"]
        assert "joule" in result.findings[0].message
        assert "second" in result.findings[0].message

    def test_positive_mismatched_compare_through_helper(self):
        result = run(
            """
            def elapsed(t0_s, t1_s):
                return t1_s - t0_s

            def over_budget(t0_s, t1_s, cap_j):
                return elapsed(t0_s, t1_s) > cap_j
            """,
            select=["GL11"])
        assert codes(result) == ["GL11"]

    def test_negative_consistent_flow(self):
        result = run(
            """
            def stage_energy(power_w, dt_s):
                return power_w * dt_s

            def total(power_w, dt_s, base_j):
                return stage_energy(power_w, dt_s) + base_j
            """,
            select=["GL11"])
        assert codes(result) == []

    def test_negative_direct_mismatch_is_gl1_territory(self):
        # A purely lexical mismatch belongs to GL1; GL11 only reports
        # flows a single-module pass cannot see, so the two never
        # double-report one site.
        source = """
            def f(energy_j, dt_s):
                return energy_j + dt_s
            """
        assert codes(run(source, select=["GL11"])) == []
        assert codes(run(source, select=["GL1"])) == ["GL1"]


# ---------------------------------------------------------------------------
# GL12: dimension-changing rebinding
# ---------------------------------------------------------------------------

class TestGL12DimRebind:
    def test_positive_seconds_bound_to_joules_name(self):
        result = run(
            """
            def elapsed(t0_s, t1_s):
                return t1_s - t0_s

            def f(t0_s, t1_s):
                energy_j = elapsed(t0_s, t1_s)
                return energy_j
            """,
            select=["GL12"])
        assert codes(result) == ["GL12"]
        assert "energy_j" in result.findings[0].message

    def test_negative_matching_rebind(self):
        result = run(
            """
            def elapsed(t0_s, t1_s):
                return t1_s - t0_s

            def f(t0_s, t1_s):
                dt_s = elapsed(t0_s, t1_s)
                return dt_s
            """,
            select=["GL12"])
        assert codes(result) == []


# ---------------------------------------------------------------------------
# GL13: partial component sums
# ---------------------------------------------------------------------------

_IOSTATS = """
    class IoStats:
        arm_time: float
        rotation_time: float
        transfer_time: float
        fault_time: float
        busy_time: float
"""


def run_gl13(body: str):
    source = textwrap.dedent(_IOSTATS) + textwrap.dedent(body)
    return lint_source(source, path="flow_mod.py", select=["GL13"])


class TestGL13ComponentSums:
    def test_positive_partial_sum(self):
        result = run_gl13(
            """
            def mech_time(stats: IoStats) -> float:
                return stats.arm_time + stats.rotation_time
            """)
        assert codes(result) == ["GL13"]
        msg = result.findings[0].message
        assert "transfer_time" in msg and "fault_time" in msg

    def test_negative_complete_sum(self):
        result = run_gl13(
            """
            def busy(stats: IoStats) -> float:
                return (stats.arm_time + stats.rotation_time
                        + stats.transfer_time + stats.fault_time)
            """)
        assert codes(result) == []

    def test_negative_total_read_alongside(self):
        # Reading the stored total in the same function signals the
        # partial sum is deliberate (e.g. a breakdown next to it).
        result = run_gl13(
            """
            def breakdown(stats: IoStats):
                mech = stats.arm_time + stats.rotation_time
                return mech / stats.busy_time
            """)
        assert codes(result) == []


# ---------------------------------------------------------------------------
# GL14: static race detection
# ---------------------------------------------------------------------------

_RACY = """
    import threading
    from concurrent.futures import ThreadPoolExecutor


    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def bump(self):
            self.total += 1

        def bump_locked(self):
            with self._lock:
                self.total += 1


    class Service:
        def __init__(self, counter: Counter):
            self._counter = counter
            self._pool = ThreadPoolExecutor(max_workers=2)

        def start(self):
            self._pool.submit(self._work_a)
            threading.Thread(target=self._work_b).start()

        def _work_a(self):
            self._counter.{a}()

        def _work_b(self):
            self._counter.{b}()
    """


class TestGL14Races:
    def test_positive_two_roots_one_unguarded_write(self):
        result = run(_RACY.format(a="bump", b="bump_locked"),
                     select=["GL14"])
        assert codes(result) == ["GL14"]
        msg = result.findings[0].message
        assert "Counter.total" in msg
        assert "2 thread roots" in msg

    def test_negative_all_writes_locked(self):
        result = run(_RACY.format(a="bump_locked", b="bump_locked"),
                     select=["GL14"])
        assert codes(result) == []

    def test_negative_single_root(self):
        source = """
            import threading


            class Counter:
                def __init__(self):
                    self.total = 0

                def bump(self):
                    self.total += 1


            class Service:
                def __init__(self, counter: Counter):
                    self._counter = counter

                def start(self):
                    threading.Thread(target=self._work).start()

                def _work(self):
                    self._counter.bump()
            """
        assert codes(run(source, select=["GL14"])) == []

    def test_positive_http_handlers_are_roots(self):
        result = run(
            """
            class Stats:
                def __init__(self):
                    self.requests = 0

                def hit(self):
                    self.requests += 1


            class Handler:
                def __init__(self, stats: Stats):
                    self._stats = stats

                def do_GET(self):
                    self._stats.hit()

                def do_POST(self):
                    self._stats.hit()
            """,
            select=["GL14"])
        assert codes(result) == ["GL14"]
        msg = result.findings[0].message
        assert "Stats.requests" in msg
        assert "do_GET" in msg and "do_POST" in msg
