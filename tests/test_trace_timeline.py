"""Timeline construction, queries and accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PipelineError
from repro.trace import Activity, Timeline


SIM = Activity(cpu_util=0.3, dram_bytes_per_s=5e9)
WRITE = Activity(disk_write_bytes_per_s=9e4, disk_seek_duty=0.9)


def small_timeline() -> Timeline:
    tl = Timeline()
    tl.mark("simulate+write")
    tl.record("simulation", 1.5, SIM, iteration=0)
    tl.record("nnwrite", 1.4, WRITE, iteration=0)
    tl.mark("read+visualize")
    tl.record("nnread", 1.3)
    tl.record("visualization", 0.5)
    return tl


class TestConstruction:
    def test_now_advances(self):
        tl = small_timeline()
        assert tl.now == pytest.approx(4.7)
        assert tl.duration == pytest.approx(4.7)

    def test_rejects_negative_duration(self):
        with pytest.raises(PipelineError):
            Timeline().record("x", -1.0)

    def test_spans_are_gap_free(self):
        tl = small_timeline()
        spans = tl.spans
        for prev, nxt in zip(spans, spans[1:]):
            assert prev.t1 == pytest.approx(nxt.t0)

    def test_nonzero_origin(self):
        tl = Timeline(t0=10.0)
        tl.record("x", 2.0)
        assert tl.spans[0].t0 == 10.0
        assert tl.now == 12.0

    def test_idle_helper(self):
        tl = Timeline()
        tl.idle(3.0)
        assert tl.spans[0].stage == "idle"
        assert tl.spans[0].activity.cpu_util == 0


class TestQueries:
    def test_span_at_boundaries(self):
        tl = small_timeline()
        assert tl.span_at(0.0).stage == "simulation"
        assert tl.span_at(1.5).stage == "nnwrite"  # half-open: new span wins
        assert tl.span_at(4.69).stage == "visualization"
        assert tl.span_at(4.7) is None
        assert tl.span_at(-0.1) is None

    def test_activity_at_returns_idle_outside(self):
        tl = small_timeline()
        assert tl.activity_at(99.0).cpu_util == 0.0
        assert tl.activity_at(0.5) == SIM

    def test_stage_totals(self):
        totals = small_timeline().stage_totals()
        assert totals["simulation"].total_time == pytest.approx(1.5)
        assert totals["simulation"].span_count == 1
        assert set(totals) == {"simulation", "nnwrite", "nnread", "visualization"}

    def test_stage_fractions_sum_to_one(self):
        fracs = small_timeline().stage_fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert fracs["simulation"] == pytest.approx(1.5 / 4.7)

    def test_stage_fractions_exclude_idle(self):
        tl = small_timeline()
        tl.idle(10.0)
        fracs = tl.stage_fractions(include_idle=False)
        assert "idle" not in fracs
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_phase_bounds(self):
        tl = small_timeline()
        bounds = tl.phase_bounds()
        assert bounds["simulate+write"] == (pytest.approx(0.0), pytest.approx(2.9))
        assert bounds["read+visualize"] == (pytest.approx(2.9), pytest.approx(4.7))


class TestSliceAndExtend:
    def test_slice_clips_spans(self):
        tl = small_timeline()
        part = tl.slice(1.0, 3.0)
        assert part.duration == pytest.approx(2.0)
        stages = [s.stage for s in part.spans]
        assert stages == ["simulation", "nnwrite", "nnread"]
        assert part.spans[0].duration == pytest.approx(0.5)

    def test_slice_rejects_reversed(self):
        with pytest.raises(ValueError):
            small_timeline().slice(3.0, 1.0)

    def test_extend_shifts_in_time(self):
        a = small_timeline()
        b = small_timeline()
        total = a.duration + b.duration
        a.extend(b)
        assert a.duration == pytest.approx(total)
        assert len(a) == 8

    @given(durations=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    def test_duration_is_sum_of_spans(self, durations):
        tl = Timeline()
        for i, d in enumerate(durations):
            tl.record(f"s{i % 3}", d)
        assert tl.duration == pytest.approx(sum(durations), rel=1e-9, abs=1e-9)

    @given(
        durations=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=20),
        probe=st.floats(0.0, 1.0),
    )
    def test_span_at_always_finds_inside_run(self, durations, probe):
        tl = Timeline()
        for i, d in enumerate(durations):
            tl.record(f"s{i}", d)
        t = probe * tl.duration * 0.999999
        assert tl.span_at(t) is not None


class TestExport:
    def test_csv_roundtrip_columns(self):
        from repro.trace import timeline_to_csv

        csv_text = timeline_to_csv(small_timeline())
        header = csv_text.splitlines()[0]
        assert "stage" in header and "duration" in header
        assert "meta.iteration" in header
        assert len(csv_text.splitlines()) == 5  # header + 4 spans

    def test_series_to_csv_checks_lengths(self):
        from repro.trace import series_to_csv

        with pytest.raises(ValueError):
            series_to_csv({"t": [1, 2, 3], "w": [1, 2]})
        out = series_to_csv({"t": [1, 2], "w": [3.5, 4.5]})
        assert out.splitlines()[0] == "t,w"
        assert len(out.splitlines()) == 3


class TestAddMarker:
    def test_explicit_marker_time(self):
        from repro.trace.events import PhaseMarker

        tl = Timeline()
        tl.record("s", 5.0)
        tl.add_marker(PhaseMarker("mid", 2.5))
        assert ("mid", 2.5) in [(m.name, m.t) for m in tl.markers]

    def test_marker_before_origin_rejected(self):
        from repro.errors import PipelineError
        from repro.trace.events import PhaseMarker

        tl = Timeline(t0=10.0)
        with pytest.raises(PipelineError):
            tl.add_marker(PhaseMarker("early", 5.0))
