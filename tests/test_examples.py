"""Every example script must run end-to-end (deliverable regression)."""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "case_studies.py",
    "fio_study.py",
    "insitu_frames.py",
    "hybrid_pipelines.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    """Execute the example as a script; it must finish and say something.

    (``insitu_frames.py`` writes its PNG frames to ``examples/out/``, the
    same place a user running it would get them.)
    """
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), path
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # it reported something substantial


def test_examples_all_listed_in_readme():
    readme = os.path.join(EXAMPLES_DIR, os.pardir, "README.md")
    with open(readme) as fh:
        text = fh.read()
    for script in os.listdir(EXAMPLES_DIR):
        if script.endswith(".py"):
            assert f"examples/{script}" in text, script
