"""RAPL counter emulation and Wattsup meter emulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeasurementError
from repro.machine.node import ComponentPower
from repro.power import RaplDomain, RaplEmulator, WattsupEmulator
from repro.power.rapl import COUNTER_WRAP, RaplReading, energy_between
from repro.rng import stream
from repro.units import RAPL_ENERGY_UNIT_J


def cp(package=74.0, dram=17.0) -> ComponentPower:
    return ComponentPower(package=package, dram=dram, disk=5.5, net=2.0, rest=44.3)


class TestRaplCounters:
    def test_counters_track_truth_within_error(self):
        rapl = RaplEmulator(stream("t1"))
        before = rapl.read(RaplDomain.PKG)
        for _ in range(100):
            rapl.advance(1.0, cp())
        after = rapl.read(RaplDomain.PKG)
        energy = energy_between(before, after)
        assert energy == pytest.approx(7400.0, rel=0.01)  # < 1 % error

    def test_dram_domain_independent(self):
        rapl = RaplEmulator(stream("t2"))
        b = rapl.read(RaplDomain.DRAM)
        rapl.advance(10.0, cp())
        a = rapl.read(RaplDomain.DRAM)
        assert energy_between(b, a) == pytest.approx(170.0, rel=0.02)

    def test_pp0_is_core_share_of_package(self):
        rapl = RaplEmulator(stream("t3"), model_error_fraction=0.0)
        b = rapl.read(RaplDomain.PP0)
        rapl.advance(10.0, cp())
        a = rapl.read(RaplDomain.PP0)
        assert energy_between(b, a) == pytest.approx(0.72 * 740.0, rel=1e-3)

    def test_counter_quantization(self):
        rapl = RaplEmulator(stream("t4"), model_error_fraction=0.0)
        rapl.advance(1e-9, cp())  # far less than one energy unit
        assert rapl.read(RaplDomain.PKG).ticks == 0

    def test_reading_converts_to_joules(self):
        r = RaplReading(RaplDomain.PKG, 1 << 16, 0.0)
        assert r.joules() == pytest.approx(1.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(MeasurementError):
            RaplEmulator(stream("t5")).advance(-1.0, cp())


class TestWraparound:
    def test_energy_between_handles_wrap(self):
        a = RaplReading(RaplDomain.PKG, COUNTER_WRAP - 100, 0.0)
        b = RaplReading(RaplDomain.PKG, 50, 1.0)
        assert energy_between(a, b) == pytest.approx(150 * RAPL_ENERGY_UNIT_J)

    def test_counter_wraps_on_long_runs(self):
        # 2^32 ticks = 65536 J; a 143 W node wraps in ~7.6 minutes.
        rapl = RaplEmulator(stream("t6"), model_error_fraction=0.0)
        rapl.advance(500.0, cp(package=143.0))
        assert rapl.read(RaplDomain.PKG).ticks < COUNTER_WRAP

    def test_mismatched_domains_rejected(self):
        a = RaplReading(RaplDomain.PKG, 0, 0.0)
        b = RaplReading(RaplDomain.DRAM, 10, 1.0)
        with pytest.raises(MeasurementError):
            energy_between(a, b)

    def test_time_travel_rejected(self):
        a = RaplReading(RaplDomain.PKG, 0, 5.0)
        b = RaplReading(RaplDomain.PKG, 10, 1.0)
        with pytest.raises(MeasurementError):
            energy_between(a, b)


class TestMonitoringOverhead:
    def test_paper_value_at_1hz(self):
        rapl = RaplEmulator(stream("t7"))
        assert rapl.monitoring_overhead_w(1.0) == pytest.approx(0.2)

    def test_scales_with_rate(self):
        rapl = RaplEmulator(stream("t8"))
        # RAPL's native ~1 kHz rate would visibly perturb the measurement —
        # the reason the paper throttles to 1 Hz.
        assert rapl.monitoring_overhead_w(1000.0) == pytest.approx(200.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(MeasurementError):
            RaplEmulator(stream("t9")).monitoring_overhead_w(0)


class TestWattsup:
    def test_quantizes_to_tenth_watt(self):
        meter = WattsupEmulator(stream("w1"), noise_fraction=0.0)
        assert meter.sample(143.27) == pytest.approx(143.3)

    def test_noise_is_small_and_unbiased(self):
        meter = WattsupEmulator(stream("w2"))
        samples = meter.sample_series(np.full(2000, 120.0))
        assert samples.mean() == pytest.approx(120.0, abs=0.1)
        assert samples.std() < 1.5

    def test_rejects_negative_power(self):
        meter = WattsupEmulator(stream("w3"))
        with pytest.raises(MeasurementError):
            meter.sample(-1.0)
        with pytest.raises(MeasurementError):
            meter.sample_series(np.array([1.0, -2.0]))

    def test_never_returns_negative(self):
        meter = WattsupEmulator(stream("w4"), noise_fraction=0.05)
        assert (meter.sample_series(np.full(100, 0.5)) >= 0).all()

    @settings(max_examples=30)
    @given(watts=st.floats(0, 1e4))
    def test_sample_close_to_truth(self, watts):
        meter = WattsupEmulator(stream("w5"))
        assert meter.sample(watts) == pytest.approx(watts, rel=0.05, abs=0.1)
