"""MeterRig: synthesizing the paper's power profiles from a timeline."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.machine import Node
from repro.power import MeterRig
from repro.rng import RngRegistry
from repro.trace import Activity, Timeline

SIM = Activity(cpu_util=0.30, dram_bytes_per_s=5e9)
VIS = Activity(cpu_util=0.13, dram_bytes_per_s=1.95e9)


def two_phase_timeline() -> Timeline:
    tl = Timeline()
    tl.mark("simulate")
    for _ in range(20):
        tl.record("simulation", 1.0, SIM)
    tl.mark("visualize")
    for _ in range(20):
        tl.record("visualization", 1.0, VIS)
    return tl


@pytest.fixture
def rig() -> MeterRig:
    return MeterRig(Node(), rng=RngRegistry(1))


class TestSampling:
    def test_sample_count_matches_duration(self, rig):
        profile = rig.sample(two_phase_timeline())
        assert profile.n_samples == 40
        assert profile.dt == 1.0

    def test_channels_present(self, rig):
        profile = rig.sample(two_phase_timeline())
        for channel in ("system", "processor", "dram"):
            assert channel in profile

    def test_phase_powers_match_calibration(self, rig):
        profile = rig.sample(two_phase_timeline())
        phases = profile.phase_average()
        assert phases["simulate"] == pytest.approx(143.0, abs=1.5)
        assert phases["visualize"] == pytest.approx(121.0, abs=1.5)

    def test_processor_channel_tracks_package(self, rig):
        profile = rig.sample(two_phase_timeline())
        sim_proc = profile.slice(0, 20)["processor"].mean()
        # package 74 W + 0.2 W monitoring overhead
        assert sim_proc == pytest.approx(74.2, abs=1.0)

    def test_dram_channel(self, rig):
        profile = rig.sample(two_phase_timeline())
        assert profile.slice(0, 20)["dram"].mean() == pytest.approx(17.2, abs=0.8)

    def test_markers_carried_over(self, rig):
        profile = rig.sample(two_phase_timeline())
        assert [m.name for m in profile.markers] == ["simulate", "visualize"]

    def test_subsecond_spans_averaged_into_ticks(self, rig):
        """Stages shorter than the sampling interval blend, as at 1 Hz."""
        tl = Timeline()
        for _ in range(20):
            tl.record("a", 0.5, SIM)
            tl.record("b", 0.5, VIS)
        profile = rig.sample(tl)
        assert profile.average() == pytest.approx((143.0 + 121.0) / 2, abs=1.0)

    def test_deterministic_given_seed(self):
        p1 = MeterRig(Node(), rng=RngRegistry(9)).sample(two_phase_timeline())
        p2 = MeterRig(Node(), rng=RngRegistry(9)).sample(two_phase_timeline())
        np.testing.assert_array_equal(p1["system"], p2["system"])

    def test_different_seeds_differ(self):
        p1 = MeterRig(Node(), rng=RngRegistry(1)).sample(two_phase_timeline())
        p2 = MeterRig(Node(), rng=RngRegistry(2)).sample(two_phase_timeline())
        assert not np.array_equal(p1["system"], p2["system"])


class TestFidelity:
    def test_measured_energy_close_to_truth(self, rig):
        tl = two_phase_timeline()
        profile = rig.sample(tl, include_truth=True)
        truth = float(profile["system_true"].sum() * profile.dt)
        assert profile.energy() == pytest.approx(truth, rel=0.01)

    def test_monitoring_overhead_visible(self):
        tl = two_phase_timeline()
        on = MeterRig(Node(), monitor_on_node=True, jitter=0, rng=RngRegistry(3))
        off = MeterRig(Node(), monitor_on_node=False, jitter=0, rng=RngRegistry(3))
        delta = on.sample(tl).average() - off.sample(tl).average()
        assert delta == pytest.approx(0.2, abs=0.1)

    def test_jitter_zero_gives_flat_phases(self):
        rig = MeterRig(Node(), jitter=0.0, rng=RngRegistry(4))
        profile = rig.sample(two_phase_timeline())
        sim = profile.slice(0, 20)["system"]
        assert sim.std() < 1.0  # only meter noise remains

    def test_jitter_gives_fig5_texture(self, rig):
        profile = rig.sample(two_phase_timeline())
        sim = profile.slice(0, 20)["system"]
        assert 0.3 < sim.std() < 4.0


class TestValidation:
    def test_bad_sample_rate(self):
        with pytest.raises(MeasurementError):
            MeterRig(Node(), sample_hz=0)

    def test_bad_jitter(self):
        with pytest.raises(MeasurementError):
            MeterRig(Node(), jitter=-1)

    def test_empty_timeline(self, rig):
        profile = rig.sample(Timeline())
        assert profile.n_samples >= 1  # degenerate but well-formed
