"""Whole-program greenlint: call graph construction and rules GL6-GL10.

The graph tests drive :class:`~repro.lint.graph.ProjectGraph` directly on
a synthetic fixture package (recursion cycles, protocol dispatch,
decorated functions); each rule then gets a golden-finding fixture, and
the shipped baseline is asserted *exact* — no stale entries, no
findings the baseline does not list.
"""

import ast
import json
import os
import textwrap

from repro.cli import main
from repro.lint import lint_paths, lint_source, load_baseline, render_json
from repro.lint.baseline import apply_baseline
from repro.lint.engine import ModuleContext, ProjectContext
from repro.lint.graph import ProjectGraph

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
GRAPH_RULES = ["GL6", "GL7", "GL8", "GL9", "GL10"]
# The shipped-baseline tests must mirror the full project-scope select
# that tools/check.sh runs, or newer rules' entries would read as stale.
PROJECT_RULES = GRAPH_RULES + [f"GL{n}" for n in range(11, 19)]
BASELINE = os.path.join(ROOT, "tools", "greenlint-baseline.json")
#: The trees the CI baseline stage lints (tools/check.sh must match).
BASELINED_TREES = [os.path.join(ROOT, d) for d in ("src", "tests", "tools")]


def build_graph(files: dict) -> ProjectGraph:
    project = ProjectContext()
    modules = [
        ModuleContext(path=path, source=src, tree=ast.parse(src),
                      project=project)
        for path, src in sorted(files.items())
    ]
    return ProjectGraph.build(modules)


def run_rule(code: str, source: str, path: str = "mod.py"):
    return lint_source(textwrap.dedent(source), path=path, select=[code])


# ---------------------------------------------------------------------------
# Call-graph construction on a synthetic fixture package
# ---------------------------------------------------------------------------

FIXTURE_PKG = {
    "pkg/device.py": textwrap.dedent("""
        from typing import Protocol

        class Device(Protocol):
            def service(self, n: int) -> float: ...
    """),
    "pkg/impl.py": textwrap.dedent("""
        class Hdd:
            def service(self, n: int) -> float:
                return float(n)

        class Telemetry:
            def service(self) -> None:
                pass
    """),
    "pkg/flow.py": textwrap.dedent("""
        from pkg.device import Device

        def traced(fn):
            return fn

        @traced
        def ping(n):
            return pong(n - 1) if n else 0

        def pong(n):
            return ping(n)

        def drive(dev, n: int) -> float:
            return dev.service(n)

        def drive_typed(dev: Device, n: int) -> float:
            return dev.service(n)
    """),
}


class TestGraphConstruction:
    def test_mutual_recursion_cycle_is_in_the_graph(self):
        graph = build_graph(FIXTURE_PKG)
        assert "pkg/flow.py::pong" in graph.callees("pkg/flow.py::ping")
        assert "pkg/flow.py::ping" in graph.callees("pkg/flow.py::pong")

    def test_decorated_function_keeps_its_summary(self):
        graph = build_graph(FIXTURE_PKG)
        info = graph.functions["pkg/flow.py::ping"]
        assert info.name == "ping"
        assert any(site.name == "pong" for site in info.calls)

    def test_untyped_receiver_dispatches_by_signature(self):
        # ``dev.service(n)`` with an untyped receiver reaches every
        # compatible implementation, but not the zero-argument
        # ``Telemetry.service`` that could never bind the call.
        graph = build_graph(FIXTURE_PKG)
        callees = graph.callees("pkg/flow.py::drive")
        assert "pkg/impl.py::Hdd.service" in callees
        assert "pkg/impl.py::Telemetry.service" not in callees

    def test_protocol_typed_receiver_reaches_implementations(self):
        graph = build_graph(FIXTURE_PKG)
        callees = graph.callees("pkg/flow.py::drive_typed")
        assert "pkg/impl.py::Hdd.service" in callees

    def test_builtin_typed_receiver_never_dispatches_to_project_code(self):
        # ``self._entries.get(...)`` on a dict must not resolve to some
        # project method that happens to be named ``get``.
        files = dict(FIXTURE_PKG)
        files["pkg/store.py"] = textwrap.dedent("""
            class Store:
                def __init__(self):
                    self._entries = {}

                def get(self, key):
                    return self._entries.get(key)
        """)
        graph = build_graph(files)
        assert graph.callees("pkg/store.py::Store.get") == ()


# ---------------------------------------------------------------------------
# Golden findings, one per rule
# ---------------------------------------------------------------------------

class TestGL6Purity:
    def test_wall_clock_reachable_from_root_is_flagged(self):
        result = run_rule("GL6", """
            import time

            def run_experiment(spec):
                return measure(spec)

            def measure(spec):
                return time.time()
        """)
        assert [f.code for f in result.findings] == ["GL6"]
        assert "wall-clock" in result.findings[0].message
        assert "run_experiment" in result.findings[0].message

    def test_unreachable_impurity_is_not_flagged(self):
        result = run_rule("GL6", """
            import time

            def helper():
                return time.time()
        """)
        assert result.findings == []

    def test_unseeded_rng_reachable_from_root_is_flagged(self):
        result = run_rule("GL6", """
            import numpy as np

            def run_experiment(spec):
                rng = np.random.default_rng()
                return rng.random()
        """)
        assert [f.code for f in result.findings] == ["GL6"]
        assert "default_rng" in result.findings[0].message


class TestGL7LockDiscipline:
    INJECTED_UNGUARDED_WRITE = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0  # gl: guarded-by=_lock

            def bump(self):
                self.total += 1

            def safe_bump(self):
                with self._lock:
                    self.total += 1
    """

    def test_injected_unguarded_write_is_caught(self):
        result = run_rule("GL7", self.INJECTED_UNGUARDED_WRITE)
        assert [f.code for f in result.findings] == ["GL7"]
        finding = result.findings[0]
        assert "Counter.bump" in finding.message
        assert "self._lock" in finding.message
        # The guarded write in safe_bump and the constructor are clean.
        assert "safe_bump" not in finding.message

    def test_declaration_naming_unknown_lock_is_inconsistent(self):
        result = run_rule("GL7", """
            import threading

            class Bad:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.x = 0  # gl: guarded-by=_mutex
        """)
        assert [f.code for f in result.findings] == ["GL7"]
        assert "owns no lock attribute" in result.findings[0].message


class TestGL8LockOrder:
    def test_self_deadlock_reacquisition(self):
        result = run_rule("GL8", """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
        """)
        assert {f.code for f in result.findings} == {"GL8"}
        assert any("re-acquire" in f.message for f in result.findings)

    def test_ab_ba_inversion_over_the_call_graph(self):
        result = run_rule("GL8", """
            import threading

            class A:
                def __init__(self):
                    self._lock = threading.Lock()

                def hit(self, b: "B"):
                    with self._lock:
                        b.poke()

                def poke(self):
                    with self._lock:
                        pass

            class B:
                def __init__(self):
                    self._lock = threading.Lock()

                def hit(self, a: "A"):
                    with self._lock:
                        a.poke()

                def poke(self):
                    with self._lock:
                        pass
        """)
        cycle_findings = [f for f in result.findings
                          if "lock-order cycle" in f.message]
        assert len(cycle_findings) >= 2
        assert any("A.hit" in f.message for f in cycle_findings)
        assert any("B.hit" in f.message for f in cycle_findings)

    def test_consistent_order_is_clean(self):
        result = run_rule("GL8", """
            import threading

            class A:
                def __init__(self):
                    self._lock = threading.Lock()

                def hit(self, b: "B"):
                    with self._lock:
                        b.poke()

            class B:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass
        """)
        assert result.findings == []


class TestGL9EnergyConservation:
    def test_discarded_joule_result_is_flagged(self):
        result = run_rule("GL9", """
            def stage_energy_j(n: int) -> float:
                return n * 1.5

            def tally(n: int) -> None:
                stage_energy_j(n)
        """)
        assert [f.code for f in result.findings] == ["GL9"]
        assert "discarded" in result.findings[0].message

    def test_never_used_energy_local_is_flagged(self):
        result = run_rule("GL9", """
            def stage_energy_j(n: int) -> float:
                return n * 1.5

            def tally(n: int) -> float:
                wasted = stage_energy_j(n)
                return 0.0
        """)
        assert [f.code for f in result.findings] == ["GL9"]
        assert "wasted" in result.findings[0].message

    def test_folded_energy_is_clean(self):
        result = run_rule("GL9", """
            def stage_energy_j(n: int) -> float:
                return n * 1.5

            def tally(n: int) -> float:
                total = 0.0
                total += stage_energy_j(n)
                return total
        """)
        assert result.findings == []


class TestGL10ProtocolCompleteness:
    def test_scalar_only_device_is_flagged(self):
        result = run_rule("GL10", """
            class MiniDisk:
                def service(self, req):
                    return req

                def submit_write(self, req):
                    return req
        """)
        missing = sorted(f.message.split("lacks ")[1].split("(")[0]
                         for f in result.findings)
        assert missing == ["service_batch", "service_components",
                          "submit_write_batch", "submit_write_components"]

    def test_complete_device_is_clean(self):
        result = run_rule("GL10", """
            class FullDisk:
                def service(self, req):
                    return req

                def service_batch(self, reqs):
                    return reqs

                def service_components(self, reqs):
                    return reqs

                def submit_write(self, req):
                    return req

                def submit_write_batch(self, reqs):
                    return reqs

                def submit_write_components(self, reqs):
                    return reqs
        """)
        assert result.findings == []

    def test_protocol_definition_itself_is_exempt(self):
        result = run_rule("GL10", """
            from typing import Protocol

            class Device(Protocol):
                def service(self, req): ...
                def submit_write(self, req): ...
        """)
        assert result.findings == []


# ---------------------------------------------------------------------------
# The shipped baseline
# ---------------------------------------------------------------------------

class TestShippedBaseline:
    def test_baseline_is_exact(self, monkeypatch):
        # Every baseline entry matches a live finding (no stale debt)
        # and every finding is listed (tree is clean modulo baseline).
        monkeypatch.chdir(ROOT)
        result = lint_paths(BASELINED_TREES, select=PROJECT_RULES)
        clean, stale = apply_baseline(result, load_baseline(BASELINE))
        formatted = "\n".join(f.format() for f in clean.findings)
        assert not clean.findings, f"un-baselined findings:\n{formatted}"
        assert not stale, f"stale baseline entries: {stale}"
        assert clean.baselined == sum(
            load_baseline(BASELINE).values())

    def test_cli_passes_with_baseline(self, monkeypatch, capsys):
        monkeypatch.chdir(ROOT)
        code = main(["lint", "--select", ",".join(PROJECT_RULES),
                     "--baseline", BASELINE, "--strict", *BASELINED_TREES])
        out = capsys.readouterr().out
        assert code == 0
        assert "baselined" in out

    def test_cli_fails_on_stale_entry(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        stale = tmp_path / "baseline.json"
        stale.write_text(json.dumps({
            "version": 1,
            "entries": [{"code": "GL9", "path": "gone.py",
                         "message": "result of f_j() is discarded"}],
        }))
        code = main(["lint", "--select", "GL9",
                     "--baseline", str(stale), str(clean)])
        err = capsys.readouterr().err
        assert code == 1
        assert "stale baseline entry" in err

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent("""
            def stage_energy_j(n: int) -> float:
                return n * 1.5

            def tally(n: int) -> None:
                stage_energy_j(n)
        """))
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--select", "GL9", str(bad)]) == 1
        capsys.readouterr()
        assert main(["lint", "--select", "GL9",
                     "--write-baseline", str(baseline), str(bad)]) == 0
        capsys.readouterr()
        assert main(["lint", "--select", "GL9",
                     "--baseline", str(baseline), str(bad)]) == 0
        capsys.readouterr()


class TestJsonStability:
    def test_findings_are_sorted_and_paths_posix(self, tmp_path):
        b = tmp_path / "b.py"
        a = tmp_path / "a.py"
        for f in (a, b):
            f.write_text(textwrap.dedent("""
                def stage_energy_j(n: int) -> float:
                    return n * 1.5

                def tally(n: int) -> None:
                    stage_energy_j(n)
            """))
        result = lint_paths([str(tmp_path)], select=["GL9"])
        doc = json.loads(render_json(result))
        keys = [(r["path"], r["line"], r["col"], r["code"], r["message"])
                for r in doc["findings"]]
        assert keys == sorted(keys)
        assert len(keys) == 2
        assert all("\\" not in r["path"] for r in doc["findings"])
        assert doc["baselined"] == 0
