"""Experiment registry: every paper artifact reproduces with the right shape."""

import pytest

from repro.calibration import PAPER
from repro.errors import ConfigError
from repro.experiments import EXPERIMENTS, Lab, get_experiment, run_experiment


@pytest.fixture(scope="module")
def lab() -> Lab:
    return Lab(seed=2015)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "table2", "sec5c", "table3", "sec5d",
        }
        assert expected <= set(EXPERIMENTS)

    def test_extensions_registered(self):
        assert {"ext-devices", "ext-multinode", "ext-advisor"} <= set(EXPERIMENTS)

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")

    def test_result_has_text_and_data(self, lab):
        result = run_experiment("table1", lab)
        assert result.id == "table1"
        assert "Xeon" in result.text
        assert result.data["CPU"] == "2x Intel Xeon E5-2665"


class TestFigureShapes:
    """Each reproduced artifact must carry the paper's qualitative result."""

    def test_fig4_shares(self, lab):
        shares = run_experiment("fig4", lab).data
        for case, expected in PAPER["fig4_shares"].items():
            for stage, frac in expected.items():
                assert shares[case][stage] == pytest.approx(frac, abs=0.012)

    def test_fig5_has_six_panels(self, lab):
        profiles = run_experiment("fig5", lab).data
        assert len(profiles) == 6
        post1 = profiles[("post-processing", 1)]
        # Two distinct power phases in post-processing (Sec V.A).
        phases = post1.phase_average()
        assert phases["simulate+write"] > phases["read+visualize"] + 5

    def test_fig5_insitu_flat(self, lab):
        profiles = run_experiment("fig5", lab).data
        insitu1 = profiles[("in-situ", 1)]
        assert len(insitu1.phase_average()) == 1

    def test_fig6_stage_powers(self, lab):
        profiles = run_experiment("fig6", lab).data
        assert profiles["nnwrite"].average() == pytest.approx(114.8, abs=1.0)
        assert profiles["nnread"].average() == pytest.approx(115.1, abs=1.0)

    def test_fig7_insitu_always_faster(self, lab):
        rows = run_experiment("fig7", lab).data
        for r in rows:
            assert r.time_insitu_s < r.time_post_s
        # Benefit shrinks as I/O cadence drops.
        reductions = [r.time_reduction_pct for r in rows]
        assert reductions == sorted(reductions, reverse=True)

    def test_fig8_insitu_power_higher(self, lab):
        rows = run_experiment("fig8", lab).data
        for r in rows:
            assert 0 < r.avg_power_increase_pct < 12

    def test_fig9_peak_similar(self, lab):
        rows = run_experiment("fig9", lab).data
        for r in rows:
            assert abs(r.peak_power_delta_pct) < 4

    def test_fig10_savings_match_paper(self, lab):
        rows = run_experiment("fig10", lab).data
        by_case = {r.case_index: r.energy_savings_pct for r in rows}
        assert by_case[1] == pytest.approx(43, abs=2)
        assert by_case[2] == pytest.approx(30, abs=2.5)
        # Case 3: the paper prints 18 %; its own Figs 8+10 imply ~12 %
        # (see EXPERIMENTS.md) — we assert the consistent value.
        assert by_case[3] == pytest.approx(12, abs=2.5)
        # Monotone decline with decreasing I/O share.
        assert by_case[1] > by_case[2] > by_case[3]

    def test_fig11_efficiency_ordering(self, lab):
        norm = run_experiment("fig11", lab).data
        for post_eff, insitu_eff in norm.values():
            assert insitu_eff > post_eff
        assert max(v for pair in norm.values() for v in pair) == pytest.approx(1.0)

    def test_table2(self, lab):
        table = run_experiment("table2", lab).data
        t2 = PAPER["table2"]
        assert table["nnread"].avg_total_w == pytest.approx(
            t2["nnread"]["total_w"], abs=1.0)
        assert table["nnwrite"].avg_total_w == pytest.approx(
            t2["nnwrite"]["total_w"], abs=1.0)
        assert table["nnread"].avg_dynamic_w == pytest.approx(
            t2["nnread"]["dynamic_w"], abs=1.0)

    def test_sec5c_static_dominates(self, lab):
        analyses = run_experiment("sec5c", lab).data
        b = analyses[1].breakdown
        assert b.static_fraction == pytest.approx(0.91, abs=0.03)

    def test_table3_who_wins(self, lab):
        results = run_experiment("table3", lab).data
        assert results["rand_read"].elapsed_s > 50 * results["seq_read"].elapsed_s
        assert results["rand_write"].elapsed_s == pytest.approx(31.0, rel=0.03)

    def test_sec5d_headline(self, lab):
        report = run_experiment("sec5d", lab).data
        assert report.random_io_energy_j == pytest.approx(242_200, rel=0.03)
        assert report.sequential_io_energy_j == pytest.approx(7_300, rel=0.06)

    def test_ext_devices_gap_collapses(self, lab):
        data = run_experiment("ext-devices", lab).data
        assert data["hdd"]["rand_seq_energy_ratio"] > 20
        assert data["ssd"]["rand_seq_energy_ratio"] < 5
        assert data["nvram"]["rand_seq_energy_ratio"] < 2

    def test_ext_multinode_total_energy(self, lab):
        data = run_experiment("ext-multinode", lab).data
        # Two nodes must cost more than the in-transit compute node alone.
        assert data["total_energy_j"] > data["intransit"].energy_j

    def test_ext_advisor_decisions(self, lab):
        from repro.runtime import Technique

        data = run_experiment("ext-advisor", lab).data
        decisions = {name: rec.technique for name, rec in data.items()}
        assert decisions["batch, random I/O, no exploration"] is Technique.IN_SITU
        assert decisions["random I/O, exploration needed"] is Technique.DATA_REORGANIZATION
