"""Deterministic named RNG streams."""

import numpy as np

from repro.rng import DEFAULT_SEED, RngRegistry, stream


class TestStream:
    def test_same_name_same_seed_reproducible(self):
        a = stream("meter-noise").normal(size=10)
        b = stream("meter-noise").normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_distinct_names_are_independent(self):
        a = stream("meter-noise").normal(size=10)
        b = stream("seek-offsets").normal(size=10)
        assert not np.array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = stream("x", seed=1).normal(size=10)
        b = stream("x", seed=2).normal(size=10)
        assert not np.array_equal(a, b)


class TestRegistry:
    def test_get_caches_stream_state(self):
        reg = RngRegistry()
        first = reg.get("s").integers(0, 1000, 5)
        second = reg.get("s").integers(0, 1000, 5)
        # Same generator object: state advances, draws differ.
        assert not np.array_equal(first, second)

    def test_two_registries_same_seed_agree(self):
        a = RngRegistry(7).get("noise").normal(size=8)
        b = RngRegistry(7).get("noise").normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_fork_changes_all_streams(self):
        parent = RngRegistry()
        child = parent.fork("run-1")
        assert child.seed != parent.seed
        a = parent.get("noise").normal(size=8)
        b = child.get("noise").normal(size=8)
        assert not np.array_equal(a, b)

    def test_fork_is_deterministic(self):
        a = RngRegistry(3).fork("x").get("n").normal(size=4)
        b = RngRegistry(3).fork("x").get("n").normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_default_seed_exposed(self):
        assert RngRegistry().seed == DEFAULT_SEED
