"""The sharded serving tier: ring, admission, routing, replication.

Covers the cluster promises layered on top of ``repro serve``:

* the consistent-hash ring is deterministic, balanced, and remaps only
  a dead shard's keys (every other shard keeps its working set);
* the admission gate bounds queue depth and sheds with a 503 +
  ``Retry-After`` instead of queueing unboundedly;
* the router places keys on their owner shard, fails over around dead
  shards, promotes hot keys onto replicas, and invalidates coherently;
* a cold-key storm through the router performs exactly one compute
  cluster-wide, and every reply is byte-identical (same sha256 digest)
  to a single-node ``ExperimentService`` serving the same key;
* the keep-alive :class:`ServiceClient` re-uses its connection, bounds
  every round trip, and retries transport failures and 503 sheds with
  the deterministic ``RetryPolicy`` schedule.

``LocalCluster`` hosts shards on threads behind real loopback HTTP, so
these tests exercise the exact wire protocol the forked deployment
(``repro cluster``) speaks; one ``SpawnedCluster`` smoke test covers
the process-per-shard path end to end.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.cluster import (
    AdmissionGate,
    AdmissionPolicy,
    ClusterConfig,
    HashRing,
    LocalCluster,
    RouterConfig,
    SpawnedCluster,
    shard_names,
)
from repro.cluster.router import HotKeyTracker
from repro.cluster.shard import shard_stats_totals
from repro.errors import ConfigError, ServiceError
from repro.experiments.engine import cache_key, load_result, warm_lab
from repro.experiments.registry import EXPERIMENTS
from repro.faults.retry import RetryPolicy
from repro.service import ExperimentService, ServiceConfig
from repro.service.client import ServiceClient
from repro.service.http import result_digest

SEED = 2015

#: Keys reserved per test so the module-scoped cluster stays coherent:
#: fig4 -> routing, table2 -> hot promotion + invalidation, fig9 -> storm.


def _await(predicate, timeout_s: float = 10.0, interval_s: float = 0.02):
    """Poll ``predicate`` until truthy; its value (fails the test late)."""
    deadline = time.monotonic() + timeout_s
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            return value
        time.sleep(interval_s)


# -- pure units -------------------------------------------------------------------


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        names = shard_names(4)
        a, b = HashRing(names), HashRing(names)
        for i in range(50):
            key = cache_key("fig4", SEED + i)
            assert a.preference(key) == b.preference(key)

    def test_preference_lists_distinct_shards_in_order(self):
        ring = HashRing(shard_names(4))
        prefs = ring.preference("some-key")
        assert sorted(prefs) == shard_names(4)
        assert ring.preference("some-key", n=2) == prefs[:2]
        assert ring.primary("some-key") == prefs[0]

    def test_dead_shard_remaps_only_its_own_keys(self):
        ring = HashRing(shard_names(4))
        keys = [f"key-{i}" for i in range(400)]
        before = {k: ring.primary(k) for k in keys}
        alive = [n for n in shard_names(4) if n != "shard-1"]
        for key in keys:
            after = ring.primary(key, alive=alive)
            if before[key] == "shard-1":
                assert after in alive  # failed over to a live successor
            else:
                assert after == before[key]  # everyone else undisturbed

    def test_virtual_nodes_keep_shares_roughly_uniform(self):
        ring = HashRing(shard_names(4))
        share = ring.share(f"key-{i}" for i in range(2000))
        assert sum(share.values()) == 2000
        assert min(share.values()) > 0
        assert max(share.values()) / min(share.values()) < 2.5

    def test_fewer_live_shards_than_requested(self):
        ring = HashRing(shard_names(3))
        assert ring.preference("k", n=5, alive=["shard-2"]) == ["shard-2"]
        assert ring.primary("k", alive=[]) is None
        assert ring.preference("k", alive=["not-a-shard"]) == []

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigError):
            HashRing([])
        with pytest.raises(ConfigError):
            HashRing(["a", "a"])
        with pytest.raises(ConfigError):
            HashRing(["a"], vnodes=0)


class TestAdmissionGate:
    def test_sheds_past_the_watermark(self):
        gate = AdmissionGate(AdmissionPolicy(max_queue_depth=2,
                                             retry_after_s=0.5))
        assert gate.admit() and gate.admit()
        assert not gate.admit()  # depth == watermark: shed
        gate.release()
        assert gate.admit()  # a release frees a slot
        stats = gate.stats()
        assert stats["admitted"] == 3
        assert stats["shed"] == 1
        assert stats["peak_depth"] == 2

    def test_release_without_admit_is_a_bug(self):
        gate = AdmissionGate()
        with pytest.raises(ConfigError):
            gate.release()

    def test_depth_balances_under_concurrency(self):
        gate = AdmissionGate(AdmissionPolicy(max_queue_depth=8))
        outcomes = []
        lock = threading.Lock()

        def churn():
            for _ in range(200):
                admitted = gate.admit()
                if admitted:
                    gate.release()
                with lock:
                    outcomes.append(admitted)

        threads = [threading.Thread(target=churn) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert gate.depth == 0
        stats = gate.stats()
        assert stats["admitted"] + stats["shed"] == len(outcomes) == 1600
        assert stats["peak_depth"] <= 8

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(retry_after_s=0)


class TestHotKeyTracker:
    def test_only_cached_hits_heat_a_key(self):
        tracker = HotKeyTracker(threshold=2)
        for _ in range(10):
            tracker.record("k", "fig4", SEED, cached=False)
        assert not tracker.is_hot("k")  # computes/coalesced never promote
        assert tracker.record("k", "fig4", SEED, cached=True) == (False, [])
        promoted, _ = tracker.record("k", "fig4", SEED, cached=True)
        assert promoted  # exactly at the threshold crossing...
        promoted, _ = tracker.record("k", "fig4", SEED, cached=True)
        assert not promoted  # ...and only there
        assert tracker.is_hot("k")
        assert tracker.hot_count() == 1

    def test_lru_eviction_reports_demoted_hot_keys(self):
        tracker = HotKeyTracker(threshold=1, max_keys=2)
        tracker.record("a", "fig4", SEED, cached=True)  # hot
        tracker.record("b", "fig5", SEED, cached=False)  # cold
        _, demoted = tracker.record("c", "fig6", SEED, cached=False)
        assert demoted == [("fig4", SEED)]  # evicting hot "a" demotes it
        _, demoted = tracker.record("d", "fig7", SEED, cached=False)
        assert demoted == []  # evicting cold "b" does not

    def test_reset_forgets_heat(self):
        tracker = HotKeyTracker(threshold=1)
        tracker.record("k", "fig4", SEED, cached=True)
        assert tracker.is_hot("k")
        tracker.reset("k")
        assert not tracker.is_hot("k")

    def test_rotation_spreads_over_slots(self):
        tracker = HotKeyTracker(threshold=1)
        assert tracker.next_slot("unknown") == 0
        tracker.record("k", "fig4", SEED, cached=True)
        assert [tracker.next_slot("k") % 2 for _ in range(4)] == [1, 0, 1, 0]


class TestShardStatsTotals:
    def test_aggregates_and_skips_dead_shards(self):
        totals = shard_stats_totals({
            "shard-0": {"requests": 3, "computed": 1,
                        "memory": {"hits": 2},
                        "admission": {"depth": 1, "shed": 4}},
            "shard-1": {"requests": 2, "disk_hits": 2},
            "shard-2": {"error": "unreachable"},
        })
        assert totals["requests"] == 5
        assert totals["computed"] == 1
        assert totals["disk_hits"] == 2
        assert totals["memory_hits"] == 2
        assert totals["queue_depth"] == 1
        assert totals["shed"] == 4


class TestConfigValidation:
    def test_cluster_config_bounds(self):
        with pytest.raises(ConfigError):
            ClusterConfig(shards=0)
        with pytest.raises(ConfigError):
            ClusterConfig(replicas=0)
        with pytest.raises(ConfigError):
            shard_names(0)

    def test_router_config_bounds(self):
        with pytest.raises(ConfigError):
            RouterConfig(replicas=0)
        with pytest.raises(ConfigError):
            RouterConfig(hot_threshold=0)
        with pytest.raises(ConfigError):
            RouterConfig(health_interval_s=0)


# -- a live local cluster ---------------------------------------------------------


@pytest.fixture(scope="module")
def cluster_dir(tmp_path_factory) -> str:
    """A shared cache directory pre-primed with the warm-Lab snapshot."""
    path = str(tmp_path_factory.mktemp("cluster-cache"))
    warm_lab(SEED, path)
    return path


@pytest.fixture(scope="module")
def cluster(cluster_dir):
    config = ClusterConfig(shards=3, replicas=2, jobs=2,
                           cache_dir=cluster_dir, hot_threshold=3)
    with LocalCluster(config) as running:
        yield running


@pytest.fixture(scope="module")
def reference(cluster):
    """An independent single-node service (no shared cache) to diff against."""
    with ExperimentService(ServiceConfig(jobs=2)) as service:
        yield service


@pytest.fixture()
def client(cluster):
    host, port = cluster.router_address
    with ServiceClient(host, port) as running:
        yield running


def _cluster_computed(cluster) -> int:
    return sum(cluster.service(name).stats()["computed"]
               for name in cluster._shard_servers)


class TestClusterServing:
    def test_routing_is_sticky_and_cache_warm(self, cluster, client):
        first = client.run("fig4", SEED)
        second = client.run("fig4", SEED)
        assert second["shard"] == first["shard"]  # one warm home per key
        assert second["source"] == "memory"
        assert second["digest"] == first["digest"]
        assert second["attempts"] == 1
        owner = cluster.router._ring.primary(cache_key("fig4", SEED))
        assert first["shard"] == owner

    @pytest.mark.parametrize("eid", sorted(EXPERIMENTS))
    def test_byte_identity_with_single_node_serve(self, client, reference,
                                                  eid):
        """Every registry id: cluster reply == single-node serve, by digest."""
        expected = result_digest(reference.serve(eid, seed=SEED).result)
        assert client.run(eid, SEED)["digest"] == expected

    def test_router_surfaces_cluster_stats(self, cluster, client):
        client.run("fig4", SEED)
        stats = client.stats()
        assert set(stats) == {"router", "shards", "totals"}
        assert stats["router"]["requests"] >= 1
        assert sorted(stats["shards"]) == shard_names(3)
        assert all(stats["router"]["healthy"].values())
        totals = stats["totals"]
        assert totals["requests"] >= totals["computed"] >= 1
        assert totals["queue_depth"] == 0  # nothing in flight now

    def test_hot_key_is_promoted_and_spread_over_replicas(self, cluster,
                                                          client):
        computed_before = _cluster_computed(cluster)
        reply = None
        for _ in range(4 * cluster.config.hot_threshold):
            reply = client.run("table2", SEED)
            if reply["hot"]:
                break
        assert reply is not None and reply["hot"]
        router_stats = cluster.router.stats()["router"]
        assert router_stats["promotions"] >= 1
        assert router_stats["hot_keys"] >= 1
        # Requests now rotate across the replica set; replicas warm
        # themselves from the shared disk tier, so the spread costs no
        # extra computes cluster-wide.
        replies = [client.run("table2", SEED) for _ in range(8)]
        assert len({r["shard"] for r in replies}) >= 2
        assert len({r["digest"] for r in replies}) == 1
        assert _cluster_computed(cluster) - computed_before <= 1
        # Wait for the background replica warm to settle so later tests
        # observe a quiescent cluster.
        key = cache_key("table2", SEED)
        owner, replica = cluster.router._ring.preference(key)[:2]
        assert _await(lambda: all(
            cluster.service(name)._mem.get(key) is not None
            for name in (owner, replica)))

    def test_invalidation_is_coherent_across_replicas(self, cluster,
                                                      cluster_dir, client):
        # Ensure the key is cached somewhere (possibly replicated)...
        reply = client.run("table2", SEED)
        outcome = client.invalidate("table2", SEED)
        assert outcome["invalidated"]
        assert sorted(outcome["shards"]) == shard_names(3)
        # ...and afterwards no tier anywhere still holds it.
        key = cache_key("table2", SEED)
        for name in shard_names(3):
            assert cluster.service(name)._mem.get(key) is None
        assert load_result(cluster_dir, "table2", SEED) is None
        computed_before = _cluster_computed(cluster)
        fresh = client.run("table2", SEED)
        assert fresh["source"] == "computed"
        assert fresh["digest"] == reply["digest"]
        assert _cluster_computed(cluster) - computed_before == 1

    def test_cold_storm_computes_exactly_once_cluster_wide(self, cluster,
                                                           client):
        """32 concurrent cold requests for one key -> one compute total."""
        client.invalidate("fig9", SEED)  # make the key cold everywhere
        computed_before = _cluster_computed(cluster)
        host, port = cluster.router_address
        n_threads = 32
        barrier = threading.Barrier(n_threads)
        replies, failures = [], []
        lock = threading.Lock()

        def storm():
            try:
                with ServiceClient(host, port) as mine:
                    barrier.wait(timeout=30)
                    reply = mine.run("fig9", SEED)
                with lock:
                    replies.append(reply)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    failures.append(exc)

        threads = [threading.Thread(target=storm) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures
        assert len(replies) == n_threads
        assert len({r["digest"] for r in replies}) == 1
        assert _cluster_computed(cluster) - computed_before == 1

    def test_unknown_experiment_maps_to_400_not_failover(self, cluster,
                                                         client):
        failovers_before = cluster.router.stats()["router"]["failovers"]
        with pytest.raises(ServiceError) as excinfo:
            client.run("not-an-experiment", SEED)
        assert excinfo.value.status == 400
        # A request-level error is not a shard fault: no fail-over.
        assert cluster.router.stats()["router"]["failovers"] == failovers_before

    def test_router_health_and_status_endpoints(self, cluster, client):
        health = client.health()
        assert health["status"] == "ok"
        assert sorted(health["healthy"]) == shard_names(3)
        status = client.status()
        assert status["role"] == "router"
        assert sorted(EXPERIMENTS) == sorted(status["experiments"])
        assert [s["name"] for s in status["shards"]] == shard_names(3)


class TestFailover:
    def test_requests_route_around_a_dead_shard(self, cluster_dir):
        config = ClusterConfig(shards=2, replicas=1, jobs=1,
                               cache_dir=cluster_dir)
        with LocalCluster(config) as cluster:
            first = cluster.router.route("fig6", SEED)
            victim = first["shard"]
            survivor = next(n for n in shard_names(2) if n != victim)
            cluster.stop_shard(victim)
            second = cluster.router.route("fig6", SEED)
            assert second["shard"] == survivor
            assert second["digest"] == first["digest"]
            assert second["attempts"] > 1  # the dead owner was tried first
            health = cluster.router.healthy()
            assert health[victim] is False and health[survivor] is True
            # Once marked dead, the ring routes straight to the survivor.
            assert cluster.router.route("fig6", SEED)["attempts"] == 1

    def test_no_live_shard_raises_promptly(self, cluster_dir):
        config = ClusterConfig(shards=2, replicas=1, jobs=1,
                               cache_dir=cluster_dir)
        with LocalCluster(config) as cluster:
            for name in shard_names(2):
                cluster.stop_shard(name)
            with pytest.raises(ServiceError) as excinfo:
                cluster.router.route("fig6", SEED)
            assert excinfo.value.status is None  # transport, not a shed
            # Every candidate is now marked dead: the next request fails
            # without probing sockets at all.
            with pytest.raises(ServiceError, match="no healthy shards"):
                cluster.router.route("fig6", SEED)


class TestAdmissionShedding:
    @pytest.fixture()
    def tiny_cluster(self, cluster_dir):
        """One shard, queue depth 1, with a compute we can hold open."""
        config = ClusterConfig(shards=1, replicas=1, jobs=1,
                               cache_dir=cluster_dir,
                               max_queue_depth=1, retry_after_s=0.05)
        with LocalCluster(config) as cluster:
            service = cluster.service("shard-0")
            release = threading.Event()
            original = service._compute
            service._compute = lambda eid, lab: (release.wait(30),
                                                 original(eid, lab))[1]
            try:
                yield cluster, release
            finally:
                release.set()

    def test_overload_sheds_with_retry_after_and_recovers(self, tiny_cluster):
        cluster, release = tiny_cluster
        host, port = cluster.router_address
        service = cluster.service("shard-0")
        service.invalidate("fig8", SEED)
        service.invalidate("fig10", SEED)

        occupant_done = []

        def occupy():
            with ServiceClient(host, port) as held:
                occupant_done.append(held.run("fig8", SEED))

        occupant = threading.Thread(target=occupy, daemon=True)
        occupant.start()
        gate = cluster._shard_servers["shard-0"].gate
        assert _await(lambda: gate.depth >= 1)  # the slot is held open

        # A second, distinct cold key now exceeds the watermark: the
        # shard sheds, and the router propagates the 503 + hint instead
        # of spilling the key onto a non-owner.
        with ServiceClient(host, port,
                           retry=RetryPolicy(max_attempts=1)) as no_retry:
            with pytest.raises(ServiceError) as excinfo:
                no_retry.run("fig10", SEED)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after_s == pytest.approx(0.05)
            assert cluster.router.stats()["router"]["sheds"] >= 1

            # Repeated sheds on ONE keep-alive connection must each be a
            # clean 503: the shed path replies before parsing the POST
            # body, and an undrained body would desync the connection (the
            # next request would read it as a request line).
            for _ in range(3):
                with pytest.raises(ServiceError) as again:
                    no_retry.run("fig10", SEED)
                assert again.value.status == 503
            assert no_retry.transport_stats()["connects"] == 1

        # A retrying client honours the hint and succeeds once the
        # occupant drains.
        with ServiceClient(host, port, retry=RetryPolicy(
                max_attempts=50, backoff_base_s=0.05, backoff_factor=1.0,
                jitter_fraction=0.0)) as retrying:
            release.set()
            reply = retrying.run("fig10", SEED)
        assert reply["experiment"] == "fig10"
        occupant.join(timeout=30)
        assert occupant_done and occupant_done[0]["experiment"] == "fig8"
        assert gate.stats()["shed"] >= 1
        assert gate.depth == 0


class TestServiceClient:
    def test_keep_alive_reuses_one_connection(self, cluster):
        host, port = cluster.router_address
        with ServiceClient(host, port) as client:
            for _ in range(5):
                client.health()
            assert client.transport_stats()["connects"] == 1

    def test_dead_endpoint_fails_promptly_after_bounded_retries(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        with ServiceClient("127.0.0.1", dead_port,
                           connect_timeout_s=1.0,
                           retry=RetryPolicy(max_attempts=2,
                                             backoff_base_s=0.01,
                                             jitter_fraction=0.0)) as client:
            start = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.health()
            assert time.monotonic() - start < 5.0
            assert excinfo.value.status is None  # transport, not HTTP
            assert client.transport_stats()["retries"] == 1

    def test_invalid_timeouts_rejected(self):
        with pytest.raises(ConfigError):
            ServiceClient(connect_timeout_s=0)
        with pytest.raises(ConfigError):
            ServiceClient(read_timeout_s=-1)

    def test_retry_after_header_parsing(self):
        from repro.service.client import _retry_after_s

        assert _retry_after_s("0.25") == 0.25
        assert _retry_after_s("0") == 0.0
        assert _retry_after_s(None) is None
        assert _retry_after_s("soon") is None
        assert _retry_after_s("-1") is None


class TestSpawnedCluster:
    def test_process_shards_serve_end_to_end(self, cluster_dir, reference):
        """The forked deployment speaks the same protocol, byte for byte."""
        config = ClusterConfig(shards=2, replicas=1, jobs=1,
                               cache_dir=cluster_dir)
        with SpawnedCluster(config) as cluster:
            host, port = cluster.serve_in_background()
            with ServiceClient(host, port) as client:
                reply = client.run("fig4", SEED)
                expected = result_digest(
                    reference.serve("fig4", seed=SEED).result)
                assert reply["digest"] == expected
                assert reply["shard"] in shard_names(2)
                stats = client.stats()
                assert sorted(stats["shards"]) == shard_names(2)
                assert all(stats["router"]["healthy"].values())
