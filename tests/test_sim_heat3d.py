"""3-D heat solver: stability, physics, analytic convergence."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.heat import BoundaryCondition
from repro.sim.heat3d import Grid3D, HeatSolver3D, HeatSource3D, laplacian_7pt


def hot_box(n=20) -> Grid3D:
    g = Grid3D(n, n, n)
    lo, hi = n // 4, n // 2
    g.data[lo:hi, lo:hi, lo:hi] = 100.0
    return g


class TestGrid3D:
    def test_geometry(self):
        g = Grid3D(9, 9, 9, extent=2.0)
        assert g.h == pytest.approx(0.25)
        assert g.n_cells == 729
        assert g.nbytes == 729 * 8

    def test_validation(self):
        with pytest.raises(SimulationError):
            Grid3D(2, 9, 9)
        with pytest.raises(SimulationError):
            Grid3D(9, 9, 9, extent=0)

    def test_serialization_size(self):
        assert len(Grid3D(4, 5, 6).to_bytes()) == 4 * 5 * 6 * 8


class TestLaplacian7pt:
    def test_linear_field_is_harmonic(self):
        x, y, z = np.meshgrid(*[np.linspace(0, 1, 12)] * 3, indexing="ij")
        lap = laplacian_7pt(x + 2 * y - z, h=1 / 11)
        np.testing.assert_allclose(lap, 0.0, atol=1e-9)

    def test_quadratic(self):
        x, y, z = np.meshgrid(*[np.linspace(0, 1, 24)] * 3, indexing="ij")
        lap = laplacian_7pt(x ** 2 + y ** 2 + z ** 2, h=1 / 23)
        np.testing.assert_allclose(lap, 6.0, rtol=1e-6)

    def test_validation(self):
        with pytest.raises(SimulationError):
            laplacian_7pt(np.zeros((2, 5, 5)), 0.1)
        with pytest.raises(SimulationError):
            laplacian_7pt(np.zeros((5, 5, 5)), 0.0)


class TestSolver3D:
    def test_cfl_enforced(self):
        g = hot_box()
        limit = HeatSolver3D(hot_box()).cfl_limit()
        with pytest.raises(SimulationError):
            HeatSolver3D(g, dt=2 * limit)

    def test_max_principle(self):
        s = HeatSolver3D(hot_box())
        lo0, hi0 = s.grid.minmax()
        s.step(100)
        lo, hi = s.grid.minmax()
        assert lo >= lo0 - 1e-12
        assert hi <= hi0 + 1e-12

    def test_insulated_conservation(self):
        g = hot_box()
        s = HeatSolver3D(g, bc=BoundaryCondition.NEUMANN)
        e0 = g.data[1:-1, 1:-1, 1:-1].sum()
        s.step(50)
        assert g.data[1:-1, 1:-1, 1:-1].sum() == pytest.approx(e0, rel=1e-9)

    def test_source_heats(self):
        g = Grid3D(16, 16, 16)
        s = HeatSolver3D(g, sources=(HeatSource3D((4, 4, 4), (8, 8, 8), 50.0),),
                         bc=BoundaryCondition.NEUMANN)
        s.step(20)
        assert g.data[5, 5, 5] > 1.0

    def test_source_validation(self):
        with pytest.raises(SimulationError):
            HeatSource3D((4, 4, 4), (4, 8, 8), 1.0)
        with pytest.raises(SimulationError):
            HeatSolver3D(Grid3D(8, 8, 8),
                         sources=(HeatSource3D((0, 0, 0), (20, 2, 2), 1.0),))

    def test_converges_to_analytic_mode(self):
        """sin(pi x) sin(pi y) sin(pi z) decays as exp(-3 pi^2 a t)."""
        n = 33
        g = Grid3D(n, n, n)
        axes = [np.linspace(0, 1, n)] * 3
        x, y, z = np.meshgrid(*axes, indexing="ij")
        g.data[:] = np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
        alpha = 1e-3
        s = HeatSolver3D(g, alpha=alpha, boundary_value=0.0)
        s.step(300)
        expected = np.exp(-3 * np.pi ** 2 * alpha * s.time)
        assert g.data[n // 2, n // 2, n // 2] == pytest.approx(expected, rel=1e-2)

    def test_divergence_detected(self):
        s = HeatSolver3D(hot_box())
        s.grid.data[5, 5, 5] = np.inf
        with np.errstate(invalid="ignore"), pytest.raises(SimulationError):
            s.step()
