"""Machine specifications: Table I values and calibration invariants."""

import pytest

from repro.errors import ConfigError
from repro.machine import CpuSpec, DiskSpec, DramSpec, MachineSpec, paper_testbed
from repro.units import GiB, MiB


class TestTable1:
    """Nameplate values must match the paper's Table I exactly."""

    def test_cpu(self):
        spec = paper_testbed()
        assert spec.cpu.model == "Intel Xeon E5-2665"
        assert spec.cpu.sockets == 2
        assert spec.cpu.total_cores == 16
        assert spec.cpu.base_freq_hz == pytest.approx(2.4e9)
        assert spec.cpu.llc_bytes == 20 * MiB

    def test_memory(self):
        spec = paper_testbed()
        assert spec.dram.capacity_bytes == 64 * GiB
        assert spec.dram.dimms == 4
        assert spec.dram.kind == "DDR3-1333"

    def test_disk(self):
        spec = paper_testbed()
        assert spec.disk.capacity_bytes == 500 * 10 ** 9
        assert spec.disk.rpm == 7200
        assert spec.disk.interface_bw_bytes_per_s == pytest.approx(750e6)

    def test_table1_rows_render(self):
        rows = paper_testbed().table1_rows()
        as_dict = dict(rows)
        assert as_dict["CPU"] == "2x Intel Xeon E5-2665"
        assert as_dict["CPU frequency"] == "2.4 GHz"
        assert as_dict["Last-level cache"] == "20 MB"
        assert as_dict["Memory size"] == "64 GB"
        assert as_dict["Storage size"] == "500GB"
        assert as_dict["Disk bandwidth"] == "6.0 Gbps"


class TestCalibration:
    """Power-floor calibration anchors from Table II / Section V."""

    def test_idle_system_is_static_floor(self):
        # Table II: nnwrite 114.8 W total at 10.0 W dynamic => 104.8 W floor.
        assert paper_testbed().idle_system_w == pytest.approx(104.8, abs=0.05)

    def test_disk_bandwidths_match_fio(self):
        d = paper_testbed().disk
        assert 4 * GiB / d.seq_read_bw == pytest.approx(35.9)
        assert 4 * GiB / d.seq_write_bw == pytest.approx(27.0)

    def test_disk_power_coefficients_match_fio(self):
        d = paper_testbed().disk
        assert d.read_energy_per_byte_j * d.seq_read_bw == pytest.approx(13.5)
        assert d.write_energy_per_byte_j * d.seq_write_bw == pytest.approx(10.9)


class TestValidation:
    def test_cpu_rejects_zero_sockets(self):
        with pytest.raises(ConfigError):
            CpuSpec(sockets=0)

    def test_cpu_rejects_negative_power(self):
        with pytest.raises(ConfigError):
            CpuSpec(idle_w=-1)

    def test_cpu_rejects_bad_alpha(self):
        with pytest.raises(ConfigError):
            CpuSpec(alpha=0)

    def test_dram_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            DramSpec(capacity_bytes=0)

    def test_disk_rejects_bad_rpm(self):
        with pytest.raises(ConfigError):
            DiskSpec(rpm=0)

    def test_specs_are_frozen(self):
        spec = paper_testbed()
        with pytest.raises(AttributeError):
            spec.cpu.sockets = 4  # type: ignore[misc]
