"""Page cache: write-back, sync, drop_caches — the paper's methodology knobs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.machine import HddModel
from repro.machine.specs import DiskSpec
from repro.system import BlockQueue, PageCache
from repro.units import KiB, MiB


def make_cache(**kw) -> PageCache:
    return PageCache(BlockQueue(HddModel(DiskSpec())), **kw)


class TestWriteBack:
    def test_buffered_write_touches_no_disk(self):
        cache = make_cache()
        op = cache.write(0, 128 * KiB)
        assert op.io.busy_time == 0.0
        assert op.cpu_time > 0
        assert cache.dirty_pages == 32

    def test_sync_writes_dirty_pages(self):
        cache = make_cache()
        cache.write(0, 128 * KiB)
        op = cache.sync()
        assert op.io.bytes_written == 128 * KiB
        assert cache.dirty_pages == 0
        assert cache.cached_pages == 32  # pages stay cached, now clean

    def test_sync_idempotent(self):
        cache = make_cache()
        cache.write(0, 64 * KiB)
        cache.sync()
        second = cache.sync()
        assert second.io.bytes_written == 0

    def test_writeback_coalesces_contiguous_pages(self):
        cache = make_cache()
        cache.write(0, 1 * MiB)
        op = cache.sync()
        assert op.io.n_writes == 1  # one coalesced request

    def test_dirty_limit_triggers_writeback(self):
        cache = make_cache(capacity_bytes=1 * MiB, dirty_limit_fraction=0.25)
        op = cache.write(0, 512 * KiB)  # over the 256 KiB dirty limit
        assert op.io.n_writes > 0  # kernel pushed pages to the device
        assert cache.dirty_pages == 0


class TestReadPath:
    def test_cold_read_hits_disk(self):
        cache = make_cache()
        op = cache.read(0, 128 * KiB)
        assert op.io.bytes_read == 128 * KiB
        assert cache.stats.read_misses == 32

    def test_warm_read_is_memory_speed(self):
        cache = make_cache()
        cache.read(0, 128 * KiB)
        op = cache.read(0, 128 * KiB)
        assert op.io.busy_time == 0.0
        assert cache.stats.read_hits == 32

    def test_read_your_writes_without_disk(self):
        cache = make_cache()
        cache.write(0, 64 * KiB)
        op = cache.read(0, 64 * KiB)
        assert op.io.busy_time == 0.0  # served from dirty pages

    def test_partial_miss_fetches_only_missing(self):
        cache = make_cache()
        cache.read(0, 64 * KiB)          # pages 0..15 cached
        op = cache.read(0, 128 * KiB)    # pages 16..31 missing
        assert op.io.bytes_read == 64 * KiB

    def test_hit_rate(self):
        cache = make_cache()
        cache.read(0, 64 * KiB)
        cache.read(0, 64 * KiB)
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestDropCaches:
    def test_drop_evicts_clean_pages(self):
        cache = make_cache()
        cache.read(0, 128 * KiB)
        cache.drop_caches()
        assert cache.cached_pages == 0
        # Next read is cold again — the paper's guarantee.
        op = cache.read(0, 128 * KiB)
        assert op.io.bytes_read == 128 * KiB

    def test_drop_preserves_dirty_pages(self):
        cache = make_cache()
        cache.write(0, 64 * KiB)
        cache.drop_caches()
        assert cache.dirty_pages == 16
        assert cache.cached_pages == 16

    def test_sync_then_drop_forces_cold_io(self):
        """The paper's exact between-phases procedure."""
        cache = make_cache()
        cache.write(0, 128 * KiB)
        cache.sync()
        cache.drop_caches()
        assert cache.cached_pages == 0
        op = cache.read(0, 128 * KiB)
        assert op.io.bytes_read == 128 * KiB


class TestCapacity:
    def test_eviction_keeps_cache_bounded(self):
        cache = make_cache(capacity_bytes=64 * KiB)
        cache.read(0, 256 * KiB)
        assert cache.cached_pages <= 16

    def test_rejects_bad_parameters(self):
        with pytest.raises(StorageError):
            make_cache(capacity_bytes=0)
        with pytest.raises(StorageError):
            make_cache(dirty_limit_fraction=0.0)

    def test_rejects_negative_range(self):
        cache = make_cache()
        with pytest.raises(StorageError):
            cache.read(-1, 10)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 10 * MiB), st.integers(1, 256 * KiB)),
            min_size=1, max_size=20,
        )
    )
    def test_sync_leaves_no_dirty_pages(self, writes):
        cache = make_cache()
        for offset, nbytes in writes:
            cache.write(offset, nbytes)
        cache.sync()
        assert cache.dirty_pages == 0

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "sync", "drop"]),
                st.integers(0, 4 * MiB),
                st.integers(1, 64 * KiB),
            ),
            max_size=30,
        )
    )
    def test_cache_never_exceeds_capacity(self, ops):
        cache = make_cache(capacity_bytes=256 * KiB)
        for kind, offset, nbytes in ops:
            if kind == "read":
                cache.read(offset, nbytes)
            elif kind == "write":
                cache.write(offset, nbytes)
            elif kind == "sync":
                cache.sync()
            else:
                cache.drop_caches()
            assert cache.cached_pages <= cache.capacity_pages
