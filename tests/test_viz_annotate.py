"""Frame annotation: bitmap text and colorbars."""

import numpy as np
import pytest

from repro.errors import RenderError
from repro.viz import Image
from repro.viz.annotate import (
    GLYPH_H,
    annotate_frame,
    draw_colorbar,
    draw_text,
    text_width,
)


class TestDrawText:
    def test_pixels_set(self):
        img = Image(20, 60)
        draw_text(img, "123", 2, 2)
        assert (img.pixels == 255).any()

    def test_color_applied(self):
        img = Image(20, 60)
        draw_text(img, "8", 2, 2, color=(255, 0, 0))
        reds = (img.pixels[..., 0] == 255) & (img.pixels[..., 1] == 0)
        assert reds.any()

    def test_scale_doubles_footprint(self):
        small, big = Image(40, 80), Image(40, 80)
        draw_text(small, "8", 2, 2, scale=1)
        draw_text(big, "8", 2, 2, scale=2)
        assert (big.pixels > 0).sum() == pytest.approx(
            4 * (small.pixels > 0).sum())

    def test_clips_at_border_without_raising(self):
        img = Image(10, 10)
        draw_text(img, "123456789", 5, 5)  # runs off the edge
        assert img.pixels.shape == (10, 10, 3)

    def test_unknown_chars_blank(self):
        img = Image(20, 60)
        draw_text(img, "%%%", 2, 2)
        assert not (img.pixels > 0).any()

    def test_width_helper(self):
        assert text_width("123") == 18
        assert text_width("12", scale=2) == 24

    def test_scale_validated(self):
        with pytest.raises(RenderError):
            draw_text(Image(10, 10), "1", 0, 0, scale=0)


class TestColorbar:
    def test_gradient_on_right_edge(self):
        img = Image(128, 128)
        draw_colorbar(img, "heat", vmin=20.0, vmax=100.0)
        # Inside the bar: hot (bright) at top, cold (dark) at bottom.
        top = img.pixels[8, 120].astype(int).sum()
        bottom = img.pixels[119, 120].astype(int).sum()
        assert top > bottom

    def test_tick_labels_rendered(self):
        img = Image(128, 128)
        draw_colorbar(img, "gray", vmin=0.0, vmax=100.0)
        # Label pixels appear left of the bar.
        label_region = img.pixels[:, :110]
        assert (label_region == 255).any()

    def test_validation(self):
        with pytest.raises(RenderError):
            draw_colorbar(Image(128, 128), "heat", vmin=5.0, vmax=5.0)
        with pytest.raises(RenderError):
            draw_colorbar(Image(128, 128), "heat", 0, 1, ticks=1)
        with pytest.raises(RenderError):
            draw_colorbar(Image(12, 12), "heat", 0, 1)


class TestAnnotateFrame:
    def test_full_annotation_roundtrip(self):
        from repro.viz import render_field
        from repro.viz.image import decode_png_size

        field = np.random.default_rng(0).random((64, 64)) * 80 + 20
        frame = render_field(field, "heat", height=160, width=160)
        annotate_frame(frame.image, "heat", vmin=20, vmax=100,
                       caption="T = 12 S")
        png = frame.image.to_png()
        assert decode_png_size(png) == (160, 160)

    def test_caption_rendered_bottom_left(self):
        img = Image(100, 140)
        annotate_frame(img, "heat", 0, 1, caption="123")
        bottom_left = img.pixels[100 - GLYPH_H - 4 :, :40]
        assert (bottom_left == 255).any()
