"""I/O trace capture and replay."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.machine import DiskRequest, HddModel, OpKind, SsdModel
from repro.machine.specs import DiskSpec
from repro.system import ScanScheduler
from repro.workloads.replay import IoTrace, RecordingQueue, replay
from repro.units import GiB, KiB


def scattered_requests(n=200, seed=5):
    rng = np.random.default_rng(seed)
    return [DiskRequest(OpKind.READ, int(o), 16 * KiB)
            for o in rng.integers(0, 100 * GiB, n)]


class TestRecording:
    def test_capture(self):
        queue = RecordingQueue(HddModel(DiskSpec()))
        reqs = scattered_requests(50)
        queue.submit(reqs)
        assert len(queue.trace) == 50
        assert queue.trace.bytes_read == 50 * 16 * KiB
        assert queue.trace.bytes_written == 0

    def test_capture_preserves_order_and_geometry(self):
        queue = RecordingQueue(HddModel(DiskSpec()))
        reqs = scattered_requests(10)
        queue.submit(reqs)
        for entry, req in zip(queue.trace.entries, reqs):
            assert entry.offset == req.offset
            assert entry.nbytes == req.nbytes


class TestSerialization:
    def test_csv_roundtrip(self):
        queue = RecordingQueue(HddModel(DiskSpec()))
        queue.submit(scattered_requests(20))
        queue.submit([DiskRequest(OpKind.WRITE, 0, 4 * KiB)])
        text = queue.trace.to_csv()
        back = IoTrace.from_csv(text)
        assert len(back) == 21
        assert back.entries[-1].op == "write"
        assert back.to_csv() == text

    def test_bad_csv_rejected(self):
        with pytest.raises(ConfigError):
            IoTrace.from_csv("not,a,trace")
        with pytest.raises(ConfigError):
            IoTrace.from_csv("index,op,offset,nbytes\n0,erase,0,512")


class TestReplay:
    @pytest.fixture
    def trace(self):
        queue = RecordingQueue(HddModel(DiskSpec()))
        queue.submit(scattered_requests(200))
        return queue.trace

    def test_replay_conserves_bytes(self, trace):
        stats = replay(trace, HddModel(DiskSpec()))
        assert stats.bytes_read == trace.bytes_read

    def test_replay_on_faster_device(self, trace):
        hdd = replay(trace, HddModel(DiskSpec()))
        ssd = replay(trace, SsdModel())
        assert ssd.busy_time < hdd.busy_time / 20

    def test_scheduler_helps_within_window(self, trace):
        fifo = replay(trace, HddModel(DiskSpec()), batch=32)
        scan = replay(trace, HddModel(DiskSpec()), ScanScheduler(), batch=32)
        assert scan.busy_time < fifo.busy_time

    def test_bigger_window_helps_more(self, trace):
        """The scheduler's benefit is bounded by its reordering horizon."""
        small = replay(trace, HddModel(DiskSpec()), ScanScheduler(), batch=8)
        large = replay(trace, HddModel(DiskSpec()), ScanScheduler(), batch=128)
        assert large.busy_time < small.busy_time

    def test_write_trace_flushes(self):
        trace = IoTrace()
        for i in range(8):
            trace.append(DiskRequest(OpKind.WRITE, i * 100 * 1024 ** 2,
                                     1024 ** 2))
        stats = replay(trace, HddModel(DiskSpec()))
        assert stats.bytes_written == 8 * 1024 ** 2  # drained to platter

    def test_batch_validated(self, trace):
        with pytest.raises(ConfigError):
            replay(trace, HddModel(DiskSpec()), batch=0)
