"""Consolidated replication-report generator."""

import os

import pytest

from repro.errors import ReproError
from repro.experiments import Lab
from repro.experiments.report import generate_report, write_report


@pytest.fixture(scope="module")
def lab():
    return Lab(seed=2015)


class TestReport:
    def test_subset_report(self, lab):
        text = generate_report(lab, ids=("table1", "fig10"))
        assert "# Replication report" in text
        assert "## table1" in text
        assert "## fig10" in text
        assert "Xeon" in text

    def test_headline_table_present(self, lab):
        text = generate_report(lab, ids=("table1",))
        assert "| case 1 | 43 %" in text
        assert "measured avg-power delta" in text

    def test_unknown_ids_rejected(self, lab):
        with pytest.raises(ReproError):
            generate_report(lab, ids=("fig99",))

    def test_write_report(self, lab, tmp_path):
        path = write_report(str(tmp_path / "sub" / "REPORT.md"), lab,
                            ids=("table1",))
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.read().startswith("# Replication report")

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        # Patch the default ids down for test speed via a tiny report.
        import repro.experiments.report as report_mod

        original = report_mod.DEFAULT_IDS
        report_mod.DEFAULT_IDS = ("table1",)
        try:
            out = str(tmp_path / "REPORT.md")
            assert main(["report", out]) == 0
            assert "wrote" in capsys.readouterr().out
            assert os.path.exists(out)
        finally:
            report_mod.DEFAULT_IDS = original
