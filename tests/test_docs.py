"""Documentation consistency: the docs must track the code."""

import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def read(name: str) -> str:
    with open(os.path.join(ROOT, name)) as fh:
        return fh.read()


class TestDesignDoc:
    def test_every_source_module_is_inventoried(self):
        design = read("DESIGN.md")
        missing = []
        for root, _, files in os.walk(os.path.join(ROOT, "src", "repro")):
            for f in files:
                if not f.endswith(".py") or f.startswith("__"):
                    continue
                if f not in design:
                    missing.append(os.path.join(root, f))
        assert not missing, f"modules absent from DESIGN.md: {missing}"

    def test_every_bench_is_indexed(self):
        design = read("DESIGN.md")
        bench_dir = os.path.join(ROOT, "benchmarks")
        missing = [f for f in os.listdir(bench_dir)
                   if f.startswith("bench_") and f not in design]
        assert not missing, f"benches absent from DESIGN.md: {missing}"

    def test_paper_check_recorded(self):
        design = read("DESIGN.md")
        assert "Paper-text check" in design
        assert "10.1109/IPDPSW.2015.132" in design


class TestExperimentsDoc:
    def test_every_registered_experiment_documented(self):
        from repro.experiments import EXPERIMENTS

        text = read("EXPERIMENTS.md")
        undocumented = [eid for eid in EXPERIMENTS
                        if eid.replace("ext-", "ext_") not in text.replace("ext-", "ext_")
                        and eid not in text]
        assert not undocumented, undocumented

    def test_known_inconsistencies_enumerated(self):
        text = read("EXPERIMENTS.md")
        for marker in ("inconsistency #1", "inconsistency #2", "inconsistency #3"):
            assert marker.lower() in text.lower(), marker

    def test_every_bench_referenced(self):
        text = read("EXPERIMENTS.md")
        bench_dir = os.path.join(ROOT, "benchmarks")
        # Paper-artifact and extension/ablation benches must appear; the
        # conftest is infrastructure.
        missing = [f for f in os.listdir(bench_dir)
                   if f.startswith("bench_") and f not in text]
        assert not missing, f"benches absent from EXPERIMENTS.md: {missing}"


class TestReadme:
    def test_quickstart_symbols_exist(self):
        import repro

        readme = read("README.md")
        for symbol in re.findall(r"from repro import ([\w, ]+)", readme):
            for name in symbol.split(","):
                assert hasattr(repro, name.strip()), name

    def test_install_and_run_commands_present(self):
        readme = read("README.md")
        assert "pip install -e ." in readme
        assert "pytest benchmarks/ --benchmark-only" in readme
        assert "python -m repro" in readme
