"""Greenlint run over the repo's own source tree (tier-1 gate).

The whole point of the linter is that ``src/repro`` stays clean under
it.  Any new unit mix-up, stray ``raise ValueError``, unseeded RNG, or
positional quantity call fails this test, not a code review.
"""

import json
import os

from repro.cli import main
from repro.lint import RULES, lint_paths

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


class TestSelfLint:
    def test_source_tree_is_clean(self):
        result = lint_paths([SRC])
        formatted = "\n".join(f.format() for f in result.findings)
        assert not result.findings, f"greenlint findings:\n{formatted}"

    def test_covers_the_whole_tree(self):
        result = lint_paths([SRC])
        assert result.files_checked >= 100

    def test_intentional_suppressions_are_counted(self):
        # powercap's float-tolerance, the u16 flag mask in storage
        # format, the serving layer's three wall-clock latency reads,
        # the HTTP client's two retry-backoff sleeps, the handler's
        # thread-confined close_connection write, and the five
        # content-keyed memo reads (GL18: keyed on fingerprints, so
        # value-deterministic) are deliberate; they must stay visible
        # as suppressions, not vanish.
        result = lint_paths([SRC])
        assert result.suppressed == 13

    def test_all_eighteen_rule_families_registered(self):
        assert set(RULES) == {f"GL{i}" for i in range(1, 19)}


class TestLintCache:
    def test_round_trip_hits_and_identical_findings(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("import random\nwindow = 3600\n")
        cache = str(tmp_path / "cache")
        cold = lint_paths([str(mod)], cache_dir=cache)
        warm = lint_paths([str(mod)], cache_dir=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)
        assert ([f.format() for f in warm.findings]
                == [f.format() for f in cold.findings])

    def test_edit_invalidates_entry(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("import random\n")
        cache = str(tmp_path / "cache")
        lint_paths([str(mod)], cache_dir=cache)
        mod.write_text("window = 3600\n")
        fresh = lint_paths([str(mod)], cache_dir=cache)
        assert fresh.cache_misses == 1
        assert [f.code for f in fresh.findings] == ["GL2"]

    def test_no_cache_dir_never_counts(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("import random\n")
        result = lint_paths([str(mod)], cache_dir=None)
        assert (result.cache_hits, result.cache_misses) == (0, 0)

    def test_cli_reports_cache_in_json(self, tmp_path, capsys,
                                       monkeypatch):
        mod = tmp_path / "m.py"
        mod.write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--json", str(mod)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"] == {"hits": 0, "misses": 1}
        assert main(["lint", "--json", str(mod)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"] == {"hits": 1, "misses": 0}
        assert main(["lint", "--json", "--no-cache", str(mod)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"] == {"hits": 0, "misses": 0}


class TestCliLint:
    def test_cli_exits_zero_on_clean_tree(self, capsys):
        assert main(["lint", SRC]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_strict_on_clean_tree(self, capsys):
        assert main(["lint", "--strict", SRC]) == 0
        capsys.readouterr()

    def test_cli_json_output(self, capsys):
        assert main(["lint", "--json", SRC]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "greenlint"
        assert payload["findings"] == []
        assert payload["files_checked"] >= 100

    def test_cli_defaults_to_package_tree(self, capsys):
        # No path argument lints the installed repro package itself.
        assert main(["lint"]) == 0
        capsys.readouterr()

    def test_cli_flags_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nraise ValueError('x')\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "GL4" in out
        assert "GL3" in out

    def test_cli_strict_promotes_warnings(self, tmp_path, capsys):
        bad = tmp_path / "warn.py"
        bad.write_text("window = 3600\n")
        assert main(["lint", str(bad)]) == 0
        capsys.readouterr()
        assert main(["lint", "--strict", str(bad)]) == 1
        capsys.readouterr()

    def test_cli_select_subset(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nwindow = 3600\n")
        assert main(["lint", "--select", "GL2", str(bad)]) == 0
        out = capsys.readouterr().out
        assert "GL2" in out
        assert "GL4" not in out

    def test_cli_bad_path_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err
