"""Analysis layer: comparisons, savings, what-if, tables, plots."""

import os

import pytest

from repro.analysis import (
    GreennessReport,
    ascii_bars,
    ascii_series,
    compare_cases,
    format_table,
    save_csv,
    whatif_reorganization,
)
from repro.analysis.comparison import ComparisonRow, normalized_efficiency
from repro.analysis.savings import analyze_savings
from repro.errors import ReproError
from repro.pipelines import PipelineRunner
from repro.workloads import FioRunner, run_case_study


@pytest.fixture(scope="module")
def runner():
    return PipelineRunner(seed=21)


@pytest.fixture(scope="module")
def outcome1(runner):
    return run_case_study(1, runner)


class TestGreennessReport:
    def test_from_run(self, outcome1):
        report = GreennessReport.from_run(outcome1.post)
        assert report.pipeline == "post-processing"
        assert report.energy_j == outcome1.post.energy_j
        text = report.render()
        assert "average power" in text
        assert "energy" in text

    def test_insitu_notes_no_data_io(self, outcome1):
        text = GreennessReport.from_run(outcome1.insitu).render()
        assert "none (in-situ)" in text


class TestComparison:
    def test_rows_built(self, outcome1):
        rows = compare_cases({1: outcome1})
        assert len(rows) == 1
        r = rows[0]
        assert r.energy_savings_pct == pytest.approx(43, abs=2)
        assert r.avg_power_increase_pct == pytest.approx(8, abs=2)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            compare_cases({})

    def test_normalized_efficiency_max_is_one(self, outcome1):
        rows = compare_cases({1: outcome1})
        norm = normalized_efficiency(rows)
        assert max(v for pair in norm.values() for v in pair) == pytest.approx(1.0)

    def test_derived_percentages_consistent(self):
        row = ComparisonRow(1, 200.0, 100.0, 100.0, 110.0, 150.0, 150.0,
                            20000.0, 11000.0)
        assert row.time_reduction_pct == pytest.approx(50)
        assert row.avg_power_increase_pct == pytest.approx(10)
        assert row.energy_savings_pct == pytest.approx(45)
        assert row.efficiency_improvement_pct == pytest.approx(
            100 * (20000 / 11000 - 1)
        )


class TestSavings:
    def test_static_dominates(self, runner, outcome1):
        analysis = analyze_savings(outcome1, runner.node)
        assert analysis.breakdown.static_fraction > 0.8
        assert analysis.breakdown.total_savings_j == pytest.approx(
            outcome1.post.energy_j - outcome1.insitu.energy_j
        )

    def test_table2_inputs_exposed(self, runner, outcome1):
        analysis = analyze_savings(outcome1, runner.node)
        assert analysis.nnread_total_w > analysis.nnread_dynamic_w
        assert 100 < analysis.nnread_total_w < 130

    def test_unmetered_rejected(self, runner):
        from repro.calibration import CASE_STUDIES
        from repro.machine import Node
        from repro.pipelines import InSituPipeline, PipelineConfig, PostProcessingPipeline
        from repro.workloads.proxyapp import CaseStudyOutcome

        config = PipelineConfig(case=CASE_STUDIES[3])
        post = PostProcessingPipeline(config).run(Node())
        insitu = InSituPipeline(config).run(Node())
        with pytest.raises(ReproError):
            analyze_savings(CaseStudyOutcome(3, post, insitu), runner.node)


class TestWhatIf:
    @pytest.fixture(scope="class")
    def fio(self):
        return FioRunner(seed=3).run_table3()

    def test_paper_arithmetic(self, fio):
        report = whatif_reorganization(fio)
        # Paper: 242.2 kJ random vs 7.3 kJ sequential.
        assert report.random_io_energy_j == pytest.approx(242_200, rel=0.03)
        assert report.sequential_io_energy_j == pytest.approx(7_300, rel=0.06)
        assert report.reorg_saves_fraction > 0.9

    def test_break_even_fast(self, fio):
        report = whatif_reorganization(fio)
        assert report.break_even_passes < 0.1

    def test_missing_results_rejected(self, fio):
        with pytest.raises(ReproError):
            whatif_reorganization({"seq_read": fio["seq_read"]})

    def test_custom_overhead(self, fio):
        report = whatif_reorganization(fio, reorg_overhead_j=1e6)
        assert report.break_even_passes == pytest.approx(
            1e6 / report.reorg_saves_j
        )


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "b"], [["x", 1.25], ["y", 3.0]])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "1.2" in out and "3.0" in out

    def test_title(self):
        out = format_table(["a"], [], title="T")
        assert out.startswith("T\n=")

    def test_row_length_checked(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])


class TestPlots:
    def test_bars(self):
        out = ascii_bars(["x", "yy"], [10.0, 20.0], unit=" W")
        assert "#" in out
        assert "20.0 W" in out

    def test_bars_validation(self):
        with pytest.raises(ReproError):
            ascii_bars(["x"], [1.0, 2.0])
        with pytest.raises(ReproError):
            ascii_bars([], [])
        with pytest.raises(ReproError):
            ascii_bars(["x"], [0.0])

    def test_series(self):
        t = list(range(100))
        out = ascii_series(t, {"sys": [100 + (i % 7) for i in t]})
        assert "sys" in out
        assert "|" in out

    def test_series_validation(self):
        with pytest.raises(ReproError):
            ascii_series([1, 2], {"a": [1.0]})
        with pytest.raises(ReproError):
            ascii_series([], {})

    def test_save_csv(self, tmp_path):
        path = save_csv(str(tmp_path / "sub" / "fig.csv"),
                        {"t": [1, 2], "w": [3.0, 4.0]})
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.readline().strip() == "t,w"


class TestEnergyDelayProduct:
    def test_edp_combines_both_wins(self):
        row = ComparisonRow(1, 240.0, 127.0, 125.0, 135.0, 146.0, 146.0,
                            30_000.0, 17_150.0)
        assert row.edp_post == pytest.approx(30_000 * 240)
        assert row.edp_insitu == pytest.approx(17_150 * 127)
        # In-situ wins on both factors, so EDP improvement exceeds the
        # energy savings alone.
        assert row.edp_improvement_pct > row.energy_savings_pct
        assert row.edp_improvement_pct == pytest.approx(69.7, abs=0.5)

    def test_paper_case1_edp(self, outcome1):
        rows = compare_cases({1: outcome1})
        assert rows[0].edp_improvement_pct == pytest.approx(70, abs=3)
