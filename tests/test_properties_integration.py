"""Cross-cutting property and failure-injection tests.

These pin the reproduction's *invariants* rather than its calibrated
values: orderings that must hold for any configuration, conservation
laws across the measurement chain, and the storage stack's behaviour
under deliberate corruption.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import CaseStudyConfig
from repro.errors import FileFormatError, StorageError
from repro.machine import HddModel, Node
from repro.machine.specs import DiskSpec
from repro.pipelines import (
    InSituPipeline,
    PipelineConfig,
    PipelineRunner,
    PostProcessingPipeline,
)
from repro.power import MeterRig
from repro.rng import RngRegistry
from repro.sim import Grid2D
from repro.storage import DataReader, DataWriter
from repro.system import BlockQueue, FileSystem, PageCache
from repro.trace import Activity, Timeline


class TestPipelineInvariants:
    @settings(max_examples=6, deadline=None)
    @given(
        io_period=st.sampled_from([1, 3, 5, 10]),
        iterations=st.sampled_from([6, 15, 25]),
    )
    def test_insitu_dominates_for_any_cadence(self, io_period, iterations):
        """For every I/O cadence: in-situ is faster and cheaper, at equal
        or higher average power — the paper's whole result surface."""
        case = CaseStudyConfig(9, io_period, "property sweep",
                               total_iterations=iterations)
        config = PipelineConfig(case=case, verify_data=False,
                                render_height=32, render_width=32)
        runner = PipelineRunner(seed=73, jitter=0)
        post = runner.run(PostProcessingPipeline(config),
                          run_id=f"prop-post-{io_period}-{iterations}")
        insitu = runner.run(InSituPipeline(config),
                            run_id=f"prop-ins-{io_period}-{iterations}")
        if not case.io_iterations():
            # No I/O events at all: the pipelines are the same program.
            assert insitu.execution_time_s == post.execution_time_s
            return
        assert insitu.execution_time_s < post.execution_time_s
        assert insitu.energy_j < post.energy_j
        assert insitu.average_power_w > post.average_power_w * 0.999

    @settings(max_examples=4, deadline=None)
    @given(io_period=st.sampled_from([1, 4]))
    def test_work_is_identical_across_pipelines(self, io_period):
        case = CaseStudyConfig(9, io_period, "physics check",
                               total_iterations=10)
        config = PipelineConfig(case=case, verify_data=False,
                                render_height=32, render_width=32)
        runner = PipelineRunner(seed=74, jitter=0)
        post = runner.run(PostProcessingPipeline(config),
                          run_id=f"phys-post-{io_period}")
        insitu = runner.run(InSituPipeline(config),
                            run_id=f"phys-ins-{io_period}")
        assert post.extra["final_mean_temperature"] == pytest.approx(
            insitu.extra["final_mean_temperature"], rel=1e-12
        )


class TestMeasurementConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        durations=st.lists(st.floats(0.2, 5.0), min_size=2, max_size=12),
        utils=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=12),
    )
    def test_energy_independent_of_sample_rate(self, durations, utils):
        """Metering the same timeline at 1 Hz and 10 Hz must integrate to
        the same energy (up to the last partial tick)."""
        n = min(len(durations), len(utils))
        tl = Timeline()
        for d, u in zip(durations[:n], utils[:n]):
            tl.record("s", d, Activity(cpu_util=u))
        node = Node()
        energies = []
        for hz in (1.0, 10.0):
            rig = MeterRig(node, sample_hz=hz, jitter=0,
                           monitor_on_node=False, rng=RngRegistry(3))
            energies.append(rig.sample(tl).energy())
        assert energies[0] == pytest.approx(energies[1], rel=0.02)

    def test_rapl_and_wattsup_agree_on_package_share(self):
        """The two measurement paths see the same underlying power."""
        tl = Timeline()
        tl.record("s", 30.0, Activity(cpu_util=0.30, dram_bytes_per_s=5e9))
        rig = MeterRig(Node(), jitter=0, rng=RngRegistry(4))
        profile = rig.sample(tl, include_truth=True)
        # RAPL's package channel vs the truth it was fed.
        assert profile["processor"].mean() == pytest.approx(
            profile["package_true"].mean(), rel=0.01
        )
        # Wattsup's system channel vs true system power.
        assert profile["system"].mean() == pytest.approx(
            profile["system_true"].mean(), rel=0.01
        )


class TestFailureInjection:
    def _fs(self):
        queue = BlockQueue(HddModel(DiskSpec()))
        return FileSystem(queue, cache=PageCache(queue))

    def test_bitflip_detected_by_crc(self):
        fs = self._fs()
        grid = Grid2D.paper_grid()
        grid.data[:] = np.random.default_rng(0).random((128, 128))
        DataWriter(fs).write_timestep(grid, 0)
        # Corrupt one byte of the stored container.
        blob = bytearray(b"".join(fs._contents["ts0000.dat"]))
        blob[len(blob) // 2] ^= 0x40
        fs._contents["ts0000.dat"] = [bytes(blob)]
        with pytest.raises(FileFormatError, match="CRC"):
            DataReader(fs).read_grid(0)

    def test_truncation_detected(self):
        fs = self._fs()
        grid = Grid2D.paper_grid()
        DataWriter(fs).write_timestep(grid, 0)
        fs._contents["ts0000.dat"] = [b"".join(fs._contents["ts0000.dat"])[:100]]
        handle = fs.handle("ts0000.dat")
        handle.extents[:] = handle.map_range(0, 100)
        with pytest.raises(FileFormatError):
            DataReader(fs).read_grid(0)

    def test_header_corruption_detected(self):
        fs = self._fs()
        DataWriter(fs).write_timestep(Grid2D.paper_grid(), 0)
        blob = bytearray(b"".join(fs._contents["ts0000.dat"]))
        blob[0] = 0x00  # smash the magic
        fs._contents["ts0000.dat"] = [bytes(blob)]
        with pytest.raises(FileFormatError, match="magic"):
            DataReader(fs).read_grid(0)

    def test_wrong_codec_flag_rejected(self):
        fs = self._fs()
        DataWriter(fs).write_timestep(Grid2D.paper_grid(), 0)
        blob = bytearray(b"".join(fs._contents["ts0000.dat"]))
        blob[6] = 0x63  # nonsense codec id in the flags field
        fs._contents["ts0000.dat"] = [bytes(blob)]
        with pytest.raises(StorageError):
            DataReader(fs).read_grid(0)
