"""Heat solver physics: stability, conservation, analytic convergence."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import BoundaryCondition, Grid2D, HeatSolver, HeatSource


def hot_block_grid(n=32) -> Grid2D:
    g = Grid2D(n, n)
    g.data[n // 4 : n // 2, n // 4 : n // 2] = 100.0
    return g


class TestStability:
    def test_default_dt_under_cfl(self):
        s = HeatSolver(Grid2D(32, 32))
        assert s.dt <= s.cfl_limit()

    def test_unstable_dt_rejected(self):
        g = Grid2D(32, 32)
        limit = HeatSolver(Grid2D(32, 32)).cfl_limit()
        with pytest.raises(SimulationError):
            HeatSolver(g, dt=2 * limit)

    def test_bad_alpha_rejected(self):
        with pytest.raises(SimulationError):
            HeatSolver(Grid2D(8, 8), alpha=0)

    def test_divergence_detected(self):
        # Bypass the constructor check to plant a non-finite value.
        s = HeatSolver(hot_block_grid())
        s.grid.data[5, 5] = np.inf
        with np.errstate(invalid="ignore"), pytest.raises(SimulationError):
            s.step()


class TestPhysics:
    def test_max_principle_no_source(self):
        """Without sources, the field stays within its initial bounds."""
        s = HeatSolver(hot_block_grid())
        lo0, hi0 = s.grid.minmax()
        s.step(200)
        lo, hi = s.grid.minmax()
        assert lo >= lo0 - 1e-12
        assert hi <= hi0 + 1e-12

    def test_diffusion_smooths(self):
        s = HeatSolver(hot_block_grid())
        var0 = s.grid.data.var()
        s.step(200)
        assert s.grid.data.var() < var0

    def test_insulated_boundaries_conserve_energy(self):
        g = hot_block_grid()
        s = HeatSolver(g, bc=BoundaryCondition.NEUMANN)
        # Interior sum is the conserved quantity for the insulated scheme.
        e0 = g.data[1:-1, 1:-1].sum()
        s.step(100)
        assert g.data[1:-1, 1:-1].sum() == pytest.approx(e0, rel=1e-9)

    def test_dirichlet_drains_heat(self):
        s = HeatSolver(hot_block_grid(), boundary_value=0.0)
        e0 = s.thermal_energy()
        s.step(500)
        assert s.thermal_energy() < e0

    def test_source_heats(self):
        g = Grid2D(32, 32)
        src = HeatSource(10, 14, 10, 14, rate=50.0)
        s = HeatSolver(g, sources=(src,), bc=BoundaryCondition.NEUMANN)
        s.step(50)
        assert g.data[11, 11] > 0
        assert s.thermal_energy() > 0

    def test_source_outside_grid_rejected(self):
        with pytest.raises(SimulationError):
            HeatSolver(Grid2D(8, 8), sources=(HeatSource(0, 20, 0, 2, 1.0),))

    def test_degenerate_source_rejected(self):
        with pytest.raises(SimulationError):
            HeatSource(3, 3, 0, 2, 1.0)

    def test_converges_to_analytic_fourier_mode(self):
        """u = sin(pi x) sin(pi y) decays as exp(-2 pi^2 alpha t)."""
        n = 65
        g = Grid2D(n, n)
        x, y = np.meshgrid(np.linspace(0, 1, n), np.linspace(0, 1, n),
                           indexing="ij")
        g.data[:] = np.sin(np.pi * x) * np.sin(np.pi * y)
        alpha = 1e-3
        s = HeatSolver(g, alpha=alpha, boundary_value=0.0)
        s.step(400)
        t = s.time
        expected = np.exp(-2 * np.pi ** 2 * alpha * t)
        measured = g.data[n // 2, n // 2]  # peak amplitude
        assert measured == pytest.approx(expected, rel=5e-3)


class TestAccounting:
    def test_time_advances(self):
        s = HeatSolver(Grid2D(16, 16), sub_steps=4)
        s.step(3)
        assert s.steps_taken == 3
        assert s.time == pytest.approx(12 * s.dt)

    def test_flops_scale_with_substeps(self):
        a = HeatSolver(Grid2D(16, 16), sub_steps=1)
        b = HeatSolver(Grid2D(16, 16), sub_steps=10)
        assert b.flops_per_step == pytest.approx(10 * a.flops_per_step)

    def test_paper_grid_flops(self):
        s = HeatSolver(Grid2D.paper_grid())
        assert s.flops_per_step == pytest.approx(126 * 126 * 10)

    def test_negative_step_rejected(self):
        with pytest.raises(SimulationError):
            HeatSolver(Grid2D(8, 8)).step(-1)

    def test_bad_substeps_rejected(self):
        with pytest.raises(SimulationError):
            HeatSolver(Grid2D(8, 8), sub_steps=0)
