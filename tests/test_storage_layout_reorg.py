"""Access-order policies and software-directed data reorganization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.machine import DiskRequest, HddModel, OpKind
from repro.machine.specs import DiskSpec
from repro.rng import RngRegistry
from repro.storage import access_order, reorganize_file, schedule_accesses
from repro.storage.layout import POLICIES, seek_distance
from repro.system import BlockQueue, FileSystem, PageCache
from repro.units import GiB, KiB, MiB


class TestAccessOrder:
    def test_sequential(self):
        assert access_order(5, "sequential") == [0, 1, 2, 3, 4]

    def test_reverse(self):
        assert access_order(4, "reverse") == [3, 2, 1, 0]

    def test_strided(self):
        assert access_order(8, "strided", stride=4) == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_shuffled_is_permutation(self):
        order = access_order(100, "shuffled")
        assert sorted(order) == list(range(100))
        assert order != list(range(100))

    def test_shuffled_deterministic_per_seed(self):
        a = access_order(50, "shuffled", rng=RngRegistry(5))
        b = access_order(50, "shuffled", rng=RngRegistry(5))
        assert a == b

    def test_zipf_repeats_hot_chunks(self):
        order = access_order(1000, "zipf")
        assert len(order) == 1000
        assert len(set(order)) < 1000  # repeats exist
        assert all(0 <= i < 1000 for i in order)

    def test_unknown_policy(self):
        with pytest.raises(StorageError):
            access_order(10, "spiral")

    def test_bad_args(self):
        with pytest.raises(StorageError):
            access_order(0)
        with pytest.raises(StorageError):
            access_order(10, "strided", stride=0)

    @given(n=st.integers(1, 200),
           policy=st.sampled_from([p for p in POLICIES if p != "zipf"]))
    def test_non_zipf_policies_are_permutations(self, n, policy):
        assert sorted(access_order(n, policy)) == list(range(n))

    def test_seek_distance_ranks_policies(self):
        n = 256
        seq = seek_distance(access_order(n, "sequential"))
        strided = seek_distance(access_order(n, "strided"))
        shuffled = seek_distance(access_order(n, "shuffled"))
        assert seq < strided < shuffled


class TestScheduleAccesses:
    def test_sorts_by_offset(self):
        reqs = [DiskRequest(OpKind.READ, o * GiB, 4 * KiB) for o in (5, 1, 3)]
        assert [r.offset for r in schedule_accesses(reqs)] == [1 * GiB, 3 * GiB, 5 * GiB]

    def test_conserves_requests(self):
        reqs = [DiskRequest(OpKind.READ, o, 512) for o in (100, 5, 100, 7)]
        out = schedule_accesses(reqs)
        assert sorted(r.offset for r in out) == sorted(r.offset for r in reqs)

    def test_scheduled_plan_faster_on_hdd(self):
        import numpy as np

        rng = np.random.default_rng(2)
        reqs = [DiskRequest(OpKind.READ, int(o), 16 * KiB)
                for o in rng.integers(0, 400 * GiB, 300)]

        def run(plan):
            disk = HddModel(DiskSpec())
            return sum(disk.service(r).service_time for r in plan)

        assert run(schedule_accesses(reqs)) < 0.7 * run(reqs)


def fragmented_fs() -> FileSystem:
    queue = BlockQueue(HddModel(DiskSpec()))
    return FileSystem(queue, cache=PageCache(queue), layout="fragmented",
                      fragment_bytes=128 * KiB)


class TestReorganizeFile:
    def test_reorg_reduces_extents(self):
        fs = fragmented_fs()
        fs.write("data", b"x" * (2 * MiB))
        fs.fsync()
        report = reorganize_file(fs, "data", 128 * KiB,
                                 list(range(16)))
        assert report.extents_before > 1
        # The rewrite allocates fresh extents in visit order; with the
        # fragmented allocator they are still scattered on disk, but the
        # *visit order* now matches disk order, which is what matters.
        assert fs.exists("data.reorg")
        assert report.nbytes == 2 * MiB
        assert report.rewrite_elapsed > 0

    def test_content_preserved_in_visit_order(self):
        fs = fragmented_fs()
        payload = bytes(range(256)) * (2 * MiB // 256)
        fs.write("data", payload)
        fs.fsync()
        order = [3, 0, 2, 1] + list(range(4, 16))
        reorganize_file(fs, "data", 128 * KiB, order)
        out, _ = fs.read("data.reorg")
        expected = b"".join(
            payload[i * 128 * KiB : (i + 1) * 128 * KiB] for i in order
        )
        assert out == expected

    def test_rejects_bad_permutation(self):
        fs = fragmented_fs()
        fs.write("data", b"x" * (256 * KiB))
        with pytest.raises(StorageError):
            reorganize_file(fs, "data", 128 * KiB, [0, 0])

    def test_rejects_partial_chunks(self):
        fs = fragmented_fs()
        fs.write("data", b"x" * (100 * KiB))
        with pytest.raises(StorageError):
            reorganize_file(fs, "data", 128 * KiB, [0])

    def test_rejects_existing_target(self):
        fs = fragmented_fs()
        fs.write("data", b"x" * (128 * KiB))
        fs.write("data.reorg", b"y")
        with pytest.raises(StorageError):
            reorganize_file(fs, "data", 128 * KiB, [0])

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_reorg_preserves_chunk_multiset(self, seed):
        import numpy as np

        fs = fragmented_fs()
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, 512 * KiB, dtype=np.uint8).tobytes()
        fs.write("d", payload)
        order = rng.permutation(4).tolist()
        reorganize_file(fs, "d", 128 * KiB, order)
        out, _ = fs.read("d.reorg")
        original = {payload[i * 128 * KiB : (i + 1) * 128 * KiB] for i in range(4)}
        copied = {out[i * 128 * KiB : (i + 1) * 128 * KiB] for i in range(4)}
        assert original == copied
