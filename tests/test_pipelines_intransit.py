"""In-transit pipeline: staging-node structure and energy accounting."""

import pytest

from repro.calibration import CASE_STUDIES
from repro.pipelines import (
    InSituPipeline,
    InTransitPipeline,
    PipelineConfig,
    PipelineRunner,
)


@pytest.fixture(scope="module")
def runner():
    return PipelineRunner(seed=51)


@pytest.fixture(scope="module")
def run(runner):
    return runner.run(InTransitPipeline(PipelineConfig(case=CASE_STUDIES[1])))


class TestComputeNode:
    def test_no_disk_io(self, run):
        assert run.data_bytes_written == 0
        totals = run.timeline.stage_totals()
        assert "nnwrite" not in totals
        assert "nnread" not in totals

    def test_sends_every_io_iteration(self, run):
        totals = run.timeline.stage_totals()
        assert totals["staging-send"].span_count == 50

    def test_send_cost_is_link_bound(self, run):
        send = run.timeline.stage_totals()["staging-send"].total_time
        # 50 x 128 KiB over a 4 GB/s link: well under a second in total.
        assert send < 0.5

    def test_no_visualization_on_compute_node(self, run):
        assert "visualization" not in run.timeline.stage_totals()


class TestStagingNode:
    def test_staging_timeline_present(self, run):
        staging = run.extra["staging_timeline"]
        totals = staging.stage_totals()
        assert totals["visualization"].span_count == 50
        assert totals["receive"].span_count == 50

    def test_staging_mostly_idle(self, run):
        staging = run.extra["staging_timeline"]
        totals = staging.stage_totals()
        # Visualization takes 0.481 s of each ~1.6 s simulation interval.
        assert totals["idle"].total_time > totals["visualization"].total_time

    def test_nodes_finish_together(self, run):
        staging = run.extra["staging_timeline"]
        assert staging.duration == pytest.approx(run.timeline.duration)

    def test_frames_rendered(self, run):
        assert run.images_rendered == 50
        assert run.image_bytes > 0


class TestEnergyAccounting:
    def test_total_is_sum_of_nodes(self, run):
        assert run.extra["total_energy_j"] == pytest.approx(
            run.energy_j + run.extra["staging_energy_j"]
        )

    def test_staging_energy_near_idle(self, run):
        # The staging node idles most of the run: its average power sits
        # close to the static floor.
        staging_profile = run.extra["staging_profile"]
        assert staging_profile.average() < 115.0

    def test_pair_costs_more_than_insitu(self, runner, run):
        insitu = runner.run(InSituPipeline(PipelineConfig(case=CASE_STUDIES[1])))
        assert run.extra["total_energy_j"] > insitu.energy_j

    def test_same_physics(self, runner, run):
        insitu = runner.run(InSituPipeline(PipelineConfig(case=CASE_STUDIES[1])))
        assert run.extra["final_mean_temperature"] == pytest.approx(
            insitu.extra["final_mean_temperature"]
        )
