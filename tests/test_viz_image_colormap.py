"""Image buffers, PPM/PNG encoders, and colormaps."""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RenderError
from repro.viz import COLORMAPS, Colormap, Image, encode_png, encode_ppm, get_colormap
from repro.viz.colormap import SEQUENTIAL
from repro.viz.image import PNG_SIGNATURE, decode_png_size


class TestImage:
    def test_dimensions(self):
        img = Image(32, 64)
        assert img.height == 32 and img.width == 64
        assert img.nbytes == 32 * 64 * 3

    def test_bad_dimensions(self):
        with pytest.raises(RenderError):
            Image(0, 10)

    def test_fill(self):
        img = Image(4, 4)
        img.fill(10, 20, 30)
        assert (img.pixels == (10, 20, 30)).all()

    def test_from_array_validates(self):
        with pytest.raises(RenderError):
            Image.from_array(np.zeros((4, 4)))


class TestPpm:
    def test_header_and_payload(self):
        rgb = np.zeros((2, 3, 3), dtype=np.uint8)
        data = encode_ppm(rgb)
        assert data.startswith(b"P6\n3 2\n255\n")
        assert len(data) == len(b"P6\n3 2\n255\n") + 18


class TestPng:
    def test_signature_and_ihdr(self):
        rgb = np.zeros((5, 7, 3), dtype=np.uint8)
        png = encode_png(rgb)
        assert png[:8] == PNG_SIGNATURE
        assert decode_png_size(png) == (5, 7)

    def test_chunk_crcs_valid(self):
        rgb = (np.random.default_rng(0).random((8, 8, 3)) * 255).astype(np.uint8)
        png = encode_png(rgb)
        pos = 8
        seen = []
        while pos < len(png):
            (length,) = struct.unpack(">I", png[pos : pos + 4])
            tag = png[pos + 4 : pos + 8]
            body = png[pos + 4 : pos + 8 + length]
            (crc,) = struct.unpack(">I", png[pos + 8 + length : pos + 12 + length])
            assert crc == zlib.crc32(body) & 0xFFFFFFFF
            seen.append(tag)
            pos += 12 + length
        assert seen == [b"IHDR", b"IDAT", b"IEND"]

    def test_idat_decompresses_to_scanlines(self):
        rgb = (np.arange(4 * 4 * 3) % 256).astype(np.uint8).reshape(4, 4, 3)
        png = encode_png(rgb)
        # Extract IDAT payload.
        pos = 8
        while True:
            (length,) = struct.unpack(">I", png[pos : pos + 4])
            tag = png[pos + 4 : pos + 8]
            if tag == b"IDAT":
                payload = png[pos + 8 : pos + 8 + length]
                break
            pos += 12 + length
        raw = zlib.decompress(payload)
        assert len(raw) == 4 * (1 + 4 * 3)
        rows = np.frombuffer(raw, dtype=np.uint8).reshape(4, 13)
        assert (rows[:, 0] == 0).all()  # filter byte
        np.testing.assert_array_equal(rows[:, 1:].reshape(4, 4, 3), rgb)

    def test_rejects_non_uint8(self):
        with pytest.raises(RenderError):
            encode_png(np.zeros((4, 4, 3), dtype=float))

    def test_bad_signature_detected(self):
        with pytest.raises(RenderError):
            decode_png_size(b"JUNK" * 10)


class TestColormaps:
    def test_registry(self):
        assert "heat" in COLORMAPS
        assert get_colormap("gray").name == "gray"
        with pytest.raises(RenderError):
            get_colormap("rainbow")

    def test_endpoints(self):
        heat = get_colormap("heat")
        np.testing.assert_array_equal(heat(np.array(0.0)), [0, 0, 0])
        np.testing.assert_array_equal(heat(np.array(1.0)), [255, 255, 255])

    def test_out_of_range_clips(self):
        gray = get_colormap("gray")
        np.testing.assert_array_equal(gray(np.array(-5.0)), gray(np.array(0.0)))
        np.testing.assert_array_equal(gray(np.array(7.0)), gray(np.array(1.0)))

    def test_vectorized_shape(self):
        out = get_colormap("heat")(np.zeros((10, 20)))
        assert out.shape == (10, 20, 3)
        assert out.dtype == np.uint8

    @pytest.mark.parametrize("name", SEQUENTIAL)
    def test_sequential_maps_luminance_monotone(self, name):
        """Hotter must render brighter for temperature readability."""
        cmap = get_colormap(name)
        v = np.linspace(0, 1, 64)
        lum = cmap.luminance(v)
        assert (np.diff(lum) >= -1.0).all()  # monotone up to rounding
        assert lum[-1] > lum[0] + 100

    def test_validation(self):
        with pytest.raises(RenderError):
            Colormap("x", ((0.0, (0, 0, 0)),))
        with pytest.raises(RenderError):
            Colormap("x", ((0.1, (0, 0, 0)), (1.0, (1, 1, 1))))
        with pytest.raises(RenderError):
            Colormap("x", ((0.0, (0, 0, 0)), (0.0, (1, 1, 1)), (1.0, (2, 2, 2))))
        with pytest.raises(RenderError):
            Colormap("x", ((0.0, (0, 0, 300)), (1.0, (1, 1, 1))))

    @settings(max_examples=25)
    @given(v=st.floats(0, 1))
    def test_gray_is_identity_ramp(self, v):
        rgb = get_colormap("gray")(np.array(v))
        assert abs(int(rgb[0]) - round(v * 255)) <= 1
        assert rgb[0] == rgb[1] == rgb[2]
