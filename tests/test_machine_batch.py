"""Batch/scalar equivalence across every BlockDevice implementation.

The batched kernels (``service_batch`` / ``submit_write_batch``) exist
purely for speed: a batch over a request stream must aggregate to the
same timings, byte counts, and device state as servicing the stream one
request at a time.  These are the property tests backing that contract,
over every device model, both operation directions, and access patterns
from fully sequential to fully random.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.device import BlockDevice
from repro.machine.disk import DiskRequest, HddModel, OpKind
from repro.machine.nvram import NvramModel
from repro.machine.raid import RaidArray, RaidLevel
from repro.machine.specs import DiskSpec
from repro.machine.ssd import SsdModel
from repro.system.blockdev import IoStats
from repro.units import GiB, KiB, MiB

#: Stay comfortably inside every model's usable capacity (the NVRAM DIMM
#: is the smallest device under test).
CAP = 32 * GiB

#: Aggregate float sums may differ from sequential accumulation only by
#: rounding (numpy pairwise summation); nothing looser is acceptable.
REL = 1e-9

DEVICES = {
    "hdd": lambda: HddModel(DiskSpec()),
    "ssd": lambda: SsdModel(),
    "nvram": lambda: NvramModel(),
    "raid0": lambda: RaidArray(
        [HddModel(DiskSpec()) for _ in range(3)], RaidLevel.RAID0),
    "raid1": lambda: RaidArray(
        [HddModel(DiskSpec()) for _ in range(2)], RaidLevel.RAID1),
    "raid5": lambda: RaidArray(
        [HddModel(DiskSpec()) for _ in range(4)], RaidLevel.RAID5),
}


def _request_stream(pattern: str, n: int = 48) -> tuple[np.ndarray, np.ndarray]:
    """(offsets, nbytes) arrays for one named access pattern."""
    rng = np.random.default_rng(20150525)
    sizes = (rng.integers(1, 65, n) * 4 * KiB).astype(np.int64)
    if pattern == "sequential":
        offsets = np.cumsum(np.concatenate(([0], sizes[:-1]))).astype(np.int64)
    elif pattern == "random":
        offsets = (rng.integers(0, (CAP - MiB) // (4 * KiB), n)
                   * 4 * KiB).astype(np.int64)
    elif pattern == "strided":
        offsets = (np.arange(n, dtype=np.int64) * 64 * MiB) % (CAP - MiB)
    else:
        raise AssertionError(pattern)
    return offsets, sizes


@pytest.mark.parametrize("name", sorted(DEVICES))
def test_every_model_declares_the_block_device_protocol(name):
    assert isinstance(DEVICES[name](), BlockDevice)


@pytest.mark.parametrize("name", sorted(DEVICES))
@pytest.mark.parametrize("pattern", ["sequential", "random", "strided"])
@pytest.mark.parametrize("op", [OpKind.READ, OpKind.WRITE])
def test_service_batch_matches_scalar_loop(name, pattern, op):
    offsets, sizes = _request_stream(pattern)

    scalar_dev = DEVICES[name]()
    scalar = [scalar_dev.service(DiskRequest(op, int(o), int(s)))
              for o, s in zip(offsets, sizes)]

    batch_dev = DEVICES[name]()
    batch = batch_dev.service_batch(offsets, sizes, op)

    assert batch.op is op
    assert batch.n_ops == len(scalar)
    assert batch.nbytes == sum(r.nbytes for r in scalar)
    for part in ("service_time", "arm_time", "rotation_time", "transfer_time"):
        want = sum(getattr(r, part) for r in scalar)
        assert getattr(batch, part) == pytest.approx(want, rel=REL, abs=1e-15), part


@pytest.mark.parametrize("name", sorted(DEVICES))
@pytest.mark.parametrize("pattern", ["sequential", "random", "strided"])
def test_submit_write_batch_matches_scalar_loop(name, pattern):
    offsets, sizes = _request_stream(pattern)

    scalar_dev = DEVICES[name]()
    scalar = [scalar_dev.submit_write(DiskRequest(OpKind.WRITE, int(o), int(s)))
              for o, s in zip(offsets, sizes)]

    batch_dev = DEVICES[name]()
    batch = batch_dev.submit_write_batch(offsets, sizes)

    assert batch.n_ops == len(scalar)
    for part in ("service_time", "arm_time", "rotation_time", "transfer_time"):
        want = sum(getattr(r, part) for r in scalar)
        assert getattr(batch, part) == pytest.approx(want, rel=REL, abs=1e-15), part
    # Write-cache state must land in the same place either way.
    assert batch_dev.dirty_bytes == scalar_dev.dirty_bytes

    # Byte accounting is compared where consumers read it: through
    # IoStats, which prices cached acceptances at zero bytes and counts
    # platter traffic on forced drains and flushes.  Raw per-result
    # nbytes sums are NOT comparable across the two paths.
    scalar_stats = IoStats()
    for r in scalar:
        scalar_stats.add(r)
    scalar_stats.add_drain(scalar_dev.flush_cache())

    batch_stats = IoStats()
    batch_stats.add(batch)
    batch_stats.add_drain(batch_dev.flush_cache())

    assert batch_stats.n_writes == scalar_stats.n_writes
    assert batch_stats.bytes_written == scalar_stats.bytes_written
    assert batch_stats.busy_time == pytest.approx(scalar_stats.busy_time,
                                                  rel=REL, abs=1e-15)


@pytest.mark.parametrize("name", sorted(DEVICES))
def test_batch_leaves_device_state_equivalent(name):
    """A request serviced *after* a batch times exactly as after the loop."""
    offsets, sizes = _request_stream("random")
    probe = DiskRequest(OpKind.READ, 5 * GiB, 64 * KiB)

    scalar_dev = DEVICES[name]()
    for o, s in zip(offsets, sizes):
        scalar_dev.service(DiskRequest(OpKind.READ, int(o), int(s)))
    want = scalar_dev.service(probe)

    batch_dev = DEVICES[name]()
    batch_dev.service_batch(offsets, sizes, OpKind.READ)
    got = batch_dev.service(probe)

    assert got.service_time == pytest.approx(want.service_time, rel=REL)
    assert got.nbytes == want.nbytes


@pytest.mark.parametrize("name", sorted(DEVICES))
def test_empty_batch_is_a_noop(name):
    dev = DEVICES[name]()
    result = dev.service_batch(np.array([], dtype=np.int64),
                               np.array([], dtype=np.int64), OpKind.READ)
    assert result.n_ops == 0
    assert result.nbytes == 0
    assert result.service_time == 0.0
