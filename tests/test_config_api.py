"""Top-level configuration and public API surface."""

import pytest

import repro
from repro.config import ExperimentConfig
from repro.errors import ConfigError
from repro.machine import HddModel, NvramModel, SsdModel


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.storage == "hdd"
        assert cfg.cases == (1, 2, 3)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(sample_hz=0)
        with pytest.raises(ConfigError):
            ExperimentConfig(jitter=-1)
        with pytest.raises(ConfigError):
            ExperimentConfig(storage="tape")
        with pytest.raises(ConfigError):
            ExperimentConfig(cases=())
        with pytest.raises(ConfigError):
            ExperimentConfig(cases=(1, 7))

    def test_storage_selection(self):
        assert isinstance(ExperimentConfig(storage="hdd").build_node().storage,
                          HddModel)
        assert isinstance(ExperimentConfig(storage="ssd").build_node().storage,
                          SsdModel)
        assert isinstance(ExperimentConfig(storage="nvram").build_node().storage,
                          NvramModel)

    def test_build_runner(self):
        runner = ExperimentConfig(seed=7, sample_hz=2.0).build_runner()
        assert runner.sample_hz == 2.0
        assert runner.rng.seed == 7

    def test_dict_roundtrip(self):
        cfg = ExperimentConfig(seed=3, storage="ssd", cases=(1, 3))
        back = ExperimentConfig.from_dict(cfg.to_dict())
        assert back == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig.from_dict({"voltage": 12})


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_key_symbols_exported(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_path_works(self):
        """The README's three-line quickstart must actually run."""
        outcome = repro.run_case_study(
            3, repro.PipelineRunner(seed=1)
        )
        assert 0.05 < outcome.energy_savings_fraction < 0.25
