"""The replication verification gate."""

import pytest

from repro.experiments import Lab
from repro.experiments.verification import (
    Check,
    render_verification,
    run_verification,
)


@pytest.fixture(scope="module")
def checks():
    return run_verification(Lab(seed=2015))


class TestChecks:
    def test_all_anchors_pass(self, checks):
        failing = [c.name for c in checks if not c.passed]
        assert not failing, failing

    def test_coverage_of_anchor_families(self, checks):
        names = " ".join(c.name for c in checks)
        for family in ("fig10", "fig8", "fig9", "fig4", "table2",
                       "sec5c", "table3"):
            assert family in names, family

    def test_deliberate_deviation_labeled(self, checks):
        case3 = next(c for c in checks if "case-3 energy" in c.name)
        assert "consistent" in case3.note

    def test_check_arithmetic(self):
        assert Check("x", 10.0, 10.4, 0.5).passed
        assert not Check("x", 10.0, 10.6, 0.5).passed

    def test_render(self, checks):
        text = render_verification(checks)
        assert text.splitlines()[-1].startswith(f"{len(checks)}/{len(checks)}")
        assert "FAIL" not in text

    def test_render_marks_failures(self):
        text = render_verification([Check("bad", 1.0, 9.0, 0.1)])
        assert "FAIL" in text
        assert text.splitlines()[-1].startswith("0/1")


class TestCli:
    def test_verify_command_exit_code(self, capsys):
        from repro.cli import main

        assert main(["verify", "--seed", "2015"]) == 0
        out = capsys.readouterr().out
        assert "anchors within tolerance" in out
