"""Parallel filesystem model (future-work item 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.system.pfs import ParallelFileSystem
from repro.units import KiB, MiB


class TestNamespace:
    def test_create_on_write(self):
        pfs = ParallelFileSystem(n_osts=4)
        pfs.write("dump.dat", b"x" * (4 * MiB))
        assert pfs.exists("dump.dat")
        assert pfs.size("dump.dat") == 4 * MiB

    def test_append(self):
        pfs = ParallelFileSystem(n_osts=2)
        pfs.write("f", b"a" * MiB)
        pfs.write("f", b"b" * MiB)
        data, _ = pfs.read("f")
        assert data == b"a" * MiB + b"b" * MiB

    def test_missing_file(self):
        with pytest.raises(StorageError):
            ParallelFileSystem().read("ghost")
        with pytest.raises(StorageError):
            ParallelFileSystem().size("ghost")

    def test_validation(self):
        with pytest.raises(StorageError):
            ParallelFileSystem(n_osts=0)
        with pytest.raises(StorageError):
            ParallelFileSystem(stripe_bytes=0)
        with pytest.raises(StorageError):
            ParallelFileSystem(n_osts=2, stripe_count=3)
        with pytest.raises(StorageError):
            ParallelFileSystem().write("f", b"")


class TestStriping:
    def test_wide_stripe_touches_all_osts(self):
        pfs = ParallelFileSystem(n_osts=4, stripe_bytes=1 * MiB)
        result = pfs.write("f", b"x" * (8 * MiB))
        assert result.osts_touched == 4

    def test_single_stripe_touches_one(self):
        pfs = ParallelFileSystem(n_osts=4, stripe_count=1)
        result = pfs.write("f", b"x" * (8 * MiB))
        assert result.osts_touched == 1

    def test_wide_stripes_cut_wall_time(self):
        narrow = ParallelFileSystem(n_osts=4, stripe_count=1)
        wide = ParallelFileSystem(n_osts=4, stripe_count=4)
        payload = b"x" * (64 * MiB)
        t_narrow = narrow.write("f", payload).elapsed_s
        t_wide = wide.write("f", payload).elapsed_s
        assert t_wide < 0.5 * t_narrow

    def test_wide_stripes_burn_more_seek_activity(self):
        """The energy flip side: four spindles position instead of one."""
        narrow = ParallelFileSystem(n_osts=4, stripe_count=1)
        wide = ParallelFileSystem(n_osts=4, stripe_count=4)
        payload = b"x" * (16 * MiB)
        io_narrow = narrow.write("f", payload).io
        io_wide = wide.write("f", payload).io
        assert io_wide.n_writes > io_narrow.n_writes

    def test_per_file_stripe_override(self):
        pfs = ParallelFileSystem(n_osts=4, stripe_count=4)
        r = pfs.write("narrow", b"x" * (8 * MiB), stripe_count=1)
        assert r.osts_touched == 1


class TestReads:
    def test_roundtrip(self):
        pfs = ParallelFileSystem(n_osts=3, stripe_bytes=256 * KiB)
        payload = np.random.default_rng(0).integers(
            0, 256, 3 * MiB, dtype=np.uint8).tobytes()
        pfs.write("f", payload)
        data, result = pfs.read("f")
        assert data == payload
        assert result.osts_touched == 3

    def test_partial_read(self):
        pfs = ParallelFileSystem(n_osts=2)
        pfs.write("f", bytes(range(256)) * (MiB // 256))
        data, _ = pfs.read("f", offset=100, nbytes=56)
        assert data == bytes(range(100, 156))

    def test_read_outside_rejected(self):
        pfs = ParallelFileSystem()
        pfs.write("f", b"x" * 100)
        with pytest.raises(StorageError):
            pfs.read("f", offset=50, nbytes=100)

    @settings(max_examples=20, deadline=None)
    @given(
        n_osts=st.integers(1, 6),
        stripe_kib=st.sampled_from([64, 256, 1024]),
        payload=st.binary(min_size=1, max_size=64 * 1024),
    )
    def test_roundtrip_any_geometry(self, n_osts, stripe_kib, payload):
        pfs = ParallelFileSystem(n_osts=n_osts, stripe_bytes=stripe_kib * KiB)
        pfs.write("f", payload)
        data, _ = pfs.read("f")
        assert data == payload


class TestAccounting:
    def test_metadata_cost_charged(self):
        pfs = ParallelFileSystem(metadata_op_s=0.01)
        r = pfs.write("f", b"x" * KiB)
        assert r.metadata_ops == 2  # create + size update
        assert r.elapsed_s >= 0.02

    def test_idle_power_scales_with_osts(self):
        assert (ParallelFileSystem(n_osts=8).idle_power_w
                == 2 * ParallelFileSystem(n_osts=4).idle_power_w)

    def test_reset(self):
        pfs = ParallelFileSystem()
        pfs.write("f", b"x" * MiB)
        pfs.reset()
        assert not pfs.exists("f")
        assert pfs.osts[0].stats.busy_time == 0
