"""Chrome trace-event export."""

import json

import pytest

from repro.trace import Activity, Timeline, timeline_to_chrome_trace


@pytest.fixture
def timeline() -> Timeline:
    tl = Timeline()
    tl.mark("phase-1")
    tl.record("simulation", 1.5, Activity(cpu_util=0.3), iteration=1)
    tl.record("nnwrite", 1.4, Activity(disk_write_bytes_per_s=9e4))
    tl.mark("phase-2")
    tl.record("nnread", 1.3, Activity(disk_read_bytes_per_s=1e5))
    return tl


class TestChromeTrace:
    def test_valid_json(self, timeline):
        doc = json.loads(timeline_to_chrome_trace(timeline))
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"

    def test_span_events(self, timeline):
        doc = json.loads(timeline_to_chrome_trace(timeline))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 3
        sim = spans[0]
        assert sim["name"] == "simulation"
        assert sim["ts"] == 0.0
        assert sim["dur"] == pytest.approx(1.5e6)
        assert sim["args"]["cpu_util"] == 0.3
        assert sim["args"]["iteration"] == "1"

    def test_events_are_contiguous(self, timeline):
        doc = json.loads(timeline_to_chrome_trace(timeline))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for prev, nxt in zip(spans, spans[1:]):
            assert prev["ts"] + prev["dur"] == pytest.approx(nxt["ts"])

    def test_markers_are_instant_events(self, timeline):
        doc = json.loads(timeline_to_chrome_trace(timeline))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["phase-1", "phase-2"]
        assert instants[1]["ts"] == pytest.approx(2.9e6)

    def test_pid_tid_settable(self, timeline):
        doc = json.loads(timeline_to_chrome_trace(timeline, pid=7, tid=9))
        assert all(e["pid"] == 7 and e["tid"] == 9 for e in doc["traceEvents"])

    def test_real_pipeline_exports(self):
        from repro.calibration import CASE_STUDIES
        from repro.machine import Node
        from repro.pipelines import InSituPipeline, PipelineConfig

        run = InSituPipeline(PipelineConfig(case=CASE_STUDIES[3])).run(Node())
        doc = json.loads(timeline_to_chrome_trace(run.timeline))
        assert len(doc["traceEvents"]) == len(run.timeline) + 1  # + marker
