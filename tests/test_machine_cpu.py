"""CPU model: timing, DVFS and power."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, MachineError
from repro.machine import CpuModel, CpuSpec


@pytest.fixture
def cpu() -> CpuModel:
    return CpuModel(CpuSpec())


class TestPower:
    def test_idle_power(self, cpu):
        assert cpu.power(0.0) == pytest.approx(44.0)

    def test_full_power(self, cpu):
        assert cpu.power(1.0) == pytest.approx(144.0)

    def test_sim_stage_anchor(self, cpu):
        # Calibration: 30 % utilization => +30 W (Fig 5 simulation stage).
        assert cpu.dynamic_power(0.30) == pytest.approx(30.0)

    def test_power_rejects_out_of_range(self, cpu):
        with pytest.raises(MachineError):
            cpu.power(1.2)
        with pytest.raises(MachineError):
            cpu.power(-0.1)

    @given(u=st.floats(0, 1))
    def test_power_monotone_in_util(self, u):
        cpu = CpuModel(CpuSpec())
        assert cpu.power(u) >= cpu.power(0.0) - 1e-12
        assert cpu.power(u) <= cpu.power(1.0) + 1e-12


class TestDvfs:
    def test_default_frequency_is_base(self, cpu):
        assert cpu.freq_hz == pytest.approx(2.4e9)
        assert cpu.freq_ratio == pytest.approx(1.0)

    def test_scaling_down_cuts_dynamic_power_cubically(self, cpu):
        full = cpu.dynamic_power(1.0)
        cpu.set_frequency(1.2e9)
        assert cpu.dynamic_power(1.0) == pytest.approx(full / 8)

    def test_scaling_down_slows_compute_linearly(self, cpu):
        t_full = cpu.compute_time(1e12)
        cpu.set_frequency(1.2e9)
        assert cpu.compute_time(1e12) == pytest.approx(2 * t_full)

    def test_rejects_overclock(self, cpu):
        with pytest.raises(ConfigError):
            cpu.set_frequency(5e9)

    def test_rejects_zero_frequency(self, cpu):
        with pytest.raises(ConfigError):
            cpu.set_frequency(0)


class TestTiming:
    def test_peak_flops(self, cpu):
        # 16 cores x 2.4 GHz x 8 DP FLOPs/cycle
        assert cpu.spec.peak_flops == pytest.approx(16 * 2.4e9 * 8)

    def test_compute_time_at_peak(self, cpu):
        assert cpu.compute_time(cpu.spec.peak_flops) == pytest.approx(1.0)

    def test_efficiency_scales_time(self, cpu):
        assert cpu.compute_time(1e12, efficiency=0.1) == pytest.approx(
            10 * cpu.compute_time(1e12)
        )

    def test_fewer_cores_slower(self, cpu):
        assert cpu.compute_time(1e12, cores=4) == pytest.approx(
            4 * cpu.compute_time(1e12, cores=16)
        )

    def test_rejects_bad_args(self, cpu):
        with pytest.raises(MachineError):
            cpu.compute_time(-1)
        with pytest.raises(MachineError):
            cpu.compute_time(1e9, cores=17)
        with pytest.raises(MachineError):
            cpu.compute_time(1e9, efficiency=0)

    def test_utilization_helper(self, cpu):
        assert cpu.utilization(8) == pytest.approx(0.5)
        with pytest.raises(MachineError):
            cpu.utilization(17)
