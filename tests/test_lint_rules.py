"""Greenlint rule checks against synthetic snippets.

Every GL rule gets at least one positive (snippet that must be flagged)
and one negative (idiomatic code that must stay clean) so that rule
regressions — silently flagging nothing, or flagging everything — show
up here rather than in the self-lint run.
"""

import json
import textwrap

import pytest

from repro.errors import ConfigError
from repro.lint import lint_source, render_json, render_text
from repro.lint.dims import (
    DATA,
    DATA_RATE,
    DIMENSIONLESS,
    ENERGY,
    ENERGY_PER_BYTE,
    FREQUENCY,
    POWER,
    TIME,
    div,
    mul,
    suffix_dim,
)


def run(source: str, select=None, path: str = "<test>"):
    return lint_source(textwrap.dedent(source), path=path, select=select)


def codes(result):
    return [f.code for f in result.findings]


# ---------------------------------------------------------------------------
# Dimension algebra + suffix grammar
# ---------------------------------------------------------------------------

class TestSuffixGrammar:
    def test_simple_suffixes(self):
        assert suffix_dim("energy_j") == ENERGY
        assert suffix_dim("elapsed_s") == TIME
        assert suffix_dim("idle_w") == POWER
        assert suffix_dim("base_freq_hz") == FREQUENCY
        assert suffix_dim("size_bytes") == DATA

    def test_rate_idiom(self):
        assert suffix_dim("bytes_per_s") == DATA_RATE
        assert suffix_dim("read_energy_per_byte_j") == ENERGY_PER_BYTE

    def test_bare_single_letters_are_not_units(self):
        # Loop variables named j or s must never be treated as quantities.
        assert suffix_dim("j") is None
        assert suffix_dim("s") is None
        assert suffix_dim("w") is None

    def test_unknown_tokens_stay_unknown(self):
        assert suffix_dim("accesses_per_s") is None
        assert suffix_dim("overhead_w_at_1hz") is None
        assert suffix_dim("read_fraction") is None

    def test_algebra(self):
        assert div(ENERGY, TIME) == POWER
        assert mul(POWER, TIME) == ENERGY
        assert div(DATA, TIME) == DATA_RATE
        assert mul(DIMENSIONLESS, POWER) == POWER

    def test_chained_per_groups(self):
        # Each _per_<unit> group divides the base unit once more.
        assert suffix_dim("energy_per_byte_per_s_j") == div(
            ENERGY_PER_BYTE, TIME)
        assert suffix_dim("read_energy_per_byte_per_s_j") == div(
            ENERGY_PER_BYTE, TIME)

    def test_suffix_only_at_word_end(self):
        # Unit tokens in the middle of a name are not a suffix.
        assert suffix_dim("j_total") is None
        assert suffix_dim("energy_j_cache") is None

    def test_algebra_identities(self):
        from repro.lint.dims import pow_

        assert pow_(TIME, 2) == mul(TIME, TIME)
        assert pow_(POWER, 0) == DIMENSIONLESS
        assert pow_(POWER, 1) == POWER
        assert div(ENERGY, ENERGY) == DIMENSIONLESS
        assert mul(div(ENERGY, TIME), TIME) == ENERGY
        assert div(mul(DATA, FREQUENCY), FREQUENCY) == DATA


# ---------------------------------------------------------------------------
# GL1 unit-suffix consistency
# ---------------------------------------------------------------------------

class TestGL1Units:
    def test_positive_add_mismatch(self):
        result = run(
            """
            def f(energy_j, elapsed_s):
                return energy_j + elapsed_s
            """,
            select=["GL1"],
        )
        assert codes(result) == ["GL1"]
        assert "joules" in result.findings[0].message
        assert "seconds" in result.findings[0].message

    def test_positive_assignment_mismatch(self):
        result = run(
            """
            def f(elapsed_s):
                total_j = elapsed_s
                return total_j
            """,
            select=["GL1"],
        )
        assert codes(result) == ["GL1"]

    def test_positive_keyword_argument_mismatch(self):
        result = run(
            """
            def g(power_w):
                return power_w

            def f(elapsed_s):
                return g(power_w=elapsed_s)
            """,
            select=["GL1"],
        )
        assert codes(result) == ["GL1"]

    def test_positive_comparison_mismatch(self):
        result = run(
            """
            def f(energy_j, cap_w):
                return energy_j > cap_w
            """,
            select=["GL1"],
        )
        assert codes(result) == ["GL1"]

    def test_negative_consistent_algebra(self):
        result = run(
            """
            def f(energy_j, elapsed_s, nbytes):
                power_w = energy_j / elapsed_s
                rate_bytes_per_s = nbytes / elapsed_s
                cost_j = power_w * elapsed_s
                return cost_j + energy_j
            """,
            select=["GL1"],
        )
        assert codes(result) == []

    def test_negative_inference_through_locals(self):
        # An unsuffixed local carries the dim of its initializer.
        result = run(
            """
            def f(energy_j, elapsed_s):
                avg = energy_j / elapsed_s
                headroom_w = avg
                return headroom_w
            """,
            select=["GL1"],
        )
        assert codes(result) == []

    def test_negative_unknowns_never_flag(self):
        result = run(
            """
            def f(count, energy_j):
                return count + energy_j
            """,
            select=["GL1"],
        )
        assert codes(result) == []


# ---------------------------------------------------------------------------
# GL2 magic unit constants
# ---------------------------------------------------------------------------

class TestGL2MagicConstants:
    def test_positive_binary_size(self):
        result = run("block = 4 * 1024 ** 3\n", select=["GL2"])
        assert codes(result) == ["GL2"]
        assert result.findings[0].severity == "warning"
        assert "GiB" in result.findings[0].message

    def test_positive_hour(self):
        result = run("window = 3600\n", select=["GL2"])
        assert codes(result) == ["GL2"]

    def test_positive_float_spelling(self):
        result = run("freq = f / 1e9\n", select=["GL2"])
        assert codes(result) == ["GL2"]

    def test_negative_named_constant(self):
        result = run(
            """
            from repro.units import GiB, HOUR
            block = 4 * GiB
            window = HOUR
            """,
            select=["GL2"],
        )
        assert codes(result) == []

    def test_negative_int_1000_not_flagged(self):
        # Plain 1000 is too common (counters, loop bounds) to ban.
        result = run("n = 1000\n", select=["GL2"])
        assert codes(result) == []

    def test_exempt_in_units_py(self):
        result = run("KiB = 1024\n", select=["GL2"], path="units.py")
        assert codes(result) == []


# ---------------------------------------------------------------------------
# GL3 exception hygiene
# ---------------------------------------------------------------------------

class TestGL3Exceptions:
    def test_positive_stdlib_raise(self):
        result = run(
            """
            def f(x):
                if x < 0:
                    raise ValueError("negative")
            """,
            select=["GL3"],
        )
        assert codes(result) == ["GL3"]

    def test_positive_bare_except(self):
        result = run(
            """
            def f():
                try:
                    g()
                except:
                    pass
            """,
            select=["GL3"],
        )
        assert codes(result) == ["GL3"]

    def test_negative_repro_error_subclass(self):
        result = run(
            """
            class ReproError(Exception):
                pass

            class ConfigError(ReproError, ValueError):
                pass

            def f(x):
                if x < 0:
                    raise ConfigError("negative")
            """,
            select=["GL3"],
        )
        assert codes(result) == []

    def test_negative_reraise(self):
        result = run(
            """
            def f():
                try:
                    g()
                except OSError:
                    raise
            """,
            select=["GL3"],
        )
        assert codes(result) == []


# ---------------------------------------------------------------------------
# GL4 determinism
# ---------------------------------------------------------------------------

class TestGL4Determinism:
    def test_positive_import_random(self):
        result = run("import random\n", select=["GL4"])
        assert codes(result) == ["GL4"]

    def test_positive_numpy_global_rng(self):
        result = run(
            """
            import numpy as np
            x = np.random.rand(4)
            """,
            select=["GL4"],
        )
        assert codes(result) == ["GL4"]

    def test_negative_generator_types_allowed(self):
        result = run(
            """
            from numpy.random import Generator, SeedSequence
            from repro.rng import RngRegistry
            """,
            select=["GL4"],
        )
        assert codes(result) == []

    def test_exempt_in_rng_py(self):
        result = run("import random\n", select=["GL4"], path="rng.py")
        assert codes(result) == []


# ---------------------------------------------------------------------------
# GL5 keyword-only quantity calls
# ---------------------------------------------------------------------------

class TestGL5CallContracts:
    def test_positive_positional_quantities(self):
        result = run(
            """
            def plan(duration_s, energy_j):
                return energy_j / duration_s

            def f():
                return plan(10.0, 500.0)
            """,
            select=["GL5"],
        )
        assert codes(result) == ["GL5", "GL5"]

    def test_positive_dataclass_constructor(self):
        result = run(
            """
            from dataclasses import dataclass

            @dataclass
            class Budget:
                cap_w: float
                window_s: float

            def f():
                return Budget(95.0, 1.0)
            """,
            select=["GL5"],
        )
        assert codes(result) == ["GL5", "GL5"]

    def test_negative_keyword_call(self):
        result = run(
            """
            def plan(duration_s, energy_j):
                return energy_j / duration_s

            def f():
                return plan(duration_s=10.0, energy_j=500.0)
            """,
            select=["GL5"],
        )
        assert codes(result) == []

    def test_negative_single_quantity_param(self):
        # One quantity argument cannot be transposed with another.
        result = run(
            """
            def wait(duration_s, label):
                return label, duration_s

            def f():
                return wait(10.0, "io")
            """,
            select=["GL5"],
        )
        assert codes(result) == []


# ---------------------------------------------------------------------------
# Engine behaviour: suppressions, skip-file, syntax errors, selection
# ---------------------------------------------------------------------------

class TestEngine:
    def test_line_suppression_by_code(self):
        result = run("window = 3600  # greenlint: ignore[GL2]\n")
        assert codes(result) == []
        assert result.suppressed == 1

    def test_bare_suppression(self):
        result = run("window = 3600  # greenlint: ignore\n")
        assert codes(result) == []
        assert result.suppressed == 1

    def test_suppression_of_other_code_does_not_hide(self):
        result = run("window = 3600  # greenlint: ignore[GL4]\n")
        assert codes(result) == ["GL2"]

    def test_skip_file(self):
        result = run(
            """
            # greenlint: skip-file
            import random
            window = 3600
            """
        )
        assert codes(result) == []

    def test_syntax_error_reports_gl0(self):
        result = run("def broken(:\n")
        assert codes(result) == ["GL0"]
        assert result.findings[0].severity == "error"

    def test_unknown_select_code_raises(self):
        with pytest.raises(ConfigError):
            run("x = 1\n", select=["GL99"])

    def test_finding_format_is_clickable(self):
        result = run("import random\n", select=["GL4"], path="mod.py")
        line = result.findings[0].format()
        assert line.startswith("mod.py:1:")
        assert "GL4" in line


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------

class TestReporters:
    def test_text_report_lists_findings_and_summary(self):
        result = run("import random\n", select=["GL4"], path="mod.py")
        text = render_text(result)
        assert "mod.py:1:" in text
        assert "1 finding" in text

    def test_text_report_clean(self):
        result = run("x = 1\n")
        assert "clean" in render_text(result)

    def test_json_report_schema(self):
        result = run("window = 3600\n", select=["GL2"], path="mod.py")
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["tool"] == "greenlint"
        assert payload["counts"] == {"GL2": 1}
        assert payload["findings"][0]["path"] == "mod.py"
        assert payload["findings"][0]["severity"] == "warning"
        assert "GL2" in payload["rules"]
