"""Volume rendering and binary-swap compositing extensions."""

import numpy as np
import pytest

from repro.errors import RenderError
from repro.viz import VolumeCamera, binary_swap_schedule, composite_over, render_volume
from repro.viz.compositing import binary_swap_composite, compositing_bytes


def ball_volume(n=24):
    x, y, z = np.meshgrid(*[np.linspace(-1, 1, n)] * 3, indexing="ij")
    return np.exp(-4 * (x ** 2 + y ** 2 + z ** 2))


class TestVolume:
    def test_output_shape_follows_axis(self):
        vol = np.zeros((8, 12, 16))
        assert render_volume(vol, VolumeCamera(axis=0)).pixels.shape == (12, 16, 3)
        assert render_volume(vol, VolumeCamera(axis=1)).pixels.shape == (8, 16, 3)
        assert render_volume(vol, VolumeCamera(axis=2)).pixels.shape == (8, 12, 3)

    def test_dense_center_brighter_than_edge(self):
        img = render_volume(ball_volume(), VolumeCamera(axis=0))
        center = img.pixels[12, 12].astype(int).sum()
        corner = img.pixels[0, 0].astype(int).sum()
        assert center > corner

    def test_rejects_non_3d(self):
        with pytest.raises(RenderError):
            render_volume(np.zeros((4, 4)))

    def test_camera_validation(self):
        with pytest.raises(RenderError):
            VolumeCamera(axis=3)
        with pytest.raises(RenderError):
            VolumeCamera(samples=0)
        with pytest.raises(RenderError):
            VolumeCamera(opacity_scale=0)

    def test_deterministic(self):
        a = render_volume(ball_volume()).pixels
        b = render_volume(ball_volume()).pixels
        np.testing.assert_array_equal(a, b)


class TestOverOperator:
    def test_opaque_front_wins(self):
        front = np.zeros((2, 2, 4))
        front[..., 0] = 0.8
        front[..., 3] = 1.0
        back = np.ones((2, 2, 4))
        out = composite_over(front, back)
        np.testing.assert_allclose(out[..., 0], 0.8)

    def test_transparent_front_passes_back(self):
        front = np.zeros((2, 2, 4))
        back = np.full((2, 2, 4), 0.5)
        np.testing.assert_allclose(composite_over(front, back), back)

    def test_shape_checked(self):
        with pytest.raises(RenderError):
            composite_over(np.zeros((2, 2, 4)), np.zeros((3, 2, 4)))


class TestBinarySwap:
    def test_schedule_rounds(self):
        rounds = binary_swap_schedule(8)
        assert len(rounds) == 3
        assert all(len(pairs) == 4 for pairs in rounds)

    def test_schedule_rejects_non_power_of_two(self):
        with pytest.raises(RenderError):
            binary_swap_schedule(6)

    def test_every_rank_paired_each_round(self):
        for pairs in binary_swap_schedule(8):
            ranks = [r for pair in pairs for r in pair]
            assert sorted(ranks) == list(range(8))

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_matches_sequential_composite(self, n):
        rng = np.random.default_rng(3)
        layers = []
        for _ in range(n):
            rgba = rng.random((8, 6, 4)) * 0.5
            rgba[..., :3] *= rgba[..., 3:4]  # premultiply
            layers.append(rgba)
        expected = layers[0].copy()
        for layer in layers[1:]:
            expected = composite_over(expected, layer)
        result = binary_swap_composite(layers)
        np.testing.assert_allclose(result, expected, rtol=1e-12, atol=1e-12)

    def test_composite_requires_layers(self):
        with pytest.raises(RenderError):
            binary_swap_composite([])

    def test_wire_bytes(self):
        # 4 ranks, 1 MiB image: round 1 moves 4 x 512 KiB, round 2 4 x 256 KiB.
        total = compositing_bytes(4, 1 << 20)
        assert total == 4 * (1 << 19) + 4 * (1 << 18)
