"""Synthetic application profiles (future-work item 1)."""

import pytest

from repro.calibration import CaseStudyConfig
from repro.errors import ConfigError
from repro.pipelines import PipelineRunner
from repro.workloads.apps import APP_PROFILES, _bursty_schedule, get_app, run_app


class TestProfiles:
    def test_registry(self):
        assert set(APP_PROFILES) == {"proxy-heat", "mpas-ocean-like", "xrage-like"}
        with pytest.raises(ConfigError):
            get_app("lammps")

    def test_configs_build(self):
        for profile in APP_PROFILES.values():
            config = profile.config()
            assert config.grid_scale == profile.grid_scale

    def test_config_overrides(self):
        config = get_app("proxy-heat").config(render_height=64)
        assert config.render_height == 64

    def test_bursty_schedule(self):
        schedule = _bursty_schedule(40, bursts=(5, 18), burst_len=3)
        assert 5 in schedule and 8 in schedule
        assert 18 in schedule and 21 in schedule
        assert 12 not in schedule
        assert all(1 <= i <= 40 for i in schedule)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(9, 1, "bad", total_iterations=10,
                            io_schedule=(5, 11))

    def test_schedule_overrides_period(self):
        case = CaseStudyConfig(9, 8, "scheduled", total_iterations=10,
                               io_schedule=(2, 3, 7))
        assert case.io_iterations() == [2, 3, 7]


class TestRuns:
    @pytest.fixture(scope="class")
    def runner(self):
        return PipelineRunner(seed=77, jitter=0)

    def test_insitu_wins_for_every_app(self, runner):
        savings = {}
        for name in APP_PROFILES:
            outcome = run_app(name, runner)
            savings[name] = outcome.energy_savings_fraction
            assert savings[name] > 0, name
        # Dense-output large-state apps gain the most.
        assert savings["mpas-ocean-like"] > savings["xrage-like"]

    def test_xrage_burst_structure(self, runner):
        outcome = run_app("xrage-like", runner)
        # 3 bursts x 4 dumps = 12 I/O events.
        assert outcome.post.timeline.stage_totals()["nnwrite"].span_count == 12
        assert outcome.insitu.images_rendered == 12
