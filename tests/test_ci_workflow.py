"""The CI workflow file is valid and runs the real gate.

Structural checks on ``.github/workflows/ci.yml``: the YAML parses, the
matrix covers the supported interpreters, and the jobs actually invoke
``tools/check.sh`` and the benchmark-regression comparison (a workflow
that silently runs nothing would green-light every PR).
"""

import os

import pytest

WORKFLOW = os.path.join(os.path.dirname(__file__), os.pardir,
                        ".github", "workflows", "ci.yml")


@pytest.fixture(scope="module")
def source() -> str:
    with open(WORKFLOW) as fh:
        return fh.read()


@pytest.fixture(scope="module")
def doc(source):
    yaml = pytest.importorskip("yaml")
    return yaml.safe_load(source)


class TestWorkflowDocument:
    def test_parses_to_a_mapping(self, doc):
        assert isinstance(doc, dict)
        assert doc.get("name") == "CI"

    def test_triggers_on_push_and_pull_request(self, doc):
        # PyYAML 1.1 parses the bare key `on` as boolean True.
        triggers = doc.get("on", doc.get(True))
        assert "pull_request" in triggers
        assert triggers["push"]["branches"] == ["main"]

    def test_check_job_matrix_covers_supported_pythons(self, doc):
        matrix = doc["jobs"]["check"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.10", "3.11", "3.12"]

    def test_check_job_runs_the_gate_script(self, doc):
        steps = doc["jobs"]["check"]["steps"]
        runs = [step.get("run", "") for step in steps]
        assert any("tools/check.sh" in run for run in runs)
        assert any('pip install -e ".[test]"' in run for run in runs)

    def test_check_job_raises_perf_ceiling_not_the_default(self, doc):
        env = doc["jobs"]["check"]["env"]
        assert float(env["REPRO_PERF_CEILING_S"]) > 6.0

    def test_bench_job_compares_against_stashed_baseline(self, doc):
        steps = doc["jobs"]["bench-regression"]["steps"]
        runs = [step.get("run", "") for step in steps]
        stash = next(i for i, run in enumerate(runs)
                     if "cp benchmarks/output/BENCH_suite.json" in run)
        bench = next(i for i, run in enumerate(runs)
                     if "bench_perf_suite" in run)
        compare = next(i for i, run in enumerate(runs)
                       if "compare_baseline" in run)
        # The bench overwrites the committed baseline in place, so the
        # stash must precede it and the comparison must follow it.
        assert stash < bench < compare

    def test_bench_job_uploads_fresh_numbers(self, doc):
        steps = doc["jobs"]["bench-regression"]["steps"]
        uploads = [s for s in steps if "upload-artifact" in s.get("uses", "")]
        assert uploads and uploads[0].get("if") == "always()"

    def test_lint_job_is_advisory(self, doc):
        job = doc["jobs"]["lint-advisory"]
        assert job["continue-on-error"] is True
        runs = [step.get("run", "") for step in job["steps"]]
        assert any("ruff check" in run for run in runs)
        assert any("mypy" in run for run in runs)

    def test_all_jobs_pin_checkout_and_python_actions(self, doc):
        for job in doc["jobs"].values():
            uses = [step.get("uses", "") for step in job["steps"]]
            assert any(u.startswith("actions/checkout@v") for u in uses)
            assert any(u.startswith("actions/setup-python@v") for u in uses)


class TestWorkflowSource:
    """Fallback string checks that hold even without PyYAML installed."""

    def test_caches_pip_keyed_on_pyproject(self, source):
        assert "cache: pip" in source
        assert "cache-dependency-path: pyproject.toml" in source

    def test_every_supported_python_listed(self, source):
        for version in ("3.10", "3.11", "3.12"):
            assert f'"{version}"' in source
