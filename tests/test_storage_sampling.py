"""Data sampling: decimation, reconstruction, error accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.sampling import (
    decimate,
    reconstruct_bilinear,
    sample_field,
)


def smooth_field(n=128):
    x, y = np.meshgrid(np.linspace(0, 1, n), np.linspace(0, 1, n),
                       indexing="ij")
    return np.sin(2 * np.pi * x) * np.cos(np.pi * y) * 50 + 100


class TestDecimate:
    def test_factor_one_is_copy(self):
        f = smooth_field(16)
        d = decimate(f, 1)
        np.testing.assert_array_equal(d, f)
        d[0, 0] = -1
        assert f[0, 0] != -1  # copy, not view

    def test_keeps_boundaries(self):
        f = smooth_field(17)
        d = decimate(f, 4)
        assert d[0, 0] == f[0, 0]
        assert d[-1, -1] == f[-1, -1]

    def test_size_reduction(self):
        d = decimate(smooth_field(128), 4)
        assert d.shape == (33, 33)  # 0,4,...,124 plus 127

    def test_validation(self):
        with pytest.raises(StorageError):
            decimate(np.zeros(10), 2)
        with pytest.raises(StorageError):
            decimate(np.zeros((4, 4)), 0)


class TestReconstruct:
    def test_exact_on_linear_fields(self):
        """Bilinear reconstruction is exact for (bi)linear data."""
        x, y = np.meshgrid(np.arange(65.0), np.arange(65.0), indexing="ij")
        f = 3 * x + 2 * y + 1
        sampled = decimate(f, 8)
        back = reconstruct_bilinear(sampled, f.shape, 8)
        np.testing.assert_allclose(back, f, rtol=1e-12)

    def test_smooth_field_small_error(self):
        f = smooth_field(128)
        sampled = decimate(f, 4)
        back = reconstruct_bilinear(sampled, f.shape, 4)
        rel = np.max(np.abs(back - f)) / (f.max() - f.min())
        assert rel < 0.02

    def test_shape_validation(self):
        with pytest.raises(StorageError):
            reconstruct_bilinear(np.zeros((8, 8)), (4, 4), 2)
        with pytest.raises(StorageError):
            reconstruct_bilinear(np.zeros(8), (16, 16), 2)
        with pytest.raises(StorageError):
            # inconsistent sampled shape for the claimed factor
            reconstruct_bilinear(np.zeros((5, 5)), (16, 16), 2)


class TestSampleField:
    def test_report_quantities(self):
        f = smooth_field(128)
        sampled, report = sample_field(f, 4)
        assert report.factor == 4
        assert report.original_bytes == f.nbytes
        assert report.sampled_bytes == sampled.nbytes
        assert 0 < report.byte_fraction < 0.08
        assert report.rmse > 0
        assert report.max_abs_error >= report.rmse
        assert 0 < report.nrmse < 0.05

    def test_error_grows_with_factor(self):
        f = smooth_field(128)
        errors = [sample_field(f, k)[1].rmse for k in (2, 4, 8, 16)]
        assert errors == sorted(errors)

    def test_bytes_shrink_with_factor(self):
        f = smooth_field(128)
        fracs = [sample_field(f, k)[1].byte_fraction for k in (2, 4, 8)]
        assert fracs == sorted(fracs, reverse=True)

    @settings(max_examples=20, deadline=None)
    @given(factor=st.sampled_from([2, 3, 4, 8]), seed=st.integers(0, 100))
    def test_error_bounded_by_range(self, factor, seed):
        rng = np.random.default_rng(seed)
        f = rng.random((64, 64)) * 100
        _, report = sample_field(f, factor)
        # Bilinear reconstruction can't leave the convex hull of samples
        # by more than the field range.
        assert report.max_abs_error <= report.data_range + 1e-9

    def test_constant_field_is_free(self):
        _, report = sample_field(np.full((64, 64), 7.0), 8)
        assert report.rmse == 0.0
        assert report.nrmse == 0.0
