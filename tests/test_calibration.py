"""Calibration constants: internal consistency with the paper's anchors."""

import pytest

from repro.calibration import (
    CASE_STUDIES,
    CHUNK_BYTES,
    ITERATIONS,
    PAPER,
    STAGE,
    CaseStudyConfig,
    StageCalibration,
)
from repro.units import KiB


class TestStageDurations:
    def test_case1_total_time(self):
        """50 events of each stage must total the derived T1 = 240.6 s."""
        total = ITERATIONS * sum(
            STAGE[s].duration_s
            for s in ("simulation", "nnwrite", "nnread", "visualization")
        )
        assert total == pytest.approx(240.6, abs=0.5)

    def test_fig4_shares_follow_from_durations(self):
        """The calibrated per-event durations reproduce Fig 4 exactly."""
        for case_idx, shares in PAPER["fig4_shares"].items():
            case = CASE_STUDIES[case_idx]
            k = len(case.io_iterations())
            times = {
                "simulation": ITERATIONS * STAGE["simulation"].duration_s,
                "nnwrite": k * STAGE["nnwrite"].duration_s,
                "nnread": k * STAGE["nnread"].duration_s,
                "visualization": k * STAGE["visualization"].duration_s,
            }
            total = sum(times.values())
            for stage, expected in shares.items():
                assert times[stage] / total == pytest.approx(expected, abs=0.012), (
                    case_idx, stage)

    def test_insitu_time_follows_from_coupling(self):
        """T_insitu(case 1) = 50 x (sim + vis + coupling) = 127.5 s."""
        per_iter = (STAGE["simulation"].duration_s
                    + STAGE["visualization"].duration_s
                    + STAGE["coupling"].duration_s)
        assert ITERATIONS * per_iter == pytest.approx(127.5, abs=0.5)

    def test_chunk_size_is_papers(self):
        assert CHUNK_BYTES == 128 * KiB
        assert ITERATIONS == 50


class TestDurationFor:
    def test_reference_payload_is_neutral(self):
        cal = STAGE["nnwrite"]
        assert cal.duration_for(cal.reference_bytes) == pytest.approx(
            cal.duration_s)

    def test_payload_term_linear(self):
        cal = STAGE["nnwrite"]
        extra = cal.duration_for(cal.reference_bytes + int(cal.bytes_per_s))
        assert extra == pytest.approx(cal.duration_s + 1.0)

    def test_clamped_below(self):
        cal = StageCalibration(duration_s=1.0, cpu_util=0.1,
                               dram_bytes_per_s=0, bytes_per_s=1e6,
                               reference_bytes=10 ** 9)
        assert cal.duration_for(1) == pytest.approx(0.05)

    def test_work_scale(self):
        cal = STAGE["simulation"]
        assert cal.duration_for(work_scale=4.0) == pytest.approx(
            4 * cal.duration_s)
        with pytest.raises(ValueError):
            cal.duration_for(work_scale=0)

    def test_no_byte_term_ignores_payload(self):
        cal = STAGE["visualization"]
        assert cal.duration_for(10 ** 9) == cal.duration_s


class TestActivities:
    def test_byte_rates_derived_from_duration(self):
        cal = STAGE["nnwrite"]
        activity = cal.activity(disk_write_bytes=float(128 * KiB))
        assert activity.disk_write_bytes_per_s == pytest.approx(
            128 * KiB / cal.duration_s)

    def test_custom_duration_dilutes_rates(self):
        cal = STAGE["nnwrite"]
        activity = cal.activity(disk_write_bytes=float(128 * KiB),
                                duration_s=2 * cal.duration_s)
        assert activity.disk_write_bytes_per_s == pytest.approx(
            128 * KiB / (2 * cal.duration_s))


class TestCaseStudies:
    def test_paper_cadences(self):
        assert CASE_STUDIES[1].io_iterations() == list(range(1, 51))
        assert len(CASE_STUDIES[2].io_iterations()) == 25
        assert CASE_STUDIES[3].io_iterations() == [8, 16, 24, 32, 40, 48]

    def test_validation(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(9, 0, "bad")
        with pytest.raises(ValueError):
            CaseStudyConfig(9, 1, "bad", total_iterations=0)


class TestPaperAnchors:
    def test_anchor_tables_complete(self):
        assert set(PAPER["energy_savings_pct"]) == {1, 2, 3}
        assert set(PAPER["table3"]) == {
            "seq_read", "rand_read", "seq_write", "rand_write"}
        assert PAPER["static_floor_w"] == pytest.approx(104.8)
        assert PAPER["savings_static_fraction"] == pytest.approx(0.91)
