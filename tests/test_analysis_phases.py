"""Automatic power-phase detection (Sec V.A's by-eye reading, automated)."""

import numpy as np
import pytest

from repro.analysis.phases import DetectedPhase, detect_phases, phase_boundary_error
from repro.calibration import CASE_STUDIES
from repro.errors import ReproError
from repro.pipelines import (
    InSituPipeline,
    PipelineConfig,
    PipelineRunner,
    PostProcessingPipeline,
)
from repro.power import PowerProfile
from repro.trace.events import PhaseMarker


def synthetic_profile(levels, seconds_each=60, noise=1.0, seed=0):
    rng = np.random.default_rng(seed)
    chunks = [np.full(seconds_each, lv) + rng.normal(0, noise, seconds_each)
              for lv in levels]
    markers = tuple(
        PhaseMarker(f"p{i}", i * seconds_each) for i in range(len(levels))
    )
    return PowerProfile(dt=1.0, channels={"system": np.concatenate(chunks)},
                        markers=markers)


class TestSynthetic:
    def test_single_level_one_phase(self):
        profile = synthetic_profile([130.0])
        phases = detect_phases(profile)
        assert len(phases) == 1
        assert phases[0].mean_w == pytest.approx(130.0, abs=0.5)

    def test_two_levels_recovered(self):
        profile = synthetic_profile([143.0, 121.0])
        phases = detect_phases(profile)
        assert len(phases) == 2
        assert phases[0].mean_w == pytest.approx(143.0, abs=0.7)
        assert phases[1].mean_w == pytest.approx(121.0, abs=0.7)
        assert phases[0].end_s == pytest.approx(60.0, abs=3.0)

    def test_three_levels(self):
        profile = synthetic_profile([110.0, 140.0, 120.0])
        phases = detect_phases(profile, max_phases=3)
        assert len(phases) == 3

    def test_noise_does_not_fragment(self):
        profile = synthetic_profile([130.0], seconds_each=180, noise=2.5)
        assert len(detect_phases(profile, max_phases=3)) == 1

    def test_small_shift_below_penalty_ignored(self):
        profile = synthetic_profile([130.0, 130.4], noise=1.5)
        assert len(detect_phases(profile)) == 1

    def test_phases_partition_profile(self):
        profile = synthetic_profile([143.0, 121.0])
        phases = detect_phases(profile)
        assert phases[0].start_s == 0.0
        assert phases[-1].end_s == pytest.approx(profile.duration)
        for a, b in zip(phases, phases[1:]):
            assert a.end_s == b.start_s

    def test_validation(self):
        profile = synthetic_profile([130.0])
        with pytest.raises(ReproError):
            detect_phases(profile, max_phases=0)
        with pytest.raises(ReproError):
            detect_phases(PowerProfile(dt=1.0, channels={"system": []}))


class TestOnPipelines:
    @pytest.fixture(scope="class")
    def runner(self):
        return PipelineRunner(seed=83)

    def test_post_processing_two_phases_detected(self, runner):
        """The Sec V.A observation, recovered blind from the meter data."""
        run = runner.run(PostProcessingPipeline(
            PipelineConfig(case=CASE_STUDIES[1])))
        phases = detect_phases(run.profile, max_phases=3, min_phase_s=20.0)
        assert len(phases) == 2
        # Phase ordering and gap: simulate+write hotter than read+visualize.
        assert phases[0].mean_w > phases[1].mean_w + 5.0
        # Boundary lands near the true phase marker.
        assert phase_boundary_error(run.profile, phases) < 8.0

    def test_insitu_single_phase_detected(self, runner):
        """'No distinct power phases for the in-situ pipeline.'"""
        run = runner.run(InSituPipeline(PipelineConfig(case=CASE_STUDIES[1])))
        phases = detect_phases(run.profile, max_phases=3, min_phase_s=20.0)
        assert len(phases) == 1

    def test_detected_phase_levels_match_sec5a(self, runner):
        run = runner.run(PostProcessingPipeline(
            PipelineConfig(case=CASE_STUDIES[1])))
        phases = detect_phases(run.profile, max_phases=3, min_phase_s=20.0)
        # Interleaved stages: phase averages land between the stage
        # extremes, ~129 W and ~117 W on the calibrated model.
        assert 125 < phases[0].mean_w < 135
        assert 112 < phases[1].mean_w < 122


def test_dataclass_duration():
    p = DetectedPhase(10.0, 25.0, 140.0)
    assert p.duration_s == 15.0
