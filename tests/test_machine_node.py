"""Node composition: the paper's observed stage powers must emerge."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError
from repro.machine import Node, SsdModel
from repro.trace import Activity
from repro.units import GiB


@pytest.fixture
def node() -> Node:
    return Node()


# Stage activities as calibrated (see repro.experiments.calibration).
SIM = Activity(cpu_util=0.30, dram_bytes_per_s=5e9)
VIS = Activity(cpu_util=0.13, dram_bytes_per_s=1.95e9)


class TestStagePowerAnchors:
    def test_idle_floor(self, node):
        assert node.static_power_w == pytest.approx(104.8, abs=0.05)

    def test_simulation_stage_143w(self, node):
        assert node.power(SIM).system == pytest.approx(143.0, abs=0.1)

    def test_visualization_stage_121w(self, node):
        assert node.power(VIS).system == pytest.approx(121.0, abs=0.1)

    def test_sim_vis_gap_is_22w(self, node):
        # Section V.A: "the simulation phase consumes 22 W more power
        # than the visualization phase".
        gap = node.power(SIM).system - node.power(VIS).system
        assert gap == pytest.approx(22.0, abs=0.2)

    def test_sequential_read_118w(self, node):
        a = Activity(disk_read_bytes_per_s=4 * GiB / 35.9)
        assert node.power(a).system == pytest.approx(118.3, abs=0.5)

    def test_sequential_write_115w(self, node):
        a = Activity(disk_write_bytes_per_s=4 * GiB / 27.0)
        assert node.power(a).system == pytest.approx(115.7, abs=0.5)


class TestComponentBreakdown:
    def test_system_is_sum_of_components(self, node):
        p = node.power(SIM)
        assert p.system == pytest.approx(p.package + p.dram + p.disk + p.net + p.rest)

    def test_unmetered_matches_paper_method(self, node):
        # Paper: rest-of-system = Wattsup - package - DRAM.
        p = node.power(SIM)
        assert p.unmetered == pytest.approx(p.disk + p.net + p.rest)

    def test_dram_visible_in_profile(self, node):
        # Fig 5: DRAM trace around 9 W idle, ~17 W during simulation.
        assert node.power(Activity()).dram == pytest.approx(9.0)
        assert node.power(SIM).dram == pytest.approx(17.2, abs=0.1)

    def test_processor_trace_range(self, node):
        # Fig 5: processor ~44-45 W idle, ~74-75 W during simulation.
        assert node.power(Activity()).package == pytest.approx(44.0)
        assert node.power(SIM).package == pytest.approx(74.0)


class TestDynamicStaticSplit:
    def test_dynamic_power_zero_at_idle(self, node):
        assert node.dynamic_power(Activity()) == pytest.approx(0.0)

    @given(
        u=st.floats(0, 1),
        dram=st.floats(0, 2e10),
        seek=st.floats(0, 1),
    )
    def test_dynamic_power_nonnegative(self, u, dram, seek):
        node = Node()
        a = Activity(cpu_util=u, dram_bytes_per_s=dram, disk_seek_duty=seek)
        assert node.dynamic_power(a) >= -1e-9


class TestStorageSwap:
    def test_ssd_node_lower_idle(self):
        hdd_node = Node()
        ssd_node = Node(storage=SsdModel())
        assert ssd_node.static_power_w < hdd_node.static_power_w

    def test_ssd_power_ignores_seek_duty(self):
        ssd_node = Node(storage=SsdModel())
        quiet = ssd_node.power(Activity()).disk
        seeking = ssd_node.power(Activity(disk_seek_duty=1.0)).disk
        assert quiet == pytest.approx(seeking)


class TestValidation:
    def test_validate_passes_default(self, node):
        node.validate()

    def test_dram_overload_rejected(self, node):
        with pytest.raises(MachineError):
            node.power(Activity(dram_bytes_per_s=1e15))
