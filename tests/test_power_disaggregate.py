"""The paper's Wattsup-minus-RAPL disaggregation method."""

import pytest

from repro.errors import MeasurementError
from repro.machine import Node
from repro.power import MeterRig
from repro.power.disaggregate import evaluate_disaggregation, unmetered_series
from repro.rng import RngRegistry
from repro.trace import Activity, Timeline


def metered(include_truth=True, seed=7):
    tl = Timeline()
    tl.record("simulation", 40.0, Activity(cpu_util=0.30, dram_bytes_per_s=5e9))
    tl.record("nnwrite", 40.0, Activity(
        cpu_util=0.015, dram_bytes_per_s=0.3e9,
        disk_write_bytes_per_s=9e4, disk_seek_duty=0.80))
    rig = MeterRig(Node(), rng=RngRegistry(seed))
    return rig.sample(tl, include_truth=include_truth)


class TestUnmeteredSeries:
    def test_estimates_rest_of_system(self):
        profile = metered()
        est = unmetered_series(profile)
        # Rest-of-system truth: disk (~5.5-13.5 W) + NIC 2 W + 44.3 W board.
        assert 48 < est.mean() < 62

    def test_requires_all_channels(self):
        from repro.power import PowerProfile

        bad = PowerProfile(dt=1.0, channels={"system": [100.0]})
        with pytest.raises(MeasurementError):
            unmetered_series(bad)


class TestEvaluation:
    def test_method_is_nearly_unbiased(self):
        report = evaluate_disaggregation(metered())
        # The only systematic error is RAPL's ~1 % model error and the
        # monitoring overhead attribution; both are sub-watt here.
        assert abs(report.bias_w) < 1.0
        assert abs(report.relative_bias) < 0.02

    def test_rms_error_reflects_meter_noise(self):
        report = evaluate_disaggregation(metered())
        # Three noisy channels subtract: RMS error is a watt-scale figure,
        # not negligible — worth knowing when reading the paper's Fig 5.
        assert 0.1 < report.rms_error_w < 3.0

    def test_estimated_vs_true_mean(self):
        report = evaluate_disaggregation(metered())
        assert report.estimated_mean_w == pytest.approx(
            report.true_mean_w, abs=1.5)

    def test_requires_truth_channels(self):
        with pytest.raises(MeasurementError):
            evaluate_disaggregation(metered(include_truth=False))
