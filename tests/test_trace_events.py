"""Activity / Span / PhaseMarker invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.trace.events import IDLE, Activity, PhaseMarker, Span


class TestActivity:
    def test_idle_is_all_zero(self):
        assert IDLE.cpu_util == 0
        assert IDLE.disk_bytes_per_s == 0
        assert IDLE.disk_seek_duty == 0

    def test_rejects_out_of_range_util(self):
        with pytest.raises(ValueError):
            Activity(cpu_util=1.5)
        with pytest.raises(ValueError):
            Activity(cpu_util=-0.1)
        with pytest.raises(ValueError):
            Activity(disk_seek_duty=2.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            Activity(dram_bytes_per_s=-1)
        with pytest.raises(ValueError):
            Activity(disk_read_bytes_per_s=-1)

    def test_disk_bytes_sums_directions(self):
        a = Activity(disk_read_bytes_per_s=10.0, disk_write_bytes_per_s=5.0)
        assert a.disk_bytes_per_s == 15.0

    def test_combine_adds_rates_and_saturates_utils(self):
        a = Activity(cpu_util=0.7, dram_bytes_per_s=1e9)
        b = Activity(cpu_util=0.6, dram_bytes_per_s=2e9, disk_seek_duty=0.5)
        c = a.combine(b)
        assert c.cpu_util == 1.0
        assert c.dram_bytes_per_s == 3e9
        assert c.disk_seek_duty == 0.5

    def test_replace(self):
        a = Activity(cpu_util=0.3)
        b = a.replace(cpu_util=0.5)
        assert a.cpu_util == 0.3 and b.cpu_util == 0.5

    @given(
        u1=st.floats(0, 1), u2=st.floats(0, 1),
        r1=st.floats(0, 1e12), r2=st.floats(0, 1e12),
    )
    def test_combine_is_commutative(self, u1, u2, r1, r2):
        a = Activity(cpu_util=u1, dram_bytes_per_s=r1)
        b = Activity(cpu_util=u2, dram_bytes_per_s=r2)
        assert a.combine(b) == b.combine(a)


class TestSpan:
    def test_duration_and_contains(self):
        s = Span("simulation", 1.0, 3.5)
        assert s.duration == 2.5
        assert s.contains(1.0)
        assert s.contains(3.49)
        assert not s.contains(3.5)  # half-open
        assert not s.contains(0.99)

    def test_rejects_reversed_times(self):
        with pytest.raises(ValueError):
            Span("x", 2.0, 1.0)

    def test_zero_length_span_allowed(self):
        s = Span("marker-ish", 1.0, 1.0)
        assert s.duration == 0.0
        assert not s.contains(1.0)

    def test_meta_preserved(self):
        s = Span("nnwrite", 0, 1, meta={"iteration": 7, "bytes": 131072})
        assert s.meta["iteration"] == 7


def test_phase_marker_fields():
    m = PhaseMarker("read+visualize", 151.2)
    assert m.name == "read+visualize"
    assert m.t == 151.2
