"""Lifecycle rules (GL15–GL18) against synthetic modules.

Each rule gets golden positive fixtures (must fire) and negatives
(idiomatic resource handling that must stay clean), plus round-trip
checks on the machinery the rules ride on: the baseline subtraction,
the ``--select`` cache skip, and the SARIF rendering introduced with
this rule family.
"""

import json
import textwrap

from repro.cli import main
from repro.lint import (
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_sarif,
    write_baseline,
)


def run(source: str, select=None, path: str = "life_mod.py"):
    return lint_source(textwrap.dedent(source), path=path, select=select)


def codes(result):
    return [f.code for f in result.findings]


# ---------------------------------------------------------------------------
# GL15 — resource lifecycle typestate
# ---------------------------------------------------------------------------

class TestResourceLifecycle:
    def test_leaked_socket_on_exception_path(self):
        # The golden positive: the connect between acquisition and the
        # return can raise while the socket is open.
        result = run(
            """
            import socket

            def dial(host: str, port: int) -> socket.socket:
                sock = socket.socket()
                sock.connect((host, port))
                return sock
            """, select=["GL15"])
        assert codes(result) == ["GL15"]
        assert "exception path" in result.findings[0].message

    def test_close_in_except_before_reraise_is_clean(self):
        result = run(
            """
            import socket

            def dial(host: str, port: int) -> socket.socket:
                sock = socket.socket()
                try:
                    sock.connect((host, port))
                except Exception:
                    sock.close()
                    raise
                return sock
            """, select=["GL15"])
        assert codes(result) == []

    def test_never_released_local_fires(self):
        result = run(
            """
            import socket

            def probe() -> None:
                sock = socket.socket()
                sock.sendall(b"ping")
            """, select=["GL15"])
        assert codes(result) == ["GL15"]
        assert "never released" in result.findings[0].message

    def test_with_managed_resource_is_clean(self):
        result = run(
            """
            import socket

            def probe() -> None:
                with socket.socket() as sock:
                    sock.sendall(b"ping")
            """, select=["GL15"])
        assert codes(result) == []

    def test_chained_call_on_fresh_acquisition_fires(self):
        result = run(
            """
            import socket

            def probe() -> None:
                socket.socket().sendall(b"ping")
            """, select=["GL15"])
        assert codes(result) == ["GL15"]
        assert "immediately discarded" in result.findings[0].message

    def test_ownership_transfer_via_attr_store(self):
        # Storing on self moves the obligation to the class; a class
        # with no releasing method is the finding, not the acquisition.
        result = run(
            """
            import socket

            class Holder:
                def __init__(self) -> None:
                    self._sock = socket.socket()
            """, select=["GL15"])
        assert codes(result) == ["GL15"]
        assert "no method of the class releases it" in \
            result.findings[0].message

    def test_owner_with_teardown_is_clean(self):
        result = run(
            """
            import socket

            class Holder:
                def __init__(self) -> None:
                    self._sock = socket.socket()

                def close(self) -> None:
                    self._sock.close()
            """, select=["GL15"])
        assert codes(result) == []

    def test_release_in_finally_is_clean(self):
        result = run(
            """
            import socket

            def probe(host: str, port: int) -> None:
                sock = socket.socket()
                try:
                    sock.connect((host, port))
                finally:
                    sock.close()
            """, select=["GL15"])
        assert codes(result) == []

    def test_escape_via_return_moves_the_obligation(self):
        # A bare factory (no risky calls while open) is the caller's
        # problem, not the factory's.
        result = run(
            """
            import socket

            def fresh() -> socket.socket:
                return socket.socket()
            """, select=["GL15"])
        assert codes(result) == []

    def test_daemon_thread_is_exempt(self):
        result = run(
            """
            import threading

            def watch(fn) -> None:
                t = threading.Thread(target=fn, daemon=True)
                t.start()
            """, select=["GL15"])
        assert codes(result) == []

    def test_unjoined_foreground_thread_fires(self):
        result = run(
            """
            import threading

            def watch(fn) -> None:
                t = threading.Thread(target=fn)
                t.start()
            """, select=["GL15"])
        assert codes(result) == ["GL15"]


# ---------------------------------------------------------------------------
# GL16 — worker exception containment
# ---------------------------------------------------------------------------

_HANDLER_PRELUDE = """
    class ReproError(Exception):
        pass

    class ServiceError(ReproError):
        pass
"""


def run_handler(body: str, select=None):
    # Dedent the two fragments separately: they are written at
    # different indentation levels in this file.
    src = textwrap.dedent(_HANDLER_PRELUDE) + textwrap.dedent(body)
    return lint_source(src, path="life_mod.py", select=select)


class TestExceptionFlow:
    def test_handler_leaking_keyerror_fires(self):
        result = run_handler(
            """
            def lookup(table: dict, key: str):
                if key not in table:
                    raise KeyError(key)
                return table[key]

            class Handler:
                def do_GET(self) -> None:
                    self.reply(lookup(self.routes, self.path))
            """, select=["GL16"])
        # The raises-set is interprocedural: the KeyError originates
        # in lookup() but is reported at the do_GET root.
        assert codes(result) == ["GL16"]
        assert "do_GET" in result.findings[0].message
        assert "KeyError" in result.findings[0].message

    def test_handler_catching_everything_is_clean(self):
        result = run_handler(
            """
            def lookup(table: dict, key: str):
                if key not in table:
                    raise KeyError(key)
                return table[key]

            class Handler:
                def do_GET(self) -> None:
                    try:
                        self.reply(lookup(self.routes, self.path))
                    except Exception:
                        self.reply_error(500)
            """, select=["GL16"])
        assert codes(result) == []

    def test_repro_error_may_escape(self):
        # The service layer's own hierarchy maps to HTTP statuses; the
        # handler framework catches it, so the escape is the contract.
        result = run_handler(
            """
            class Handler:
                def do_POST(self) -> None:
                    raise ServiceError("bad request")
            """, select=["GL16"])
        assert codes(result) == []

    def test_narrow_except_does_not_mask_other_raises(self):
        result = run_handler(
            """
            class Handler:
                def do_GET(self) -> None:
                    try:
                        raise ValueError("boom")
                    except KeyError:
                        pass
            """, select=["GL16"])
        assert codes(result) == ["GL16"]

    def test_thread_target_is_a_root(self):
        result = run_handler(
            """
            import threading

            def worker() -> None:
                raise RuntimeError("worker died")

            def launch() -> threading.Thread:
                t = threading.Thread(target=worker, daemon=True)
                t.start()
                return t
            """, select=["GL16"])
        assert codes(result) == ["GL16"]
        assert "worker" in result.findings[0].message


# ---------------------------------------------------------------------------
# GL17 — retry idempotence
# ---------------------------------------------------------------------------

_RETRY_PRELUDE = """
    class RetryPolicy:
        max_attempts = 3

        def backoff_s(self, attempt: int) -> float:
            return 0.01 * attempt
"""


class TestRetrySafety:
    def test_retried_counter_bump_fires(self):
        result = run(
            _RETRY_PRELUDE + """
            import time

            class Client:
                def __init__(self) -> None:
                    self.retry = RetryPolicy()
                    self._attempts = 0

                def request(self) -> None:
                    for attempt in range(1, self.retry.max_attempts + 1):
                        self._attempts += 1
                        time.sleep(self.retry.backoff_s(attempt))
            """, select=["GL17"])
        assert codes(result) == ["GL17"]
        assert "_attempts" in result.findings[0].message

    def test_annotated_counter_bump_is_clean(self):
        result = run(
            _RETRY_PRELUDE + """
            import time

            class Client:
                def __init__(self) -> None:
                    self.retry = RetryPolicy()
                    self._attempts = 0

                # gl: idempotent — counts attempts by design
                def request(self) -> None:
                    for attempt in range(1, self.retry.max_attempts + 1):
                        self._attempts += 1
                        time.sleep(self.retry.backoff_s(attempt))
            """, select=["GL17"])
        assert codes(result) == []

    def test_pure_retry_loop_is_clean(self):
        result = run(
            _RETRY_PRELUDE + """
            import time

            class Client:
                def __init__(self) -> None:
                    self.retry = RetryPolicy()

                def request(self, op) -> object:
                    for attempt in range(1, self.retry.max_attempts + 1):
                        time.sleep(self.retry.backoff_s(attempt))
                    return op
            """, select=["GL17"])
        assert codes(result) == []

    def test_transitive_mutation_under_retry_fires(self):
        result = run(
            _RETRY_PRELUDE + """
            import time

            class Stats:
                def __init__(self) -> None:
                    self.pushes = 0

                def record(self) -> None:
                    self.pushes += 1

            class Client:
                def __init__(self) -> None:
                    self.retry = RetryPolicy()
                    self.stats = Stats()

                def request(self) -> None:
                    for attempt in range(1, self.retry.max_attempts + 1):
                        self.stats.record()
                        time.sleep(self.retry.backoff_s(attempt))
            """, select=["GL17"])
        assert codes(result) == ["GL17"]
        assert "Stats.record" in result.findings[0].message

    def test_stale_annotation_fires_in_reverse(self):
        result = run(
            """
            class Calc:
                # gl: idempotent
                def double(self, x: int) -> int:
                    return 2 * x
            """, select=["GL17"])
        assert codes(result) == ["GL17"]
        assert "stale" in result.findings[0].message


# ---------------------------------------------------------------------------
# GL18 — cache-key soundness
# ---------------------------------------------------------------------------

class TestCacheKeySoundness:
    def test_env_read_reaching_cached_result_fires(self):
        # The golden positive: an experiment body (Lab-typed arg makes
        # it a root) whose result depends on the environment, which
        # cache_key never digests.
        result = run(
            """
            import hashlib
            import os

            def cache_key(name: str, seed: int) -> str:
                return hashlib.sha256(f"{name}:{seed}".encode()).hexdigest()

            def scale_factor() -> float:
                return float(os.environ.get("REPRO_SCALE", "1.0"))

            def fig_energy(lab: "Lab") -> float:
                return 17.0 * scale_factor()
            """, select=["GL18"])
        assert codes(result) == ["GL18"]
        assert "environment" in result.findings[0].message

    def test_env_read_inside_digest_scope_is_clean(self):
        result = run(
            """
            import hashlib
            import os

            def cache_key(name: str, seed: int) -> str:
                salt = os.environ.get("REPRO_SALT", "")
                return hashlib.sha256(
                    f"{name}:{seed}:{salt}".encode()).hexdigest()

            def fig_energy(lab: "Lab") -> float:
                return 17.0
            """, select=["GL18"])
        assert codes(result) == []

    def test_mutated_global_read_fires(self):
        result = run(
            """
            _MEMO = {}

            def remember(key: str, value: float) -> None:
                _MEMO[key] = value

            def fig_energy(lab: "Lab") -> float:
                return _MEMO.get("joules", 0.0)
            """, select=["GL18"])
        assert codes(result) == ["GL18"]
        assert "_MEMO" in result.findings[0].message

    def test_unmutated_constant_global_is_clean(self):
        result = run(
            """
            _TABLE = {"joules": 17.0}

            def fig_energy(lab: "Lab") -> float:
                return _TABLE.get("joules", 0.0)
            """, select=["GL18"])
        assert codes(result) == []

    def test_unreachable_env_read_is_clean(self):
        # Ambient reads off the experiment-reachable slice are other
        # rules' business (or nobody's), not GL18's.
        result = run(
            """
            import os

            def debug_flag() -> bool:
                return bool(os.environ.get("REPRO_DEBUG"))
            """, select=["GL18"])
        assert codes(result) == []


# ---------------------------------------------------------------------------
# Machinery round-trips: baseline, cache skip, SARIF
# ---------------------------------------------------------------------------

_LEAKY = """\
import socket

def probe() -> None:
    sock = socket.socket()
    sock.sendall(b"ping")
"""


class TestMachinery:
    def test_baseline_round_trip(self, tmp_path):
        mod = tmp_path / "leaky.py"
        mod.write_text(_LEAKY)
        result = lint_paths([str(mod)], select=["GL15"])
        assert codes(result) == ["GL15"]
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), result)
        entries = load_baseline(str(baseline))
        assert len(entries) == 1
        # CLI: baselined run is clean, and fixing the leak makes the
        # stale entry fail instead of silently lingering.
        assert main(["lint", "--select", "GL15",
                     "--baseline", str(baseline), str(mod)]) == 0
        mod.write_text(_LEAKY.replace("sock.sendall(b\"ping\")",
                                      "sock.close()"))
        assert main(["lint", "--select", "GL15",
                     "--baseline", str(baseline), str(mod)]) == 1

    def test_select_gl15_skips_cache_for_file_rules(self, tmp_path, capsys):
        # Project-scope rules never enter the per-file cache: a
        # --select GL15 run must not poison it with
        # "clean-under-GL15-only" entries that a full run would trust.
        mod = tmp_path / "bad.py"
        mod.write_text("import random\n" + _LEAKY)
        cache = str(tmp_path / "cache")
        first = lint_paths([str(mod)], select=["GL15"], cache_dir=cache)
        assert codes(first) == ["GL15"]
        full = lint_paths([str(mod)], cache_dir=cache)
        # The GL15-only run must not have cached "clean" for the file
        # rules: the full run still sees the GL4 unseeded-random hit.
        assert "GL4" in codes(full)
        assert "GL15" in codes(full)

    def test_sarif_renders_findings_and_rule_inventory(self, tmp_path):
        mod = tmp_path / "leaky.py"
        mod.write_text(_LEAKY)
        result = lint_paths([str(mod)], select=["GL15"])
        doc = json.loads(render_sarif(result))
        assert doc["version"] == "2.1.0"
        run_obj = doc["runs"][0]
        rule_ids = {r["id"] for r in run_obj["tool"]["driver"]["rules"]}
        assert {"GL15", "GL16", "GL17", "GL18"} <= rule_ids
        assert len(run_obj["results"]) == 1
        res = run_obj["results"][0]
        assert res["ruleId"] == "GL15"
        region = res["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == result.findings[0].line
        # SARIF columns are 1-based; greenlint's are 0-based.
        assert region["startColumn"] == result.findings[0].col + 1

    def test_cli_format_sarif(self, tmp_path, capsys):
        mod = tmp_path / "leaky.py"
        mod.write_text(_LEAKY)
        assert main(["lint", "--format", "sarif", "--select", "GL15",
                     str(mod)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "GL15"

    def test_json_format_is_byte_stable_with_json_flag(self, tmp_path,
                                                       capsys):
        mod = tmp_path / "leaky.py"
        mod.write_text(_LEAKY)
        assert main(["lint", "--json", "--no-cache", "--select", "GL15",
                     str(mod)]) == 1
        legacy = capsys.readouterr().out
        assert main(["lint", "--format", "json", "--no-cache",
                     "--select", "GL15", str(mod)]) == 1
        assert capsys.readouterr().out == legacy
        # And the document itself still parses under the v1 contract.
        payload = json.loads(legacy)
        assert payload["version"] == 1
        assert payload["findings"][0]["code"] == "GL15"

    def test_json_and_format_conflict_is_usage_error(self, tmp_path,
                                                     capsys):
        mod = tmp_path / "leaky.py"
        mod.write_text(_LEAKY)
        assert main(["lint", "--json", "--format", "sarif",
                     str(mod)]) == 2
        assert "error:" in capsys.readouterr().err
