"""Domain decomposition: distributed sweep equals the single-domain sweep."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim import BlockDecomposition, Grid2D
from repro.sim.stencil import laplacian_5pt


def random_grid(n=34, seed=0) -> Grid2D:
    g = Grid2D(n, n)
    g.data[:] = np.random.default_rng(seed).random((n, n))
    return g


class TestConstruction:
    def test_subdomain_count(self):
        d = BlockDecomposition(random_grid(), 2, 2)
        assert d.n_ranks == 4
        assert len(d.subdomains) == 4

    def test_indivisible_mesh_rejected(self):
        with pytest.raises(SimulationError):
            BlockDecomposition(random_grid(34), 3, 2)  # 32 % 3 != 0

    def test_bad_mesh_rejected(self):
        with pytest.raises(SimulationError):
            BlockDecomposition(random_grid(), 0, 2)

    def test_tiles_partition_interior(self):
        d = BlockDecomposition(random_grid(), 4, 2)
        covered = np.zeros((34, 34), dtype=int)
        for sub in d.subdomains:
            covered[sub.row0 : sub.row1, sub.col0 : sub.col1] += 1
        assert (covered[1:-1, 1:-1] == 1).all()
        assert covered[0].sum() == 0  # boundary not owned


class TestHaloExchange:
    def test_ghosts_match_neighbors(self):
        d = BlockDecomposition(random_grid(), 2, 2)
        g = d.grid.data
        for sub in d.subdomains:
            np.testing.assert_array_equal(
                sub.field[0, 1:-1], g[sub.row0 - 1, sub.col0 : sub.col1]
            )
            np.testing.assert_array_equal(
                sub.field[1:-1, -1], g[sub.row0 : sub.row1, sub.col1]
            )

    def test_wire_bytes_counted(self):
        d = BlockDecomposition(random_grid(), 2, 2)
        # 2x2 mesh of 16x16 tiles: 4 internal edges x 2 directions x 16 x 8 B.
        assert d.halo_bytes_per_exchange() == 8 * 16 * 8

    def test_single_rank_has_no_wire_traffic(self):
        d = BlockDecomposition(random_grid(), 1, 1)
        assert d.halo_bytes_per_exchange() == 0


class TestEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 100),
        mesh=st.sampled_from([(1, 1), (2, 2), (4, 1), (2, 4), (4, 4)]),
        steps=st.integers(1, 5),
    )
    def test_distributed_sweep_equals_serial(self, seed, mesh, steps):
        """The decomposed FTCS update is bitwise the serial update."""
        alpha, n = 1e-4, 34
        serial = random_grid(n, seed)
        dist_grid = serial.copy()
        dt = 0.4 * (serial.dx ** 2 / (4 * alpha))

        d = BlockDecomposition(dist_grid, *mesh)
        for _ in range(steps):
            # Serial reference sweep (interior update only, frozen boundary).
            lap = laplacian_5pt(serial.data, serial.dx, serial.dy)
            serial.data[1:-1, 1:-1] += alpha * dt * lap
            d.step(alpha, dt)
        np.testing.assert_array_equal(d.grid.data, serial.data)
