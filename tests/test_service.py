"""The warm serving layer: caching, coalescing, byte-identity.

Covers the four properties ``repro serve`` promises:

* the in-memory LRU honours both bounds and evicts oldest-first;
* a thread storm of identical requests performs exactly one compute
  (single-flight coalescing), and distinct keys do not coalesce;
* the memory and disk tiers agree (same key scheme, promote-on-miss);
* every registry experiment served from a warm Lab is byte-identical
  to a cold serial ``run_experiment``.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.errors import ConfigError, ServiceError
from repro.experiments.engine import load_result, warm_lab
from repro.experiments.figures import Lab
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.service import ExperimentService, LruCache, ServiceConfig

SEED = 2015


def _bytes(result) -> bytes:
    return pickle.dumps(result, protocol=4)


class TestLruCache:
    def test_entry_bound_evicts_oldest_first(self):
        cache = LruCache(max_entries=3, max_bytes=10_000)
        for key in "abcd":
            cache.put(key, key.upper(), 1)
        assert cache.keys() == ["b", "c", "d"]
        assert cache.get("a") is None
        assert cache.evictions == 1

    def test_get_marks_recency(self):
        cache = LruCache(max_entries=3, max_bytes=10_000)
        for key in "abc":
            cache.put(key, key.upper(), 1)
        assert cache.get("a") == "A"  # refresh a past b and c
        cache.put("d", "D", 1)
        assert cache.keys() == ["c", "a", "d"]
        assert "b" not in cache

    def test_byte_bound_evicts_independently_of_entry_bound(self):
        cache = LruCache(max_entries=100, max_bytes=10)
        cache.put("a", 1, 4)
        cache.put("b", 2, 4)
        cache.put("c", 3, 4)  # 12 bytes > 10: "a" must go
        assert cache.keys() == ["b", "c"]
        assert cache.nbytes == 8

    def test_oversized_value_is_refused_not_destructive(self):
        cache = LruCache(max_entries=4, max_bytes=10)
        assert cache.put("a", 1, 4)
        assert not cache.put("huge", 2, 11)
        assert cache.keys() == ["a"]

    def test_replacing_a_key_updates_the_byte_charge(self):
        cache = LruCache(max_entries=4, max_bytes=100)
        cache.put("a", 1, 40)
        cache.put("a", 2, 10)
        assert cache.nbytes == 10
        assert len(cache) == 1

    def test_counters(self):
        cache = LruCache(max_entries=2, max_bytes=100)
        cache.put("a", 1, 1)
        assert cache.get("a") == 1
        assert cache.get("zzz") is None
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigError):
            LruCache(max_entries=0)
        with pytest.raises(ConfigError):
            LruCache(max_bytes=0)

    def test_remove_drops_entry_and_byte_charge(self):
        cache = LruCache(max_entries=4, max_bytes=100)
        cache.put("a", 1, 40)
        assert cache.remove("a")
        assert not cache.remove("a")  # already gone
        assert cache.get("a") is None
        assert cache.nbytes == 0
        assert len(cache) == 0

    def test_bounds_hold_under_concurrent_insert(self):
        """8 writers race distinct keys; both bounds stay invariants."""
        cache = LruCache(max_entries=64, max_bytes=500)
        n_threads, per_thread, size = 8, 200, 10
        barrier = threading.Barrier(n_threads)

        def churn(worker: int):
            barrier.wait()
            for i in range(per_thread):
                key = f"w{worker}-{i}"
                cache.put(key, i, size)
                cache.get(key)

        threads = [threading.Thread(target=churn, args=(w,))
                   for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(cache) <= 50  # 500 bytes / 10 per entry
        assert cache.nbytes <= 500
        # The byte ledger matches the surviving entries exactly.
        assert cache.nbytes == len(cache) * size
        stats = cache.stats()
        assert stats["evictions"] == n_threads * per_thread - len(cache)


class TestSingleFlight:
    def test_storm_on_one_key_computes_once(self):
        """N concurrent identical requests -> exactly one compute."""
        n_threads = 16
        release = threading.Event()
        calls = []
        call_lock = threading.Lock()

        def slow_compute(eid, lab):
            with call_lock:
                calls.append(eid)
            release.wait(timeout=30)
            return run_experiment(eid, lab)

        with ExperimentService(ServiceConfig(jobs=4),
                               compute=slow_compute) as service:
            barrier = threading.Barrier(n_threads + 1)
            served = []
            served_lock = threading.Lock()

            def request():
                barrier.wait()
                s = service.serve("table2", seed=SEED)
                with served_lock:
                    served.append(s)

            threads = [threading.Thread(target=request)
                       for _ in range(n_threads)]
            for t in threads:
                t.start()
            barrier.wait()       # all requesters lined up...
            release.set()        # ...then let the one compute finish
            for t in threads:
                t.join(timeout=30)

            assert len(calls) == 1
            assert len(served) == n_threads
            stats = service.stats()
            assert stats["computed"] == 1
            assert stats["coalesced"] == n_threads - 1
            # Every waiter got the same result object as the computer.
            results = {id(s.result) for s in served}
            assert len(results) == 1
            assert sorted(s.source for s in served) == (
                ["coalesced"] * (n_threads - 1) + ["computed"])

    def test_distinct_keys_do_not_coalesce(self):
        """Different ids (and different seeds) each compute once."""
        with ExperimentService(ServiceConfig(jobs=4)) as service:
            service.serve("fig4", seed=SEED)
            service.serve("table2", seed=SEED)
            service.serve("fig4", seed=SEED + 1)
            stats = service.stats()
            assert stats["computed"] == 3
            assert stats["coalesced"] == 0

    def test_compute_error_propagates_and_does_not_wedge(self):
        boom = ConfigError("injected failure")

        def failing_compute(eid, lab):
            raise boom

        with ExperimentService(ServiceConfig(jobs=1),
                               compute=failing_compute) as service:
            with pytest.raises(ConfigError):
                service.serve("fig4", seed=SEED)
            assert service.stats()["errors"] == 1
            assert service.stats()["inflight"] == 0

    def test_compute_error_reaches_every_coalesced_waiter(self):
        """One failing compute -> N raising requests, then a clean retry."""
        n_threads = 8
        release = threading.Event()
        calls = []
        call_lock = threading.Lock()

        def compute(eid, lab):
            with call_lock:
                calls.append(eid)
            release.wait(timeout=30)
            if len(calls) == 1:
                raise ConfigError("injected failure")
            return run_experiment(eid, lab)

        with ExperimentService(ServiceConfig(jobs=2),
                               compute=compute) as service:
            barrier = threading.Barrier(n_threads + 1)
            outcomes = []
            outcome_lock = threading.Lock()

            def request():
                barrier.wait()
                try:
                    service.serve("table2", seed=SEED)
                except ConfigError as exc:
                    with outcome_lock:
                        outcomes.append(exc)
                else:  # pragma: no cover - the assertion below fires
                    with outcome_lock:
                        outcomes.append(None)

            threads = [threading.Thread(target=request)
                       for _ in range(n_threads)]
            for t in threads:
                t.start()
            barrier.wait()
            # Only release the failing compute once every requester has
            # actually coalesced onto it, so nobody arrives late and
            # starts a fresh flight.
            deadline = time.monotonic() + 30
            while (service.stats()["coalesced"] < n_threads - 1
                   and time.monotonic() < deadline):
                time.sleep(0.005)
            release.set()
            for t in threads:
                t.join(timeout=30)

            # The single failed compute reached all N waiters as the
            # same exception, and counted as one error, not N.
            assert len(calls) == 1
            assert len(outcomes) == n_threads
            assert all(isinstance(o, ConfigError) for o in outcomes)
            stats = service.stats()
            assert stats["errors"] == 1
            # The failure cleared the in-flight slot: a later request
            # for the same key starts a fresh compute and succeeds.
            assert stats["inflight"] == 0
            served = service.serve("table2", seed=SEED)
            assert served.source == "computed"
            assert len(calls) == 2

    def test_closed_service_rejects_requests(self):
        service = ExperimentService(ServiceConfig(jobs=1))
        service.close()
        with pytest.raises(ServiceError):
            service.serve("fig4", seed=SEED)


class TestTwoTierCache:
    def test_repeat_request_is_a_memory_hit(self):
        with ExperimentService(ServiceConfig(jobs=1)) as service:
            first = service.serve("fig4", seed=SEED)
            second = service.serve("fig4", seed=SEED)
            assert first.source == "computed"
            assert second.source == "memory"
            assert second.result is first.result

    def test_disk_tier_round_trip_and_promotion(self, tmp_path):
        cache_dir = str(tmp_path)
        config = ServiceConfig(jobs=1, cache_dir=cache_dir)
        with ExperimentService(config) as service:
            computed = service.serve("fig4", seed=SEED)
            assert computed.source == "computed"
        # The computed result landed in the engine's disk store...
        on_disk = load_result(cache_dir, "fig4", SEED)
        assert _bytes(on_disk) == _bytes(computed.result)
        # ...and a fresh service (cold memory) serves it from disk,
        # promoting it so the next request hits memory.
        with ExperimentService(config) as fresh:
            warm = fresh.serve("fig4", seed=SEED)
            assert warm.source == "disk"
            assert _bytes(warm.result) == _bytes(computed.result)
            again = fresh.serve("fig4", seed=SEED)
            assert again.source == "memory"
            stats = fresh.stats()
            assert stats["disk_hits"] == 1
            assert stats["computed"] == 0

    def test_worker_lab_restored_from_snapshot(self, tmp_path):
        cache_dir = str(tmp_path)
        # A prior batch run (or serve) left a warm-Lab snapshot behind.
        warm_lab(SEED, cache_dir)
        config = ServiceConfig(jobs=1, cache_dir=cache_dir)
        with ExperimentService(config) as service:
            served = service.serve("fig4", seed=SEED)
            stats = service.stats()
            assert stats["labs_restored"] == 1
            assert stats["labs_built"] == 0
        assert _bytes(served.result) == _bytes(
            run_experiment("fig4", Lab(seed=SEED)))

    def test_invalidate_drops_both_tiers(self, tmp_path):
        cache_dir = str(tmp_path)
        config = ServiceConfig(jobs=1, cache_dir=cache_dir)
        with ExperimentService(config) as service:
            first = service.serve("fig4", seed=SEED)
            assert first.source == "computed"
            assert service.invalidate("fig4", seed=SEED)
            assert load_result(cache_dir, "fig4", SEED) is None
            again = service.serve("fig4", seed=SEED)
            assert again.source == "computed"  # both tiers were dropped
            assert _bytes(again.result) == _bytes(first.result)
            assert not service.invalidate("table2", seed=SEED)  # never held
            assert service.stats()["invalidations"] == 2
            with pytest.raises(ConfigError):
                service.invalidate("not-an-experiment", seed=SEED)

    def test_mem_tier_respects_entry_bound(self):
        config = ServiceConfig(jobs=1, mem_entries=1)
        with ExperimentService(config) as service:
            service.serve("fig4", seed=SEED)
            service.serve("table2", seed=SEED)  # evicts fig4
            refetch = service.serve("fig4", seed=SEED)
            assert refetch.source == "computed"
            assert service.stats()["memory"]["evictions"] >= 1


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def warm_service(self):
        with ExperimentService(ServiceConfig(jobs=2)) as service:
            yield service

    @pytest.mark.parametrize("eid", sorted(EXPERIMENTS))
    def test_served_matches_cold_serial(self, warm_service, eid):
        """Warm-Lab serving == cold serial run, at the pickle-byte level."""
        cold = run_experiment(eid, Lab(seed=SEED))
        served = warm_service.serve(eid, seed=SEED)
        assert _bytes(served.result) == _bytes(cold)
