"""Fault injection, bounded retry, and checkpoint/restart resilience."""

import numpy as np
import pytest

from repro.calibration import CASE_STUDIES
from repro.errors import (
    ConfigError,
    DeviceFailedError,
    FaultError,
    LatentSectorError,
    MachineError,
    PipelineInterrupted,
    ReproError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.experiments import EXPERIMENTS
from repro.experiments.faults import ext_faults, rebuild_cost, run_faulted
from repro.experiments.figures import Lab
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.resilience import ResilientPipelineRunner
from repro.faults.retry import RetryPolicy, RetrySession
from repro.machine.disk import DiskRequest, HddModel, OpKind
from repro.machine.node import Node
from repro.machine.raid import RaidArray, RaidLevel
from repro.machine.specs import paper_testbed
from repro.pipelines.base import PipelineConfig
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.post import PostProcessingPipeline
from repro.pipelines.runner import PipelineRunner
from repro.rng import stream
from repro.system.blockdev import BlockQueue
from repro.units import MiB


def hdd() -> HddModel:
    return HddModel(paper_testbed().disk)


def session(policy: RetryPolicy, seed: int = 7) -> RetrySession:
    return RetrySession(policy, stream("test/backoff", seed))


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultSpec(transient_rate=1.5)
        with pytest.raises(ConfigError):
            FaultSpec(sector_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultSpec(fail_at_op=-1)
        with pytest.raises(ConfigError):
            FaultSpec(sector_attempts=0)

    def test_is_null(self):
        assert FaultSpec().is_null
        assert not FaultSpec(transient_rate=0.1).is_null
        assert not FaultSpec(fail_at_op=0).is_null


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(FaultSpec(seed=3, transient_rate=0.1, sector_rate=0.05))
        b = FaultPlan(FaultSpec(seed=3, transient_rate=0.1, sector_rate=0.05))
        decisions = [a.fault_at(i, is_read=True) for i in range(300)]
        assert decisions == [b.fault_at(i, is_read=True) for i in range(300)]
        assert any(k is not None for k in decisions)

    def test_schedule_independent_of_batch_partitioning(self):
        spec = FaultSpec(seed=5, transient_rate=0.08, sector_rate=0.03)
        scalar = FaultPlan(spec)
        batched = FaultPlan(spec)
        per_op = [scalar.fault_at(i, is_read=True) for i in range(200)]
        first = next(i for i, k in enumerate(per_op) if k is not None)
        hit = batched.first_fault(0, 200, np.ones(200, dtype=bool))
        assert hit is not None
        assert hit[0] == first
        assert hit[1] is per_op[first]

    def test_read_only_kinds_skip_writes(self):
        plan = FaultPlan(FaultSpec(seed=1, sector_rate=1.0, bitflip_rate=1.0))
        assert plan.fault_at(0, is_read=True) is FaultKind.SECTOR
        assert plan.fault_at(1, is_read=False) is None

    def test_reset_replays_from_op_zero(self):
        plan = FaultPlan(FaultSpec(seed=9, transient_rate=0.2))
        before = [plan.fault_at(i, is_read=True) for i in range(50)]
        plan.reset()
        assert [plan.fault_at(i, is_read=True) for i in range(50)] == before


class TestFaultyDeviceDelegation:
    def test_null_plan_is_bit_identical_to_bare_device(self):
        bare = hdd()
        wrapped = FaultyDevice(hdd(), FaultPlan(FaultSpec()))
        reqs = [DiskRequest(OpKind.READ, i * MiB, MiB) for i in range(8)]
        for req in reqs:
            assert wrapped.service(req) == bare.service(req)
        offs = np.arange(8, dtype=np.int64) * (32 * MiB)
        sizes = np.full(8, 4 * MiB, dtype=np.int64)
        assert (wrapped.service_batch(offs, sizes, OpKind.READ)
                == bare.service_batch(offs, sizes, OpKind.READ))
        assert wrapped.submit_write(DiskRequest(OpKind.WRITE, 0, MiB)) \
            == bare.submit_write(DiskRequest(OpKind.WRITE, 0, MiB))
        assert wrapped.flush_cache() == bare.flush_cache()
        assert wrapped.ops_serviced == 17

    def test_failed_attempt_does_not_disturb_inner_state(self):
        # A fault at op 0, then success: the retried request must see the
        # same head position the bare device would at its first request.
        bare = hdd()
        wrapped = FaultyDevice(hdd(), FaultPlan(FaultSpec(seed=2)))
        wrapped._fail_at_op = None  # no scheduled faults; inject manually
        req = DiskRequest(OpKind.READ, 512 * MiB, MiB)
        faulty = FaultyDevice(hdd(),
                              FaultPlan(FaultSpec(seed=2, transient_rate=1.0)))
        with pytest.raises(TransientIOError) as err:
            faulty.service(req)
        assert err.value.elapsed_s > 0
        assert err.value.op_index == 0
        # Inner device untouched: servicing through the bare model from
        # scratch gives the identical result the retry will see.
        assert faulty.inner.service(req) == bare.service(req)


class TestFaultyDeviceFaults:
    def test_whole_device_failure_is_terminal(self):
        dev = FaultyDevice(hdd(), FaultPlan(FaultSpec(fail_at_op=0)))
        req = DiskRequest(OpKind.READ, 0, MiB)
        with pytest.raises(DeviceFailedError) as err:
            dev.service(req)
        assert not err.value.retryable
        assert dev.failed
        with pytest.raises(DeviceFailedError):
            dev.service(req)
        with pytest.raises(DeviceFailedError):
            dev.flush_cache()
        dev.replace()
        assert not dev.failed
        assert dev.service(req).nbytes == MiB

    def test_batched_fault_carries_serviced_prefix(self):
        dev = FaultyDevice(hdd(), FaultPlan(FaultSpec(fail_at_op=3)))
        offs = np.arange(5, dtype=np.int64) * (8 * MiB)
        sizes = np.full(5, MiB, dtype=np.int64)
        with pytest.raises(DeviceFailedError) as err:
            dev.service_batch(offs, sizes, OpKind.READ)
        assert err.value.failed_index == 3
        assert err.value.prefix.n_ops == 3
        assert err.value.prefix.nbytes == 3 * MiB

    def test_sector_error_is_sticky_for_configured_attempts(self):
        # Find a seed whose first sector draw is the clear minimum of the
        # window, so exactly op 0 faults fresh and later ops are clean.
        for seed in range(200):
            draws = stream("faults/sector", seed).random(8)
            if draws[0] < 0.5 * draws[1:].min():
                rate = float((draws[0] + draws[1:].min()) / 2.0)
                break
        else:  # pragma: no cover - seed search is deterministic
            pytest.fail("no suitable seed in range")
        spec = FaultSpec(seed=seed, sector_rate=rate, sector_attempts=3)
        dev = FaultyDevice(hdd(), FaultPlan(spec))
        req = DiskRequest(OpKind.READ, 0, MiB)
        for _ in range(3):  # fresh fault + 2 sticky re-reads
            with pytest.raises(LatentSectorError):
                dev.service(req)
        assert dev.service(req).nbytes == MiB

    def test_reset_restores_schedule_and_scheduled_death(self):
        dev = FaultyDevice(hdd(), FaultPlan(FaultSpec(fail_at_op=1)))
        req = DiskRequest(OpKind.READ, 0, MiB)
        assert dev.service(req).nbytes == MiB
        with pytest.raises(DeviceFailedError):
            dev.service(req)
        dev.reset()
        assert not dev.failed
        assert dev.ops_serviced == 0
        assert dev.service(req).nbytes == MiB
        with pytest.raises(DeviceFailedError):
            dev.service(req)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy().backoff_s(0)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             jitter_fraction=0.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(4) == pytest.approx(0.8)

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0,
                             jitter_fraction=0.1)
        assert policy.backoff_s(1, jitter_u=0.0) == pytest.approx(0.9)
        assert policy.backoff_s(1, jitter_u=0.5) == pytest.approx(1.0)
        lo, hi = 0.9, 1.1
        for u in (0.1, 0.25, 0.75, 0.99):
            assert lo <= policy.backoff_s(1, jitter_u=u) <= hi

    def test_charge_capped_at_timeout(self):
        policy = RetryPolicy(timeout_s=2.0)
        assert policy.charge_s(0.5) == 0.5
        assert policy.charge_s(10.0) == 2.0

    def test_session_backoff_deterministic_per_seed(self):
        policy = RetryPolicy()
        a_sess, b_sess = session(policy, seed=11), session(policy, seed=11)
        a = [a_sess.backoff_s(i) for i in range(1, 6)]
        b = [b_sess.backoff_s(i) for i in range(1, 6)]
        assert a == b
        c_sess = session(policy, seed=12)
        assert a != [c_sess.backoff_s(i) for i in range(1, 6)]

    def test_exhaustion_error_is_in_the_repro_hierarchy(self):
        assert issubclass(RetryExhaustedError, MachineError)
        assert issubclass(RetryExhaustedError, ReproError)
        assert issubclass(FaultError, ReproError)
        assert issubclass(DeviceFailedError, FaultError)


class TestBlockQueueRetry:
    def test_without_session_faults_propagate_once_charged(self):
        dev = FaultyDevice(hdd(), FaultPlan(FaultSpec(transient_rate=1.0)))
        queue = BlockQueue(dev)
        with pytest.raises(TransientIOError):
            queue.submit([DiskRequest(OpKind.READ, 0, MiB)])
        assert queue.stats.n_faults == 1
        assert queue.stats.n_retries == 0
        assert queue.stats.fault_time > 0
        assert queue.stats.busy_time == pytest.approx(queue.stats.fault_time)

    def test_exhausted_retries_raise_retry_exhausted(self):
        dev = FaultyDevice(hdd(), FaultPlan(FaultSpec(transient_rate=1.0)))
        policy = RetryPolicy(max_attempts=3)
        queue = BlockQueue(dev, retry=session(policy))
        with pytest.raises(RetryExhaustedError) as err:
            queue.submit([DiskRequest(OpKind.READ, 0, MiB)])
        assert isinstance(err.value.__cause__, TransientIOError)
        assert queue.stats.n_faults == 3
        assert queue.stats.n_retries == 2

    def test_retry_recovers_and_services_every_request(self):
        # Pick a rate so exactly one early op faults, then the stream is
        # clean: the batch must resume at the failed element and finish.
        for seed in range(200):
            draws = stream("faults/transient", seed).random(64)
            if draws[0] < 0.5 * draws[1:].min():
                rate = float((draws[0] + draws[1:].min()) / 2.0)
                break
        else:  # pragma: no cover - seed search is deterministic
            pytest.fail("no suitable seed in range")
        dev = FaultyDevice(hdd(), FaultPlan(FaultSpec(seed=seed,
                                                      transient_rate=rate)))
        queue = BlockQueue(dev, retry=session(RetryPolicy()))
        offs = np.arange(16, dtype=np.int64) * (4 * MiB)
        stats = queue.submit_arrays(OpKind.READ, offs, MiB)
        assert stats.n_reads == 16
        assert stats.bytes_read == 16 * MiB
        assert stats.n_faults == 1
        assert stats.n_retries == 1
        assert stats.fault_time > 0

    def test_timeout_caps_the_batched_fault_charge(self):
        # A huge transfer would occupy the device for >> timeout_s; the
        # charge for each failed attempt must be the command timeout.
        dev = FaultyDevice(hdd(), FaultPlan(FaultSpec(transient_rate=1.0)))
        elapsed = dev.stream_time(512 * MiB, OpKind.READ)
        policy = RetryPolicy(max_attempts=2, timeout_s=0.001,
                             backoff_base_s=0.0, jitter_fraction=0.0)
        assert elapsed > policy.timeout_s
        queue = BlockQueue(dev, retry=session(policy))
        offs = np.zeros(1, dtype=np.int64)
        with pytest.raises(RetryExhaustedError):
            queue.submit_arrays(OpKind.READ, offs, 512 * MiB)
        assert queue.stats.n_faults == 2
        assert queue.stats.fault_time == pytest.approx(2 * policy.timeout_s)

    def test_device_failure_is_never_retried(self):
        dev = FaultyDevice(hdd(), FaultPlan(FaultSpec(fail_at_op=0)))
        queue = BlockQueue(dev, retry=session(RetryPolicy(max_attempts=10)))
        with pytest.raises(DeviceFailedError):
            queue.submit([DiskRequest(OpKind.READ, 0, MiB)])
        assert queue.stats.n_retries == 0


class TestRaidResilience:
    def members(self, n=4):
        return [hdd() for _ in range(n)]

    def test_raid5_survives_one_failure_and_rebuilds(self):
        array = RaidArray(self.members(), RaidLevel.RAID5)
        array.fail_member(1)
        assert array.degraded
        result = array.service(DiskRequest(OpKind.READ, 0, 8 * MiB))
        assert result.nbytes == 8 * MiB
        write = array.service(DiskRequest(OpKind.WRITE, 0, 8 * MiB))
        assert write.nbytes == 8 * MiB
        report = array.rebuild(1, used_bytes=64 * MiB)
        assert not array.degraded
        assert report.duration_s > 0
        assert report.bytes_written == 64 * MiB
        assert report.bytes_read == 3 * 64 * MiB  # every survivor re-XORs
        assert report.activity().disk_write_bytes_per_s > 0

    def test_raid5_two_failures_exceed_tolerance(self):
        array = RaidArray(self.members(), RaidLevel.RAID5)
        array.fail_member(0)
        array.fail_member(2)
        with pytest.raises(DeviceFailedError):
            array.service(DiskRequest(OpKind.READ, 0, MiB))

    def test_raid1_reads_from_survivors(self):
        array = RaidArray(self.members(2), RaidLevel.RAID1)
        array.fail_member(0)
        for _ in range(3):
            assert array.service(DiskRequest(OpKind.READ, 0, MiB)).nbytes == MiB
        array.fail_member(1)
        with pytest.raises(DeviceFailedError):
            array.service(DiskRequest(OpKind.READ, 0, MiB))

    def test_raid0_cannot_rebuild(self):
        array = RaidArray(self.members(), RaidLevel.RAID0)
        array.fail_member(0)
        with pytest.raises(DeviceFailedError):
            array.service(DiskRequest(OpKind.READ, 0, MiB))
        with pytest.raises(DeviceFailedError):
            array.rebuild(0)

    def test_reset_clears_failures(self):
        array = RaidArray(self.members(), RaidLevel.RAID5)
        array.fail_member(3)
        array.reset()
        assert not array.degraded


def resilient_run(kind, spec, checkpoint_interval=0, seed=2015):
    return run_faulted(kind, spec, seed=seed,
                       checkpoint_interval=checkpoint_interval)


class TestZeroRateEquivalence:
    """Fault rate zero must be bit-identical to the fault-free model."""

    @pytest.mark.parametrize("pipeline_cls,kind", [
        (PostProcessingPipeline, "post"),
        (InSituPipeline, "insitu"),
    ])
    def test_wrapped_zero_rate_matches_bare_run(self, pipeline_cls, kind):
        config = PipelineConfig(case=CASE_STUDIES[1])
        bare = PipelineRunner(node=Node(paper_testbed(), storage=hdd()),
                              seed=2015).run(pipeline_cls(config))
        wrapped, _ = resilient_run(kind, FaultSpec(seed=2015))
        assert wrapped.energy_j == bare.energy_j
        assert wrapped.execution_time_s == bare.execution_time_s
        assert wrapped.images_rendered == bare.images_rendered
        assert "restarts" not in wrapped.extra


class TestCheckpointRestart:
    @pytest.fixture(scope="class")
    def post_runs(self):
        base, device = resilient_run("post", FaultSpec(seed=2015))
        spec = FaultSpec(seed=2015, transient_rate=0.02, sector_rate=0.005,
                         fail_at_op=device.ops_serviced // 2)
        faulted, _ = resilient_run("post", spec)
        return base, faulted

    def test_post_recovers_from_midrun_device_failure(self, post_runs):
        base, faulted = post_runs
        assert faulted.extra["restarts"] >= 1
        assert faulted.verification.ok
        assert faulted.energy_j > base.energy_j
        assert faulted.execution_time_s > base.execution_time_s

    def test_recovery_and_restart_spans_are_metered(self, post_runs):
        _, faulted = post_runs
        stages = {span.stage for span in faulted.timeline.spans}
        assert "restart" in stages
        assert "recovery" in stages
        restart = next(s for s in faulted.timeline.spans
                       if s.stage == "restart")
        assert restart.duration > 0
        assert restart.meta["attempt"] == 1

    def test_insitu_recovers_via_explicit_checkpoints(self):
        base, device = resilient_run("insitu", FaultSpec(seed=2015),
                                     checkpoint_interval=10)
        spec = FaultSpec(seed=2015, fail_at_op=device.ops_serviced // 2)
        faulted, _ = resilient_run("insitu", spec, checkpoint_interval=10)
        assert faulted.extra["restarts"] >= 1
        assert faulted.energy_j > base.energy_j
        # The restart resumed from a checkpoint, not from scratch.
        restart = next(s for s in faulted.timeline.spans
                       if s.stage == "restart")
        assert restart.meta["resumed_from"] > 0
        assert restart.meta["checkpoint_bytes"] > 0

    def test_plain_runner_propagates_the_interrupt(self):
        device = FaultyDevice(hdd(), FaultPlan(FaultSpec(fail_at_op=2)))
        runner = PipelineRunner(node=Node(paper_testbed(), storage=device),
                                seed=2015)
        config = PipelineConfig(case=CASE_STUDIES[1],
                                retry_policy=RetryPolicy())
        with pytest.raises(PipelineInterrupted):
            runner.run(PostProcessingPipeline(config))

    def test_restart_budget_is_bounded(self):
        device = FaultyDevice(hdd(), FaultPlan(FaultSpec(fail_at_op=2)))
        runner = ResilientPipelineRunner(
            node=Node(paper_testbed(), storage=device), seed=2015,
            max_restarts=0)
        config = PipelineConfig(case=CASE_STUDIES[1],
                                retry_policy=RetryPolicy())
        with pytest.raises(PipelineInterrupted):
            runner.run(PostProcessingPipeline(config))


class TestExtFaultsExperiment:
    def test_registered(self):
        assert "ext-faults" in EXPERIMENTS

    @pytest.fixture(scope="class")
    def result(self):
        return ext_faults(Lab(seed=2015))

    def test_reports_energy_overhead_for_both_pipelines(self, result):
        for kind in ("post", "insitu"):
            assert result.data[kind]["overhead_pct"] > 0
            assert result.data[kind]["faulted_kj"] \
                > result.data[kind]["baseline_kj"]
            assert result.data[kind]["restarts"] >= 1

    def test_deterministic_across_labs(self, result):
        again = ext_faults(Lab(seed=2015))
        assert again.data == result.data
        assert again.text == result.text

    def test_rebuild_block_priced(self, result):
        block = result.data["raid5_rebuild"]
        assert block["duration_s"] > 0
        assert block["energy_kj"] > 0
        assert "RAID 5 rebuild" in result.text

    def test_run_faulted_validates_inputs(self):
        with pytest.raises(ConfigError):
            run_faulted("nope", FaultSpec(), seed=1)
        with pytest.raises(ConfigError):
            run_faulted("post", FaultSpec(), seed=1, case_index=99)

    def test_rebuild_cost_deterministic(self):
        r1, p1 = rebuild_cost(seed=4)
        r2, p2 = rebuild_cost(seed=4)
        assert r1 == r2
        assert p1.energy() == p2.energy()


class TestFaultsCli:
    def test_faults_subcommand_reports_recovery(self, capsys):
        from repro.cli import main
        code = main(["faults", "--pipeline", "insitu",
                     "--checkpoint-interval", "10", "--fail-at-op", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "restarts=1" in out
        assert "fault-free:" in out
