"""Section V.C's savings breakdown and Table II's stage-power table."""

import pytest

from repro.errors import MeasurementError
from repro.machine import Node
from repro.power import MeterRig, SavingsBreakdown, stage_power_table
from repro.power.breakdown import savings_breakdown
from repro.rng import RngRegistry
from repro.trace import Activity, Timeline

WRITE = Activity(cpu_util=0.015, dram_bytes_per_s=0.3e9,
                 disk_write_bytes_per_s=9.1e4, disk_seek_duty=0.90)
READ = Activity(cpu_util=0.015, dram_bytes_per_s=0.3e9,
                disk_read_bytes_per_s=1.0e5, disk_seek_duty=0.93)


class TestStagePowerTable:
    def test_table2_shape(self):
        """nnread/nnwrite total ~115 W, dynamic ~10 W (Table II)."""
        node = Node()
        tl = Timeline()
        for _ in range(25):
            tl.record("nnwrite", 1.0, WRITE)
        for _ in range(25):
            tl.record("nnread", 1.0, READ)
        profile = MeterRig(node, rng=RngRegistry(5)).sample(tl)
        table = stage_power_table(tl, profile, static_w=node.static_power_w)
        assert table["nnwrite"].avg_total_w == pytest.approx(114.8, abs=1.5)
        assert table["nnread"].avg_total_w == pytest.approx(115.1, abs=1.5)
        assert table["nnwrite"].avg_dynamic_w == pytest.approx(10.0, abs=1.5)
        assert table["nnread"].avg_dynamic_w == pytest.approx(10.3, abs=1.5)

    def test_static_is_difference(self):
        from repro.power.breakdown import StagePower

        row = StagePower("nnread", 115.1, 10.3)
        assert row.static_w == pytest.approx(104.8)

    def test_absent_stage_omitted(self):
        node = Node()
        tl = Timeline()
        tl.record("simulation", 5.0, Activity(cpu_util=0.3, dram_bytes_per_s=5e9))
        profile = MeterRig(node, rng=RngRegistry(6)).sample(tl)
        table = stage_power_table(tl, profile, static_w=node.static_power_w)
        assert table == {}


class TestSavingsBreakdown:
    def test_paper_case_study_1(self):
        """Paper: 12.8 kJ static + 1.2 kJ dynamic = 91 % / 9 %."""
        b = savings_breakdown(
            baseline_energy_j=30_030.0, baseline_time_s=240.6,
            insitu_energy_j=17_170.0, insitu_time_s=127.5,
            io_dynamic_power_w=10.15,
        )
        assert b.total_savings_j == pytest.approx(12_860, rel=0.01)
        assert b.dynamic_savings_j == pytest.approx(1_148, rel=0.01)
        assert b.static_fraction == pytest.approx(0.91, abs=0.02)
        assert b.dynamic_fraction == pytest.approx(0.09, abs=0.02)

    def test_fractions_sum_to_one(self):
        b = savings_breakdown(1000, 10, 500, 5, 20)
        assert b.static_fraction + b.dynamic_fraction == pytest.approx(1.0)

    def test_dynamic_capped_by_total(self):
        b = savings_breakdown(1000, 100, 990, 10, 50.0)
        assert b.dynamic_savings_j <= b.total_savings_j

    def test_no_savings_case(self):
        b = savings_breakdown(100, 10, 150, 12, 10)
        assert b.total_savings_j < 0
        assert b.static_fraction == 0.0

    def test_validation(self):
        with pytest.raises(MeasurementError):
            savings_breakdown(-1, 1, 1, 1, 1)
        with pytest.raises(MeasurementError):
            savings_breakdown(1, -1, 1, 1, 1)
        with pytest.raises(MeasurementError):
            savings_breakdown(1, 1, 1, 1, -1)

    def test_dataclass_properties(self):
        b = SavingsBreakdown(total_savings_j=14_000, dynamic_savings_j=1_200)
        assert b.static_savings_j == pytest.approx(12_800)
