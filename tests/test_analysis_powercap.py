"""Power-cap what-if analysis."""

import pytest

from repro.analysis.powercap import CapReport, fit_under_cap
from repro.calibration import CASE_STUDIES
from repro.errors import ReproError
from repro.machine import Node
from repro.pipelines import InSituPipeline, PipelineConfig, PipelineRunner
from repro.power import MeterRig
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def insitu_run():
    runner = PipelineRunner(seed=41, jitter=0)
    return runner.run(InSituPipeline(PipelineConfig(case=CASE_STUDIES[1])))


@pytest.fixture(scope="module")
def node():
    return Node()


class TestFitUnderCap:
    def test_generous_cap_is_noop(self, insitu_run, node):
        report = fit_under_cap(insitu_run.timeline, node, cap_w=200.0)
        assert report.feasible
        assert report.throttled_spans == 0
        assert report.slowdown == pytest.approx(1.0)

    def test_tight_cap_throttles_simulation(self, insitu_run, node):
        # Simulation draws 143 W; cap at 130 W forces DVFS there.
        report = fit_under_cap(insitu_run.timeline, node, cap_w=130.0)
        assert report.feasible
        assert report.throttled_spans == 50  # every simulation span
        assert report.slowdown > 1.05

    def test_capped_profile_respects_cap(self, insitu_run, node):
        report = fit_under_cap(insitu_run.timeline, node, cap_w=130.0)
        # Ground truth: every span's true power is at or under the cap.
        worst = max(node.power(s.activity).system
                    for s in report.capped_timeline)
        assert worst <= 130.0 + 1e-9
        # The *meter* may read slightly above it (its own noise).
        rig = MeterRig(node, jitter=0, rng=RngRegistry(13))
        profile = rig.sample(report.capped_timeline)
        assert profile["system"].max() <= 130.0 + 2.5

    def test_cap_trades_time_for_power(self, insitu_run, node):
        loose = fit_under_cap(insitu_run.timeline, node, cap_w=140.0)
        tight = fit_under_cap(insitu_run.timeline, node, cap_w=125.0)
        assert tight.slowdown > loose.slowdown

    def test_energy_under_cap(self, insitu_run, node):
        """Capping is not an energy optimization: the run slows more than
        the power drops, so energy typically rises (race-to-idle)."""
        report = fit_under_cap(insitu_run.timeline, node, cap_w=125.0)
        rig = MeterRig(node, jitter=0, rng=RngRegistry(14))
        capped_energy = rig.sample(report.capped_timeline).energy()
        rig2 = MeterRig(node, jitter=0, rng=RngRegistry(14))
        base_energy = rig2.sample(insitu_run.timeline).energy()
        assert capped_energy > base_energy

    def test_markers_move_with_stretch(self, insitu_run, node):
        report = fit_under_cap(insitu_run.timeline, node, cap_w=125.0)
        names = [m.name for m in report.capped_timeline.markers]
        assert names == [m.name for m in insitu_run.timeline.markers]
        # The timeline grew, and no marker sits past the end.
        assert all(m.t <= report.capped_timeline.now
                   for m in report.capped_timeline.markers)

    def test_infeasible_cap_rejected(self, insitu_run, node):
        with pytest.raises(ReproError):
            fit_under_cap(insitu_run.timeline, node, cap_w=100.0)  # < floor
        with pytest.raises(ReproError):
            fit_under_cap(insitu_run.timeline, node, cap_w=0.0)

    def test_barely_feasible_cap(self, insitu_run, node):
        # Just above the floor: everything throttles to the minimum; the
        # report is honest about any remaining violations.
        report = fit_under_cap(insitu_run.timeline, node, cap_w=106.0)
        assert isinstance(report, CapReport)
        assert report.throttled_spans > 0
