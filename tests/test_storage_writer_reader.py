"""Timestep writer/reader over the simulated filesystem."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.machine import HddModel
from repro.machine.specs import DiskSpec
from repro.sim import Grid2D
from repro.storage import DataReader, DataWriter
from repro.system import BlockQueue, FileSystem, PageCache
from repro.units import KiB


@pytest.fixture
def fs() -> FileSystem:
    queue = BlockQueue(HddModel(DiskSpec()))
    return FileSystem(queue, cache=PageCache(queue))


def sample_grid(seed=0) -> Grid2D:
    g = Grid2D.paper_grid()
    g.data[:] = np.random.default_rng(seed).random((128, 128))
    return g


class TestWriter:
    def test_write_creates_named_file(self, fs):
        w = DataWriter(fs)
        report = w.write_timestep(sample_grid(), 3)
        assert report.name == "ts0003.dat"
        assert fs.exists("ts0003.dat")
        assert report.nbytes > 128 * KiB  # payload + header

    def test_sync_each_reaches_platter(self, fs):
        w = DataWriter(fs, sync_each=True)
        report = w.write_timestep(sample_grid(), 0)
        assert report.io.bytes_written >= 128 * KiB

    def test_no_sync_defers_io(self, fs):
        w = DataWriter(fs, sync_each=False, drop_caches_each=False)
        report = w.write_timestep(sample_grid(), 0)
        assert report.io.bytes_written == 0

    def test_duplicate_timestep_rejected(self, fs):
        w = DataWriter(fs)
        w.write_timestep(sample_grid(), 0)
        with pytest.raises(StorageError):
            w.write_timestep(sample_grid(), 0)

    def test_negative_timestep_rejected(self, fs):
        with pytest.raises(StorageError):
            DataWriter(fs).write_timestep(sample_grid(), -1)

    def test_total_bytes(self, fs):
        w = DataWriter(fs)
        w.write_timestep(sample_grid(), 0)
        w.write_timestep(sample_grid(), 1)
        assert w.total_bytes > 2 * 128 * KiB


class TestReader:
    def test_grid_roundtrip(self, fs):
        grid = sample_grid(7)
        DataWriter(fs).write_timestep(grid, 5, physical_time=2.5)
        back, report = DataReader(fs).read_grid(5)
        np.testing.assert_array_equal(back.data, grid.data)
        assert report.nbytes > 128 * KiB

    def test_drop_caches_makes_read_cold(self, fs):
        DataWriter(fs).write_timestep(sample_grid(), 0)
        _, report = DataReader(fs, drop_caches_first=True).read_grid(0)
        assert report.io.bytes_read >= 128 * KiB

    def test_warm_read_without_drop(self, fs):
        DataWriter(fs).write_timestep(sample_grid(), 0)
        # First read warms the cache; second without dropping is free.
        reader = DataReader(fs, drop_caches_first=False)
        reader.read_grid(0)
        _, report = reader.read_grid(0)
        assert report.io.bytes_read == 0

    def test_available_timesteps(self, fs):
        w = DataWriter(fs)
        for t in (0, 2, 8):
            w.write_timestep(sample_grid(t), t)
        fs.write("unrelated.txt", b"hi")
        assert DataReader(fs).available_timesteps() == [0, 2, 8]

    def test_timestep_mismatch_detected(self, fs):
        grid = sample_grid()
        w = DataWriter(fs)
        w.write_timestep(grid, 1)
        # Sneak the file under the wrong name.
        blob, _ = fs.read("ts0001.dat")
        fs.write("ts0002.dat", blob)
        with pytest.raises(StorageError):
            DataReader(fs).read_timestep(2)

    def test_selective_chunk_read_cheaper(self, fs):
        g = Grid2D(512, 128)  # 4 chunks of 128 KiB
        g.data[:] = np.random.default_rng(1).random((512, 128))
        DataWriter(fs).write_timestep(g, 0)
        reader = DataReader(fs)
        chunk, report = reader.read_chunk(0, 2, n_chunks_hint=4)
        assert len(chunk) == 128 * KiB
        _, full = DataReader(fs).read_grid(0)
        assert report.io.bytes_read < full.io.bytes_read / 2
        assert chunk == g.chunks(128 * KiB)[2]
