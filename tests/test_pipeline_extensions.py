"""Extension pipelines: sampling hybrid, cluster decomposition, DVFS."""

import numpy as np
import pytest

from repro.calibration import CASE_STUDIES
from repro.errors import PipelineError
from repro.machine import Node
from repro.pipelines import (
    ClusterInSituPipeline,
    InSituPipeline,
    PipelineConfig,
    PipelineRunner,
    PostProcessingPipeline,
    SamplingInSituPipeline,
    apply_dvfs,
    io_phase_dvfs,
)
from repro.pipelines.cluster import choose_mesh
from repro.power.meters import MeterRig
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def runner() -> PipelineRunner:
    return PipelineRunner(seed=31)


@pytest.fixture(scope="module")
def cfg() -> PipelineConfig:
    return PipelineConfig(case=CASE_STUDIES[1])


class TestSamplingPipeline:
    @pytest.fixture(scope="class")
    def run(self, runner, cfg):
        return runner.run(SamplingInSituPipeline(cfg, sampling_factor=4))

    def test_sits_between_the_extremes(self, runner, cfg, run):
        post = runner.run(PostProcessingPipeline(cfg))
        insitu = runner.run(InSituPipeline(cfg))
        assert insitu.energy_j < run.energy_j < post.energy_j
        assert insitu.execution_time_s < run.execution_time_s < post.execution_time_s

    def test_bytes_are_a_fraction(self, run):
        assert run.extra["byte_fraction"] < 0.1
        assert run.data_bytes_written > 0

    def test_quality_is_quantified(self, run):
        assert 0 < run.extra["mean_nrmse"] < 0.5
        assert len(run.extra["sampling_reports"]) == 50

    def test_sampled_dumps_roundtrip(self, run):
        assert run.verification.ok
        assert run.verification.grids_checked == 50

    def test_higher_factor_fewer_bytes_more_error(self, runner, cfg):
        coarse = runner.run(SamplingInSituPipeline(cfg, sampling_factor=16),
                            run_id="sf16")
        fine = runner.run(SamplingInSituPipeline(cfg, sampling_factor=2),
                          run_id="sf2")
        assert coarse.data_bytes_written < fine.data_bytes_written
        assert coarse.extra["mean_nrmse"] > fine.extra["mean_nrmse"]

    def test_factor_validated(self, cfg):
        with pytest.raises(PipelineError):
            SamplingInSituPipeline(cfg, sampling_factor=1)


class TestClusterPipeline:
    def test_mesh_selection(self):
        assert choose_mesh(4, 126) == (2, 2)
        assert choose_mesh(9, 126) == (3, 3)
        assert choose_mesh(2, 126) in ((1, 2), (2, 1))
        with pytest.raises(PipelineError):
            choose_mesh(5, 126)  # 5 does not divide 126
        with pytest.raises(PipelineError):
            choose_mesh(0, 126)

    def test_physics_matches_serial(self, runner, cfg):
        serial = runner.run(InSituPipeline(cfg))
        cluster = runner.run(ClusterInSituPipeline(cfg, n_nodes=4))
        assert cluster.extra["final_mean_temperature"] == pytest.approx(
            serial.extra["final_mean_temperature"], rel=1e-12
        )

    def test_strong_scaling_time(self, runner, cfg):
        t = {}
        for n in (1, 4, 9):
            r = runner.run(ClusterInSituPipeline(cfg, n_nodes=n),
                           run_id=f"cluster{n}")
            t[n] = r.execution_time_s
        assert t[4] < t[1] / 3
        assert t[9] < t[4]

    def test_total_energy_roughly_conserved_then_grows(self, runner, cfg):
        e = {}
        for n in (1, 9, 36):
            r = runner.run(ClusterInSituPipeline(cfg, n_nodes=n),
                           run_id=f"clusterE{n}")
            e[n] = r.extra["total_energy_j"]
        # Perfect strong scaling is roughly energy-neutral...
        assert e[9] == pytest.approx(e[1], rel=0.1)
        # ...but communication overhead only ever adds energy.
        assert e[36] >= e[9] * 0.98

    def test_halo_traffic_reported(self, runner, cfg):
        r = runner.run(ClusterInSituPipeline(cfg, n_nodes=4), run_id="halo4")
        assert r.extra["halo_bytes_per_exchange"] > 0
        stages = r.timeline.stage_totals()
        assert "halo-exchange" in stages
        assert "compositing" in stages

    def test_single_node_has_no_comm_stages(self, runner, cfg):
        r = runner.run(ClusterInSituPipeline(cfg, n_nodes=1), run_id="c1")
        stages = r.timeline.stage_totals()
        assert "halo-exchange" not in stages
        assert "compositing" not in stages


class TestDvfs:
    @pytest.fixture(scope="class")
    def post_run(self, runner, cfg):
        return runner.run(PostProcessingPipeline(cfg))

    def test_scaled_timeline_preserves_durations(self, post_run):
        scaled = io_phase_dvfs(post_run.timeline, 0.5)
        assert scaled.duration == pytest.approx(post_run.timeline.duration)
        assert len(scaled) == len(post_run.timeline)

    def test_only_io_stages_scaled(self, post_run):
        scaled = io_phase_dvfs(post_run.timeline, 0.5)
        for span in scaled:
            expected = 0.5 if span.stage in ("nnwrite", "nnread", "idle") else 1.0
            assert span.activity.cpu_freq_ratio == expected

    def test_markers_preserved(self, post_run):
        scaled = io_phase_dvfs(post_run.timeline, 0.5)
        assert [m.name for m in scaled.markers] == [
            m.name for m in post_run.timeline.markers
        ]

    def test_saves_little_energy(self, post_run):
        """The ablation's point: static power dominates, DVFS on I/O
        phases recovers ~1 % — consistent with Sec V.C."""
        rig = MeterRig(Node(), jitter=0, rng=RngRegistry(5))
        base = rig.sample(post_run.timeline).energy()
        rig2 = MeterRig(Node(), jitter=0, rng=RngRegistry(5))
        scaled = rig2.sample(io_phase_dvfs(post_run.timeline, 0.4)).energy()
        saving = 1 - scaled / base
        assert 0.0 < saving < 0.02

    def test_ratio_validated(self, post_run):
        with pytest.raises(PipelineError):
            apply_dvfs(post_run.timeline, {"nnread": 0.05})
        with pytest.raises(PipelineError):
            apply_dvfs(post_run.timeline, {"nnread": 1.5})

    def test_cubic_power_reduction_on_compute(self, post_run):
        """Scaling the *simulation* stage does cut real power (and would
        stretch runtime — which is why the pipelines don't do it)."""
        node = Node()
        scaled = apply_dvfs(post_run.timeline, {"simulation": 0.5})
        sim_span = next(s for s in scaled if s.stage == "simulation")
        full = node.power(sim_span.activity.replace(cpu_freq_ratio=1.0)).package
        low = node.power(sim_span.activity).package
        # dynamic 30 W -> 30/8 W
        assert full - low == pytest.approx(30 - 30 / 8, abs=0.5)


class TestGridScale:
    def test_volume_scaling_changes_io_time(self, runner):
        small = PipelineConfig(case=CASE_STUDIES[3])
        big = PipelineConfig(case=CASE_STUDIES[3], grid_scale=8,
                             solver_sub_steps=1)
        r_small = runner.run(PostProcessingPipeline(small), run_id="gs1")
        r_big = runner.run(PostProcessingPipeline(big), run_id="gs8")
        # 64x the dump volume: write events grow by the transfer term.
        write_small = r_small.timeline.stage_totals()["nnwrite"].total_time
        write_big = r_big.timeline.stage_totals()["nnwrite"].total_time
        assert write_big > write_small * 1.02
        # Simulation cost scales with cell count.
        sim_small = r_small.timeline.stage_totals()["simulation"].total_time
        sim_big = r_big.timeline.stage_totals()["simulation"].total_time
        assert sim_big == pytest.approx(64 * sim_small, rel=0.01)

    def test_scale_validated(self):
        with pytest.raises(PipelineError):
            PipelineConfig(case=CASE_STUDIES[1], grid_scale=0)
        with pytest.raises(PipelineError):
            PipelineConfig(case=CASE_STUDIES[1], solver_sub_steps=0)
