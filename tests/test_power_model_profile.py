"""Power arithmetic helpers and the PowerProfile container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MeasurementError
from repro.power import (
    PowerProfile,
    average_power,
    dynamic_component,
    integrate_energy,
    peak_power,
)
from repro.trace.events import PhaseMarker


class TestModelHelpers:
    def test_integrate_constant(self):
        assert integrate_energy([100.0] * 10, 1.0) == pytest.approx(1000.0)

    def test_integrate_respects_dt(self):
        assert integrate_energy([100.0] * 10, 0.5) == pytest.approx(500.0)

    def test_integrate_rejects_bad_dt(self):
        with pytest.raises(MeasurementError):
            integrate_energy([1.0], 0.0)

    def test_average_and_peak(self):
        s = [100.0, 140.0, 120.0]
        assert average_power(s) == pytest.approx(120.0)
        assert peak_power(s) == pytest.approx(140.0)

    def test_empty_series_rejected(self):
        with pytest.raises(MeasurementError):
            average_power([])
        with pytest.raises(MeasurementError):
            peak_power([])

    def test_dynamic_component_clips(self):
        d = dynamic_component([100.0, 110.0, 90.0], static_w=104.8)
        assert d[0] == 0.0
        assert d[1] == pytest.approx(5.2)
        assert d[2] == 0.0

    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=100),
           st.floats(0.01, 10))
    def test_energy_equals_avg_times_duration(self, samples, dt):
        e = integrate_energy(samples, dt)
        assert e == pytest.approx(average_power(samples) * len(samples) * dt,
                                  rel=1e-9, abs=1e-6)


def profile() -> PowerProfile:
    sys = np.concatenate([np.full(10, 143.0), np.full(10, 121.0)])
    return PowerProfile(
        dt=1.0,
        channels={"system": sys, "processor": sys - 60, "dram": np.full(20, 15.0)},
        markers=(PhaseMarker("simulate+write", 0.0), PhaseMarker("read+visualize", 10.0)),
    )


class TestPowerProfile:
    def test_shape(self):
        p = profile()
        assert p.n_samples == 20
        assert p.duration == 20.0
        assert p.times[0] == 1.0 and p.times[-1] == 20.0

    def test_metrics(self):
        p = profile()
        assert p.average() == pytest.approx(132.0)
        assert p.peak() == pytest.approx(143.0)
        assert p.energy() == pytest.approx(2640.0)
        assert p.energy("dram") == pytest.approx(300.0)

    def test_unknown_channel_rejected(self):
        with pytest.raises(MeasurementError):
            profile()["gpu"]

    def test_mismatched_channels_rejected(self):
        with pytest.raises(MeasurementError):
            PowerProfile(dt=1.0, channels={"a": np.zeros(3), "b": np.zeros(4)})

    def test_bad_dt_rejected(self):
        with pytest.raises(MeasurementError):
            PowerProfile(dt=0.0, channels={})

    def test_slice(self):
        sub = profile().slice(5.0, 15.0)
        assert sub.n_samples == 10
        assert sub.average() == pytest.approx(132.0)

    def test_phase_average_matches_paper_shape(self):
        # Section V.A: phase 1 ~143 W, phase 2 ~121 W.
        phases = profile().phase_average()
        assert phases["simulate+write"] == pytest.approx(143.0)
        assert phases["read+visualize"] == pytest.approx(121.0)

    def test_column_roundtrip(self):
        p = profile()
        cols = p.to_columns()
        back = PowerProfile.from_columns(1.0, cols)
        np.testing.assert_allclose(back["system"], p["system"])
        np.testing.assert_allclose(back["dram"], p["dram"])


class TestSampleCoverage:
    def test_default_coverage_is_full_ticks(self):
        p = profile()
        assert (p.sample_seconds == 1.0).all()
        assert p.energy() == pytest.approx(2640.0)

    def test_partial_final_tick_integrates_exactly(self):
        import numpy as np

        p = PowerProfile(
            dt=1.0,
            channels={"system": np.array([100.0, 100.0, 100.0])},
            sample_seconds=np.array([1.0, 1.0, 0.25]),
        )
        assert p.energy() == pytest.approx(225.0)

    def test_coverage_validated(self):
        import numpy as np

        with pytest.raises(MeasurementError):
            PowerProfile(dt=1.0, channels={"system": np.ones(2)},
                         sample_seconds=np.array([1.0]))
        with pytest.raises(MeasurementError):
            PowerProfile(dt=1.0, channels={"system": np.ones(2)},
                         sample_seconds=np.array([1.0, 0.0]))
        with pytest.raises(MeasurementError):
            PowerProfile(dt=1.0, channels={"system": np.ones(2)},
                         sample_seconds=np.array([1.0, 1.5]))

    def test_slice_carries_coverage(self):
        import numpy as np

        p = PowerProfile(
            dt=1.0,
            channels={"system": np.array([100.0, 100.0, 100.0])},
            sample_seconds=np.array([1.0, 1.0, 0.5]),
        )
        assert p.slice(1.0, 3.0).energy() == pytest.approx(150.0)
