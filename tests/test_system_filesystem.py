"""Filesystem: content round-trips, layout policies, journaling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FileNotFound, StorageError
from repro.machine import HddModel
from repro.machine.specs import DiskSpec
from repro.system import BlockQueue, FileSystem, PageCache
from repro.system.filesystem import Extent, FileHandle
from repro.units import KiB, MiB


def make_fs(layout="contiguous", cached=True, **kw) -> FileSystem:
    queue = BlockQueue(HddModel(DiskSpec()))
    cache = PageCache(queue) if cached else None
    return FileSystem(queue, cache=cache, layout=layout, **kw)


class TestContent:
    def test_write_read_roundtrip(self):
        fs = make_fs()
        payload = bytes(range(256)) * 512  # 128 KiB
        fs.write("ts0.dat", payload)
        data, _ = fs.read("ts0.dat")
        assert data == payload

    def test_append_extends(self):
        fs = make_fs()
        fs.write("f", b"abc")
        fs.write("f", b"def")
        data, _ = fs.read("f")
        assert data == b"abcdef"
        assert fs.size("f") == 6

    def test_offset_read(self):
        fs = make_fs()
        fs.write("f", b"hello world")
        data, _ = fs.read("f", offset=6, nbytes=5)
        assert data == b"world"

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFound):
            make_fs().read("ghost")

    def test_delete_removes(self):
        fs = make_fs()
        fs.write("f", b"x")
        fs.delete("f")
        assert not fs.exists("f")
        with pytest.raises(FileNotFound):
            fs.delete("f")

    @settings(max_examples=30, deadline=None)
    @given(payloads=st.lists(st.binary(min_size=1, max_size=4096), min_size=1, max_size=10))
    def test_roundtrip_any_bytes(self, payloads):
        fs = make_fs()
        for i, p in enumerate(payloads):
            fs.write(f"f{i}", p)
        for i, p in enumerate(payloads):
            data, _ = fs.read(f"f{i}")
            assert data == p


class TestLayout:
    def test_contiguous_single_extent(self):
        fs = make_fs(layout="contiguous")
        fs.write("f", b"0" * (4 * MiB))
        assert fs.fragmentation("f") == 1

    def test_fragmented_many_extents(self):
        fs = make_fs(layout="fragmented", fragment_bytes=256 * KiB)
        fs.write("f", b"0" * (4 * MiB))
        assert fs.fragmentation("f") > 4

    def test_fragmented_read_slower_cold(self):
        """Aged-filesystem penalty: scattered extents cost seeks."""
        def cold_read_time(layout):
            fs = make_fs(layout=layout, cached=False)
            fs.write("f", b"0" * (8 * MiB))
            fs.queue.flush()
            _, r = fs.read("f")
            return r.io.busy_time

        assert cold_read_time("fragmented") > 2 * cold_read_time("contiguous")

    def test_unknown_layout_rejected(self):
        with pytest.raises(StorageError):
            make_fs(layout="zigzag")

    def test_filesystem_full(self):
        fs = make_fs()
        with pytest.raises(StorageError):
            fs._allocate(10 ** 13)


class TestSyncSemantics:
    def test_cached_write_defers_io(self):
        fs = make_fs()
        r = fs.write("f", b"0" * (128 * KiB))
        assert r.io.bytes_written == 0

    def test_fsync_flushes_data_and_journal(self):
        fs = make_fs()
        fs.write("f", b"0" * (128 * KiB))
        r = fs.fsync()
        assert r.io.bytes_written >= 128 * KiB + FileSystem.JOURNAL_RECORD_BYTES

    def test_sync_write_flag(self):
        fs = make_fs()
        r = fs.write("f", b"0" * (128 * KiB), sync=True)
        assert r.io.bytes_written >= 128 * KiB

    def test_journal_disabled(self):
        fs = make_fs(journal=False)
        fs.write("f", b"0" * (64 * KiB))
        r = fs.fsync()
        assert r.io.bytes_written == 64 * KiB

    def test_drop_caches_then_cold_read(self):
        fs = make_fs()
        payload = b"7" * (128 * KiB)
        fs.write("f", payload)
        fs.fsync()
        fs.drop_caches()
        data, r = fs.read("f")
        assert data == payload
        assert r.io.bytes_read == 128 * KiB  # genuinely cold

    def test_warm_read_free_without_drop(self):
        fs = make_fs()
        fs.write("f", b"7" * (128 * KiB))
        fs.fsync()
        _, r = fs.read("f")
        assert r.io.bytes_read == 0  # still cached


class TestFileHandle:
    def test_map_range_within_single_extent(self):
        h = FileHandle("f", [Extent(1000, 100)])
        assert h.map_range(10, 20) == [Extent(1010, 20)]

    def test_map_range_spanning_extents(self):
        h = FileHandle("f", [Extent(1000, 100), Extent(5000, 100)])
        mapped = h.map_range(50, 100)
        assert mapped == [Extent(1050, 50), Extent(5000, 50)]

    def test_map_range_out_of_bounds(self):
        h = FileHandle("f", [Extent(0, 10)])
        with pytest.raises(StorageError):
            h.map_range(5, 10)

    @given(
        cut=st.integers(1, 99),
        offset=st.integers(0, 99),
        nbytes=st.integers(1, 100),
    )
    def test_map_range_conserves_bytes(self, cut, offset, nbytes):
        if offset + nbytes > 100:
            nbytes = 100 - offset
        if nbytes == 0:
            return
        h = FileHandle("f", [Extent(0, cut), Extent(10_000, 100 - cut)])
        mapped = h.map_range(offset, nbytes)
        assert sum(e.nbytes for e in mapped) == nbytes
