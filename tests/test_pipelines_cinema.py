"""Cinema-style image-database pipeline."""

import pytest

from repro.calibration import CASE_STUDIES
from repro.errors import PipelineError
from repro.pipelines import PipelineConfig, PipelineRunner, PostProcessingPipeline
from repro.pipelines.cinema import CinemaPipeline, CinemaSpec, default_spec


@pytest.fixture(scope="module")
def runner():
    return PipelineRunner(seed=61, jitter=0)


@pytest.fixture(scope="module")
def cfg():
    # Case 3's sparse cadence keeps the (real) rendering work small.
    return PipelineConfig(case=CASE_STUDIES[3])


class TestSpec:
    def test_combinations_are_cross_product(self):
        spec = CinemaSpec(
            colormaps=("heat", "gray"),
            contour_sets=((), (40.0,)),
            value_windows=(None, (0.0, 100.0)),
        )
        assert spec.n_combinations == 8
        assert len(spec.combinations) == 8

    def test_unknown_colormap_rejected(self):
        with pytest.raises(PipelineError):
            CinemaSpec(colormaps=("rainbow",))

    def test_empty_dimension_rejected(self):
        with pytest.raises(PipelineError):
            CinemaSpec(colormaps=())

    def test_default_spec_size(self):
        assert default_spec(1).n_combinations >= 1
        assert default_spec(16).n_combinations >= 12
        with pytest.raises(PipelineError):
            default_spec(0)


class TestPipeline:
    @pytest.fixture(scope="class")
    def run(self, runner, cfg):
        spec = CinemaSpec(colormaps=("heat", "gray"), contour_sets=((), (40.0,)))
        return runner.run(CinemaPipeline(cfg, spec))

    def test_database_complete(self, run):
        # 6 I/O iterations x 4 combinations.
        assert run.images_rendered == 24
        assert run.extra["database_files"] == 24
        assert run.verification.ok
        assert run.verification.grids_checked == 24

    def test_render_cost_scales_with_combinations(self, runner, cfg):
        small = runner.run(CinemaPipeline(cfg, CinemaSpec()), run_id="cin1")
        big = runner.run(
            CinemaPipeline(cfg, CinemaSpec(colormaps=("heat", "gray", "coolwarm"))),
            run_id="cin3")
        vis_small = small.timeline.stage_totals()["visualization"].total_time
        vis_big = big.timeline.stage_totals()["visualization"].total_time
        assert vis_big == pytest.approx(3 * vis_small, rel=1e-6)

    def test_crossover_vs_post_processing(self, runner, cfg):
        """Few combos beat raw dumps; many combos cost more (the honest
        trade-off of the image-based approach)."""
        post = runner.run(PostProcessingPipeline(cfg), run_id="cin-post")
        lean = runner.run(CinemaPipeline(cfg, default_spec(1)), run_id="cin-l")
        rich = runner.run(CinemaPipeline(cfg, default_spec(16)), run_id="cin-r")
        assert lean.energy_j < post.energy_j
        assert rich.energy_j > post.energy_j

    def test_same_physics(self, runner, cfg, run):
        post = runner.run(PostProcessingPipeline(cfg), run_id="cin-post2")
        assert run.extra["final_mean_temperature"] == pytest.approx(
            post.extra["final_mean_temperature"]
        )
