"""Grid geometry, serialization, chunking, and stencil kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim import Grid2D, laplacian_5pt
from repro.units import KiB


class TestPaperGrid:
    def test_is_128kb(self):
        grid = Grid2D.paper_grid()
        assert grid.nbytes == 128 * KiB
        assert grid.shape == (128, 128)

    def test_single_chunk_at_paper_config(self):
        # "The grid size and the chunk size were fixed at 128 KB."
        chunks = Grid2D.paper_grid().chunks(chunk_bytes=128 * KiB)
        assert len(chunks) == 1
        assert len(chunks[0]) == 128 * KiB


class TestGeometry:
    def test_spacing(self):
        g = Grid2D(11, 21, lx=1.0, ly=2.0)
        assert g.dx == pytest.approx(0.1)
        assert g.dy == pytest.approx(0.1)

    def test_too_small_rejected(self):
        with pytest.raises(SimulationError):
            Grid2D(2, 10)

    def test_bad_extent_rejected(self):
        with pytest.raises(SimulationError):
            Grid2D(10, 10, lx=0)


class TestSerialization:
    def test_roundtrip(self):
        g = Grid2D(16, 16)
        g.data[:] = np.arange(256).reshape(16, 16)
        back = Grid2D.from_bytes(g.to_bytes(), 16, 16)
        np.testing.assert_array_equal(back.data, g.data)

    def test_size_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            Grid2D.from_bytes(b"\x00" * 10, 16, 16)

    def test_chunks_reassemble(self):
        g = Grid2D(64, 64)
        g.data[:] = np.random.default_rng(0).random((64, 64))
        chunks = g.chunks(chunk_bytes=4 * KiB)
        assert b"".join(chunks) == g.to_bytes()
        assert len(chunks) == 8  # 8 rows of 512 B per 4 KiB chunk

    @given(nx=st.integers(3, 40), ny=st.integers(3, 40))
    def test_chunks_cover_exactly(self, nx, ny):
        g = Grid2D(nx, ny)
        chunks = g.chunks(chunk_bytes=1 * KiB)
        assert sum(len(c) for c in chunks) == g.nbytes

    def test_copy_is_deep(self):
        g = Grid2D(8, 8)
        c = g.copy()
        c.data[0, 0] = 99
        assert g.data[0, 0] == 0


class TestStencil:
    def test_laplacian_of_linear_field_is_zero(self):
        # u = 3x + 2y is harmonic: Laplacian must vanish identically.
        x, y = np.meshgrid(np.linspace(0, 1, 20), np.linspace(0, 1, 30),
                           indexing="ij")
        lap = laplacian_5pt(3 * x + 2 * y, dx=1 / 19, dy=1 / 29)
        np.testing.assert_allclose(lap, 0.0, atol=1e-10)

    def test_laplacian_of_quadratic(self):
        # u = x^2 + y^2 has Laplacian 4 everywhere.
        x, y = np.meshgrid(np.linspace(0, 1, 50), np.linspace(0, 1, 50),
                           indexing="ij")
        lap = laplacian_5pt(x ** 2 + y ** 2, dx=1 / 49, dy=1 / 49)
        np.testing.assert_allclose(lap, 4.0, rtol=1e-6)

    def test_out_buffer_reused(self):
        field = np.random.default_rng(1).random((10, 10))
        out = np.empty((8, 8))
        result = laplacian_5pt(field, 0.1, 0.1, out=out)
        assert result is out

    def test_out_shape_checked(self):
        with pytest.raises(SimulationError):
            laplacian_5pt(np.zeros((10, 10)), 0.1, 0.1, out=np.empty((3, 3)))

    def test_rejects_bad_input(self):
        with pytest.raises(SimulationError):
            laplacian_5pt(np.zeros(10), 0.1, 0.1)
        with pytest.raises(SimulationError):
            laplacian_5pt(np.zeros((2, 2)), 0.1, 0.1)
        with pytest.raises(SimulationError):
            laplacian_5pt(np.zeros((5, 5)), 0.0, 0.1)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_laplacian_is_linear_operator(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((12, 12))
        b = rng.random((12, 12))
        lap_sum = laplacian_5pt(a + 2 * b, 0.1, 0.1)
        expected = laplacian_5pt(a, 0.1, 0.1) + 2 * laplacian_5pt(b, 0.1, 0.1)
        np.testing.assert_allclose(lap_sum, expected, rtol=1e-10, atol=1e-8)
