"""Future-work runtime: disk power model and technique advisor."""

import pytest

from repro.errors import ConfigError, ReproError
from repro.machine.specs import paper_testbed
from repro.runtime import (
    DiskPowerModel,
    Recommendation,
    RuntimeAdvisor,
    Technique,
    WorkloadDescriptor,
)
from repro.runtime.advisor import WorkloadProfile
from repro.units import GiB, KiB


@pytest.fixture
def model() -> DiskPowerModel:
    return DiskPowerModel.from_spec(paper_testbed().disk)


def wl(accesses=120.0, size=16 * KiB, read=1.0, pattern="random"):
    return WorkloadDescriptor(accesses, size, read, pattern)


class TestWorkloadDescriptor:
    def test_rates(self):
        w = wl(accesses=100, size=1024, read=0.75)
        assert w.bytes_per_s == pytest.approx(102_400)
        assert w.read_bytes_per_s == pytest.approx(76_800)
        assert w.write_bytes_per_s == pytest.approx(25_600)

    def test_validation(self):
        with pytest.raises(ConfigError):
            wl(accesses=-1)
        with pytest.raises(ConfigError):
            wl(read=1.5)
        with pytest.raises(ConfigError):
            WorkloadDescriptor(1, 1, 1.0, "zigzag")


class TestDiskPowerModel:
    def test_sequential_has_no_seek_term(self, model):
        assert model.seek_duty(wl(pattern="sequential")) == 0.0

    def test_random_seek_duty_saturates(self, model):
        assert model.seek_duty(wl(accesses=1e6)) == 1.0

    def test_predicts_fio_sequential_read(self, model):
        # Table III: 13.5 W dynamic at 119.6 MB/s sequential read.
        w = WorkloadDescriptor(
            accesses_per_s=913.0, access_bytes=128 * KiB,
            read_fraction=1.0, pattern="sequential",
        )
        assert model.predict_power(w) - model.idle_w == pytest.approx(13.5, abs=0.3)

    def test_predicts_fio_random_read(self, model):
        # Table III: 2.5 W dynamic at ~118 random 16 KiB reads/s.
        w = wl(accesses=117.6)
        assert model.predict_power(w) - model.idle_w == pytest.approx(2.5, abs=0.8)

    def test_energy(self, model):
        w = wl()
        assert model.predict_energy(w, 100.0) == pytest.approx(
            100 * model.predict_power(w)
        )
        with pytest.raises(ConfigError):
            model.predict_energy(w, -1)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ConfigError):
            DiskPowerModel(-1, 0, 0, 0, 0)


class TestFitting:
    def test_fit_recovers_coefficients(self, model):
        # Generate observations from the closed-form model, fit, compare.
        observations = []
        for pattern in ("sequential", "random"):
            for accesses, size in ((100.0, 16 * KiB), (900.0, 128 * KiB),
                                   (50.0, 1 * KiB), (400.0, 64 * KiB)):
                for read in (1.0, 0.0):
                    w = WorkloadDescriptor(accesses, size, read, pattern)
                    observations.append((w, model.predict_power(w)))
        fitted = DiskPowerModel.fit(
            observations, seek_s_per_random_access=model.seek_s_per_random_access
        )
        assert fitted.idle_w == pytest.approx(model.idle_w, rel=0.05)
        probe = wl(accesses=200.0)
        assert fitted.predict_power(probe) == pytest.approx(
            model.predict_power(probe), rel=0.05
        )

    def test_fit_needs_enough_observations(self, model):
        w = wl()
        with pytest.raises(ReproError):
            DiskPowerModel.fit([(w, 6.0)] * 3)

    def test_fit_clips_negative(self):
        # Degenerate observations that would fit a negative coefficient.
        obs = [
            (WorkloadDescriptor(1, 1024, 1.0, "sequential"), 5.0),
            (WorkloadDescriptor(2, 1024, 1.0, "sequential"), 4.0),
            (WorkloadDescriptor(3, 1024, 1.0, "sequential"), 3.0),
            (WorkloadDescriptor(4, 1024, 0.0, "random"), 2.0),
        ]
        fitted = DiskPowerModel.fit(obs)
        assert fitted.read_j_per_b >= 0
        assert fitted.idle_w >= 0


class TestAdvisor:
    @pytest.fixture
    def advisor(self, model):
        return RuntimeAdvisor(model)

    def test_no_exploration_means_insitu(self, advisor):
        profile = WorkloadProfile(wl(), io_time_fraction=0.6,
                                  needs_exploration=False)
        rec = advisor.recommend(profile)
        assert rec.technique is Technique.IN_SITU
        assert 0 < rec.estimated_savings_fraction <= 0.95

    def test_random_plus_exploration_means_reorg(self, advisor):
        profile = WorkloadProfile(wl(), io_time_fraction=0.6,
                                  needs_exploration=True)
        rec = advisor.recommend(profile)
        assert rec.technique is Technique.DATA_REORGANIZATION
        assert rec.estimated_savings_fraction > 0

    def test_sequential_exploration_means_dvfs_or_sampling(self, advisor):
        profile = WorkloadProfile(
            wl(accesses=900.0, size=128 * KiB, pattern="sequential"),
            io_time_fraction=0.4, needs_exploration=True,
        )
        rec = advisor.recommend(profile)
        assert rec.technique in (Technique.FREQUENCY_SCALING,
                                 Technique.DATA_SAMPLING)

    def test_rationales_present(self, advisor):
        for explore in (True, False):
            profile = WorkloadProfile(wl(), io_time_fraction=0.5,
                                      needs_exploration=explore)
            assert len(advisor.recommend(profile).rationale) > 20

    def test_profile_validation(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(wl(), io_time_fraction=1.5, needs_exploration=True)
        with pytest.raises(ConfigError):
            WorkloadProfile(wl(), io_time_fraction=0.5,
                            needs_exploration=True, system_static_w=0)


class TestFitFromFio:
    """Closing the future-work loop: fit the model from measured fio runs."""

    @pytest.fixture(scope="class")
    def fio_results(self):
        from repro.workloads import FioRunner

        return FioRunner(seed=3).run_table3()

    def test_fit_reproduces_measurements(self, fio_results):
        from repro.runtime import fit_from_fio, workload_from_fio

        model = fit_from_fio(fio_results)
        for result in fio_results.values():
            measured = result.disk_dynamic_power_w + result._disk_spec.idle_w
            predicted = model.predict_power(workload_from_fio(result))
            assert predicted == pytest.approx(measured, rel=0.1), result.job.name

    def test_fitted_model_drives_advisor(self, fio_results):
        from repro.runtime import RuntimeAdvisor, fit_from_fio
        from repro.runtime.advisor import WorkloadProfile

        advisor = RuntimeAdvisor(fit_from_fio(fio_results))
        rec = advisor.recommend(WorkloadProfile(
            wl(), io_time_fraction=0.6, needs_exploration=True))
        assert rec.technique is Technique.DATA_REORGANIZATION

    def test_workload_from_fio_fields(self, fio_results):
        from repro.runtime import workload_from_fio

        w = workload_from_fio(fio_results["rand_read"])
        assert w.pattern == "random"
        assert w.read_fraction == 1.0
        assert w.access_bytes == 16 * KiB
        assert w.accesses_per_s == pytest.approx(
            (4 * GiB / (16 * KiB)) / fio_results["rand_read"].elapsed_s)
