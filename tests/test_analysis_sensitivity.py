"""Calibration sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    SensitivityEntry,
    headline_savings,
    sensitivity_analysis,
)
from repro.calibration import CASE_STUDIES
from repro.errors import ReproError
from repro.pipelines import PipelineRunner
from repro.workloads import run_case_study


class TestHeadlineSavings:
    def test_matches_paper(self):
        assert headline_savings() == pytest.approx(0.428, abs=0.01)

    def test_matches_measured_pipeline_run(self):
        """The analytic model and the executed pipelines must agree —
        otherwise the sensitivity analysis studies the wrong system."""
        outcome = run_case_study(1, PipelineRunner(seed=91, jitter=0))
        assert headline_savings() == pytest.approx(
            outcome.energy_savings_fraction, abs=0.01)

    def test_case3_lower(self):
        assert headline_savings(case=CASE_STUDIES[3]) < headline_savings()


class TestSensitivity:
    @pytest.fixture(scope="class")
    def entries(self):
        return sensitivity_analysis(delta=0.10)

    def test_parameters_covered(self, entries):
        names = {e.parameter for e in entries}
        assert "duration[nnwrite]" in names
        assert "duration[simulation]" in names
        assert "static_floor[rest-of-system]" in names
        assert "cpu_util[simulation]" in names

    def test_sorted_by_swing(self, entries):
        swings = [e.swing for e in entries]
        assert swings == sorted(swings, reverse=True)

    def test_io_durations_dominate(self, entries):
        """The headline is a time-shares story: the I/O event durations
        must be its most sensitive inputs."""
        top3 = {e.parameter for e in entries[:3]}
        assert {"duration[nnwrite]", "duration[nnread]"} <= top3

    def test_conclusion_is_robust(self, entries):
        """No single +/-10 % calibration error flips the story: savings
        stay in the 35-50 % band for every perturbation."""
        for e in entries:
            assert 0.35 < e.low < 0.50, e.parameter
            assert 0.35 < e.high < 0.50, e.parameter

    def test_directionality(self, entries):
        by_name = {e.parameter: e for e in entries}
        # Longer I/O events => bigger in-situ advantage.
        assert by_name["duration[nnwrite]"].high > by_name["duration[nnwrite]"].low
        # Longer simulation dilutes the advantage.
        assert by_name["duration[simulation]"].high < by_name["duration[simulation]"].low

    def test_delta_validated(self):
        with pytest.raises(ReproError):
            sensitivity_analysis(delta=0.0)
        with pytest.raises(ReproError):
            sensitivity_analysis(delta=1.5)

    def test_entry_swing(self):
        e = SensitivityEntry("x", 0.43, 0.40, 0.46)
        assert e.swing == pytest.approx(0.06)
