"""Block queue dispatch and IoStats accounting."""

import pytest

from repro.machine import DiskRequest, HddModel, OpKind, SsdModel
from repro.machine.specs import DiskSpec
from repro.system import BlockQueue, IoStats, ScanScheduler
from repro.units import GiB, KiB, MiB


@pytest.fixture
def queue() -> BlockQueue:
    return BlockQueue(HddModel(DiskSpec()))


class TestDispatch:
    def test_stats_accumulate(self, queue):
        queue.submit([DiskRequest(OpKind.READ, 0, 1 * MiB)])
        queue.submit([DiskRequest(OpKind.WRITE, 2 * GiB, 1 * MiB)])
        assert queue.stats.bytes_read == 1 * MiB
        # Write was accepted into the drive cache: op counted, platter
        # bytes deferred to the flush.
        assert queue.stats.bytes_written == 0
        queue.flush()
        assert queue.stats.bytes_written == 1 * MiB
        assert queue.stats.n_reads == 1
        assert queue.stats.n_writes == 1
        assert queue.stats.busy_time > 0

    def test_batch_stats_are_returned(self, queue):
        batch = queue.submit([DiskRequest(OpKind.READ, 0, 4 * KiB)] )
        assert batch.n_reads == 1
        assert batch.busy_time > 0

    def test_writes_through_cache_by_default(self, queue):
        batch = queue.submit([DiskRequest(OpKind.WRITE, 0, 1 * MiB)])
        assert queue.device.dirty_bytes == 1 * MiB
        assert batch.arm_time == 0  # cached, no mechanics yet

    def test_write_through_bypasses_cache(self, queue):
        queue.submit([DiskRequest(OpKind.WRITE, 0, 1 * MiB)], through_cache=False)
        assert queue.device.dirty_bytes == 0

    def test_flush_accounts_drain(self, queue):
        queue.submit([DiskRequest(OpKind.WRITE, 0, 8 * MiB)])
        before = queue.stats.busy_time
        queue.flush()
        assert queue.stats.busy_time > before
        assert queue.device.dirty_bytes == 0

    def test_scheduler_applied(self):
        q_noop = BlockQueue(HddModel(DiskSpec()))
        q_scan = BlockQueue(HddModel(DiskSpec()), ScanScheduler())
        batch = [DiskRequest(OpKind.READ, o * GiB, 4 * KiB) for o in (400, 10, 200, 50)]
        assert q_scan.submit(batch).busy_time < q_noop.submit(batch).busy_time

    def test_reset_stats(self, queue):
        queue.submit([DiskRequest(OpKind.READ, 0, 4 * KiB)])
        queue.reset_stats()
        assert queue.stats.busy_time == 0

    def test_works_with_ssd(self):
        q = BlockQueue(SsdModel())
        batch = q.submit([DiskRequest(OpKind.READ, 7 * GiB, 64 * KiB)])
        assert batch.arm_time == 0
        assert batch.busy_time > 0


class TestIoStats:
    def test_merge_adds_fields(self):
        a, b = IoStats(busy_time=1.0, bytes_read=10), IoStats(busy_time=2.0, bytes_read=5)
        m = a.merge(b)
        assert m.busy_time == 3.0
        assert m.bytes_read == 15
        # merge must not mutate inputs
        assert a.busy_time == 1.0

    def test_iostats_merge_covers_every_field(self):
        # merge is spelled out field by field for speed; this pins the
        # explicit list to the dataclass so a new field can't be missed.
        import dataclasses
        names = [f.name for f in dataclasses.fields(IoStats)]
        a = IoStats(**{name: i + 1 for i, name in enumerate(names)})
        b = IoStats(**{name: 100 * (i + 1) for i, name in enumerate(names)})
        m = a.merge(b)
        for i, name in enumerate(names):
            assert getattr(m, name) == 101 * (i + 1), name

    def test_activity_rates_over_busy_time(self):
        s = IoStats(busy_time=2.0, arm_time=0.5, bytes_read=100, bytes_written=50)
        a = s.activity()
        assert a.disk_read_bytes_per_s == pytest.approx(50)
        assert a.disk_write_bytes_per_s == pytest.approx(25)
        assert a.disk_seek_duty == pytest.approx(0.25)

    def test_activity_diluted_over_wall_time(self):
        s = IoStats(busy_time=1.0, arm_time=1.0, bytes_read=100)
        a = s.activity(wall_time=10.0)
        assert a.disk_read_bytes_per_s == pytest.approx(10)
        assert a.disk_seek_duty == pytest.approx(0.1)

    def test_empty_stats_idle_activity(self):
        a = IoStats().activity()
        assert a.disk_bytes_per_s == 0
        assert a.disk_seek_duty == 0
