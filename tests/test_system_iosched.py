"""I/O scheduler policies: ordering correctness and conservation."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import DiskRequest, HddModel, OpKind
from repro.machine.specs import DiskSpec
from repro.system import BlockQueue, DeadlineScheduler, NoopScheduler, ScanScheduler
from repro.units import GiB, KiB


def reqs(offsets, size=4 * KiB, op=OpKind.READ):
    return [DiskRequest(op, o, size) for o in offsets]


class TestNoop:
    def test_preserves_submission_order(self):
        batch = reqs([5 * GiB, 1 * GiB, 3 * GiB])
        assert NoopScheduler().order(batch, 0) == batch


class TestScan:
    def test_ascending_from_head(self):
        batch = reqs([50 * GiB, 10 * GiB, 30 * GiB, 70 * GiB])
        ordered = ScanScheduler().order(batch, head_pos=20 * GiB)
        offsets = [r.offset for r in ordered]
        assert offsets == [30 * GiB, 50 * GiB, 70 * GiB, 10 * GiB]

    def test_head_at_zero_is_full_sort(self):
        batch = reqs([5 * GiB, 1 * GiB, 3 * GiB])
        ordered = ScanScheduler().order(batch, 0)
        assert [r.offset for r in ordered] == sorted(r.offset for r in batch)

    def test_reduces_total_seek_time_on_hdd(self):
        """The Section V.D effect: elevator order collapses seek time."""
        import numpy as np

        rng = np.random.default_rng(11)
        offsets = [int(o) for o in rng.integers(0, 400 * GiB, 200)]

        def total_time(sched):
            disk = HddModel(DiskSpec())
            q = BlockQueue(disk, sched)
            return q.submit(reqs(offsets)).busy_time

        # Elevator order collapses arm travel; rotational latency and
        # settle remain, so ~40 % of the batch time disappears.
        assert total_time(ScanScheduler()) < 0.65 * total_time(NoopScheduler())


class TestDeadline:
    def test_zero_limit_degenerates_to_fifo(self):
        batch = reqs([5 * GiB, 1 * GiB, 3 * GiB])
        ordered = DeadlineScheduler(batch_limit=0).order(batch, 0)
        # First dispatch: scan picks 1GiB, but request 0 (5GiB) then lags.
        assert ordered[0].offset in (1 * GiB, 5 * GiB)
        assert len(ordered) == 3

    def test_generous_limit_matches_scan(self):
        batch = reqs([5 * GiB, 1 * GiB, 3 * GiB, 2 * GiB])
        scan = ScanScheduler().order(batch, 0)
        deadline = DeadlineScheduler(batch_limit=1000).order(batch, 0)
        assert deadline == scan

    def test_rejects_negative_limit(self):
        with pytest.raises(ValueError):
            DeadlineScheduler(batch_limit=-1)


@given(
    offsets=st.lists(st.integers(0, 499 * 10 ** 9 - 4096), min_size=0, max_size=60),
    head=st.integers(0, 499 * 10 ** 9),
    sched=st.sampled_from(["noop", "scan", "deadline"]),
)
def test_schedulers_conserve_requests(offsets, head, sched):
    """No scheduler may drop or duplicate a request."""
    scheduler = {
        "noop": NoopScheduler(),
        "scan": ScanScheduler(),
        "deadline": DeadlineScheduler(batch_limit=4),
    }[sched]
    batch = reqs(offsets)
    ordered = scheduler.order(batch, head)
    assert sorted(r.offset for r in ordered) == sorted(r.offset for r in batch)
    assert len(ordered) == len(batch)
