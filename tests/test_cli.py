"""Command-line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in EXPERIMENTS:
            assert eid in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Xeon" in out

    def test_run_unknown_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_fig6_with_csv(self, tmp_path, capsys):
        assert main(["run", "fig6", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "nnread" in out
        files = os.listdir(tmp_path)
        assert any(f.startswith("fig6_") and f.endswith(".csv") for f in files)

    def test_seed_changes_noise(self, capsys):
        main(["run", "table1", "--seed", "1"])
        a = capsys.readouterr().out
        main(["run", "table1", "--seed", "2"])
        b = capsys.readouterr().out
        assert a == b  # table1 is static: seed-independent by design


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out
