"""fio workload: Table III anchors and pattern plumbing."""

import pytest

from repro.errors import ConfigError
from repro.machine import DiskRequest, HddModel, Node, OpKind, SsdModel
from repro.machine.specs import DiskSpec
from repro.rng import RngRegistry
from repro.workloads import FIO_JOBS, FioJob, FioRunner, request_stream
from repro.workloads.patterns import offsets_for
from repro.units import GiB, KiB, MiB


@pytest.fixture(scope="module")
def table3():
    return FioRunner(seed=3).run_table3()


class TestPatterns:
    def test_sequential_stream_is_ascending_contiguous(self):
        reqs = request_stream(OpKind.READ, "sequential", 1 * MiB, 128 * KiB)
        assert len(reqs) == 8
        for a, b in zip(reqs, reqs[1:]):
            assert b.offset == a.end

    def test_region_offset_applied(self):
        reqs = request_stream(OpKind.READ, "sequential", 256 * KiB, 128 * KiB,
                              region_offset=1 * GiB)
        assert reqs[0].offset == 1 * GiB

    def test_shuffled_covers_region(self):
        offs = offsets_for("shuffled", 1 * MiB, 128 * KiB)
        assert sorted(offs) == [i * 128 * KiB for i in range(8)]

    def test_validation(self):
        with pytest.raises(ConfigError):
            request_stream(OpKind.READ, "sequential", 0, 128)
        with pytest.raises(ConfigError):
            request_stream(OpKind.READ, "sequential", 128, 1024)


class TestJobDefinitions:
    def test_four_paper_jobs(self):
        assert set(FIO_JOBS) == {"seq_read", "rand_read", "seq_write", "rand_write"}
        for job in FIO_JOBS.values():
            assert job.size_bytes == 4 * GiB

    def test_bad_job_rejected(self):
        with pytest.raises(ConfigError):
            FioJob("x", OpKind.READ, "spiral")
        with pytest.raises(ConfigError):
            FioJob("x", OpKind.READ, "sequential", size_bytes=0)


class TestTable3Anchors:
    """Measured values must land on the paper's Table III."""

    def test_sequential_read(self, table3):
        r = table3["seq_read"]
        assert r.elapsed_s == pytest.approx(35.9, rel=0.02)
        assert r.system_power_w == pytest.approx(118.0, abs=1.0)
        assert r.disk_dynamic_power_w == pytest.approx(13.5, abs=0.5)

    def test_random_read(self, table3):
        r = table3["rand_read"]
        assert r.elapsed_s == pytest.approx(2230.0, rel=0.03)
        assert r.system_power_w == pytest.approx(107.0, abs=1.0)
        assert r.disk_dynamic_power_w == pytest.approx(2.5, abs=0.3)
        assert r.system_energy_j == pytest.approx(238_600, rel=0.03)

    def test_sequential_write(self, table3):
        r = table3["seq_write"]
        assert r.elapsed_s == pytest.approx(27.0, rel=0.02)
        assert r.system_power_w == pytest.approx(115.4, abs=1.0)
        assert r.disk_dynamic_power_w == pytest.approx(10.9, abs=0.5)

    def test_random_write(self, table3):
        r = table3["rand_write"]
        assert r.elapsed_s == pytest.approx(31.0, rel=0.02)
        assert r.system_power_w == pytest.approx(117.9, abs=1.2)
        assert r.disk_dynamic_power_w == pytest.approx(13.4, abs=0.7)

    def test_random_read_dominates_energy(self, table3):
        """The Section V.D premise: random reads are the energy monster."""
        rand = table3["rand_read"].system_energy_j
        others = sum(table3[k].system_energy_j
                     for k in ("seq_read", "seq_write", "rand_write"))
        assert rand > 20 * others

    def test_disk_dynamic_energy_consistent(self, table3):
        for r in table3.values():
            assert r.disk_dynamic_energy_j == pytest.approx(
                r.disk_dynamic_power_w * r.elapsed_s
            )


class TestBatchConsistency:
    def test_vectorized_batch_matches_loop(self):
        import numpy as np

        rng = np.random.default_rng(0)
        offsets = rng.integers(0, 4 * GiB, 500)
        loop_disk = HddModel(DiskSpec())
        total = sum(
            loop_disk.service(DiskRequest(OpKind.READ, int(o), 16 * KiB)).service_time
            for o in offsets
        )
        batch_disk = HddModel(DiskSpec())
        batch = batch_disk.service_batch(offsets, 16 * KiB, OpKind.READ)
        assert batch.service_time == pytest.approx(total, rel=1e-9)
        assert batch.nbytes == 500 * 16 * KiB
        assert batch.n_ops == 500


class TestDeviceSweep:
    def test_ssd_closes_random_gap(self):
        node = Node(storage=SsdModel())
        runner = FioRunner(node, seed=1)
        seq = runner.run(FIO_JOBS["seq_read"])
        rand = runner.run(FIO_JOBS["rand_read"])
        # HDD's random/sequential energy ratio is ~55x; flash is single digit.
        assert rand.system_energy_j / seq.system_energy_j < 5

    def test_deterministic(self):
        a = FioRunner(seed=9).run(FIO_JOBS["seq_read"])
        b = FioRunner(seed=9).run(FIO_JOBS["seq_read"])
        assert a.system_energy_j == b.system_energy_j
