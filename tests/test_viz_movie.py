"""APNG animation encoder."""

import struct
import zlib

import numpy as np
import pytest

from repro.errors import RenderError
from repro.viz.movie import apng_chunks, encode_apng


def frames(n=4, h=8, w=6):
    rng = np.random.default_rng(0)
    return [rng.integers(0, 256, (h, w, 3), dtype=np.uint8) for _ in range(n)]


class TestStructure:
    def test_chunk_sequence(self):
        blob = encode_apng(frames(3))
        tags = [t for t, _ in apng_chunks(blob)]
        assert tags[0] == b"IHDR"
        assert tags[1] == b"acTL"
        assert tags[-1] == b"IEND"
        assert tags.count(b"fcTL") == 3
        assert tags.count(b"IDAT") == 1
        assert tags.count(b"fdAT") == 2

    def test_actl_counts(self):
        blob = encode_apng(frames(5), loops=2)
        chunks = dict(apng_chunks(blob)[:2])
        num_frames, num_plays = struct.unpack(">II", chunks[b"acTL"])
        assert num_frames == 5
        assert num_plays == 2

    def test_sequence_numbers_monotonic(self):
        blob = encode_apng(frames(4))
        seqs = []
        for tag, payload in apng_chunks(blob):
            if tag == b"fcTL":
                seqs.append(struct.unpack(">I", payload[:4])[0])
            elif tag == b"fdAT":
                seqs.append(struct.unpack(">I", payload[:4])[0])
        assert seqs == sorted(seqs)
        assert seqs == list(range(len(seqs)))

    def test_frame_delay_from_fps(self):
        blob = encode_apng(frames(2), fps=25.0)
        fctl = next(p for t, p in apng_chunks(blob) if t == b"fcTL")
        delay_num, delay_den = struct.unpack(">HH", fctl[20:24])
        assert delay_num / delay_den == pytest.approx(1 / 25, rel=0.01)


class TestPayloads:
    def test_frames_decode_losslessly(self):
        original = frames(3)
        blob = encode_apng(original)
        h, w = original[0].shape[:2]
        decoded = []
        for tag, payload in apng_chunks(blob):
            if tag == b"IDAT":
                decoded.append(zlib.decompress(payload))
            elif tag == b"fdAT":
                decoded.append(zlib.decompress(payload[4:]))
        assert len(decoded) == 3
        for raw, frame in zip(decoded, original):
            rows = np.frombuffer(raw, dtype=np.uint8).reshape(h, 1 + w * 3)
            assert (rows[:, 0] == 0).all()
            np.testing.assert_array_equal(
                rows[:, 1:].reshape(h, w, 3), frame)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(RenderError):
            encode_apng([])

    def test_shape_mismatch_rejected(self):
        a = np.zeros((4, 4, 3), dtype=np.uint8)
        b = np.zeros((4, 5, 3), dtype=np.uint8)
        with pytest.raises(RenderError):
            encode_apng([a, b])

    def test_dtype_checked(self):
        with pytest.raises(RenderError):
            encode_apng([np.zeros((4, 4, 3))])

    def test_fps_and_loops_checked(self):
        f = frames(1)
        with pytest.raises(RenderError):
            encode_apng(f, fps=0)
        with pytest.raises(RenderError):
            encode_apng(f, loops=-1)

    def test_corrupt_blob_detected(self):
        blob = bytearray(encode_apng(frames(2)))
        blob[40] ^= 0xFF
        with pytest.raises(RenderError):
            apng_chunks(bytes(blob))


class TestEndToEnd:
    def test_movie_from_solver_frames(self, tmp_path):
        """Render a short in-situ movie from the real solver."""
        from repro.pipelines.base import make_solver
        from repro.rng import RngRegistry
        from repro.viz import render_field

        solver = make_solver(RngRegistry(1))
        rendered = []
        for _ in range(5):
            solver.step(2)
            rendered.append(render_field(
                solver.grid.data, height=64, width=64).image.pixels)
        blob = encode_apng(rendered, fps=5)
        path = tmp_path / "movie.png"
        path.write_bytes(blob)
        assert path.stat().st_size > 1000
        tags = [t for t, _ in apng_chunks(blob)]
        assert tags.count(b"fcTL") == 5
