"""Power measurement substrate.

Emulates the paper's two measurement paths:

* :mod:`repro.power.rapl` — Intel RAPL energy counters (package / PP0 /
  DRAM domains) with the interface's quantization, model error, counter
  wraparound, and on-node monitoring overhead.
* :mod:`repro.power.wattsup` — the Wattsup Pro wall meter: 1 Hz
  full-system samples, 0.1 W resolution, monitored externally (no load on
  the system under test).

:mod:`repro.power.meters` drives both over a recorded
:class:`~repro.trace.Timeline` to synthesize the
:class:`~repro.power.profile.PowerProfile` the paper's figures plot, and
:mod:`repro.power.breakdown` implements the static/dynamic attribution of
Section V.C.
"""

from repro.power.profile import PowerProfile
from repro.power.rapl import RaplDomain, RaplEmulator
from repro.power.wattsup import WattsupEmulator
from repro.power.meters import MeterRig
from repro.power.model import (
    average_power,
    integrate_energy,
    peak_power,
    dynamic_component,
)
from repro.power.disaggregate import (
    DisaggregationReport,
    evaluate_disaggregation,
    unmetered_series,
)
from repro.power.breakdown import (
    SavingsBreakdown,
    StagePower,
    savings_breakdown,
    stage_power_table,
)

__all__ = [
    "PowerProfile",
    "RaplDomain",
    "RaplEmulator",
    "WattsupEmulator",
    "MeterRig",
    "average_power",
    "integrate_energy",
    "peak_power",
    "dynamic_component",
    "StagePower",
    "SavingsBreakdown",
    "savings_breakdown",
    "stage_power_table",
    "DisaggregationReport",
    "evaluate_disaggregation",
    "unmetered_series",
]
