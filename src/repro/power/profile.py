"""Sampled multi-channel power profile.

A :class:`PowerProfile` is what the paper's Figure 5 plots: parallel,
uniformly-sampled series for the processor (RAPL package), DRAM (RAPL DRAM
domain) and the full system (Wattsup), plus the phase markers needed to
compute per-phase statistics ("the first major phase ... consumes about
143 W of power on an average").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.errors import MeasurementError
from repro.power.model import average_power, integrate_energy, peak_power
from repro.trace.events import PhaseMarker


@dataclass
class PowerProfile:
    """Uniformly-sampled power series on named channels.

    Attributes
    ----------
    dt:
        Sampling interval in seconds (1.0 for the paper's setup).
    channels:
        Channel name -> samples.  Conventional names: ``"system"``,
        ``"processor"``, ``"dram"``.
    markers:
        Phase boundaries copied from the run's timeline.
    sample_seconds:
        Seconds of run actually covered by each sample.  Every interior
        sample covers ``dt``; the final sample of a run that does not end
        on a tick boundary covers less.  Defaults to full ticks.  Energy
        integration uses these, so a 1 Hz meter does not overcount a run
        ending mid-tick.
    """

    dt: float
    channels: dict[str, np.ndarray] = field(default_factory=dict)
    markers: tuple[PhaseMarker, ...] = ()
    sample_seconds: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise MeasurementError(f"dt must be positive, got {self.dt}")
        lengths = {name: len(s) for name, s in self.channels.items()}
        if len(set(lengths.values())) > 1:
            raise MeasurementError(f"channel lengths differ: {lengths}")
        self.channels = {
            name: np.asarray(s, dtype=float) for name, s in self.channels.items()
        }
        n = self.n_samples
        if self.sample_seconds is None:
            self.sample_seconds = np.full(n, self.dt)
        else:
            self.sample_seconds = np.asarray(self.sample_seconds, dtype=float)
            if len(self.sample_seconds) != n:
                raise MeasurementError(
                    f"sample_seconds has {len(self.sample_seconds)} entries "
                    f"for {n} samples"
                )
            if (self.sample_seconds <= 0).any() or (
                self.sample_seconds > self.dt + 1e-12
            ).any():
                raise MeasurementError(
                    "sample coverage must be in (0, dt] per sample"
                )

    # -- basic shape -------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of samples per channel."""
        if not self.channels:
            return 0
        return len(next(iter(self.channels.values())))

    @property
    def duration(self) -> float:
        """Length of this span/timeline in simulated seconds."""
        return self.n_samples * self.dt

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (end of each sampling interval)."""
        return (np.arange(self.n_samples) + 1) * self.dt

    def __contains__(self, channel: str) -> bool:
        return channel in self.channels

    def __getitem__(self, channel: str) -> np.ndarray:
        try:
            return self.channels[channel]
        except KeyError:
            raise MeasurementError(
                f"no channel {channel!r}; have {sorted(self.channels)}"
            ) from None

    # -- metrics ------------------------------------------------------------------

    def energy(self, channel: str = "system") -> float:
        """Energy in joules over the whole profile (Fig 10's metric).

        Integrates each sample over the seconds it actually covers, so a
        trailing partial tick contributes only its covered time.
        """
        return float((self[channel] * self.sample_seconds).sum())

    def average(self, channel: str = "system") -> float:
        """Average power (Fig 8's metric)."""
        return average_power(self[channel])

    def peak(self, channel: str = "system") -> float:
        """Peak power (Fig 9's metric)."""
        return peak_power(self[channel])

    # -- slicing ------------------------------------------------------------------

    def slice(self, t0: float, t1: float) -> "PowerProfile":
        """Sub-profile covering [t0, t1); marker times are preserved."""
        if t1 < t0:
            raise MeasurementError("t1 must be >= t0")
        i0 = max(0, int(np.floor(t0 / self.dt)))
        i1 = min(self.n_samples, int(np.ceil(t1 / self.dt)))
        return PowerProfile(
            dt=self.dt,
            channels={name: s[i0:i1].copy() for name, s in self.channels.items()},
            markers=tuple(m for m in self.markers if t0 <= m.t < t1),
            sample_seconds=self.sample_seconds[i0:i1].copy(),
        )

    def phase_average(self, channel: str = "system") -> dict[str, float]:
        """Average power per phase (interval between consecutive markers)."""
        out: dict[str, float] = {}
        for i, marker in enumerate(self.markers):
            end = self.markers[i + 1].t if i + 1 < len(self.markers) else self.duration
            sub = self.slice(marker.t, end)
            if sub.n_samples:
                out[marker.name] = sub.average(channel)
        return out

    # -- export ------------------------------------------------------------------

    def to_columns(self) -> dict[str, Iterable[float]]:
        """Columns suitable for :func:`repro.trace.series_to_csv`."""
        cols: dict[str, Iterable[float]] = {"time_s": self.times.tolist()}
        for name, samples in self.channels.items():
            cols[f"{name}_w"] = samples.tolist()
        return cols

    @staticmethod
    def from_columns(dt: float, columns: Mapping[str, Iterable[float]],
                     markers: tuple[PhaseMarker, ...] = ()) -> "PowerProfile":
        """Inverse of :meth:`to_columns` (ignores the time column)."""
        channels = {
            name[: -len("_w")]: np.asarray(list(vals), dtype=float)
            for name, vals in columns.items()
            if name.endswith("_w")
        }
        return PowerProfile(dt=dt, channels=channels, markers=markers)
