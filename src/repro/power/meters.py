"""Meter rig: sample a run's timeline the way the paper's setup did.

Given a recorded :class:`~repro.trace.Timeline` and the
:class:`~repro.machine.node.Node` it ran on, the rig reconstructs what each
instrument would have logged:

* the **ground truth**: per-component power integrated exactly over every
  sampling interval (activity is piecewise constant, so this is a matter
  of distributing span energy over ticks);
* **workload jitter**: real codes are not perfectly steady inside a stage;
  a small seeded gaussian perturbation per tick reproduces the texture of
  the paper's Fig 5 traces;
* the **RAPL path**: energy accumulated into quantized, wrapping counters
  (with model error), read once per tick and differenced into the
  ``processor`` and ``dram`` channels — including the +0.2 W on-node
  monitoring overhead at 1 Hz;
* the **Wattsup path**: the jittered true system power quantized to 0.1 W
  with meter noise — the ``system`` channel, measured externally with no
  overhead.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MeasurementError
from repro.machine.node import Node
from repro.power.profile import PowerProfile
from repro.power.rapl import COUNTER_WRAP, RaplDomain, RaplEmulator
from repro.units import RAPL_ENERGY_UNIT_J
from repro.power.wattsup import WattsupEmulator
from repro.rng import RngRegistry
from repro.trace.timeline import Timeline


class MeterRig:
    """Both instruments plus the sampling loop.

    Parameters
    ----------
    sample_hz:
        Sampling rate for both meters; the paper uses 1 Hz.
    monitor_on_node:
        If True (the paper's RAPL setup) the RAPL polling loop runs on the
        system under test and its overhead is added to package power.
    jitter:
        Scale factor on the workload-variability noise (0 disables).
    """

    def __init__(
        self,
        node: Node,
        sample_hz: float = 1.0,
        monitor_on_node: bool = True,
        jitter: float = 1.0,
        rng: RngRegistry | None = None,
    ) -> None:
        if sample_hz <= 0:
            raise MeasurementError("sample_hz must be positive")
        if jitter < 0:
            raise MeasurementError("jitter must be non-negative")
        self.node = node
        self.sample_hz = sample_hz
        self.monitor_on_node = monitor_on_node
        self.jitter = jitter
        self._rng = rng or RngRegistry()

    @property
    def dt(self) -> float:
        """Sampling interval in seconds."""
        return 1.0 / self.sample_hz

    # -- ground truth -------------------------------------------------------------

    def _true_component_series(
        self, timeline: Timeline
    ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Exact per-tick average power per component (W) and coverage (s)."""
        dt = self.dt
        n = max(1, math.ceil(timeline.duration / dt - 1e-9))
        acc = {
            name: np.zeros(n)
            for name in ("package", "dram", "disk", "net", "rest")
        }
        coverage = np.zeros(n)
        a_package, a_dram, a_disk, a_net, a_rest = (
            acc["package"], acc["dram"], acc["disk"], acc["net"], acc["rest"])
        for span in timeline:
            if span.duration <= 0:
                continue
            cp = self.node.power(span.activity)
            t0 = span.t0 - timeline.t0
            t1 = span.t1 - timeline.t0
            i0 = int(t0 / dt)
            i1 = min(n - 1, int((t1 - 1e-12) / dt))
            if i1 == i0:
                # Single-tick span (the overwhelming case at 1 Hz):
                # scalar accumulation, no per-span array temporaries.
                # Same float ops as the sliced path, so bit-identical.
                seconds = min(t1, (i0 + 1) * dt) - t0
                coverage[i0] += seconds
                a_package[i0] += cp.package * seconds
                a_dram[i0] += cp.dram * seconds
                a_disk[i0] += cp.disk * seconds
                a_net[i0] += cp.net * seconds
                a_rest[i0] += cp.rest * seconds
                continue
            # Seconds of this span landing in each covered tick.
            overlap = np.full(i1 - i0 + 1, dt)
            overlap[0] = min(t1, (i0 + 1) * dt) - t0
            overlap[-1] = t1 - i1 * dt
            coverage[i0 : i1 + 1] += overlap
            for series, watts in (
                (a_package, cp.package), (a_dram, cp.dram), (a_disk, cp.disk),
                (a_net, cp.net), (a_rest, cp.rest),
            ):
                series[i0 : i1 + 1] += watts * overlap
        # A trailing partial tick averages over its covered portion (the
        # meter reports the interval it actually observed), not over dt —
        # otherwise the run's last sample is systematically diluted.  An
        # uncovered tick (empty timeline) counts as a full idle interval.
        coverage = np.clip(coverage, 0.0, dt)
        coverage[coverage < 1e-12] = dt
        return {name: series / coverage for name, series in acc.items()}, coverage

    def _apply_jitter(self, series: dict[str, np.ndarray]) -> None:
        """Workload variability: small per-tick perturbation, in place."""
        if self.jitter == 0:
            return
        n = len(series["package"])
        rng = self._rng.get("workload-jitter")
        for name, sigma in (("package", 0.9), ("dram", 0.25), ("disk", 0.3)):
            noise = rng.normal(0.0, sigma * self.jitter, n)
            floor = series[name].min() * 0.9
            series[name] = np.clip(series[name] + noise, max(0.0, floor), None)

    # -- the measurement ------------------------------------------------------------

    def sample(self, timeline: Timeline, include_truth: bool = False) -> PowerProfile:
        """Meter a run; returns channels ``system``, ``processor``, ``dram``."""
        series, coverage = self._true_component_series(timeline)
        self._apply_jitter(series)
        n = len(series["package"])

        rapl = RaplEmulator(self._rng.get("rapl-model-error"))
        if self.monitor_on_node:
            series["package"] = series["package"] + rapl.monitoring_overhead_w(self.sample_hz)

        system_true = sum(series.values())

        # RAPL path: accumulate, read, difference — vectorized over ticks
        # (bit-identical to per-tick advance/read/energy_between).
        processor = np.zeros(n)
        dram = np.zeros(n)
        prev = {d: rapl.read(d) for d in (RaplDomain.PKG, RaplDomain.DRAM)}
        ticks = rapl.advance_series(coverage, package_w=series["package"],
                                    dram_w=series["dram"])
        for domain, out in ((RaplDomain.PKG, processor), (RaplDomain.DRAM, dram)):
            counters = ticks[domain]
            prev_counters = np.concatenate(
                ([prev[domain].ticks], counters[:-1]))
            delta = counters - prev_counters
            delta = np.where(delta < 0, delta + COUNTER_WRAP, delta)
            out[:] = delta * RAPL_ENERGY_UNIT_J / coverage

        # Wattsup path: external meter on the jittered truth.
        wattsup = WattsupEmulator(self._rng.get("wattsup-noise"))
        system = wattsup.sample_series(system_true)

        channels = {"system": system, "processor": processor, "dram": dram}
        if include_truth:
            channels["system_true"] = system_true
            for name, s in series.items():
                channels[f"{name}_true"] = s
        markers = tuple(timeline.markers)
        return PowerProfile(dt=self.dt, channels=channels, markers=markers,
                            sample_seconds=coverage)
