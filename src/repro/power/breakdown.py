"""Static/dynamic energy attribution — Section V.C's analysis.

The paper decomposes the in-situ pipeline's energy savings into:

* **dynamic savings** — energy not spent actually moving data (priced from
  the I/O stages' *dynamic* power times the elapsed-time difference), and
* **static savings** — energy not spent keeping the system powered during
  the extra hours the slower pipeline runs (the idle floor times the
  time difference).

It also derives Table II (average total and dynamic power of the nnread /
nnwrite stages) from measured profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.power.profile import PowerProfile
from repro.trace.timeline import Timeline


@dataclass(frozen=True)
class StagePower:
    """Table II row: a stage's average total and dynamic power."""

    stage: str
    avg_total_w: float
    avg_dynamic_w: float

    @property
    def static_w(self) -> float:
        """Static (idle-floor) share of the stage's power."""
        return self.avg_total_w - self.avg_dynamic_w


def stage_power_table(
    timeline: Timeline,
    profile: PowerProfile,
    static_w: float,
    stages: tuple[str, ...] = ("nnread", "nnwrite"),
    channel: str = "system",
) -> dict[str, StagePower]:
    """Average per-stage power from a metered profile (Table II).

    Samples whose midpoint falls inside any span of a stage contribute to
    that stage's average — the same attribution a human reading Fig 6
    against the stage log performs.
    """
    if profile.dt <= 0:
        raise MeasurementError("profile has no sampling interval")
    series = profile[channel]
    sums = {s: 0.0 for s in stages}
    counts = {s: 0 for s in stages}
    for i in range(profile.n_samples):
        midpoint = (i + 0.5) * profile.dt + timeline.t0
        span = timeline.span_at(midpoint)
        if span is not None and span.stage in sums:
            sums[span.stage] += float(series[i])
            counts[span.stage] += 1
    out: dict[str, StagePower] = {}
    for stage in stages:
        if counts[stage] == 0:
            continue
        total = sums[stage] / counts[stage]
        out[stage] = StagePower(stage, avg_total_w=total,
                                avg_dynamic_w=max(0.0, total - static_w))
    return out


@dataclass(frozen=True)
class SavingsBreakdown:
    """Energy-savings attribution between two pipeline runs.

    Attributes
    ----------
    total_savings_j:
        Baseline energy minus the faster pipeline's energy.
    dynamic_savings_j:
        The paper's estimate: the I/O stages' average *dynamic* power times
        the execution-time difference — energy saved by not moving data.
    static_savings_j:
        The remainder: energy saved by not idling/elapsing.
    """

    total_savings_j: float
    dynamic_savings_j: float

    @property
    def static_savings_j(self) -> float:
        """Savings attributed to reduced idle/elapsed time."""
        return self.total_savings_j - self.dynamic_savings_j

    @property
    def static_fraction(self) -> float:
        """The paper's headline "91 % of the energy is saved by avoiding
        system idling" quantity."""
        if self.total_savings_j <= 0:
            return 0.0
        return self.static_savings_j / self.total_savings_j

    @property
    def dynamic_fraction(self) -> float:
        """Dynamic share of the total savings."""
        if self.total_savings_j <= 0:
            return 0.0
        return self.dynamic_savings_j / self.total_savings_j


def savings_breakdown(
    baseline_energy_j: float,
    baseline_time_s: float,
    insitu_energy_j: float,
    insitu_time_s: float,
    io_dynamic_power_w: float,
) -> SavingsBreakdown:
    """Section V.C's arithmetic.

    ``io_dynamic_power_w`` is the average dynamic power of the avoided I/O
    stages (Table II: ~10.15 W averaged over nnread and nnwrite).
    """
    if min(baseline_energy_j, insitu_energy_j) < 0:
        raise MeasurementError("energies cannot be negative")
    if min(baseline_time_s, insitu_time_s) < 0:
        raise MeasurementError("times cannot be negative")
    if io_dynamic_power_w < 0:
        raise MeasurementError("dynamic power cannot be negative")
    total = baseline_energy_j - insitu_energy_j
    dt = max(0.0, baseline_time_s - insitu_time_s)
    dynamic = min(io_dynamic_power_w * dt, max(total, 0.0))
    return SavingsBreakdown(total_savings_j=total, dynamic_savings_j=dynamic)
