"""Intel RAPL (Running Average Power Limit) interface emulation.

Reproduces the measurement semantics the paper relies on (Section II.C):

* Per-domain cumulative **energy counters** (``PKG``, ``PP0``, ``DRAM``),
  updated from the ground-truth component power with a small model error
  ("the estimated power values closely track true power consumption, with
  an average error rate of less than 1 %").
* Counter **quantization** in units of 15.3 uJ (1/2^16 J on Sandy Bridge)
  and **wraparound** at 32 bits, which any real RAPL reader must handle.
* **Monitoring overhead**: reading the MSRs from the node itself costs
  power — the paper measured +0.2 W at a 1 Hz sampling rate and chose
  1 Hz over RAPL's native ~1 kHz to keep the perturbation negligible.
  The emulator scales the overhead linearly with sampling rate so that
  trade-off can be reproduced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.machine.node import ComponentPower
from repro.units import RAPL_ENERGY_UNIT_J


class RaplDomain(enum.Enum):
    """RAPL measurement domains (package, cores, DRAM)."""
    PKG = "package"    # whole processor package
    PP0 = "pp0"        # cores only
    DRAM = "dram"      # memory


#: Fraction of package power attributable to cores (PP0) on the testbed.
#: Uncore (LLC, ring, memory controller) accounts for the rest.
PP0_SHARE = 0.72

#: RAPL energy counters are 32-bit registers of energy-unit ticks.
COUNTER_WRAP = 1 << 32


@dataclass(frozen=True)
class RaplReading:
    """One counter read: raw ticks plus the read's timestamp."""

    domain: RaplDomain
    ticks: int
    t: float

    def joules(self) -> float:
        """Counter value converted to joules."""
        return self.ticks * RAPL_ENERGY_UNIT_J


def energy_between(first: RaplReading, second: RaplReading) -> float:
    """Energy in joules between two reads of the same domain.

    Handles a single counter wraparound, as RAPL consumers must.
    """
    if first.domain is not second.domain:
        raise MeasurementError(
            f"cannot difference {first.domain} against {second.domain}"
        )
    if second.t < first.t:
        raise MeasurementError("second reading predates the first")
    delta = second.ticks - first.ticks
    if delta < 0:
        delta += COUNTER_WRAP
    return delta * RAPL_ENERGY_UNIT_J


class RaplEmulator:
    """MSR-style energy counters driven by ground-truth component power."""

    def __init__(self, rng: np.random.Generator,
                 model_error_fraction: float = 0.008,
                 overhead_w_at_1hz: float = 0.2) -> None:
        if not 0 <= model_error_fraction < 0.1:
            raise MeasurementError("model error fraction out of plausible range")
        self._rng = rng
        self.model_error = model_error_fraction
        self.overhead_w_at_1hz = overhead_w_at_1hz
        self._now = 0.0
        #: Per-domain exact accumulated energy (J), pre-quantization.
        self._energy_j = {d: 0.0 for d in RaplDomain}

    @property
    def now(self) -> float:
        """Current emulator time."""
        return self._now

    def monitoring_overhead_w(self, sample_hz: float) -> float:
        """Extra package power drawn by an on-node monitor at ``sample_hz``."""
        if sample_hz <= 0:
            raise MeasurementError("sample_hz must be positive")
        return self.overhead_w_at_1hz * sample_hz

    def advance(self, dt: float, power: ComponentPower) -> None:
        """Accumulate ``dt`` seconds of the given ground-truth power.

        Each domain's increment carries an independent multiplicative model
        error so the counters track truth to within ~1 %.
        """
        if dt < 0:
            raise MeasurementError("dt must be non-negative")
        per_domain = {
            RaplDomain.PKG: power.package,
            RaplDomain.PP0: power.package * PP0_SHARE,
            RaplDomain.DRAM: power.dram,
        }
        for domain, watts in per_domain.items():
            err = 1.0 + self._rng.normal(0.0, self.model_error)
            self._energy_j[domain] += max(0.0, watts * err) * dt
        self._now += dt

    def advance_series(
        self,
        dts: np.ndarray,
        package_w: np.ndarray,
        dram_w: np.ndarray,
    ) -> dict[RaplDomain, np.ndarray]:
        """Vectorized :meth:`advance` + :meth:`read` over a whole series.

        Consumes the RNG stream and accumulates energy in exactly the
        same order as the equivalent per-tick loop (three draws per tick
        in PKG, PP0, DRAM order; sequential float accumulation), so the
        counter values are bit-identical to scalar stepping.  Returns the
        post-tick counter ticks per domain.
        """
        dts = np.asarray(dts, dtype=np.float64)
        if np.any(dts < 0):
            raise MeasurementError("dt must be non-negative")
        n = dts.size
        domains = (RaplDomain.PKG, RaplDomain.PP0, RaplDomain.DRAM)
        watts = np.empty((n, 3))
        watts[:, 0] = package_w
        watts[:, 1] = np.asarray(package_w, dtype=np.float64) * PP0_SHARE
        watts[:, 2] = dram_w
        errs = 1.0 + self._rng.normal(0.0, self.model_error, size=(n, 3))
        increments = np.maximum(0.0, watts * errs) * dts[:, None]
        out = {}
        for col, domain in enumerate(domains):
            # Seed the cumsum with the current counter so the additions
            # happen in the same order as repeated scalar advances.
            cum = np.cumsum(
                np.concatenate(([self._energy_j[domain]], increments[:, col]))
            )[1:]
            out[domain] = (
                (cum / RAPL_ENERGY_UNIT_J).astype(np.int64) % COUNTER_WRAP
            )
            if n:
                self._energy_j[domain] = float(cum[-1])
        for dt in dts:
            self._now += float(dt)
        return out

    def read(self, domain: RaplDomain) -> RaplReading:
        """Read a counter: quantized to energy units, wrapped at 32 bits."""
        ticks = int(self._energy_j[domain] / RAPL_ENERGY_UNIT_J) % COUNTER_WRAP
        return RaplReading(domain, ticks, self._now)
