"""Power-series arithmetic shared across the measurement substrate.

Small, vectorized helpers on sampled power arrays: integration (the
paper's "energy consumption, which is the integral of instantaneous power
over time"), averages, peaks, and static/dynamic decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError


def _as_array(samples) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1:
        raise MeasurementError(f"expected 1-D sample array, got shape {arr.shape}")
    return arr


def integrate_energy(samples, dt: float) -> float:
    """Energy in joules of a uniformly-sampled power series.

    Rectangle rule — exactly what a 1 Hz metering setup computes when it
    multiplies each reading by its sampling interval.
    """
    if dt <= 0:
        raise MeasurementError(f"dt must be positive, got {dt}")
    arr = _as_array(samples)
    return float(arr.sum() * dt)


def average_power(samples) -> float:
    """Time-average of a uniformly-sampled power series (W)."""
    arr = _as_array(samples)
    if arr.size == 0:
        raise MeasurementError("cannot average an empty series")
    return float(arr.mean())


def peak_power(samples) -> float:
    """Maximum instantaneous sample (W) — Fig 9's metric."""
    arr = _as_array(samples)
    if arr.size == 0:
        raise MeasurementError("cannot take the peak of an empty series")
    return float(arr.max())


def dynamic_component(samples, static_w: float) -> np.ndarray:
    """Per-sample power above the static floor, clipped at zero.

    Section V.C's decomposition: the static component is the power the
    system draws merely for being on; everything above it is dynamic.
    """
    if static_w < 0:
        raise MeasurementError("static power cannot be negative")
    arr = _as_array(samples)
    return np.clip(arr - static_w, 0.0, None)
