"""Power disaggregation — the paper's subtraction method, as code.

Section IV.B: "Power consumption of the rest of the system, which
includes the hard disk, network, motherboard, and fans, is estimated by
subtracting the processor power and the DRAM power from the full-system
power obtained using the Wattsup Pro meter."

This module applies that estimator to metered profiles and, because the
simulation knows the ground truth, quantifies how good the method is:
the residual inherits both meters' noise and any clock skew between the
two measurement paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.power.profile import PowerProfile


def unmetered_series(profile: PowerProfile) -> np.ndarray:
    """Wattsup minus RAPL: the paper's rest-of-system estimate per tick."""
    for channel in ("system", "processor", "dram"):
        if channel not in profile:
            raise MeasurementError(
                f"profile lacks the {channel!r} channel the method needs"
            )
    return profile["system"] - profile["processor"] - profile["dram"]


@dataclass(frozen=True)
class DisaggregationReport:
    """Quality of the subtraction estimate against ground truth."""

    estimated_mean_w: float
    true_mean_w: float
    rms_error_w: float
    bias_w: float

    @property
    def relative_bias(self) -> float:
        """Bias as a fraction of the true mean."""
        return self.bias_w / self.true_mean_w if self.true_mean_w else 0.0


def evaluate_disaggregation(profile: PowerProfile) -> DisaggregationReport:
    """Compare the subtraction estimate against simulated ground truth.

    Requires a profile sampled with ``include_truth=True`` (the
    ``disk_true``/``net_true``/``rest_true`` channels).
    """
    required = ("disk_true", "net_true", "rest_true")
    for channel in required:
        if channel not in profile:
            raise MeasurementError(
                "profile must be sampled with include_truth=True"
            )
    estimate = unmetered_series(profile)
    truth = (profile["disk_true"] + profile["net_true"]
             + profile["rest_true"])
    err = estimate - truth
    return DisaggregationReport(
        estimated_mean_w=float(estimate.mean()),
        true_mean_w=float(truth.mean()),
        rms_error_w=float(np.sqrt(np.mean(err ** 2))),
        bias_w=float(err.mean()),
    )
