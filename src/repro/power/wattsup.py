"""Wattsup Pro wall-meter emulation.

The paper's full-system measurements come from a Wattsup Pro between the
node and the outlet, logged at 1 Hz by a *separate* monitoring machine so
the measurement adds no load to the system under test (Section IV.B /
Fig 3).  The meter's datasheet characteristics modeled here:

* 1 Hz sample rate (each sample is the average over its interval),
* 0.1 W display resolution,
* +/-1.5 % accuracy, modeled as a small gaussian per-sample noise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError


class WattsupEmulator:
    """Quantizing, noisy wall-power meter."""

    def __init__(self, rng: np.random.Generator,
                 resolution_w: float = 0.1,
                 noise_fraction: float = 0.004) -> None:
        if resolution_w <= 0:
            raise MeasurementError("resolution must be positive")
        if not 0 <= noise_fraction < 0.1:
            raise MeasurementError("noise fraction out of plausible range")
        self._rng = rng
        self.resolution_w = resolution_w
        self.noise_fraction = noise_fraction

    def sample(self, true_watts: float) -> float:
        """One meter reading of a true average power."""
        if true_watts < 0:
            raise MeasurementError("power cannot be negative")
        noisy = true_watts * (1.0 + self._rng.normal(0.0, self.noise_fraction))
        return round(max(0.0, noisy) / self.resolution_w) * self.resolution_w

    def sample_series(self, true_watts: np.ndarray) -> np.ndarray:
        """Vectorized sampling of a whole series."""
        arr = np.asarray(true_watts, dtype=float)
        if (arr < 0).any():
            raise MeasurementError("power cannot be negative")
        noisy = arr * (1.0 + self._rng.normal(0.0, self.noise_fraction, arr.shape))
        return np.round(np.clip(noisy, 0.0, None) / self.resolution_w) * self.resolution_w
