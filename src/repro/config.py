"""Top-level experiment configuration.

Bundles the handful of knobs an end user varies — seed, meter rate,
jitter, storage device, which case studies to run — with validation and
dict round-tripping (for driving the library from JSON/CLI front-ends).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.errors import ConfigError
from repro.machine.node import Node
from repro.machine.nvram import NvramModel
from repro.machine.specs import MachineSpec, paper_testbed
from repro.machine.ssd import SsdModel
from repro.pipelines.runner import PipelineRunner
from repro.rng import DEFAULT_SEED

STORAGE_KINDS = ("hdd", "ssd", "nvram")


@dataclass
class ExperimentConfig:
    """Reproduction-wide settings."""

    seed: int = DEFAULT_SEED
    sample_hz: float = 1.0
    jitter: float = 1.0
    storage: str = "hdd"
    cases: tuple[int, ...] = (1, 2, 3)

    def __post_init__(self) -> None:
        if self.sample_hz <= 0:
            raise ConfigError("sample_hz must be positive")
        if self.jitter < 0:
            raise ConfigError("jitter must be non-negative")
        if self.storage not in STORAGE_KINDS:
            raise ConfigError(
                f"storage must be one of {STORAGE_KINDS}, got {self.storage!r}"
            )
        if not self.cases or any(c not in (1, 2, 3) for c in self.cases):
            raise ConfigError("cases must be a non-empty subset of (1, 2, 3)")
        self.cases = tuple(self.cases)

    # -- factories -----------------------------------------------------------------

    def build_node(self, spec: MachineSpec | None = None) -> Node:
        """Construct the configured simulated node."""
        spec = spec or paper_testbed()
        if self.storage == "ssd":
            return Node(spec, storage=SsdModel())
        if self.storage == "nvram":
            return Node(spec, storage=NvramModel())
        return Node(spec)

    def build_runner(self) -> PipelineRunner:
        """Construct a pipeline runner honouring this configuration."""
        return PipelineRunner(
            node=self.build_node(),
            sample_hz=self.sample_hz,
            jitter=self.jitter,
            seed=self.seed,
        )

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to a plain dictionary (JSON-friendly)."""
        d = asdict(self)
        d["cases"] = list(self.cases)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentConfig":
        """Construct from a plain dictionary; unknown keys are rejected."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(d) - known
        if unknown:
            raise ConfigError(f"unknown config keys: {sorted(unknown)}")
        kwargs = dict(d)
        if "cases" in kwargs:
            kwargs["cases"] = tuple(kwargs["cases"])
        return cls(**kwargs)
