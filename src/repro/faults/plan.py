"""Seeded fault schedules, indexed by device-operation number.

A :class:`FaultPlan` decides, for every operation a device services (scalar
or batched, in submission order), whether that operation faults and how.
Decisions are a pure function of ``(seed, kind, op index)``: each fault
kind draws its own uniform stream via :func:`repro.rng.stream`, and an
operation faults when its draw falls below the kind's rate.  Because the
streams are indexed by absolute op number, the schedule is independent of
how requests are partitioned into batches -- retrying or splitting a batch
never re-rolls the dice.

Precedence when several kinds hit the same op: latent sector error, then
DRAM bit flip, then transient I/O error.  Sector and bit-flip faults only
apply to reads; transient faults apply to any op.  Whole-device failure is
scheduled separately via ``fail_at_op`` (the op index at which the device
dies) rather than as a rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import ConfigError
from repro.rng import DEFAULT_SEED, stream

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]

#: Draws are materialized in chunks of this many ops per kind.
_CHUNK_OPS = 2048


class FaultKind(Enum):
    """Categories of injected fault, in precedence order."""

    SECTOR = "sector"
    BITFLIP = "bitflip"
    TRANSIENT = "transient"
    DEVICE = "device"


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of a fault schedule.

    Rates are per-operation probabilities in [0, 1].  ``fail_at_op`` (if
    set) kills the whole device at that op index.  ``sector_attempts`` is
    how many consecutive attempts a latent sector error survives before a
    re-read succeeds (latent sector errors are sticky; transient errors
    and bit flips re-roll independently per attempt).
    """

    seed: int = DEFAULT_SEED
    transient_rate: float = 0.0
    sector_rate: float = 0.0
    bitflip_rate: float = 0.0
    fail_at_op: int | None = None
    sector_attempts: int = 2

    def __post_init__(self) -> None:
        for label, rate in (("transient_rate", self.transient_rate),
                            ("sector_rate", self.sector_rate),
                            ("bitflip_rate", self.bitflip_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{label} must be in [0, 1], got {rate}")
        if self.fail_at_op is not None and self.fail_at_op < 0:
            raise ConfigError(f"fail_at_op must be >= 0, got {self.fail_at_op}")
        if self.sector_attempts < 1:
            raise ConfigError(f"sector_attempts must be >= 1, got {self.sector_attempts}")

    @property
    def is_null(self) -> bool:
        """True when the spec schedules no faults at all."""
        return (self.transient_rate == 0.0 and self.sector_rate == 0.0
                and self.bitflip_rate == 0.0 and self.fail_at_op is None)


class FaultPlan:
    """Materialized fault schedule for one device.

    Lazily extends one uniform array per active fault kind; a kind with
    rate zero never draws, so a null plan touches no rng state at all.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._draws: dict[FaultKind, np.ndarray] = {}
        self._gens: dict[FaultKind, np.random.Generator] = {}

    @property
    def is_null(self) -> bool:
        return self.spec.is_null

    def _rates(self) -> tuple[tuple[FaultKind, float, bool], ...]:
        """Active kinds in precedence order as (kind, rate, reads_only)."""
        return (
            (FaultKind.SECTOR, self.spec.sector_rate, True),
            (FaultKind.BITFLIP, self.spec.bitflip_rate, True),
            (FaultKind.TRANSIENT, self.spec.transient_rate, False),
        )

    def _window(self, kind: FaultKind, start: int, count: int) -> np.ndarray:
        """Uniform draws for ops [start, start+count) of one kind."""
        if kind not in self._gens:
            self._gens[kind] = stream(f"faults/{kind.value}", self.spec.seed)
            self._draws[kind] = np.empty(0)
        draws = self._draws[kind]
        needed = start + count
        if draws.size < needed:
            grow = max(needed - draws.size, _CHUNK_OPS)
            draws = np.concatenate([draws, self._gens[kind].random(grow)])
            self._draws[kind] = draws
        return draws[start:start + count]

    def first_fault(self, start: int, count: int,
                    is_read: np.ndarray) -> tuple[int, FaultKind] | None:
        """Earliest scheduled fault in the op-index window [start, start+count).

        ``is_read`` is a boolean array of length ``count`` (read-only fault
        kinds never hit writes).  Returns ``(relative_index, kind)`` for
        the first faulting op, or None if the window is clean.
        """
        if count <= 0:
            return None
        best: tuple[int, FaultKind] | None = None
        for kind, rate, reads_only in self._rates():
            if rate <= 0.0:
                continue
            mask = self._window(kind, start, count) < rate
            if reads_only:
                mask = mask & is_read
            hits = np.nonzero(mask)[0]
            if hits.size and (best is None or int(hits[0]) < best[0]):
                best = (int(hits[0]), kind)
        return best

    def fault_at(self, index: int, is_read: bool) -> FaultKind | None:
        """Fault kind scheduled for a single op, or None."""
        hit = self.first_fault(index, 1, np.array([is_read]))
        return None if hit is None else hit[1]

    def reset(self) -> None:
        """Forget all draws so the schedule replays from op 0."""
        self._draws.clear()
        self._gens.clear()
