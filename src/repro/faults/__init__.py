"""Deterministic fault injection and resilience for the storage model.

The package has four layers:

- :mod:`repro.faults.retry` -- :class:`RetryPolicy` / :class:`RetrySession`,
  bounded retries with exponential backoff and deterministic jitter.
- :mod:`repro.faults.plan` -- :class:`FaultSpec` / :class:`FaultPlan`, a
  seeded schedule of faults indexed by device-operation number.
- :mod:`repro.faults.device` -- :class:`FaultyDevice`, a ``BlockDevice``
  wrapper that raises :class:`~repro.errors.FaultError` according to a plan.
- :mod:`repro.faults.resilience` -- :class:`ResilientPipelineRunner`, a
  runner that survives mid-run device failures via checkpoint/restart.
  (Import it from its module: it depends on :mod:`repro.pipelines`, which
  itself imports this package, so re-exporting it here would be circular.)

A null plan (all rates zero, no scheduled device failure) is guaranteed to
be pure delegation: wrapping a device in :class:`FaultyDevice` with a null
plan reproduces the unwrapped device bit for bit.
"""

from repro.faults.retry import RetryPolicy, RetrySession
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.device import FaultyDevice

__all__ = [
    "RetryPolicy",
    "RetrySession",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultyDevice",
]
