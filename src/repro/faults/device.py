"""``FaultyDevice``: a fault-injecting wrapper around any ``BlockDevice``.

The wrapper numbers every logical operation it services (scalar requests
count one each; a batch of *n* counts *n*, in submission order) and asks
its :class:`~repro.faults.plan.FaultPlan` whether that op index faults.
A faulting op raises the matching :class:`~repro.errors.FaultError`
subclass *without* touching the wrapped device's state, so a retry replays
against exactly the device state the failed attempt saw.  For batches, the
prefix of requests before the fault is serviced for real and returned on
the exception (``prefix`` / ``failed_index``) so the retry layer can
account it and resume mid-batch.

With a null plan the wrapper is pure delegation (bit-identical results);
only the op counter ticks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    DeviceError,
    DeviceFailedError,
    DramBitFlipError,
    FaultError,
    LatentSectorError,
    TransientIOError,
)
from repro.faults.plan import FaultKind, FaultPlan
from repro.machine.disk import (
    BatchComponents,
    DiskRequest,
    DiskResult,
    OpKind,
    batch_arrays,
    read_mask,
)

__all__ = ["FaultyDevice"]

_ERROR_FOR_KIND: dict[FaultKind, type[FaultError]] = {
    FaultKind.SECTOR: LatentSectorError,
    FaultKind.BITFLIP: DramBitFlipError,
    FaultKind.TRANSIENT: TransientIOError,
}


class FaultyDevice:
    """Inject a :class:`FaultPlan`'s faults into a wrapped block device."""

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self.plan = plan
        self._ops = 0
        self._failed = False
        self._fail_at_op = plan.spec.fail_at_op
        self._pending_kind: FaultKind | None = None
        self._pending_left = 0

    # -- delegated surface ------------------------------------------------------

    @property
    def inner(self):
        """The wrapped device model."""
        return self._inner

    @property
    def spec(self):
        """Wrapped device's specification."""
        return self._inner.spec

    @property
    def capacity_bytes(self) -> int:
        """Wrapped device's usable capacity in bytes."""
        return self._inner.capacity_bytes

    @property
    def dirty_bytes(self) -> int:
        """Wrapped device's unpersisted write-cache bytes."""
        return self._inner.dirty_bytes

    def stream_time(self, nbytes: int, op: OpKind) -> float:
        """Wrapped device's contiguous transfer time (never faults)."""
        return self._inner.stream_time(nbytes, op)

    @property
    def ops_serviced(self) -> int:
        """Logical operations attempted so far (fault-plan op index)."""
        return self._ops

    @property
    def failed(self) -> bool:
        """Whether the whole device has failed."""
        return self._failed

    # -- fault scheduling -------------------------------------------------------

    def _quiet(self) -> bool:
        """True when no fault can possibly trigger (pure delegation path)."""
        return (self.plan.is_null and not self._failed
                and self._fail_at_op is None and self._pending_left == 0)

    def _check_alive(self) -> None:
        if self._failed:
            raise DeviceFailedError("device has failed; replace it before use")

    def _raise_fault(self, kind: FaultKind, op_index: int, nbytes: int,
                     op: OpKind, prefix: DiskResult | None = None,
                     failed_index: int | None = None) -> None:
        if kind is FaultKind.DEVICE:
            self._failed = True
            raise DeviceFailedError(
                f"whole-device failure at op {op_index}",
                op_index=op_index, failed_index=failed_index, prefix=prefix,
            )
        if kind is FaultKind.SECTOR:
            if self._pending_left > 0:
                self._pending_left -= 1
                if self._pending_left == 0:
                    self._pending_kind = None
            else:
                # Fresh latent sector error: it stays bad for the next
                # ``sector_attempts - 1`` attempts before a re-read maps
                # the sector out and succeeds.
                self._pending_kind = FaultKind.SECTOR
                self._pending_left = self.plan.spec.sector_attempts - 1
        # The failed attempt still occupied the device for a full
        # transfer's worth of time before erroring out.
        elapsed = self._inner.stream_time(nbytes, op)
        raise _ERROR_FOR_KIND[kind](
            f"injected {kind.value} fault at op {op_index}",
            elapsed_s=elapsed, op_index=op_index,
            failed_index=failed_index, prefix=prefix,
        )

    def _scheduled(self, op_index: int, is_read: bool) -> FaultKind | None:
        """Fault kind for one op, honoring sticky sector errors."""
        if self._fail_at_op is not None and op_index >= self._fail_at_op:
            return FaultKind.DEVICE
        if self._pending_left > 0 and is_read:
            return self._pending_kind
        return self.plan.fault_at(op_index, is_read)

    # -- scalar servicing -------------------------------------------------------

    def _scalar(self, request: DiskRequest, cached: bool) -> DiskResult:
        if self._quiet():
            self._ops += 1
            if cached:
                return self._inner.submit_write(request)
            return self._inner.service(request)
        self._check_alive()
        op_index = self._ops
        self._ops += 1
        kind = self._scheduled(op_index, request.op is OpKind.READ)
        if kind is not None:
            self._raise_fault(kind, op_index, request.nbytes, request.op)
        if cached:
            return self._inner.submit_write(request)
        return self._inner.service(request)

    def service(self, request: DiskRequest) -> DiskResult:
        """Service one request, possibly raising an injected fault."""
        return self._scalar(request, cached=False)

    def submit_write(self, request: DiskRequest) -> DiskResult:
        """Accept one write, possibly raising an injected fault."""
        return self._scalar(request, cached=True)

    def flush_cache(self) -> DiskResult:
        """Drain the wrapped device's write cache (fails only if dead)."""
        self._check_alive()
        return self._inner.flush_cache()

    # -- batched servicing ------------------------------------------------------

    def _first_scheduled(self, start: int, n: int,
                         is_read: np.ndarray) -> tuple[int, FaultKind] | None:
        candidates: list[tuple[int, FaultKind]] = []
        if self._fail_at_op is not None and self._fail_at_op < start + n:
            candidates.append((max(0, self._fail_at_op - start), FaultKind.DEVICE))
        if self._pending_left > 0 and bool(is_read[0]):
            candidates.append((0, self._pending_kind))
        hit = self.plan.first_fault(start, n, is_read)
        if hit is not None:
            candidates.append(hit)
        if not candidates:
            return None
        # Earliest op wins; at a tie, whole-device failure dominates and
        # a sticky sector error beats a fresh draw (list order).
        return min(candidates, key=lambda c: c[0])

    def _batched(self, offsets, nbytes, op, cached: bool) -> DiskResult:
        if self._quiet():
            offs, sizes = batch_arrays(offsets, nbytes)
            self._ops += offs.size
            if cached:
                return self._inner.submit_write_batch(offs, sizes)
            return self._inner.service_batch(offs, sizes, op)
        self._check_alive()
        offs, sizes = batch_arrays(offsets, nbytes)
        n = offs.size
        if n == 0:
            if cached:
                return self._inner.submit_write_batch(offs, sizes)
            return self._inner.service_batch(offs, sizes, op)
        is_read = read_mask(OpKind.WRITE if cached else op, n)
        start = self._ops
        hit = self._first_scheduled(start, n, is_read)
        if hit is None:
            self._ops += n
            if cached:
                return self._inner.submit_write_batch(offs, sizes)
            return self._inner.service_batch(offs, sizes, op)
        k, kind = hit
        prefix: DiskResult | None = None
        if k > 0:
            if cached:
                prefix = self._inner.submit_write_batch(offs[:k], sizes[:k])
            else:
                prefix = self._inner.service_batch(offs[:k], sizes[:k], op)
        # The prefix consumed k op indices and the faulted attempt one more.
        self._ops = start + k + 1
        fault_op = OpKind.READ if bool(is_read[k]) else OpKind.WRITE
        self._raise_fault(kind, start + k, int(sizes[k]), fault_op,
                          prefix=prefix, failed_index=k)
        raise DeviceError("unreachable: _raise_fault always raises")

    def service_batch(self, offsets, nbytes, op: OpKind) -> DiskResult:
        """Batched :meth:`service`; faults carry the serviced prefix."""
        return self._batched(offsets, nbytes, op, cached=False)

    def submit_write_batch(self, offsets, nbytes) -> DiskResult:
        """Batched :meth:`submit_write`; faults carry the serviced prefix."""
        return self._batched(offsets, nbytes, OpKind.WRITE, cached=True)

    def service_components(self, offsets, nbytes, op) -> BatchComponents:
        """Delegate: per-request kernels are the RAID-internal surface.

        Fault injection applies at the request level (scalar and aggregate
        batch calls); wrap the array members individually to inject below
        a RAID merge.
        """
        self._check_alive()
        return self._inner.service_components(offsets, nbytes, op)

    def submit_write_components(self, offsets, nbytes) -> BatchComponents:
        """Delegate (see :meth:`service_components`)."""
        self._check_alive()
        return self._inner.submit_write_components(offsets, nbytes)

    # -- lifecycle --------------------------------------------------------------

    def replace(self) -> None:
        """Swap in a fresh device after whole-device failure.

        The replacement starts factory-clean and does not inherit the old
        drive's scheduled death; per-op fault rates keep applying (the
        environment, not the drive, causes transients).  The op counter
        keeps running so the fault schedule never replays.
        """
        self._inner.reset()
        self._failed = False
        self._fail_at_op = None
        self._pending_kind = None
        self._pending_left = 0

    def reset(self) -> None:
        """Restore the initial state, replaying the fault plan from op 0."""
        self._inner.reset()
        self.plan.reset()
        self._ops = 0
        self._failed = False
        self._fail_at_op = self.plan.spec.fail_at_op
        self._pending_kind = None
        self._pending_left = 0
