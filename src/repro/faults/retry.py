"""Bounded-retry policy with exponential backoff and deterministic jitter.

The policy itself is a frozen value object so it can live inside the
(frozen, hashable) :class:`~repro.pipelines.base.PipelineConfig`.  The
stateful part -- the jitter stream -- lives in :class:`RetrySession`,
created per storage stack by ``make_storage`` from a named rng stream, so
two runs with the same seed draw the same jitter sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["RetryPolicy", "RetrySession"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the block layer re-attempts faulted operations.

    ``max_attempts`` counts all tries including the first; the n-th failed
    attempt waits ``backoff_base_s * backoff_factor**(n-1)`` (give or take
    ``jitter_fraction``) before retrying.  Each failed attempt's device
    time is charged, capped at ``timeout_s`` (a command timeout: the host
    gives up waiting for the device, not for the whole retry loop).
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1
    timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigError("jitter_fraction must be in [0, 1)")
        if self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive")

    def backoff_s(self, attempt: int, jitter_u: float = 0.5) -> float:
        """Wait before retry number ``attempt`` (1-based), in seconds.

        ``jitter_u`` is a uniform draw in [0, 1); 0.5 means no jitter, so
        the function is pure and unit-testable without an rng.
        """
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        nominal = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return nominal * (1.0 + self.jitter_fraction * (2.0 * jitter_u - 1.0))

    def charge_s(self, elapsed_s: float) -> float:
        """Device time billed for one failed attempt (command timeout cap)."""
        return min(elapsed_s, self.timeout_s)


class RetrySession:
    """A :class:`RetryPolicy` bound to a deterministic jitter stream."""

    def __init__(self, policy: RetryPolicy, gen: np.random.Generator) -> None:
        self.policy = policy
        self._gen = gen

    def backoff_s(self, attempt: int) -> float:
        """Jittered backoff for retry number ``attempt`` (consumes one draw)."""
        return self.policy.backoff_s(attempt, jitter_u=float(self._gen.random()))
