"""Checkpoint/restart execution: surviving mid-run device failures.

:class:`ResilientPipelineRunner` wraps the normal
:class:`~repro.pipelines.runner.PipelineRunner` execution with a restart
loop.  When a run raises :class:`~repro.errors.PipelineInterrupted`, the
runner repairs the storage (replacing a failed
:class:`~repro.faults.device.FaultyDevice`), charges a modeled restart
span (drive swap plus re-reading the last checkpoint), and re-enters the
pipeline with ``resume=state``.  The attempts' timelines are concatenated
into one metered timeline, so every joule of redone work, recovery wait
and restart overhead is priced by the existing meters.

Fault-free runs never interrupt, take the fast path, and return the
pipeline's result untouched — bit-identical to the base runner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PipelineInterrupted
from repro.faults.device import FaultyDevice
from repro.machine.disk import OpKind
from repro.pipelines.base import InterruptState, RunResult, VerificationRecord
from repro.pipelines.runner import PipelineRunner
from repro.rng import RngRegistry
from repro.trace.events import Activity
from repro.trace.timeline import Timeline

__all__ = ["RestartModel", "ResilientPipelineRunner"]


@dataclass(frozen=True)
class RestartModel:
    """Modeled fixed cost of one restart (operator swaps the drive,
    remounts, and the job scheduler re-launches the application)."""

    swap_s: float = 30.0


class ResilientPipelineRunner(PipelineRunner):
    """A :class:`PipelineRunner` that survives injected device failures."""

    def __init__(self, *args, restart: RestartModel | None = None,
                 max_restarts: int = 3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.restart = restart or RestartModel()
        self.max_restarts = max_restarts

    def _execute(self, pipeline, science_rng: RngRegistry) -> RunResult:
        attempts: list[RunResult] = []
        merged = Timeline()
        resume: InterruptState | None = None
        restarts = 0
        while True:
            try:
                result = pipeline.run(self.node, science_rng, resume=resume)
            except PipelineInterrupted as exc:
                state = exc.state
                if not isinstance(state, InterruptState) \
                        or restarts >= self.max_restarts:
                    raise
                restarts += 1
                attempts.append(state.result)
                merged.extend(state.result.timeline)
                self._record_restart(merged, state, restarts)
                resume = state
                continue
            if not attempts:
                # Fault-free fast path: nothing to merge.
                return result
            attempts.append(result)
            merged.extend(result.timeline)
            return self._merge(attempts, merged, restarts)

    def _record_restart(self, merged: Timeline, state: InterruptState,
                        attempt: int) -> None:
        """Repair the device and charge the restart on the merged timeline."""
        device = self.node.storage
        if isinstance(device, FaultyDevice) and device.failed:
            device.replace()
        read_s = 0.0
        if state.resume_bytes:
            read_s = self.node.storage.stream_time(state.resume_bytes,
                                                   OpKind.READ)
        duration = self.restart.swap_s + read_s
        activity = Activity()
        if duration > 0 and state.resume_bytes:
            activity = Activity(
                disk_read_bytes_per_s=state.resume_bytes / duration)
        merged.record("restart", duration, activity,
                      attempt=attempt, resumed_from=state.iteration,
                      checkpoint_bytes=state.resume_bytes)

    def _merge(self, attempts: list[RunResult], merged: Timeline,
               restarts: int) -> RunResult:
        """One RunResult covering every attempt (redone work included)."""
        last = attempts[-1]
        result = RunResult(
            pipeline=last.pipeline,
            case=last.case,
            timeline=merged,
            images_rendered=sum(a.images_rendered for a in attempts),
            image_bytes=sum(a.image_bytes for a in attempts),
            data_bytes_written=sum(a.data_bytes_written for a in attempts),
            data_bytes_read=sum(a.data_bytes_read for a in attempts),
            verification=VerificationRecord(
                grids_checked=sum(a.verification.grids_checked
                                  for a in attempts),
                grids_matched=sum(a.verification.grids_matched
                                  for a in attempts),
            ),
            extra=dict(last.extra),
        )
        result.extra["restarts"] = restarts
        return result
