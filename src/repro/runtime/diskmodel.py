"""Disk power model from access counts, sizes, and patterns.

The model is linear in the workload features the paper names:

    P_disk = idle + e_r * read_bw + e_w * write_bw + P_act * seek_duty

where ``seek_duty`` is derived from the access pattern: the fraction of
time the actuator travels, estimated from the op rate and the device's
seek curve.  Coefficients come either straight from a
:class:`~repro.machine.specs.DiskSpec` (:meth:`DiskPowerModel.from_spec`)
or from least-squares fitting on observed (workload, power) pairs
(:meth:`DiskPowerModel.fit`), the route a real runtime on opaque hardware
would take.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.machine.specs import DiskSpec


@dataclass(frozen=True)
class WorkloadDescriptor:
    """What the paper says the model's inputs are: number of accesses,
    size of each access, and the access pattern."""

    accesses_per_s: float
    access_bytes: int
    read_fraction: float        # 1.0 = pure read, 0.0 = pure write
    pattern: str                # "sequential" or "random"

    def __post_init__(self) -> None:
        if self.accesses_per_s < 0 or self.access_bytes <= 0:
            raise ConfigError("access rate must be >= 0 and size positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError("read_fraction must be in [0, 1]")
        if self.pattern not in ("sequential", "random"):
            raise ConfigError(f"pattern must be sequential/random, got {self.pattern!r}")

    @property
    def bytes_per_s(self) -> float:
        """Total byte rate of the workload (accesses x size)."""
        return self.accesses_per_s * self.access_bytes

    @property
    def read_bytes_per_s(self) -> float:
        """Read share of the workload's byte rate."""
        return self.bytes_per_s * self.read_fraction

    @property
    def write_bytes_per_s(self) -> float:
        """Write share of the workload's byte rate."""
        return self.bytes_per_s * (1.0 - self.read_fraction)


class DiskPowerModel:
    """Linear disk power model; see module docstring."""

    def __init__(self, idle_w: float, read_j_per_b: float,
                 write_j_per_b: float, actuator_w: float,
                 seek_s_per_random_access: float) -> None:
        for name, v in (("idle_w", idle_w), ("read_j_per_b", read_j_per_b),
                        ("write_j_per_b", write_j_per_b),
                        ("actuator_w", actuator_w),
                        ("seek_s_per_random_access", seek_s_per_random_access)):
            if v < 0:
                raise ConfigError(f"{name} must be non-negative")
        self.idle_w = idle_w
        self.read_j_per_b = read_j_per_b
        self.write_j_per_b = write_j_per_b
        self.actuator_w = actuator_w
        self.seek_s_per_random_access = seek_s_per_random_access

    @classmethod
    def from_spec(cls, spec: DiskSpec) -> "DiskPowerModel":
        """Closed-form coefficients from the device's datasheet model.

        The per-random-access actuator time is the average arm travel for
        seeks within a working set of ~1 % of the stroke (the fio file's
        span) — short seeks dominate file-local random access.
        """
        seek_s = spec.track_to_track_s + spec.seek_curve_b_s * np.sqrt(0.003)
        return cls(
            idle_w=spec.idle_w,
            read_j_per_b=spec.read_energy_per_byte_j,
            write_j_per_b=spec.write_energy_per_byte_j,
            actuator_w=spec.actuator_w,
            seek_s_per_random_access=float(seek_s),
        )

    # -- prediction ---------------------------------------------------------------

    def seek_duty(self, workload: WorkloadDescriptor) -> float:
        """Actuator duty cycle implied by the workload's pattern."""
        if workload.pattern == "sequential":
            return 0.0
        return min(1.0, workload.accesses_per_s * self.seek_s_per_random_access)

    def predict_power(self, workload: WorkloadDescriptor) -> float:
        """Disk power (W) for a sustained workload."""
        return (
            self.idle_w
            + self.read_j_per_b * workload.read_bytes_per_s
            + self.write_j_per_b * workload.write_bytes_per_s
            + self.actuator_w * self.seek_duty(workload)
        )

    def predict_energy(self, workload: WorkloadDescriptor,
                       duration_s: float) -> float:
        """Disk energy (J) for the workload sustained over ``duration_s``."""
        if duration_s < 0:
            raise ConfigError("duration must be non-negative")
        return self.predict_power(workload) * duration_s

    # -- fitting -----------------------------------------------------------------

    @classmethod
    def fit(cls, observations: list[tuple[WorkloadDescriptor, float]],
            seek_s_per_random_access: float = 2.0e-3) -> "DiskPowerModel":
        """Least-squares fit of the linear coefficients from observations.

        Each observation is (workload, measured disk power).  Needs at
        least four observations spanning the feature space (e.g. the four
        fio jobs).  Coefficients are clipped at zero — a negative energy
        per byte is a fitting artifact, not physics.
        """
        if len(observations) < 4:
            raise ReproError("need at least 4 observations to fit 4 coefficients")
        rows = []
        targets = []
        for workload, power_w in observations:
            duty = (0.0 if workload.pattern == "sequential"
                    else min(1.0, workload.accesses_per_s * seek_s_per_random_access))
            rows.append([
                1.0,
                workload.read_bytes_per_s,
                workload.write_bytes_per_s,
                duty,
            ])
            targets.append(power_w)
        coeffs, *_ = np.linalg.lstsq(np.asarray(rows), np.asarray(targets),
                                     rcond=None)
        idle, read_coeff, write_coeff, act = (max(0.0, float(c)) for c in coeffs)
        return cls(idle_w=idle, read_j_per_b=read_coeff,
                   write_j_per_b=write_coeff, actuator_w=act,
                   seek_s_per_random_access=seek_s_per_random_access)


def workload_from_fio(result) -> WorkloadDescriptor:
    """Describe a finished fio job in the power model's vocabulary.

    This is the characterization-to-model handoff the paper's future
    work sketches: the runtime observes (count, size, pattern) and the
    measured power, and fits its model from exactly that.
    """
    job = result.job
    n_ops = job.size_bytes // job.block_bytes
    return WorkloadDescriptor(
        accesses_per_s=n_ops / result.elapsed_s,
        access_bytes=job.block_bytes,
        read_fraction=1.0 if job.op.name == "READ" else 0.0,
        pattern="sequential" if job.pattern == "sequential" else "random",
    )


def fit_from_fio(results: dict, seek_s_per_random_access: float = 8.2e-3,
                 extra_observations: list | None = None) -> DiskPowerModel:
    """Fit a disk power model from measured fio results (Table III).

    ``results`` maps job name -> FioResult; each contributes one
    (workload, measured disk power) observation.  Four fio jobs span the
    four coefficients exactly; pass ``extra_observations`` to
    over-determine the fit.  The default per-random-access seek time is
    the fio random job's observed service time minus its transfer.
    """
    observations = [
        (workload_from_fio(r), r.disk_dynamic_power_w + r._disk_spec.idle_w)
        for r in results.values()
    ]
    if extra_observations:
        observations.extend(extra_observations)
    return DiskPowerModel.fit(
        observations, seek_s_per_random_access=seek_s_per_random_access
    )
