"""Power-optimization technique advisor.

Encodes the paper's decision logic (Sections V.C and V.D):

* If the user does **not** need exploratory analysis, in-situ wins — it
  eliminates both the dynamic I/O energy and the static elapsed-time
  energy (43 % in the paper's case 1).
* If exploration **is** needed and the access pattern is random,
  software-directed **data reorganization** recovers most of the energy
  (242.2 kJ -> 7.3 kJ in Section V.D) while keeping the data.
* If the savings are dominated by the *dynamic* component (rare: the
  paper measured only 9 %), **data sampling** — trading information for
  fewer transfers — is the matching technique.
* Otherwise, with sequential I/O and exploration required, the remaining
  lever on the static component is **frequency scaling** during I/O
  phases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.diskmodel import DiskPowerModel, WorkloadDescriptor


class Technique(enum.Enum):
    """Power-optimization techniques the advisor can recommend."""
    IN_SITU = "in-situ visualization"
    DATA_REORGANIZATION = "software-directed data reorganization"
    DATA_SAMPLING = "in-situ data sampling"
    FREQUENCY_SCALING = "frequency scaling during I/O phases"


@dataclass(frozen=True)
class WorkloadProfile:
    """What the runtime knows about the application."""

    io_workload: WorkloadDescriptor
    io_time_fraction: float          # share of wall time spent in I/O
    needs_exploration: bool          # must raw data stay analyzable?
    system_static_w: float = 104.8   # the node's idle floor

    def __post_init__(self) -> None:
        if not 0.0 <= self.io_time_fraction <= 1.0:
            raise ConfigError("io_time_fraction must be in [0, 1]")
        if self.system_static_w <= 0:
            raise ConfigError("static power must be positive")


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict: technique, estimated savings, and why."""
    technique: Technique
    estimated_savings_fraction: float   # of total system energy
    rationale: str


class RuntimeAdvisor:
    """Chooses a power-optimization technique for a workload."""

    def __init__(self, disk_model: DiskPowerModel) -> None:
        self.disk_model = disk_model

    # -- internal estimates -------------------------------------------------------

    def _dynamic_io_w(self, wl: WorkloadProfile) -> float:
        return max(
            0.0,
            self.disk_model.predict_power(wl.io_workload)
            - self.disk_model.idle_w,
        )

    def _insitu_savings(self, wl: WorkloadProfile) -> float:
        """In-situ removes the I/O time entirely: its static share of the
        run plus the dynamic disk power during it."""
        f = wl.io_time_fraction
        static = wl.system_static_w
        dynamic = self._dynamic_io_w(wl)
        total = static + f * dynamic  # rough per-unit-time accounting
        return f * (static + dynamic) / total

    def _reorg_savings(self, wl: WorkloadProfile) -> float:
        """Reorganization converts random I/O to sequential: the I/O time
        shrinks by the random/sequential service ratio."""
        if wl.io_workload.pattern != "random":
            return 0.0
        random_power = self.disk_model.predict_power(wl.io_workload)
        seq = WorkloadDescriptor(
            accesses_per_s=wl.io_workload.accesses_per_s,
            access_bytes=wl.io_workload.access_bytes,
            read_fraction=wl.io_workload.read_fraction,
            pattern="sequential",
        )
        seq_power = self.disk_model.predict_power(seq)
        # Time ratio: a random access costs its seek plus transfer; the
        # sequential version costs only transfer.
        seek = self.disk_model.seek_s_per_random_access
        transfer = 1.0 / max(wl.io_workload.accesses_per_s, 1e-12)
        time_ratio = transfer / (transfer + seek)
        energy_before = wl.io_time_fraction * (wl.system_static_w + random_power
                                               - self.disk_model.idle_w)
        energy_after = energy_before * time_ratio * (
            (wl.system_static_w + seq_power - self.disk_model.idle_w)
            / (wl.system_static_w + random_power - self.disk_model.idle_w)
        )
        total = wl.system_static_w  # per-unit-time normalization baseline
        return max(0.0, (energy_before - energy_after) / total * 0.9)

    # -- decision ------------------------------------------------------------------

    def recommend(self, workload: WorkloadProfile) -> Recommendation:
        """Choose a power-optimization technique for ``workload``."""
        if not workload.needs_exploration:
            savings = min(0.95, self._insitu_savings(workload))
            return Recommendation(
                Technique.IN_SITU,
                estimated_savings_fraction=savings,
                rationale=(
                    "exploratory analysis not required: eliminating the I/O "
                    "phases removes both their dynamic disk energy and, "
                    "dominantly, the static energy of the elapsed time"
                ),
            )
        if workload.io_workload.pattern == "random":
            savings = min(0.95, self._reorg_savings(workload))
            return Recommendation(
                Technique.DATA_REORGANIZATION,
                estimated_savings_fraction=savings,
                rationale=(
                    "exploration required and I/O is random: reorganizing "
                    "data to make access sequential collapses seek time and "
                    "energy while keeping the raw data (Sec V.D)"
                ),
            )
        dynamic = self._dynamic_io_w(workload)
        if dynamic > 0.3 * workload.system_static_w:
            return Recommendation(
                Technique.DATA_SAMPLING,
                estimated_savings_fraction=min(
                    0.5, workload.io_time_fraction * dynamic
                    / (workload.system_static_w + dynamic)),
                rationale=(
                    "dynamic data-movement power dominates: sampling reduces "
                    "the volume moved, at some loss of information (Sec V.C)"
                ),
            )
        return Recommendation(
            Technique.FREQUENCY_SCALING,
            estimated_savings_fraction=min(
                0.15, 0.3 * workload.io_time_fraction),
            rationale=(
                "I/O is already sequential and exploration is required: the "
                "remaining lever is lowering frequency/static draw during "
                "I/O-bound phases"
            ),
        )
