"""Future-work runtime system (Section VI.A, item 5).

    "Such work would entail the development of power models that
    estimate the hard disk power based on the number of disk accesses,
    size of each access, and the corresponding access pattern.  Using
    this model, the runtime will decide the power optimization technique
    to be used."

:mod:`repro.runtime.diskmodel` is that power model (closed-form from a
device spec, or least-squares fitted from observations);
:mod:`repro.runtime.advisor` is the decision layer choosing between
in-situ, data reorganization, data sampling and frequency scaling.
"""

from repro.runtime.diskmodel import (
    DiskPowerModel,
    WorkloadDescriptor,
    fit_from_fio,
    workload_from_fio,
)
from repro.runtime.advisor import Recommendation, RuntimeAdvisor, Technique

__all__ = [
    "DiskPowerModel",
    "WorkloadDescriptor",
    "fit_from_fio",
    "workload_from_fio",
    "RuntimeAdvisor",
    "Recommendation",
    "Technique",
]
