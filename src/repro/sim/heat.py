"""Explicit 2-D heat-conduction solver (the proxy application's physics).

Solves ``du/dt = alpha * (d2u/dx2 + d2u/dy2) + q(x, y)`` with the
forward-time centered-space (FTCS) scheme.  The solver enforces the CFL
stability bound at construction, supports Dirichlet and (insulated)
Neumann boundaries plus localized sources, and exposes the work-accounting
hooks (:attr:`HeatSolver.flops_per_step`, bytes touched) the pipeline cost
model consumes.

Physical sanity is what the tests pin down: the discrete maximum principle
(no source), conservation under insulated boundaries, and convergence to
the analytic solution of a decaying Fourier mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.grid import Grid2D
from repro.sim.stencil import STENCIL_FLOPS_PER_CELL, ftcs_update


class BoundaryCondition(enum.Enum):
    """Boundary handling: fixed value (Dirichlet) or insulated (Neumann)."""
    DIRICHLET = "dirichlet"  # fixed boundary temperature
    NEUMANN = "neumann"      # insulated (zero flux)


@dataclass(frozen=True)
class HeatSource:
    """A constant heat source over a rectangular patch of cells."""

    row0: int
    row1: int
    col0: int
    col1: int
    rate: float  # temperature units per second

    def __post_init__(self) -> None:
        if self.row0 >= self.row1 or self.col0 >= self.col1:
            raise SimulationError("source patch must have positive extent")


class HeatSolver:
    """FTCS integrator on a :class:`~repro.sim.grid.Grid2D`.

    Parameters
    ----------
    grid:
        Grid carrying the temperature field (modified in place).
    alpha:
        Thermal diffusivity.
    dt:
        Timestep; defaults to 40 % of the CFL limit.
    bc:
        Boundary condition applied every step.
    boundary_value:
        Temperature pinned on Dirichlet boundaries.
    sources:
        Heat sources applied every step.
    sub_steps:
        Physics sub-iterations per pipeline "timestep".  The paper's app
        spends ~1.6 s of compute per timestep on its testbed — far more
        than one 128x128 stencil sweep — so a pipeline timestep wraps many
        solver sub-steps.  Cost models read :attr:`flops_per_step`.
    """

    def __init__(
        self,
        grid: Grid2D,
        alpha: float = 1.0e-4,
        dt: float | None = None,
        bc: BoundaryCondition = BoundaryCondition.DIRICHLET,
        boundary_value: float = 0.0,
        sources: tuple[HeatSource, ...] = (),
        sub_steps: int = 1,
    ) -> None:
        if alpha <= 0:
            raise SimulationError("diffusivity must be positive")
        if sub_steps < 1:
            raise SimulationError("sub_steps must be >= 1")
        self.grid = grid
        self.alpha = alpha
        self.bc = bc
        self.boundary_value = boundary_value
        self.sources = tuple(sources)
        self.sub_steps = sub_steps
        limit = self.cfl_limit()
        self.dt = 0.4 * limit if dt is None else dt
        if self.dt <= 0 or self.dt > limit:
            raise SimulationError(
                f"dt={self.dt} violates CFL stability limit {limit:.3e}"
            )
        self._lap = np.empty((grid.nx - 2, grid.ny - 2))
        self._scratch = np.empty_like(self._lap)
        self.steps_taken = 0
        self._validate_sources()
        self.apply_boundary()

    def _validate_sources(self) -> None:
        for s in self.sources:
            if s.row1 > self.grid.nx or s.col1 > self.grid.ny:
                raise SimulationError(f"source {s} outside grid {self.grid.shape}")

    # -- numerics ------------------------------------------------------------------

    def cfl_limit(self) -> float:
        """Largest stable FTCS timestep for this grid and diffusivity."""
        dx2, dy2 = self.grid.dx ** 2, self.grid.dy ** 2
        return dx2 * dy2 / (2.0 * self.alpha * (dx2 + dy2))

    def apply_boundary(self) -> None:
        """Re-impose the boundary condition on the field edges."""
        u = self.grid.data
        if self.bc is BoundaryCondition.DIRICHLET:
            u[0, :] = self.boundary_value
            u[-1, :] = self.boundary_value
            u[:, 0] = self.boundary_value
            u[:, -1] = self.boundary_value
        else:  # insulated: copy adjacent interior row/column (zero gradient)
            u[0, :] = u[1, :]
            u[-1, :] = u[-2, :]
            u[:, 0] = u[:, 1]
            u[:, -1] = u[:, -2]

    def _sub_step(self) -> None:
        u = self.grid.data
        ftcs_update(u, self.grid.dx, self.grid.dy, self.alpha * self.dt,
                    out=self._lap, scratch=self._scratch)
        for s in self.sources:
            u[s.row0 : s.row1, s.col0 : s.col1] += s.rate * self.dt
        self.apply_boundary()

    def step(self, n: int = 1) -> None:
        """Advance ``n`` pipeline timesteps (each = ``sub_steps`` updates)."""
        if n < 0:
            raise SimulationError("cannot step backwards")
        for _ in range(n * self.sub_steps):
            self._sub_step()
        self.steps_taken += n
        # A single reduction instead of an elementwise isfinite scan: the
        # sum is NaN/inf exactly when the field holds non-finite values
        # (or has blown past float range, which is equally diverged).
        if not np.isfinite(np.sum(self.grid.data)):
            raise SimulationError(
                "solution diverged (non-finite values) — check dt vs CFL"
            )

    # -- physics diagnostics --------------------------------------------------------

    @property
    def time(self) -> float:
        """Physical time simulated so far."""
        return self.steps_taken * self.sub_steps * self.dt

    def thermal_energy(self) -> float:
        """Integral of the field over the domain."""
        return self.grid.thermal_energy()

    # -- cost accounting -------------------------------------------------------------

    @property
    def flops_per_step(self) -> float:
        """Modeled FLOPs per pipeline timestep."""
        interior = (self.grid.nx - 2) * (self.grid.ny - 2)
        return float(interior * STENCIL_FLOPS_PER_CELL * self.sub_steps)

    @property
    def bytes_touched_per_step(self) -> float:
        """Modeled memory traffic per pipeline timestep (read + write)."""
        return float(self.grid.nbytes * 2 * self.sub_steps)
