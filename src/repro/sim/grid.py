"""Regular 2-D grid with the paper's chunked-output geometry.

The paper fixes "the grid size and the chunk size ... at 128 KB": one
output chunk per timestep holding the full 128x128 float64 temperature
field.  :meth:`Grid2D.chunks` generalizes this to larger grids by cutting
row blocks of the configured chunk size, which is what the data writer
streams to the filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.units import KiB


@dataclass
class Grid2D:
    """A regular rectangular grid carrying one scalar field.

    Attributes
    ----------
    nx, ny:
        Interior resolution (rows, columns of the stored field).
    lx, ly:
        Physical domain extents; spacings are derived.
    """

    nx: int
    ny: int
    lx: float = 1.0
    ly: float = 1.0

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny < 3:
            raise SimulationError(
                f"grid must be at least 3x3 for a 5-point stencil, got "
                f"{self.nx}x{self.ny}"
            )
        if self.lx <= 0 or self.ly <= 0:
            raise SimulationError("domain extents must be positive")
        self.data = np.zeros((self.nx, self.ny), dtype=np.float64)

    @classmethod
    def paper_grid(cls) -> "Grid2D":
        """The 128 KB grid of the paper: 128x128 float64."""
        return cls(nx=128, ny=128)

    @classmethod
    def from_array(cls, data: np.ndarray, lx: float = 1.0,
                   ly: float = 1.0) -> "Grid2D":
        """Wrap an existing 2-D field without allocating fresh storage.

        The array is adopted as-is (no copy); callers that need an
        independent field must copy first.
        """
        if data.ndim != 2:
            raise SimulationError(f"field must be 2-D, got {data.ndim}-D")
        nx, ny = data.shape
        if nx < 3 or ny < 3:
            raise SimulationError(
                f"grid must be at least 3x3 for a 5-point stencil, got "
                f"{nx}x{ny}"
            )
        if lx <= 0 or ly <= 0:
            raise SimulationError("domain extents must be positive")
        grid = cls.__new__(cls)
        grid.nx, grid.ny, grid.lx, grid.ly = int(nx), int(ny), lx, ly
        grid.data = data
        return grid

    # -- geometry -----------------------------------------------------------------

    @property
    def dx(self) -> float:
        """Grid spacing along the first axis."""
        return self.lx / (self.nx - 1)

    @property
    def dy(self) -> float:
        """Grid spacing along the second axis."""
        return self.ly / (self.ny - 1)

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns) of the stored field."""
        return (self.nx, self.ny)

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return self.nx * self.ny

    @property
    def nbytes(self) -> int:
        """Size of the stored data in bytes."""
        return self.data.nbytes

    # -- serialization -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Row-major little-endian float64 serialization."""
        return self.data.astype("<f8", copy=False).tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes | memoryview, nx: int, ny: int,
                   lx: float = 1.0, ly: float = 1.0,
                   copy: bool = True) -> "Grid2D":
        """Reconstruct from the serialized byte representation.

        With ``copy=False`` the grid wraps a (read-only) view of the
        payload buffer instead of owning fresh storage — the fast path
        for readers that only render and checksum what they loaded.
        """
        expected = nx * ny * 8
        if len(payload) != expected:
            raise SimulationError(
                f"payload is {len(payload)} bytes; {nx}x{ny} grid needs {expected}"
            )
        arr = np.frombuffer(payload, dtype="<f8").reshape(nx, ny)
        return cls.from_array(arr.copy() if copy else arr, lx, ly)

    def chunks(self, chunk_bytes: int = 128 * KiB) -> list[bytes]:
        """Serialize as row-block chunks of at most ``chunk_bytes`` each."""
        if chunk_bytes <= 0 or chunk_bytes % (self.ny * 8) != 0 and chunk_bytes < self.ny * 8:
            raise SimulationError(
                f"chunk_bytes must fit at least one row ({self.ny * 8} bytes)"
            )
        rows_per_chunk = max(1, chunk_bytes // (self.ny * 8))
        out = []
        for start in range(0, self.nx, rows_per_chunk):
            block = self.data[start : start + rows_per_chunk]
            out.append(block.astype("<f8", copy=False).tobytes())
        return out

    # -- field statistics -----------------------------------------------------------

    def mean(self) -> float:
        """Mean of the field."""
        return float(self.data.mean())

    def minmax(self) -> tuple[float, float]:
        """(min, max) of the field."""
        return float(self.data.min()), float(self.data.max())

    def thermal_energy(self) -> float:
        """Integral of the field over the domain (up to rho*c_p)."""
        return float(self.data.sum() * self.dx * self.dy)

    def copy(self) -> "Grid2D":
        """Deep copy (independent field storage)."""
        return Grid2D.from_array(self.data.copy(), self.lx, self.ly)
