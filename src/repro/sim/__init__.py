"""Proxy heat-transfer simulation.

The paper's proxy application simulates heat transfer (the scanned text's
missing page cites Reddy & Gartling's finite-element heat transfer text)
on a 128 KB grid for fifty timesteps.  This package implements the solver
for real: a 2-D heat-conduction problem integrated with the explicit FTCS
finite-difference scheme, vectorized over NumPy, with the grid/chunk
geometry the paper's I/O configuration fixes (grid size = chunk size =
128 KiB = a 128x128 float64 field).
"""

from repro.sim.grid import Grid2D
from repro.sim.stencil import laplacian_5pt, stencil_flops_per_cell
from repro.sim.heat import BoundaryCondition, HeatSolver, HeatSource
from repro.sim.decomposition import BlockDecomposition, Subdomain

__all__ = [
    "Grid2D",
    "laplacian_5pt",
    "stencil_flops_per_cell",
    "BoundaryCondition",
    "HeatSolver",
    "HeatSource",
    "BlockDecomposition",
    "Subdomain",
]
