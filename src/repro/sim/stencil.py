"""Vectorized finite-difference stencils.

Pure-NumPy kernels written to the HPC guides' idioms: slice views (no
copies of the interior), in-place accumulation into a caller-provided
output buffer, and no Python-level loops over cells.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def laplacian_5pt(field: np.ndarray, dx: float, dy: float,
                  out: np.ndarray | None = None,
                  scratch: np.ndarray | None = None) -> np.ndarray:
    """Interior 5-point Laplacian of ``field``.

    Returns an array of shape ``(nx-2, ny-2)`` holding
    ``d2u/dx2 + d2u/dy2`` at interior points.  ``out`` may be supplied to
    avoid the allocation (it is overwritten); ``scratch`` is a same-shaped
    work buffer that keeps the kernel allocation-free when provided.
    """
    if field.ndim != 2:
        raise SimulationError(f"expected 2-D field, got {field.ndim}-D")
    if field.shape[0] < 3 or field.shape[1] < 3:
        raise SimulationError("field too small for a 5-point stencil")
    if dx <= 0 or dy <= 0:
        raise SimulationError("grid spacings must be positive")
    c = field[1:-1, 1:-1]
    north = field[:-2, 1:-1]
    south = field[2:, 1:-1]
    west = field[1:-1, :-2]
    east = field[1:-1, 2:]
    if out is None:
        out = np.empty_like(c)
    elif out.shape != c.shape:
        raise SimulationError(
            f"out has shape {out.shape}, interior is {c.shape}"
        )
    if scratch is None:
        scratch = np.empty_like(c)
    elif scratch.shape != c.shape:
        raise SimulationError(
            f"scratch has shape {scratch.shape}, interior is {c.shape}"
        )
    if dx == dy:
        # Uniform spacing: (north + south + west + east - 4c) / dx^2 in
        # five array passes with no temporaries.
        np.add(north, south, out=out)
        out += west
        out += east
        np.multiply(c, 4.0, out=scratch)
        out -= scratch
        out /= dx * dx
        return out
    # (north - 2c + south)/dx^2 + (west - 2c + east)/dy^2, fused to limit
    # temporaries.
    np.multiply(c, 2.0, out=scratch)
    np.subtract(north, scratch, out=out)
    out += south
    out /= dx * dx
    scratch -= west            # scratch = 2c - west
    np.subtract(east, scratch, out=scratch)
    scratch /= dy * dy
    out += scratch
    return out


def ftcs_update(field: np.ndarray, dx: float, dy: float, coeff: float,
                out: np.ndarray, scratch: np.ndarray) -> None:
    """One fused FTCS sweep: ``field[1:-1, 1:-1] += coeff * laplacian``.

    Performs exactly the array-op sequence of :func:`laplacian_5pt`
    followed by the scale-and-accumulate the solver used to issue
    separately, so results are bit-identical; fusing them keeps the whole
    update in one call with zero allocations.  ``coeff`` is the solver's
    ``alpha * dt``.
    """
    lap = laplacian_5pt(field, dx, dy, out=out, scratch=scratch)
    lap *= coeff
    field[1:-1, 1:-1] += lap


#: FLOPs per interior cell of one 5-point Laplacian + Euler update:
#: 5 adds/subs + 2 divides for the Laplacian, 2 (scale + add) for the
#: update; rounded to the conventional 10 used for cost modeling.
STENCIL_FLOPS_PER_CELL = 10


def stencil_flops_per_cell() -> int:
    """FLOPs per cell per explicit update (for the CPU cost model)."""
    return STENCIL_FLOPS_PER_CELL
