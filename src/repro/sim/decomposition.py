"""Block domain decomposition with halo exchange (multi-node extension).

The paper's future work proposes multi-node evaluation.  This module
decomposes a global grid over a 2-D process mesh, gives each rank a
subdomain with one-cell ghost layers, and performs the halo exchange the
interconnect model prices.  It runs all "ranks" in one process (the point
is timing/energy modeling, not actual parallel speedup), but the numerics
are the real distributed algorithm: the property test verifies that a
decomposed FTCS sweep is bitwise-equal to the single-domain sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.grid import Grid2D
from repro.sim.stencil import laplacian_5pt


@dataclass
class Subdomain:
    """One rank's tile: interior block plus one-cell ghost ring."""

    rank: int
    coords: tuple[int, int]      # (process row, process col)
    row0: int                    # global interior bounds (inclusive start)
    row1: int                    # exclusive end
    col0: int
    col1: int
    field: np.ndarray            # (rows+2, cols+2) with ghosts

    @property
    def interior(self) -> np.ndarray:
        """View of the tile's interior (without ghost cells)."""
        return self.field[1:-1, 1:-1]

    @property
    def halo_bytes_per_neighbor(self) -> int:
        """Bytes exchanged with one lateral neighbor per halo swap."""
        return max(self.field.shape[0] - 2, self.field.shape[1] - 2) * 8


class BlockDecomposition:
    """Split a global grid over a ``pr x pc`` process mesh."""

    def __init__(self, grid: Grid2D, pr: int, pc: int) -> None:
        if pr < 1 or pc < 1:
            raise SimulationError("process mesh dimensions must be >= 1")
        if (grid.nx - 2) % pr or (grid.ny - 2) % pc:
            raise SimulationError(
                f"interior {grid.nx - 2}x{grid.ny - 2} not divisible by "
                f"{pr}x{pc} mesh"
            )
        self.grid = grid
        self.pr, self.pc = pr, pc
        self.block_rows = (grid.nx - 2) // pr
        self.block_cols = (grid.ny - 2) // pc
        self.subdomains: list[Subdomain] = []
        for pi in range(pr):
            for pj in range(pc):
                r0 = 1 + pi * self.block_rows
                c0 = 1 + pj * self.block_cols
                r1, c1 = r0 + self.block_rows, c0 + self.block_cols
                field = np.zeros((self.block_rows + 2, self.block_cols + 2))
                field[1:-1, 1:-1] = grid.data[r0:r1, c0:c1]
                self.subdomains.append(Subdomain(
                    rank=pi * pc + pj, coords=(pi, pj),
                    row0=r0, row1=r1, col0=c0, col1=c1, field=field,
                ))
        self.exchange_halos()

    @property
    def n_ranks(self) -> int:
        """Number of subdomains (simulated ranks)."""
        return self.pr * self.pc

    def _neighbor(self, pi: int, pj: int) -> Subdomain | None:
        if 0 <= pi < self.pr and 0 <= pj < self.pc:
            return self.subdomains[pi * self.pc + pj]
        return None

    def exchange_halos(self) -> int:
        """Fill every ghost ring from neighbors or the global boundary.

        Returns total bytes that would cross the interconnect (boundary
        fills are local and free).
        """
        g = self.grid.data
        wire_bytes = 0
        for sub in self.subdomains:
            pi, pj = sub.coords
            rows, cols = self.block_rows, self.block_cols
            north = self._neighbor(pi - 1, pj)
            if north is not None:
                sub.field[0, 1:-1] = north.interior[-1, :]
                wire_bytes += cols * 8
            else:
                sub.field[0, 1:-1] = g[sub.row0 - 1, sub.col0 : sub.col1]
            south = self._neighbor(pi + 1, pj)
            if south is not None:
                sub.field[-1, 1:-1] = south.interior[0, :]
                wire_bytes += cols * 8
            else:
                sub.field[-1, 1:-1] = g[sub.row1, sub.col0 : sub.col1]
            west = self._neighbor(pi, pj - 1)
            if west is not None:
                sub.field[1:-1, 0] = west.interior[:, -1]
                wire_bytes += rows * 8
            else:
                sub.field[1:-1, 0] = g[sub.row0 : sub.row1, sub.col0 - 1]
            east = self._neighbor(pi, pj + 1)
            if east is not None:
                sub.field[1:-1, -1] = east.interior[:, 0]
                wire_bytes += rows * 8
            else:
                sub.field[1:-1, -1] = g[sub.row0 : sub.row1, sub.col1]
        return wire_bytes

    def step(self, alpha: float, dt: float) -> int:
        """One distributed FTCS sweep; returns halo bytes exchanged.

        The global boundary cells are untouched (Dirichlet handled by the
        owning driver through the global grid).
        """
        updates = []
        for sub in self.subdomains:
            lap = laplacian_5pt(sub.field, self.grid.dx, self.grid.dy)
            updates.append(sub.interior + alpha * dt * lap)
        for sub, new in zip(self.subdomains, updates):
            sub.field[1:-1, 1:-1] = new
        self.gather()
        return self.exchange_halos()

    def gather(self) -> Grid2D:
        """Write every subdomain's interior back into the global grid."""
        for sub in self.subdomains:
            self.grid.data[sub.row0 : sub.row1, sub.col0 : sub.col1] = sub.interior
        return self.grid

    def scatter(self) -> None:
        """Push the global grid back into the subdomain tiles + ghosts.

        Needed after a driver applies global operations (sources,
        boundary conditions) directly to the gathered grid.
        """
        for sub in self.subdomains:
            sub.field[1:-1, 1:-1] = self.grid.data[
                sub.row0 : sub.row1, sub.col0 : sub.col1
            ]
        self.exchange_halos()

    def halo_bytes_per_exchange(self) -> int:
        """Wire bytes of one full halo exchange (for the network model)."""
        total = 0
        for sub in self.subdomains:
            pi, pj = sub.coords
            if pi > 0:
                total += self.block_cols * 8
            if pi < self.pr - 1:
                total += self.block_cols * 8
            if pj > 0:
                total += self.block_rows * 8
            if pj < self.pc - 1:
                total += self.block_rows * 8
        return total
