"""3-D heat-conduction solver (volume-rendering pipeline substrate).

The in-situ literature the paper builds on is dominated by *volume*
rendering of 3-D fields (Yu et al., Childs et al., Peterka et al.); the
proxy app's 2-D field cannot exercise that path.  This module is the
3-D analogue of :mod:`repro.sim.heat`: a 7-point FTCS integrator with
Dirichlet/insulated boundaries and box sources, with the same physical
guarantees (CFL check, maximum principle, divergence detection) pinned
by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.heat import BoundaryCondition


@dataclass(frozen=True)
class HeatSource3D:
    """Constant heat source over a box of cells."""

    lo: tuple[int, int, int]
    hi: tuple[int, int, int]
    rate: float

    def __post_init__(self) -> None:
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise SimulationError("source box must have positive extent")


class Grid3D:
    """Cubic-cell 3-D grid carrying one scalar field."""

    def __init__(self, nx: int, ny: int, nz: int, extent: float = 1.0) -> None:
        if min(nx, ny, nz) < 3:
            raise SimulationError("grid must be at least 3^3 for a 7-point stencil")
        if extent <= 0:
            raise SimulationError("extent must be positive")
        self.nx, self.ny, self.nz = nx, ny, nz
        self.extent = extent
        self.data = np.zeros((nx, ny, nz), dtype=np.float64)

    @property
    def h(self) -> float:
        """Grid spacing (isotropic)."""
        return self.extent / (max(self.nx, self.ny, self.nz) - 1)

    @property
    def nbytes(self) -> int:
        """Size of the stored data in bytes."""
        return self.data.nbytes

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return self.nx * self.ny * self.nz

    def to_bytes(self) -> bytes:
        """Row-major little-endian float64 serialization."""
        return self.data.astype("<f8", copy=False).tobytes()

    def minmax(self) -> tuple[float, float]:
        """(min, max) of the field."""
        return float(self.data.min()), float(self.data.max())


def laplacian_7pt(field: np.ndarray, h: float,
                  out: np.ndarray | None = None) -> np.ndarray:
    """Interior 7-point Laplacian on an isotropic 3-D grid."""
    if field.ndim != 3 or min(field.shape) < 3:
        raise SimulationError("field must be 3-D with at least 3 samples per axis")
    if h <= 0:
        raise SimulationError("spacing must be positive")
    c = field[1:-1, 1:-1, 1:-1]
    if out is None:
        out = np.empty_like(c)
    elif out.shape != c.shape:
        raise SimulationError("out buffer shape mismatch")
    np.subtract(field[:-2, 1:-1, 1:-1], 6.0 * c, out=out)
    out += field[2:, 1:-1, 1:-1]
    out += field[1:-1, :-2, 1:-1]
    out += field[1:-1, 2:, 1:-1]
    out += field[1:-1, 1:-1, :-2]
    out += field[1:-1, 1:-1, 2:]
    out /= h * h
    return out


class HeatSolver3D:
    """Explicit 3-D FTCS integrator (see :class:`repro.sim.heat.HeatSolver`)."""

    def __init__(
        self,
        grid: Grid3D,
        alpha: float = 1.0e-4,
        dt: float | None = None,
        bc: BoundaryCondition = BoundaryCondition.DIRICHLET,
        boundary_value: float = 0.0,
        sources: tuple[HeatSource3D, ...] = (),
        sub_steps: int = 1,
    ) -> None:
        if alpha <= 0:
            raise SimulationError("diffusivity must be positive")
        if sub_steps < 1:
            raise SimulationError("sub_steps must be >= 1")
        self.grid = grid
        self.alpha = alpha
        self.bc = bc
        self.boundary_value = boundary_value
        self.sources = tuple(sources)
        self.sub_steps = sub_steps
        limit = self.cfl_limit()
        self.dt = 0.4 * limit if dt is None else dt
        if self.dt <= 0 or self.dt > limit:
            raise SimulationError(
                f"dt={self.dt} violates CFL stability limit {limit:.3e}"
            )
        for s in self.sources:
            if any(h > n for h, n in zip(s.hi, grid.data.shape)):
                raise SimulationError(f"source {s} outside grid")
        self._lap = np.empty(tuple(n - 2 for n in grid.data.shape))
        self.steps_taken = 0
        self.apply_boundary()

    def cfl_limit(self) -> float:
        """Stability bound for the 3-D FTCS scheme: h^2 / (6 alpha)."""
        return self.grid.h ** 2 / (6.0 * self.alpha)

    def apply_boundary(self) -> None:
        """Re-impose the boundary condition on the field edges."""
        u = self.grid.data
        if self.bc is BoundaryCondition.DIRICHLET:
            for axis in range(3):
                sl = [slice(None)] * 3
                for edge in (0, -1):
                    sl[axis] = edge
                    u[tuple(sl)] = self.boundary_value
        else:
            for axis in range(3):
                lo = [slice(None)] * 3
                hi = [slice(None)] * 3
                lo[axis], hi[axis] = 0, 1
                u[tuple(lo)] = u[tuple(hi)]
                lo[axis], hi[axis] = -1, -2
                u[tuple(lo)] = u[tuple(hi)]

    def step(self, n: int = 1) -> None:
        """Advance ``n`` pipeline timesteps."""
        if n < 0:
            raise SimulationError("cannot step backwards")
        u = self.grid.data
        for _ in range(n * self.sub_steps):
            lap = laplacian_7pt(u, self.grid.h, out=self._lap)
            u[1:-1, 1:-1, 1:-1] += self.alpha * self.dt * lap
            for s in self.sources:
                u[s.lo[0]:s.hi[0], s.lo[1]:s.hi[1], s.lo[2]:s.hi[2]] += (
                    s.rate * self.dt
                )
            self.apply_boundary()
        self.steps_taken += n
        if not np.isfinite(u).all():
            raise SimulationError("3-D solution diverged")

    @property
    def time(self) -> float:
        """Physical time simulated so far."""
        return self.steps_taken * self.sub_steps * self.dt
