"""Compatibility shim: calibration constants live in :mod:`repro.calibration`.

(The constants are imported by low-level pipeline code; hosting them at
the package top level keeps :mod:`repro.experiments` — which imports the
whole analysis stack — out of the pipelines' import graph.)
"""

from repro.calibration import (
    CASE_STUDIES,
    CHUNK_BYTES,
    ITERATIONS,
    PAPER,
    STAGE,
    SUB_STEPS,
    CaseStudyConfig,
    StageCalibration,
)

__all__ = [
    "CASE_STUDIES",
    "CHUNK_BYTES",
    "ITERATIONS",
    "PAPER",
    "STAGE",
    "SUB_STEPS",
    "CaseStudyConfig",
    "StageCalibration",
]
