"""Experiment reproduction layer.

* :mod:`repro.experiments.calibration` — every calibrated constant, each
  with its derivation from the paper's reported numbers.
* :mod:`repro.experiments.figures` — one function per paper figure/table.
* :mod:`repro.experiments.registry` — experiment ids ("fig7", "table3",
  ...) mapped to those functions.
* :mod:`repro.experiments.engine` — parallel + cached execution of the
  registry (``repro run all --jobs N --cache DIR``).
"""

from repro.experiments.calibration import CASE_STUDIES, PAPER, STAGE, CaseStudyConfig
from repro.experiments.engine import EngineReport, run_experiments
from repro.experiments.figures import ExperimentResult, Lab
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    run_all,
    run_experiment,
)

__all__ = [
    "STAGE",
    "PAPER",
    "CaseStudyConfig",
    "CASE_STUDIES",
    "ExperimentResult",
    "Lab",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "run_all",
    "EngineReport",
    "run_experiments",
]
