"""Consolidated replication-report generator.

Writes a single Markdown document containing every reproduced artifact's
rendered output plus headline paper-vs-measured comparisons — the thing
a replication reviewer reads first.  Exposed on the CLI as
``python -m repro report out/REPORT.md``.
"""

from __future__ import annotations

import os

from repro.calibration import PAPER
from repro.errors import ReproError
from repro.experiments.figures import Lab
from repro.experiments.registry import EXPERIMENTS
from repro.version import __version__

#: Artifacts included by default, in presentation order.
DEFAULT_IDS = (
    "table1", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "table2", "sec5c", "table3", "sec5d",
    "ext-devices", "ext-multinode", "ext-applications", "ext-advisor",
)


def _headline(lab: Lab) -> str:
    rows = []
    from repro.analysis.comparison import compare_cases

    for r in compare_cases(lab.outcomes()):
        paper = PAPER["energy_savings_pct"][r.case_index]
        rows.append(
            f"| case {r.case_index} | {paper:.0f} % | "
            f"{r.energy_savings_pct:.1f} % | "
            f"{r.avg_power_increase_pct:+.1f} % |"
        )
    return "\n".join([
        "| case study | paper energy savings | measured | measured avg-power delta |",
        "|---|---|---|---|",
        *rows,
    ])


def generate_report(lab: Lab | None = None,
                    ids: tuple[str, ...] | None = None) -> str:
    """Build the Markdown report text (``ids=None`` = DEFAULT_IDS)."""
    if ids is None:
        ids = DEFAULT_IDS
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ReproError(f"unknown experiment ids: {unknown}")
    lab = lab or Lab()
    parts = [
        "# Replication report",
        "",
        "*On the Greenness of In-Situ and Post-Processing Visualization "
        "Pipelines* (Adhinarayanan et al., IPDPSW 2015), reproduced by "
        f"`repro` {__version__} at seed {lab.seed}.",
        "",
        "## Headline",
        "",
        _headline(lab),
        "",
        "See `EXPERIMENTS.md` for the full paper-vs-measured record and "
        "the paper's known internal inconsistencies.",
    ]
    for eid in ids:
        result = EXPERIMENTS[eid](lab)
        parts += [
            "",
            f"## {eid} — {result.title}",
            "",
            "```",
            result.text,
            "```",
        ]
    parts.append("")
    return "\n".join(parts)


def write_report(path: str, lab: Lab | None = None,
                 ids: tuple[str, ...] | None = None) -> str:
    """Generate and write the report; returns the path."""
    text = generate_report(lab, ids)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path
