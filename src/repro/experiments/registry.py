"""Experiment registry: id -> reproduction function.

``run_experiment("fig10")`` reproduces Fig 10; ``EXPERIMENTS`` lists every
artifact of the paper's evaluation section plus the future-work
extensions.  A shared :class:`~repro.experiments.figures.Lab` may be
passed so a batch of experiments reuses the memoized pipeline runs.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.experiments import faults, figures
from repro.experiments.figures import ExperimentResult, Lab

EXPERIMENTS: dict[str, Callable[[Lab], ExperimentResult]] = {
    "table1": figures.table1,
    "fig4": figures.fig4,
    "fig5": figures.fig5,
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "table2": figures.table2,
    "sec5c": figures.sec5c,
    "table3": figures.table3,
    "sec5d": figures.sec5d,
    "ext-devices": figures.ext_devices,
    "ext-multinode": figures.ext_multinode,
    "ext-applications": figures.ext_applications,
    "ext-advisor": figures.ext_advisor,
    "ext-faults": faults.ext_faults,
}


def get_experiment(experiment_id: str) -> Callable[[Lab], ExperimentResult]:
    """Look up a reproduction function by experiment id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, lab: Lab | None = None) -> ExperimentResult:
    """Reproduce one paper artifact."""
    return get_experiment(experiment_id)(lab or Lab())


def run_all(lab: Lab | None = None) -> dict[str, ExperimentResult]:
    """Reproduce the whole evaluation section (shared Lab)."""
    lab = lab or Lab()
    return {eid: fn(lab) for eid, fn in EXPERIMENTS.items()}
