"""Flat binary codec for hot experiment-result records.

The engine's worker→parent transport and its on-disk result cache both
used to round-trip every :class:`~repro.experiments.figures.ExperimentResult`
through pickle.  Pickle walks the object graph through its generic
machinery; the records that dominate real payloads are a handful of flat
dataclasses (:class:`~repro.system.blockdev.IoStats`,
:class:`~repro.power.breakdown.StagePower`,
:class:`~repro.machine.disk.DiskResult`) plus bulk array carriers
(:class:`~repro.sim.grid.Grid2D`, images inside
:class:`~repro.viz.render.RenderResult`).  This module encodes exactly
those with ``struct`` — fixed little-endian layouts, bulk buffers
appended verbatim via ``memoryview`` so arrays move without per-element
work — and falls back to an embedded pickle stream for anything it does
not know, so coverage can grow without a format break.

Wire format
-----------
A cache entry / transport frame is::

    magic b"RPRC" | u16 version | u32 trailer length | trailer | tree

``tree`` is one tagged node: ``u8 tag`` followed by the tag's fixed
layout.  Variable-length payloads (strings, buffers, containers) carry a
``u32`` length/count prefix.  All floats are IEEE float64 and all round
trips are bit-identical.  ``trailer`` is a single protocol-4 pickle
stream holding every fallback frame, dumped by **one** pickler in tree
pre-order; a ``pickle`` node in the tree consumes the next dump.

Sharing is preserved exactly.  The engine's determinism checks compare
results at the pickle-byte level, and pickle bytes encode the object
graph's *sharing structure*, so a round trip through this codec must
reproduce which nodes are the same object — value equality is not
enough.  Three mechanisms cover every direction:

* codec ↔ codec — the first occurrence of a shareable object claims the
  next slot in pre-order; later occurrences encode as ``ref`` nodes and
  decode to the same object (pickle's memo, flattened).
* pickle ↔ pickle — all fallback frames share one pickler/unpickler
  memo, so an object inside one frame back-references another frame's.
* across the boundary — the fallback pickler maps already-encoded codec
  objects to their slots via ``persistent_id``; objects first seen
  inside a fallback frame are harvested from the pickler memo so later
  codec nodes can reference them with ``pref`` nodes.

Decoding never trusts its input: truncation, a bad magic, an unknown
tag, a slot index out of range, a desynced fallback stream, or a
foreign version raise :class:`~repro.errors.CodecError` (a
``ReproError``), so a pool worker or cache reader degrades to recompute
instead of crashing.
"""

from __future__ import annotations

import io
import pickle
import struct
from typing import Any

import numpy as np

from repro.errors import CodecError
from repro.experiments.figures import ExperimentResult
from repro.machine.disk import DiskResult, OpKind
from repro.power.breakdown import StagePower
from repro.sim.grid import Grid2D
from repro.system.blockdev import IoStats
from repro.viz.image import Image
from repro.viz.render import RenderResult

#: Bump on any wire-format change; foreign versions are rejected.
CODEC_VERSION = 1

#: Cache-entry / frame magic.  Distinct from pickle's ``b"\x80\x04"``
#: opener, so a reader can sniff which decoder a blob belongs to.
MAGIC = b"RPRC"

#: Fixed protocol for the embedded fallback stream (mirrors the engine).
_PICKLE_PROTOCOL = 4

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03        # i64; wider integers take the pickle fallback
_T_FLOAT = 0x04      # f64
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_NDARRAY = 0x0A    # C-contiguous, simple dtype
_T_REF = 0x0B        # back-reference to an earlier shareable node's slot
_T_PREF = 0x0C       # reference into the fallback stream's pickle memo
_T_IOSTATS = 0x10
_T_DISKRESULT = 0x11
_T_STAGEPOWER = 0x12
_T_GRID2D = 0x13
_T_RENDERRESULT = 0x14
_T_IMAGE = 0x15
_T_OPKIND = 0x16
_T_RESULT = 0x17
_T_PICKLE = 0x7F

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_HEADER = struct.Struct("<4sH")
#: IoStats: 4 time floats, 4 traffic counters, fault float, 2 counters —
#: declaration order of the dataclass.
_IOSTATS = struct.Struct("<4d4qd2q")
#: DiskResult: 4 time floats, nbytes, op(u8), cached(u8), n_ops.
_DISKRESULT = struct.Struct("<4dqBBq")

_OPKIND_CODE = {OpKind.READ: 0, OpKind.WRITE: 1}
_OPKIND_FROM = {0: OpKind.READ, 1: OpKind.WRITE}

_U32_MAX = 0xFFFFFFFF
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

#: Types pickle never memoizes; skipping them keeps ``persistent_id``
#: (called for every node the fallback pickler saves) cheap.
_ATOMIC = (type(None), bool, int, float)

#: Slot placeholder while a shareable node's children are still being
#: decoded; a ref that resolves to it means the frame encodes a cycle
#: through an immutable constructor, which this codec does not support.
_PENDING = object()


# -- encoding ---------------------------------------------------------------------


def _put_bytes(out: bytearray, payload: bytes | memoryview) -> None:
    if len(payload) > _U32_MAX:
        raise CodecError(f"payload of {len(payload)} bytes exceeds u32 frame")
    out += _U32.pack(len(payload))
    out += payload


def _encode_ndarray(out: bytearray, arr: np.ndarray) -> bool:
    """Flat-encode a C-contiguous simple array; False defers to pickle."""
    if not arr.flags.c_contiguous or arr.dtype.hasobject:
        return False
    out += _U8.pack(_T_NDARRAY)
    _put_bytes(out, arr.dtype.str.encode())
    out += _U32.pack(arr.ndim)
    for dim in arr.shape:
        out += _I64.pack(dim)
    if arr.ndim == 0 or arr.size == 0:
        # memoryview cannot cast 0-d or empty views; tobytes copies at
        # most one element here.
        _put_bytes(out, arr.tobytes())
    else:
        # memoryview of the buffer: appended without an intermediate copy.
        _put_bytes(out, memoryview(arr).cast("B"))
    return True


class _FallbackPickler(pickle.Pickler):
    """The shared fallback pickler: codec-known objects become pids.

    Any object the codec already assigned a slot is emitted as a
    persistent id (the slot index) instead of being re-pickled, so
    sharing between the flat tree and fallback interiors survives the
    round trip.  The current dump root is excluded — its slot was
    claimed by the node that triggered this dump.
    """

    def __init__(self, file: io.BytesIO, encoder: "_Encoder") -> None:
        super().__init__(file, protocol=_PICKLE_PROTOCOL)
        self._encoder = encoder

    def persistent_id(self, obj: Any) -> int | None:
        if type(obj) in _ATOMIC:
            return None
        enc = self._encoder
        if obj is enc.dump_root:
            return None
        slot = enc.memo.get(id(obj))
        if slot is not None and enc.keep[slot] is obj:
            return slot
        return None


class _Encoder:
    """One encode pass: the tree buffer plus the sharing memos.

    ``keep`` pins every memoized object so CPython cannot recycle an id
    mid-encode and alias two distinct objects into one slot.
    """

    __slots__ = ("out", "memo", "keep", "pmemo", "pins", "pio", "pickler",
                 "dump_root")

    def __init__(self) -> None:
        self.out = bytearray()
        self.memo: dict[int, int] = {}
        #: slot index -> object; ``len(keep)`` is the next slot, so it
        #: must count exactly the shareable tree nodes (the decoder
        #: numbers its slots the same way).
        self.keep: list[Any] = []
        #: id -> fallback-stream pickle memo index, for objects whose
        #: first occurrence was inside a fallback frame.
        self.pmemo: dict[int, int] = {}
        #: pins for pmemo objects (they hold no slot, but their ids must
        #: stay unique for the lifetime of the pass).
        self.pins: list[Any] = []
        self.pio: io.BytesIO | None = None
        self.pickler: _FallbackPickler | None = None
        self.dump_root: Any = None

    def _share(self, obj: Any) -> bool:
        """Emit a ref/pref for a seen object; else claim the next slot."""
        out = self.out
        slot = self.memo.get(id(obj))
        if slot is not None:
            out += _U8.pack(_T_REF)
            out += _U32.pack(slot)
            return True
        pidx = self.pmemo.get(id(obj))
        if pidx is not None:
            out += _U8.pack(_T_PREF)
            out += _U32.pack(pidx)
            return True
        self.memo[id(obj)] = len(self.keep)
        self.keep.append(obj)
        return False

    def encode(self, obj: Any) -> None:
        out = self.out
        if obj is None:
            out += _U8.pack(_T_NONE)
        elif obj is False:
            out += _U8.pack(_T_FALSE)
        elif obj is True:
            out += _U8.pack(_T_TRUE)
        elif type(obj) is int:
            if _I64_MIN <= obj <= _I64_MAX:
                out += _U8.pack(_T_INT)
                out += _I64.pack(obj)
            else:
                self._pickled(obj)
        elif type(obj) is float:
            out += _U8.pack(_T_FLOAT)
            out += _F64.pack(obj)
        elif type(obj) is OpKind:
            out += _U8.pack(_T_OPKIND)
            out += _U8.pack(_OPKIND_CODE[obj])
        elif self._share(obj):
            pass
        elif type(obj) is str:
            out += _U8.pack(_T_STR)
            _put_bytes(out, obj.encode())
        elif type(obj) is bytes:
            out += _U8.pack(_T_BYTES)
            _put_bytes(out, obj)
        elif type(obj) is tuple or type(obj) is list:
            out += _U8.pack(_T_TUPLE if type(obj) is tuple else _T_LIST)
            if len(obj) > _U32_MAX:
                raise CodecError("container exceeds u32 frame")
            out += _U32.pack(len(obj))
            for item in obj:
                self.encode(item)
        elif type(obj) is dict:
            out += _U8.pack(_T_DICT)
            out += _U32.pack(len(obj))
            for key, value in obj.items():
                self.encode(key)
                self.encode(value)
        elif type(obj) is IoStats:
            out += _U8.pack(_T_IOSTATS)
            out += _IOSTATS.pack(
                obj.busy_time, obj.arm_time, obj.rotation_time,
                obj.transfer_time, obj.bytes_read, obj.bytes_written,
                obj.n_reads, obj.n_writes, obj.fault_time, obj.n_faults,
                obj.n_retries)
        elif type(obj) is DiskResult:
            out += _U8.pack(_T_DISKRESULT)
            out += _DISKRESULT.pack(
                obj.service_time, obj.arm_time, obj.rotation_time,
                obj.transfer_time, obj.nbytes, _OPKIND_CODE[obj.op],
                1 if obj.cached else 0, obj.n_ops)
        elif type(obj) is StagePower:
            out += _U8.pack(_T_STAGEPOWER)
            # The stage name goes through encode() so it lands in the
            # sharing memo: stage strings repeat across records and are
            # often interned, and pickle-byte identity needs the decoded
            # graph to share them exactly as the original did.
            self.encode(obj.stage)
            out += _F64.pack(obj.avg_total_w)
            out += _F64.pack(obj.avg_dynamic_w)
        elif type(obj) is Grid2D:
            data = obj.data
            if data.dtype == np.float64 and data.flags.c_contiguous \
                    and data.shape == (obj.nx, obj.ny):
                out += _U8.pack(_T_GRID2D)
                out += _I64.pack(obj.nx)
                out += _I64.pack(obj.ny)
                out += _F64.pack(obj.lx)
                out += _F64.pack(obj.ly)
                _put_bytes(out, memoryview(data).cast("B"))
            else:  # adopted exotic storage: let pickle keep its semantics
                self._pickled(obj, share=False)
        elif type(obj) is Image:
            out += _U8.pack(_T_IMAGE)
            if not _encode_ndarray(out, obj.pixels):
                raise CodecError("image pixels are not a flat array")
        elif type(obj) is RenderResult:
            out += _U8.pack(_T_RENDERRESULT)
            self.encode(obj.image)
            out += _I64.pack(obj.pixels_shaded)
            out += _I64.pack(obj.contour_segments)
        elif type(obj) is ExperimentResult:
            out += _U8.pack(_T_RESULT)
            self.encode(obj.id)
            self.encode(obj.title)
            self.encode(obj.data)
            self.encode(obj.text)
        elif isinstance(obj, np.ndarray):
            if not _encode_ndarray(out, obj):
                self._pickled(obj, share=False)
        else:
            self._pickled(obj, share=False)

    def _pickled(self, obj: Any, share: bool = True) -> None:
        # ``share=False`` when the caller already claimed this object's
        # slot on the non-fallback path (the slot stands either way).
        if share and self._share(obj):
            return
        if self.pickler is None:
            self.pio = io.BytesIO()
            self.pickler = _FallbackPickler(self.pio, self)
        self.dump_root = obj
        try:
            self.pickler.dump(obj)
        finally:
            self.dump_root = None
        self.out += _U8.pack(_T_PICKLE)
        # Stream offset after this frame: a decode-time desync check.
        self.out += _U32.pack(self.pio.tell())
        # Harvest the frame's interior: objects the pickler just
        # memoized become addressable by later codec nodes via pref.
        for oid, (idx, inner) in self.pickler.memo.copy().items():
            if oid not in self.pmemo and oid not in self.memo:
                self.pmemo[oid] = idx
                self.pins.append(inner)

    def finish(self) -> bytes:
        """Assemble the value frame: trailer length, trailer, tree."""
        trailer = self.pio.getvalue() if self.pio is not None else b""
        if len(trailer) > _U32_MAX:
            raise CodecError("fallback stream exceeds u32 frame")
        return _U32.pack(len(trailer)) + trailer + bytes(self.out)


def encode_value(obj: Any) -> bytes:
    """Encode one value (no header); inverse of :func:`decode_value`."""
    enc = _Encoder()
    enc.encode(obj)
    return enc.finish()


def encode_result(result: ExperimentResult) -> bytes:
    """Canonical codec frame for one result: header plus encoded value."""
    enc = _Encoder()
    enc.encode(result)
    return _HEADER.pack(MAGIC, CODEC_VERSION) + enc.finish()


# -- decoding ---------------------------------------------------------------------


class _FallbackUnpickler(pickle.Unpickler):
    """Resolves the fallback stream's pids against the codec slots."""

    def __init__(self, file: io.BytesIO, reader: "_Reader") -> None:
        super().__init__(file)
        self._reader = reader

    def persistent_load(self, pid: Any) -> Any:
        slots = self._reader.slots
        if type(pid) is not int or not 0 <= pid < len(slots):
            raise CodecError(f"fallback stream names unknown slot {pid!r}")
        value = slots[pid]
        if value is _PENDING:
            raise CodecError(f"fallback stream refers into slot {pid}'s "
                             "own subtree")
        return value


class _Reader:
    """Cursor over an immutable buffer; every read bounds-checks.

    ``slots`` mirrors the encoder's memo: shareable nodes land in it in
    pre-order, and ref nodes index into it.  ``pmemo`` snapshots the
    fallback unpickler's memo after each frame for pref nodes.
    """

    __slots__ = ("view", "pos", "slots", "pio", "unpickler", "pmemo")

    def __init__(self, view: memoryview) -> None:
        self.view = view
        self.pos = 0
        self.slots: list[Any] = []
        self.pio: io.BytesIO | None = None
        self.unpickler: _FallbackUnpickler | None = None
        self.pmemo: dict[int, Any] = {}

    def take(self, nbytes: int) -> memoryview:
        end = self.pos + nbytes
        if end > len(self.view):
            raise CodecError(
                f"truncated frame: wanted {nbytes} bytes at {self.pos}, "
                f"have {len(self.view) - self.pos}")
        chunk = self.view[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def blob(self) -> memoryview:
        return self.take(self.u32())


#: Tags whose objects occupy a sharing slot (everything except the
#: atomic immediates, which pickle never memoizes either).
_SHAREABLE_TAGS = frozenset({
    _T_STR, _T_BYTES, _T_TUPLE, _T_LIST, _T_DICT, _T_NDARRAY,
    _T_IOSTATS, _T_DISKRESULT, _T_STAGEPOWER, _T_GRID2D,
    _T_RENDERRESULT, _T_IMAGE, _T_RESULT, _T_PICKLE,
})


def _decode(r: _Reader) -> Any:
    tag = r.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_FALSE:
        return False
    if tag == _T_TRUE:
        return True
    if tag == _T_INT:
        return r.i64()
    if tag == _T_FLOAT:
        return r.f64()
    if tag == _T_OPKIND:
        return _opkind(r.u8())
    if tag == _T_REF:
        slot = r.u32()
        if slot >= len(r.slots):
            raise CodecError(f"ref to unknown slot {slot} "
                             f"(only {len(r.slots)} assigned)")
        value = r.slots[slot]
        if value is _PENDING:
            raise CodecError(f"ref to slot {slot} inside its own subtree")
        return value
    if tag == _T_PREF:
        idx = r.u32()
        value = r.pmemo.get(idx, _PENDING)
        if value is _PENDING:
            raise CodecError(f"pref to unknown fallback memo index {idx}")
        return value
    if tag not in _SHAREABLE_TAGS:
        raise CodecError(f"unknown tag 0x{tag:02X} at offset {r.pos - 1}")
    slot = len(r.slots)
    r.slots.append(_PENDING)
    value = _decode_shareable(r, tag)
    r.slots[slot] = value
    return value


def _decode_shareable(r: _Reader, tag: int) -> Any:
    if tag == _T_STR:
        return bytes(r.blob()).decode()
    if tag == _T_BYTES:
        return bytes(r.blob())
    if tag == _T_TUPLE:
        return tuple(_decode(r) for _ in range(r.u32()))
    if tag == _T_LIST:
        return [_decode(r) for _ in range(r.u32())]
    if tag == _T_DICT:
        n = r.u32()
        return {_decode(r): _decode(r) for _ in range(n)}
    if tag == _T_NDARRAY:
        return _decode_ndarray(r)
    if tag == _T_IOSTATS:
        fields = _IOSTATS.unpack(r.take(_IOSTATS.size))
        return IoStats(
            busy_time=fields[0], arm_time=fields[1], rotation_time=fields[2],
            transfer_time=fields[3], bytes_read=fields[4],
            bytes_written=fields[5], n_reads=fields[6], n_writes=fields[7],
            fault_time=fields[8], n_faults=fields[9], n_retries=fields[10])
    if tag == _T_DISKRESULT:
        fields = _DISKRESULT.unpack(r.take(_DISKRESULT.size))
        return DiskResult(
            service_time=fields[0], arm_time=fields[1],
            rotation_time=fields[2], transfer_time=fields[3],
            nbytes=fields[4], op=_opkind(fields[5]),
            cached=bool(fields[6]), n_ops=fields[7])
    if tag == _T_STAGEPOWER:
        stage = _decode(r)
        if not isinstance(stage, str):
            raise CodecError("stage power frame has a non-string stage")
        return StagePower(stage=stage, avg_total_w=r.f64(),
                          avg_dynamic_w=r.f64())
    if tag == _T_GRID2D:
        nx, ny = r.i64(), r.i64()
        lx, ly = r.f64(), r.f64()
        buf = r.blob()
        if nx < 3 or ny < 3 or nx * ny * 8 != len(buf):
            raise CodecError(f"grid payload mismatch: {nx}x{ny} vs "
                             f"{len(buf)} bytes")
        data = np.frombuffer(buf, dtype="<f8").reshape(nx, ny).copy()
        return Grid2D.from_array(data, lx=lx, ly=ly)
    if tag == _T_IMAGE:
        if r.u8() != _T_NDARRAY:
            raise CodecError("image payload is not a flat array")
        pixels = _decode_ndarray(r)
        if pixels.ndim != 3 or pixels.shape[2] != 3 \
                or pixels.dtype != np.uint8:
            raise CodecError(f"image payload has shape {pixels.shape}")
        return Image.from_array(pixels)
    if tag == _T_RENDERRESULT:
        image = _decode(r)
        if not isinstance(image, Image):
            raise CodecError("render result payload lost its image")
        return RenderResult(image=image, pixels_shaded=r.i64(),
                            contour_segments=r.i64())
    if tag == _T_RESULT:
        rid = _decode(r)
        title = _decode(r)
        data = _decode(r)
        text = _decode(r)
        if not isinstance(rid, str) or not isinstance(title, str) \
                or not isinstance(text, str):
            raise CodecError("experiment result frame has non-string metadata")
        return ExperimentResult(id=rid, title=title, data=data, text=text)
    # _T_PICKLE — the only remaining member of _SHAREABLE_TAGS.
    expected_offset = r.u32()
    if r.unpickler is None or r.pio is None:
        raise CodecError("pickle node but the frame carries no "
                         "fallback stream")
    try:
        value = r.unpickler.load()
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"fallback stream frame failed: {exc}") from exc
    if r.pio.tell() != expected_offset:
        raise CodecError(
            f"fallback stream desync: at {r.pio.tell()}, frame expected "
            f"{expected_offset}")
    r.pmemo = r.unpickler.memo.copy()
    return value


def _decode_ndarray(r: _Reader) -> np.ndarray:
    dtype = np.dtype(bytes(r.blob()).decode())
    shape = tuple(r.i64() for _ in range(r.u32()))
    if any(dim < 0 for dim in shape):
        raise CodecError(f"negative dimension in array shape {shape}")
    buf = r.blob()
    count = 1
    for dim in shape:
        count *= dim
    if dtype.itemsize * count != len(buf):
        raise CodecError(
            f"array payload is {len(buf)} bytes, shape {shape} of "
            f"{dtype} wants {dtype.itemsize * count}")
    # frombuffer is zero-copy over the frame; the copy() hands the
    # caller an independent writable array, like pickle would.
    return np.frombuffer(buf, dtype=dtype).reshape(shape).copy()


def _opkind(code: int) -> OpKind:
    try:
        return _OPKIND_FROM[code]
    except KeyError:
        raise CodecError(f"unknown OpKind code {code}") from None


def decode_value(buf: bytes | memoryview) -> Any:
    """Decode one headerless value; inverse of :func:`encode_value`."""
    reader = _Reader(memoryview(buf))
    try:
        trailer = reader.blob()
        if len(trailer):
            reader.pio = io.BytesIO(trailer)
            reader.unpickler = _FallbackUnpickler(reader.pio, reader)
        value = _decode(reader)
    except (struct.error, UnicodeDecodeError, ValueError, TypeError) as exc:
        raise CodecError(f"corrupt frame: {exc}") from exc
    if reader.pos != len(reader.view):
        raise CodecError(
            f"{len(reader.view) - reader.pos} trailing bytes after value")
    return value


def is_codec_frame(buf: bytes | memoryview) -> bool:
    """True when the buffer leads with this codec's magic."""
    return bytes(buf[:4]) == MAGIC


def decode_result(buf: bytes | memoryview) -> ExperimentResult:
    """Decode a framed result; raises :class:`CodecError` on any defect."""
    view = memoryview(buf)
    if len(view) < _HEADER.size:
        raise CodecError(f"frame of {len(view)} bytes is shorter than header")
    magic, version = _HEADER.unpack(view[:_HEADER.size])
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != CODEC_VERSION:
        raise CodecError(f"codec version {version} not supported "
                         f"(this build speaks {CODEC_VERSION})")
    value = decode_value(view[_HEADER.size:])
    if not isinstance(value, ExperimentResult):
        raise CodecError(f"frame decoded to {type(value).__name__}, "
                         "not ExperimentResult")
    return value
