"""One reproduction function per paper figure/table.

Every function takes a :class:`Lab` (which memoizes the expensive paired
pipeline runs and fio sweeps) and returns an :class:`ExperimentResult`
holding structured data plus a rendered text block that mirrors what the
paper's figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.comparison import compare_cases, normalized_efficiency
from repro.analysis.plots import ascii_bars, ascii_series
from repro.analysis.savings import analyze_savings
from repro.analysis.tables import format_table
from repro.analysis.whatif import whatif_reorganization
from repro.experiments.calibration import CASE_STUDIES, PAPER, STAGE
from repro.machine.node import Node
from repro.machine.nvram import NvramModel
from repro.machine.raid import RaidArray, RaidLevel
from repro.machine.specs import DiskSpec, paper_testbed
from repro.machine.disk import HddModel
from repro.machine.ssd import SsdModel
from repro.pipelines.base import PipelineConfig
from repro.pipelines.intransit import InTransitPipeline
from repro.pipelines.runner import PipelineRunner
from repro.power.breakdown import stage_power_table
from repro.power.meters import MeterRig
from repro.rng import DEFAULT_SEED, RngRegistry
from repro.runtime.advisor import RuntimeAdvisor, WorkloadProfile
from repro.runtime.diskmodel import DiskPowerModel, WorkloadDescriptor
from repro.trace.timeline import Timeline
from repro.units import GiB, KiB
from repro.workloads.fio import FIO_JOBS, FioRunner
from repro.workloads.proxyapp import run_all_cases


@dataclass
class ExperimentResult:
    """Structured data + rendered text for one reproduced artifact."""

    id: str
    title: str
    data: Any
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


class Lab:
    """Shared, memoized experiment executor.

    One Lab = one seed = one deterministic reproduction of the whole
    evaluation section.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = seed
        self.runner = PipelineRunner(seed=seed)
        self.node = self.runner.node
        self._outcomes = None
        self._fio = None
        self._apps = None

    def outcomes(self):
        """Paired case-study runs (memoized)."""
        if self._outcomes is None:
            self._outcomes = run_all_cases(self.runner)
        return self._outcomes

    def fio(self):
        """Table III fio results (memoized)."""
        if self._fio is None:
            self._fio = FioRunner(Node(), seed=self.seed).run_table3()
        return self._fio

    def apps(self):
        """Application-profile pipeline runs (memoized).

        Heaviest single computation in the registry (the mpas-like
        profile integrates an 8x grid), and — like the case studies —
        a pure function of the seed, so one set of runs serves every
        request for ``ext-applications``.
        """
        if self._apps is None:
            from repro.workloads.apps import APP_PROFILES, run_app

            runner = PipelineRunner(seed=self.seed, jitter=0)
            self._apps = {name: run_app(name, runner)
                          for name in APP_PROFILES}
        return self._apps


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def table1(lab: Lab) -> ExperimentResult:
    """Hardware specification of the system under test."""
    rows = paper_testbed().table1_rows()
    text = format_table(["H/W Type", "H/W Detail"], rows,
                        title="Table I: Hardware specification")
    return ExperimentResult("table1", "Hardware specification", dict(rows), text)


# ---------------------------------------------------------------------------
# Fig 4 — stage-time breakdown
# ---------------------------------------------------------------------------

def fig4(lab: Lab) -> ExperimentResult:
    """Percentage of execution time per stage for the three case studies."""
    shares: dict[int, dict[str, float]] = {}
    rows = []
    for idx, outcome in lab.outcomes().items():
        fracs = outcome.post.timeline.stage_fractions(include_idle=False)
        shares[idx] = fracs
        rows.append([
            f"Case Study {idx}",
            100 * fracs.get("simulation", 0.0),
            100 * fracs.get("nnwrite", 0.0),
            100 * fracs.get("nnread", 0.0),
            100 * fracs.get("visualization", 0.0),
        ])
    text = format_table(
        ["", "Simulation %", "Write %", "Read %", "Visualization %"],
        rows, title="Fig 4: execution-time breakdown (post-processing)",
    )
    return ExperimentResult("fig4", "Stage-time breakdown", shares, text)


# ---------------------------------------------------------------------------
# Fig 5 — power profiles
# ---------------------------------------------------------------------------

def fig5(lab: Lab) -> ExperimentResult:
    """Instantaneous power (processor / DRAM / system) over time, six panels."""
    from repro.analysis.phases import detect_phases

    profiles = {}
    blocks = []
    for idx, outcome in lab.outcomes().items():
        for kind, run in (("post-processing", outcome.post),
                          ("in-situ", outcome.insitu)):
            profiles[(kind, idx)] = run.profile
            p = run.profile
            blocks.append(ascii_series(
                p.times.tolist(),
                {"system": p["system"].tolist(),
                 "processor": p["processor"].tolist(),
                 "dram": p["dram"].tolist()},
                title=f"Fig 5: {kind} pipeline, case study {idx}",
            ))
            detected = detect_phases(p, max_phases=3, min_phase_s=20.0)
            blocks.append(
                "  detected power phases: "
                + ", ".join(f"{ph.mean_w:.1f} W for {ph.duration_s:.0f} s"
                            for ph in detected)
            )
    return ExperimentResult("fig5", "Power profiles", profiles,
                            "\n\n".join(blocks))


# ---------------------------------------------------------------------------
# Fig 6 — nnread / nnwrite stage profiles
# ---------------------------------------------------------------------------

def isolated_stage_profile(lab: Lab, stage: str, duration_s: float = 50.0):
    """Meter a dedicated run of one I/O stage (the Fig 6 methodology)."""
    cal = STAGE[stage]
    timeline = Timeline()
    timeline.mark(stage)
    elapsed = 0.0
    while elapsed < duration_s:
        bytes_moved = 128 * KiB
        timeline.record(
            stage, cal.duration_s,
            cal.activity(
                disk_read_bytes=bytes_moved if stage == "nnread" else 0.0,
                disk_write_bytes=bytes_moved if stage == "nnwrite" else 0.0,
            ),
        )
        elapsed += cal.duration_s
    rng = RngRegistry(lab.seed).fork(f"isolated/{stage}")
    rig = MeterRig(lab.node, rng=rng)
    return timeline, rig.sample(timeline)


def fig6(lab: Lab) -> ExperimentResult:
    """Isolated 50-second profiles of the nnwrite and nnread stages."""
    profiles = {}
    blocks = []
    for stage in ("nnwrite", "nnread"):
        _, profile = isolated_stage_profile(lab, stage)
        profiles[stage] = profile
        blocks.append(ascii_series(
            profile.times.tolist(),
            {"system": profile["system"].tolist()},
            height=8,
            title=f"Fig 6: power profile of {stage} stage "
                  f"(avg {profile.average():.1f} W)",
        ))
    return ExperimentResult("fig6", "nnread/nnwrite stage profiles",
                            profiles, "\n\n".join(blocks))


# ---------------------------------------------------------------------------
# Figs 7-11 — the head-to-head comparison
# ---------------------------------------------------------------------------

def _rows(lab: Lab):
    return compare_cases(lab.outcomes())


def fig7(lab: Lab) -> ExperimentResult:
    """Execution time of post-processing and in-situ pipelines."""
    rows = _rows(lab)
    labels, values = [], []
    for r in rows:
        labels += [f"case {r.case_index} in-situ", f"case {r.case_index} trad."]
        values += [r.time_insitu_s, r.time_post_s]
    text = ascii_bars(labels, values, unit=" s",
                      title="Fig 7: execution time")
    text += "\n" + "\n".join(
        f"  case {r.case_index}: in-situ {r.time_reduction_pct:.0f}% lower"
        for r in rows
    )
    return ExperimentResult("fig7", "Execution time", rows, text)


def fig8(lab: Lab) -> ExperimentResult:
    """Average power of post-processing and in-situ pipelines."""
    rows = _rows(lab)
    labels, values = [], []
    for r in rows:
        labels += [f"case {r.case_index} in-situ", f"case {r.case_index} trad."]
        values += [r.avg_power_insitu_w, r.avg_power_post_w]
    text = ascii_bars(labels, values, unit=" W",
                      title="Fig 8: average power")
    text += "\n" + "\n".join(
        f"  case {r.case_index}: in-situ {r.avg_power_increase_pct:+.1f}%"
        for r in rows
    )
    return ExperimentResult("fig8", "Average power", rows, text)


def fig9(lab: Lab) -> ExperimentResult:
    """Peak power of post-processing and in-situ pipelines."""
    rows = _rows(lab)
    labels, values = [], []
    for r in rows:
        labels += [f"case {r.case_index} in-situ", f"case {r.case_index} trad."]
        values += [r.peak_power_insitu_w, r.peak_power_post_w]
    text = ascii_bars(labels, values, unit=" W",
                      title="Fig 9: peak power (no significant difference)")
    return ExperimentResult("fig9", "Peak power", rows, text)


def fig10(lab: Lab) -> ExperimentResult:
    """Energy consumption of post-processing and in-situ pipelines."""
    rows = _rows(lab)
    labels, values = [], []
    for r in rows:
        labels += [f"case {r.case_index} in-situ", f"case {r.case_index} trad."]
        values += [r.energy_insitu_j, r.energy_post_j]
    text = ascii_bars(labels, values, unit=" J",
                      title="Fig 10: energy consumption")
    text += "\n" + "\n".join(
        f"  case {r.case_index}: in-situ {r.energy_savings_pct:.0f}% lower "
        f"(paper: {PAPER['energy_savings_pct'][r.case_index]:.0f}%)"
        for r in rows
    )
    return ExperimentResult("fig10", "Energy consumption", rows, text)


def fig11(lab: Lab) -> ExperimentResult:
    """Normalized energy efficiency of the two pipelines."""
    rows = _rows(lab)
    normalized = normalized_efficiency(rows)
    labels, values = [], []
    for idx, (post_eff, insitu_eff) in normalized.items():
        labels += [f"case {idx} in-situ", f"case {idx} trad."]
        values += [insitu_eff, post_eff]
    text = ascii_bars(labels, values,
                      title="Fig 11: energy efficiency (normalized)")
    text += "\n" + "\n".join(
        f"  case {r.case_index}: in-situ efficiency "
        f"{r.efficiency_improvement_pct:+.0f}%"
        for r in rows
    )
    return ExperimentResult("fig11", "Energy efficiency", normalized, text)


# ---------------------------------------------------------------------------
# Table II and Section V.C
# ---------------------------------------------------------------------------

def table2(lab: Lab) -> ExperimentResult:
    """Average total/dynamic power of the nnread and nnwrite stages.

    Derived from the *isolated* stage runs (Fig 6's methodology): at 1 Hz
    a sample inside the interleaved case-study run blends neighbouring
    stages, so the paper profiles each stage on its own.
    """
    table = {}
    for stage in ("nnread", "nnwrite"):
        timeline, profile = isolated_stage_profile(lab, stage)
        table.update(stage_power_table(
            timeline, profile, static_w=lab.node.static_power_w,
            stages=(stage,),
        ))
    rows = [
        ["Avg. Power (Total)", table["nnread"].avg_total_w,
         table["nnwrite"].avg_total_w],
        ["Avg. Power (Dynamic)", table["nnread"].avg_dynamic_w,
         table["nnwrite"].avg_dynamic_w],
    ]
    text = format_table(
        ["Metric", "nnread", "nnwrite"], rows,
        title="Table II: properties of nnread and nnwrite stages",
    )
    return ExperimentResult("table2", "Stage power properties", table, text)


def sec5c(lab: Lab) -> ExperimentResult:
    """Energy-savings breakdown: static (idle) vs dynamic (data movement)."""
    stage_table = table2(lab).data  # Table II from the isolated stage runs
    analyses = {
        idx: analyze_savings(outcome, lab.node, stage_table=stage_table)
        for idx, outcome in lab.outcomes().items()
    }
    rows = []
    for idx, a in analyses.items():
        b = a.breakdown
        rows.append([
            f"Case Study {idx}",
            b.total_savings_j / 1000,
            b.static_savings_j / 1000,
            b.dynamic_savings_j / 1000,
            100 * b.static_fraction,
        ])
    text = format_table(
        ["", "Total kJ", "Static kJ", "Dynamic kJ", "Static %"],
        rows, title="Sec V.C: energy savings breakdown",
        float_fmt="{:.2f}",
    )
    case1 = analyses[1].breakdown
    text += (
        f"\nCase 1: {100 * case1.static_fraction:.0f}% of savings from "
        f"avoiding system idling (paper: 91%)"
    )
    return ExperimentResult("sec5c", "Savings breakdown", analyses, text)


# ---------------------------------------------------------------------------
# Table III and Section V.D
# ---------------------------------------------------------------------------

def table3(lab: Lab) -> ExperimentResult:
    """fio benchmark: performance, power, and energy."""
    results = lab.fio()
    order = ["seq_read", "rand_read", "seq_write", "rand_write"]
    headers = ["Metric"] + [n.replace("_", " ") for n in order]
    rows = [
        ["Execution time (s)"] + [results[n].elapsed_s for n in order],
        ["Full-system power (W)"] + [results[n].system_power_w for n in order],
        ["Disk dynamic power (W)"] + [results[n].disk_dynamic_power_w for n in order],
        ["Disk dynamic energy (KJ)"] + [results[n].disk_dynamic_energy_j / 1000
                                        for n in order],
        ["Full-system energy (KJ)"] + [results[n].system_energy_j / 1000
                                       for n in order],
    ]
    text = format_table(headers, rows,
                        title="Table III: fio tests (4 GiB)",
                        float_fmt="{:.1f}")
    return ExperimentResult("table3", "fio benchmark", results, text)


def sec5d(lab: Lab) -> ExperimentResult:
    """The what-if: data reorganization on the post-processing pipeline."""
    report = whatif_reorganization(lab.fio())
    text = "\n".join([
        "Sec V.D: reorganized post-processing vs in-situ",
        f"  random-I/O post-processing energy : {report.random_io_energy_j / 1000:.1f} kJ",
        f"  in-situ would save                : {report.insitu_would_save_j / 1000:.1f} kJ "
        "(paper: 242.2 kJ)",
        f"  after data reorganization         : {report.reorg_residual_j / 1000:.1f} kJ "
        "(paper: 7.3 kJ)",
        f"  reorganization recovers           : {100 * report.reorg_saves_fraction:.1f}% "
        "of the random-I/O energy",
        f"  one-time rewrite overhead         : {report.reorg_overhead_j / 1000:.1f} kJ "
        f"(pays back after {report.break_even_passes:.2f} analysis passes)",
    ])
    return ExperimentResult("sec5d", "What-if: data reorganization", report, text)


# ---------------------------------------------------------------------------
# Future-work extensions
# ---------------------------------------------------------------------------

def ext_devices(lab: Lab) -> ExperimentResult:
    """Device sweep: the Table III jobs on SSD, NVRAM, and RAID 0."""
    spec = paper_testbed()
    devices = {
        "hdd": HddModel(spec.disk),
        "ssd": SsdModel(),
        "nvram": NvramModel(),
        "raid0-4xhdd": RaidArray([HddModel(spec.disk) for _ in range(4)],
                                 RaidLevel.RAID0),
    }
    rows = []
    data: dict[str, dict[str, float]] = {}
    for name, device in devices.items():
        node = Node(spec, storage=device)
        runner = FioRunner(node, seed=lab.seed)
        seq = runner.run(FIO_JOBS["seq_read"])
        rand = runner.run(FIO_JOBS["rand_read"])
        data[name] = {
            "seq_read_s": seq.elapsed_s,
            "rand_read_s": rand.elapsed_s,
            "seq_read_kj": seq.system_energy_j / 1000,
            "rand_read_kj": rand.system_energy_j / 1000,
            "rand_seq_energy_ratio": rand.system_energy_j / seq.system_energy_j,
        }
        rows.append([name, seq.elapsed_s, rand.elapsed_s,
                     seq.system_energy_j / 1000, rand.system_energy_j / 1000,
                     data[name]["rand_seq_energy_ratio"]])
    text = format_table(
        ["Device", "seq read s", "rand read s", "seq kJ", "rand kJ",
         "rand/seq energy"],
        rows, title="Ext: future-work device sweep (4 GiB reads)",
        float_fmt="{:.2f}",
    )
    text += ("\nThe random/sequential energy gap — the paper's entire "
             "Sec V.D headroom — collapses on flash devices.")
    return ExperimentResult("ext-devices", "Device sweep", data, text)


def ext_multinode(lab: Lab) -> ExperimentResult:
    """In-transit staging vs single-node pipelines (case study 1)."""
    outcomes = lab.outcomes()[1]
    config = PipelineConfig(case=CASE_STUDIES[1])
    result = lab.runner.run(InTransitPipeline(config))
    total_intransit = result.extra["total_energy_j"]
    rows = [
        ["post-processing (1 node)", outcomes.post.execution_time_s,
         outcomes.post.energy_j / 1000],
        ["in-situ (1 node)", outcomes.insitu.execution_time_s,
         outcomes.insitu.energy_j / 1000],
        ["in-transit (compute node)", result.execution_time_s,
         result.energy_j / 1000],
        ["in-transit (compute+staging)", result.execution_time_s,
         total_intransit / 1000],
    ]
    text = format_table(
        ["Pipeline", "Time (s)", "Energy (kJ)"], rows,
        title="Ext: multi-node in-transit vs single-node pipelines (case 1)",
        float_fmt="{:.1f}",
    )
    text += ("\nShipping beats storing on the compute node, but the "
             "staging node's static power must be carried by enough "
             "simulation work to amortize it.")
    data = {"intransit": result, "total_energy_j": total_intransit,
            "post": outcomes.post, "insitu": outcomes.insitu}
    return ExperimentResult("ext-multinode", "In-transit comparison", data, text)


def ext_applications(lab: Lab) -> ExperimentResult:
    """In-situ advantage across synthetic real-application shapes."""
    outcomes = lab.apps()
    rows = []
    for name, outcome in outcomes.items():
        rows.append([
            name,
            outcome.post.execution_time_s,
            outcome.insitu.execution_time_s,
            outcome.post.energy_j / 1000,
            outcome.insitu.energy_j / 1000,
            100 * outcome.energy_savings_fraction,
        ])
    text = format_table(
        ["Application", "T post (s)", "T in-situ (s)", "E post (kJ)",
         "E in-situ (kJ)", "savings %"],
        rows, title="Ext: in-situ advantage across application shapes",
    )
    return ExperimentResult("ext-applications", "Application shapes",
                            outcomes, text)


def ext_advisor(lab: Lab) -> ExperimentResult:
    """Runtime advisor recommendations across workload scenarios."""
    model = DiskPowerModel.from_spec(paper_testbed().disk)
    advisor = RuntimeAdvisor(model)
    scenarios = {
        "batch, random I/O, no exploration": WorkloadProfile(
            WorkloadDescriptor(120.0, 16 * KiB, 1.0, "random"),
            io_time_fraction=0.6, needs_exploration=False),
        "random I/O, exploration needed": WorkloadProfile(
            WorkloadDescriptor(120.0, 16 * KiB, 1.0, "random"),
            io_time_fraction=0.6, needs_exploration=True),
        "sequential I/O, exploration needed": WorkloadProfile(
            WorkloadDescriptor(900.0, 128 * KiB, 0.5, "sequential"),
            io_time_fraction=0.4, needs_exploration=True),
    }
    rows = []
    data = {}
    for name, profile in scenarios.items():
        rec = advisor.recommend(profile)
        data[name] = rec
        rows.append([name, rec.technique.value,
                     100 * rec.estimated_savings_fraction])
    text = format_table(
        ["Scenario", "Technique", "Est. savings %"], rows,
        title="Ext: runtime advisor decisions", float_fmt="{:.0f}",
    )
    return ExperimentResult("ext-advisor", "Runtime advisor", data, text)
