"""Replication verification gate.

``python -m repro verify`` runs the evaluation and checks every paper
anchor programmatically — the first thing a downstream user should run
after installing.  Each check records the paper's value, the measured
value, the tolerance, and pass/fail; deliberate deviations (the paper's
internal inconsistencies documented in EXPERIMENTS.md) are encoded
against their *consistent* values and labeled as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import compare_cases
from repro.calibration import PAPER
from repro.experiments.figures import Lab, table2 as table2_fig
from repro.power.breakdown import savings_breakdown


@dataclass(frozen=True)
class Check:
    """One anchor comparison."""

    name: str
    paper: float
    measured: float
    tolerance: float
    note: str = ""

    @property
    def passed(self) -> bool:
        return abs(self.measured - self.paper) <= self.tolerance

    def render(self) -> str:
        """One status line for the verification report."""
        mark = "ok  " if self.passed else "FAIL"
        note = f"  [{self.note}]" if self.note else ""
        return (f"  {mark} {self.name:42s} paper {self.paper:9.2f}  "
                f"measured {self.measured:9.2f}  (tol {self.tolerance:g})"
                f"{note}")


def run_verification(lab: Lab | None = None) -> list[Check]:
    """Execute the evaluation and compare against every anchor."""
    lab = lab or Lab()
    checks: list[Check] = []
    rows = {r.case_index: r for r in compare_cases(lab.outcomes())}

    # Fig 10: energy savings.  Case 3 is checked against the value the
    # paper's own Figs 4+8 imply (see EXPERIMENTS.md inconsistency #1/#2).
    checks.append(Check("fig10: case-1 energy savings %",
                        PAPER["energy_savings_pct"][1],
                        rows[1].energy_savings_pct, 2.0))
    checks.append(Check("fig10: case-2 energy savings %",
                        PAPER["energy_savings_pct"][2],
                        rows[2].energy_savings_pct, 2.5))
    checks.append(Check("fig10: case-3 energy savings %", 11.5,
                        rows[3].energy_savings_pct, 2.5,
                        note="paper prints 18; internally consistent value"))

    # Fig 8: average power deltas.
    for idx, tol in ((1, 1.5), (2, 2.0), (3, 1.5)):
        checks.append(Check(
            f"fig8: case-{idx} avg power increase %",
            PAPER["avg_power_increase_pct"][idx],
            rows[idx].avg_power_increase_pct, tol))

    # Fig 9: peak power parity.
    checks.append(Check("fig9: case-1 peak power delta %", 0.0,
                        rows[1].peak_power_delta_pct, 3.0))

    # Fig 4: stage shares (case 1).
    fracs = lab.outcomes()[1].post.timeline.stage_fractions()
    for stage, share in PAPER["fig4_shares"][1].items():
        checks.append(Check(f"fig4: case-1 {stage} share %", 100 * share,
                            100 * fracs.get(stage, 0.0), 1.2))

    # Table II: stage powers from the isolated runs.
    table = table2_fig(lab).data
    for stage in ("nnread", "nnwrite"):
        checks.append(Check(
            f"table2: {stage} total W",
            PAPER["table2"][stage]["total_w"],
            table[stage].avg_total_w, 1.0))
        checks.append(Check(
            f"table2: {stage} dynamic W",
            PAPER["table2"][stage]["dynamic_w"],
            table[stage].avg_dynamic_w, 1.0))

    # Sec V.C: static fraction of the savings.
    io_dyn = (table["nnread"].avg_dynamic_w + table["nnwrite"].avg_dynamic_w) / 2
    post, insitu = lab.outcomes()[1].post, lab.outcomes()[1].insitu
    breakdown = savings_breakdown(
        baseline_energy_j=post.energy_j,
        baseline_time_s=post.execution_time_s,
        insitu_energy_j=insitu.energy_j,
        insitu_time_s=insitu.execution_time_s,
        io_dynamic_power_w=io_dyn)
    checks.append(Check("sec5c: static savings fraction",
                        PAPER["savings_static_fraction"],
                        breakdown.static_fraction, 0.03))

    # Table III: every cell the paper prints (except the known typo).
    fio = lab.fio()
    for job, anchors in PAPER["table3"].items():
        result = fio[job]
        checks.append(Check(f"table3: {job} time s", anchors["time_s"],
                            result.elapsed_s,
                            max(1.0, 0.03 * anchors["time_s"])))
        checks.append(Check(f"table3: {job} system W", anchors["system_w"],
                            result.system_power_w, 1.5))
        checks.append(Check(f"table3: {job} disk dyn W",
                            anchors["disk_dyn_w"],
                            result.disk_dynamic_power_w, 0.7))
    return checks


def render_verification(checks: list[Check]) -> str:
    """Human-readable verification report."""
    lines = ["Replication verification against the paper's anchors:", ""]
    lines += [c.render() for c in checks]
    n_pass = sum(c.passed for c in checks)
    lines += ["", f"{n_pass}/{len(checks)} anchors within tolerance"]
    return "\n".join(lines)
