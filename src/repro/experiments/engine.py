"""Parallel, cached experiment engine.

:func:`repro.experiments.registry.run_all` reproduces the evaluation
section one experiment at a time in one process.  The experiments are
pure functions of ``(seed, testbed spec)`` — that is the repository's
central determinism invariant — which makes them embarrassingly parallel
and their results content-addressable.  This module exploits both:

* **Parallel**: experiments fan out over a process pool.  Every worker
  owns a :class:`~repro.experiments.figures.Lab` for the run's seed, so
  experiments that land on the same worker still share memoized pipeline
  runs, and no state crosses process boundaries (results come back by
  pickle).  ``jobs=1`` degenerates to exactly ``registry.run_all``.
* **Cached**: results can persist on disk, keyed by a digest of
  everything they depend on (engine format version, package version,
  seed, experiment id, and the full testbed spec).  A second invocation
  with the same inputs loads instead of recomputing; any change to the
  inputs changes the key and misses.  Corrupt or unreadable entries are
  recomputed and overwritten, never trusted.

Either feature is bitwise-faithful: the engine returns the same
:class:`~repro.experiments.figures.ExperimentResult` payloads, in
registry order, that the serial path produces.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.experiments.figures import ExperimentResult, Lab
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.machine.node import paper_testbed
from repro.rng import DEFAULT_SEED
from repro.version import __version__

#: Bump to invalidate every existing cache entry (result format change).
ENGINE_CACHE_VERSION = 1

#: Fixed pickle protocol so cache entries (and the determinism checks
#: built on them) do not depend on the interpreter's default.
_PICKLE_PROTOCOL = 4


@dataclass(frozen=True)
class EngineReport:
    """Outcome of one engine invocation."""

    results: dict[str, ExperimentResult]
    jobs: int
    cache_dir: str | None = None
    cache_hits: tuple[str, ...] = field(default=())
    cache_misses: tuple[str, ...] = field(default=())


# -- cache ----------------------------------------------------------------------


def cache_key(experiment_id: str, seed: int) -> str:
    """Digest of everything an experiment's result depends on."""
    material = ":".join((
        str(ENGINE_CACHE_VERSION),
        __version__,
        str(seed),
        experiment_id,
        repr(paper_testbed()),
    ))
    return hashlib.sha256(material.encode()).hexdigest()


def _cache_path(cache_dir: str, experiment_id: str, seed: int) -> str:
    return os.path.join(cache_dir,
                        f"{experiment_id}-{cache_key(experiment_id, seed)[:20]}.pkl")


def _cache_load(path: str) -> ExperimentResult | None:
    """A cached result, or None when absent/corrupt (never raises)."""
    try:
        with open(path, "rb") as fh:
            result = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return None
    return result if isinstance(result, ExperimentResult) else None


def pickle_result(result: ExperimentResult) -> bytes:
    """Canonical byte representation of a result.

    The fixed protocol makes this stable across interpreters, so it is
    the representation the disk cache stores *and* the one byte-identity
    checks (tests, the serving layer's digests) compare.
    """
    return pickle.dumps(result, protocol=_PICKLE_PROTOCOL)


def load_result(cache_dir: str, experiment_id: str,
                seed: int) -> ExperimentResult | None:
    """Load one experiment's cached result, or None (never raises)."""
    return _cache_load(_cache_path(cache_dir, experiment_id, seed))


def store_result(cache_dir: str, experiment_id: str, seed: int,
                 result: ExperimentResult) -> None:
    """Persist one experiment's result (atomic, best-effort)."""
    _cache_store(_cache_path(cache_dir, experiment_id, seed), result)


def _cache_store(path: str, result: ExperimentResult) -> None:
    """Atomically persist a result (tmp file + rename)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(result, fh, protocol=_PICKLE_PROTOCOL)
        os.replace(tmp, path)
    except OSError:
        # Caching is best-effort; the computed result is still returned.
        try:
            os.unlink(tmp)
        except OSError:
            pass


# -- workers --------------------------------------------------------------------

#: Per-worker-process Lab.  On fork-capable platforms the parent primes
#: this with the memoized shared pipeline runs before the pool starts,
#: so every worker inherits them copy-on-write; otherwise the pool
#: initializer builds a fresh Lab per worker.  Either way the memoized
#: state only accelerates — it never changes a produced number.
_WORKER_LAB: Lab | None = None


def _worker_init(seed: int) -> None:
    global _WORKER_LAB
    if _WORKER_LAB is None or _WORKER_LAB.seed != seed:
        _WORKER_LAB = Lab(seed=seed)


def _prime_shared_lab(seed: int) -> None:
    """Compute the cross-experiment shared products once, pre-fork."""
    global _WORKER_LAB
    if _WORKER_LAB is None or _WORKER_LAB.seed != seed:
        _WORKER_LAB = Lab(seed=seed)
    _WORKER_LAB.outcomes()
    _WORKER_LAB.fio()


def _worker_run(experiment_id: str, seed: int) -> ExperimentResult:
    lab = _WORKER_LAB if _WORKER_LAB is not None else Lab(seed=seed)
    return get_experiment(experiment_id)(lab)


# -- the engine -----------------------------------------------------------------


def run_experiments(
    experiment_ids: list[str] | None = None,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> EngineReport:
    """Run experiments in parallel, consulting the on-disk cache first.

    Results come back in registry order regardless of completion order,
    and are bitwise-identical to the serial path for any ``jobs``.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    ids = list(EXPERIMENTS) if experiment_ids is None else list(experiment_ids)
    for eid in ids:
        get_experiment(eid)  # fail fast on unknown ids

    results: dict[str, ExperimentResult] = {}
    hits: list[str] = []
    misses: list[str] = []
    if cache_dir is not None:
        for eid in ids:
            cached = _cache_load(_cache_path(cache_dir, eid, seed))
            if cached is not None:
                results[eid] = cached
                hits.append(eid)
            else:
                misses.append(eid)
    else:
        misses = list(ids)

    if misses:
        if jobs == 1:
            lab = Lab(seed=seed)
            computed = {eid: get_experiment(eid)(lab) for eid in misses}
        else:
            if "fork" in multiprocessing.get_all_start_methods():
                _prime_shared_lab(seed)
                context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-fork platforms
                context = multiprocessing.get_context()
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(misses)),
                mp_context=context,
                initializer=_worker_init,
                initargs=(seed,),
            ) as pool:
                futures = {eid: pool.submit(_worker_run, eid, seed)
                           for eid in misses}
                computed = {eid: fut.result() for eid, fut in futures.items()}
        if cache_dir is not None:
            for eid, result in computed.items():
                _cache_store(_cache_path(cache_dir, eid, seed), result)
        results.update(computed)

    ordered = {eid: results[eid] for eid in ids}
    return EngineReport(results=ordered, jobs=jobs, cache_dir=cache_dir,
                        cache_hits=tuple(hits), cache_misses=tuple(misses))
