"""Parallel, cached experiment engine.

:func:`repro.experiments.registry.run_all` reproduces the evaluation
section one experiment at a time in one process.  The experiments are
pure functions of ``(seed, testbed spec)`` — that is the repository's
central determinism invariant — which makes them embarrassingly parallel
and their results content-addressable.  This module exploits both:

* **Parallel**: experiments fan out over a process pool.  Every worker
  owns a :class:`~repro.experiments.figures.Lab` for the run's seed, so
  experiments that land on the same worker still share memoized pipeline
  runs, and no state crosses process boundaries (results come back as
  flat :mod:`~repro.experiments.codec` frames, with pickle as the
  fallback transport).  ``jobs=1`` degenerates to exactly
  ``registry.run_all``.
* **Cached**: results can persist on disk, keyed by a digest of
  everything they depend on (engine format version, package version,
  seed, experiment id, and the full testbed spec).  A second invocation
  with the same inputs loads instead of recomputing; any change to the
  inputs changes the key and misses.  Corrupt or unreadable entries are
  recomputed and overwritten, never trusted.

Either feature is bitwise-faithful: the engine returns the same
:class:`~repro.experiments.figures.ExperimentResult` payloads, in
registry order, that the serial path produces.
"""

from __future__ import annotations

import hashlib
import io
import multiprocessing
import os
import pickle
import struct
import sys
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import CodecError, ConfigError, ReproError
from repro.experiments.codec import decode_result, encode_result, is_codec_frame
from repro.experiments.figures import ExperimentResult, Lab
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.machine.node import paper_testbed
from repro.rng import DEFAULT_SEED
from repro.version import __version__

#: Bump to invalidate every existing cache entry (result format change).
ENGINE_CACHE_VERSION = 1

#: Fixed pickle protocol so cache entries (and the determinism checks
#: built on them) do not depend on the interpreter's default.
_PICKLE_PROTOCOL = 4


@dataclass(frozen=True)
class EngineReport:
    """Outcome of one engine invocation."""

    results: dict[str, ExperimentResult]
    jobs: int
    cache_dir: str | None = None
    cache_hits: tuple[str, ...] = field(default=())
    cache_misses: tuple[str, ...] = field(default=())


# -- cache ----------------------------------------------------------------------


#: Memoized ``repr(paper_testbed())``.  The testbed spec is a process
#: constant, but rebuilding the Node tree and rendering its repr costs
#: real time, and ``run_experiments`` derives one key per experiment id
#: — so the spec portion is computed once and reused.
_TESTBED_REPR: str | None = None


def _testbed_repr() -> str:
    global _TESTBED_REPR
    if _TESTBED_REPR is None:
        _TESTBED_REPR = repr(paper_testbed())
    return _TESTBED_REPR


def cache_key(experiment_id: str, seed: int) -> str:
    """Digest of everything an experiment's result depends on."""
    material = ":".join((
        str(ENGINE_CACHE_VERSION),
        __version__,
        str(seed),
        experiment_id,
        _testbed_repr(),
    ))
    return hashlib.sha256(material.encode()).hexdigest()


def _cache_path(cache_dir: str, experiment_id: str, seed: int) -> str:
    return os.path.join(cache_dir,
                        f"{experiment_id}-{cache_key(experiment_id, seed)[:20]}.pkl")


def _cache_load(path: str) -> ExperimentResult | None:
    """A cached result, or None when absent/corrupt (never raises).

    Entries are sniffed by magic: codec frames (the format new entries
    are written in) decode through the flat binary path; anything else
    falls back to the pickle loader, so pre-codec cache directories stay
    readable without a flag day.
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError:
        return None
    if is_codec_frame(blob):
        try:
            return decode_result(blob)
        except CodecError:
            return None
    try:
        result = pickle.loads(blob)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return None
    return result if isinstance(result, ExperimentResult) else None


def pickle_result(result: ExperimentResult) -> bytes:
    """Canonical byte representation of a result.

    The fixed protocol makes this stable across interpreters, so it is
    the representation byte-identity checks (tests, the serving layer's
    digests) compare.  The disk cache itself now stores codec frames
    (:func:`codec_result`); this stays the digest representation so
    existing digests and determinism checks are unchanged.
    """
    return pickle.dumps(result, protocol=_PICKLE_PROTOCOL)


def codec_result(result: ExperimentResult) -> bytes:
    """Codec-frame byte representation of a result.

    The flat-binary counterpart of :func:`pickle_result`: this is what
    :func:`store_result` writes and what the pool workers ship back to
    the parent.  Cache keys are unchanged — the same sha256
    :func:`cache_key` addresses an entry whichever format holds it.
    """
    return encode_result(result)


def load_result(cache_dir: str, experiment_id: str,
                seed: int) -> ExperimentResult | None:
    """Load one experiment's cached result, or None (never raises)."""
    return _cache_load(_cache_path(cache_dir, experiment_id, seed))


def store_result(cache_dir: str, experiment_id: str, seed: int,
                 result: ExperimentResult) -> None:
    """Persist one experiment's result (atomic, best-effort)."""
    _cache_store(_cache_path(cache_dir, experiment_id, seed), result)


def drop_result(cache_dir: str, experiment_id: str, seed: int) -> bool:
    """Delete one experiment's cached entry (invalidation, best-effort).

    Returns True when an entry existed.  The serving layer's coherent
    invalidation fans this out cluster-wide; shards sharing one cache
    directory make the delete idempotent across them.
    """
    try:
        os.remove(_cache_path(cache_dir, experiment_id, seed))
    except OSError:
        return False
    return True


def _cache_store(path: str, result: ExperimentResult) -> None:
    """Atomically persist a result (tmp file + rename)."""
    try:
        blob = encode_result(result)
    except Exception:
        # The codec is an optimization; an unencodable result falls back
        # to the pickle entry format, which the loader also accepts.
        blob = pickle.dumps(result, protocol=_PICKLE_PROTOCOL)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except OSError:
        # Caching is best-effort; the computed result is still returned.
        try:
            os.unlink(tmp)
        except OSError:
            pass


# -- warm-Lab snapshots ---------------------------------------------------------

#: Bump to invalidate every existing Lab snapshot (Lab layout change).
LAB_SNAPSHOT_VERSION = 2

_SNAP_MAGIC = b"RPLS"
_SNAP_HEADER = struct.Struct("<4sHq")  # magic | version | seed


def _snapshot_singletons() -> dict[str, object]:
    """Module-level constants a Lab's products may reference.

    Experiments mix Lab-held products with objects they compute fresh,
    and the fresh objects reference these calibration singletons
    directly.  A naively unpickled Lab would hold *copies*, silently
    breaking the sharing structure (and thus the pickle-byte identity)
    of any result that touches both.  The snapshot pickler therefore
    maps each singleton to a stable persistent id and the unpickler
    resolves it back to the canonical module object.
    """
    import dataclasses

    from repro.calibration import CASE_STUDIES, PAPER, STAGE
    from repro.workloads.fio import FIO_JOBS

    consts: dict[str, object] = {}
    seen: set[int] = set()

    def walk(name: str, obj: object) -> None:
        # pickle never memoizes these, so their identity is irrelevant
        if obj is None or type(obj) in (bool, int, float):
            return
        if id(obj) in seen:
            return
        seen.add(id(obj))
        consts[name] = obj
        if isinstance(obj, dict):
            for i, (key, value) in enumerate(obj.items()):
                walk(f"{name}.k{i}", key)
                walk(f"{name}.v{i}", value)
        elif isinstance(obj, (list, tuple)):
            for i, item in enumerate(obj):
                walk(f"{name}[{i}]", item)
        elif dataclasses.is_dataclass(obj):
            for f in dataclasses.fields(obj):
                walk(f"{name}.{f.name}", getattr(obj, f.name))

    for name, table in (("CASE_STUDIES", CASE_STUDIES), ("PAPER", PAPER),
                        ("STAGE", STAGE), ("FIO_JOBS", FIO_JOBS)):
        walk(f"c:{name}", table)

    # numpy's builtin dtypes are interpreter-wide singletons, but a
    # pickle round-trip reconstructs them as copies — register them so
    # restored arrays keep sharing the live singletons.  Keyed by type
    # code, not .str: 'l' and 'q' can be equal-width yet distinct.
    import numpy as np
    for code in "?bBhHiIlLqQfd":
        walk(f"c:np.dtype[{code}]", np.dtype(code))
    return consts


_SNAP_BY_NAME: dict[str, object] | None = None
_SNAP_BY_ID: dict[int, str] | None = None


def _snapshot_registry() -> tuple[dict[str, object], dict[int, str]]:
    global _SNAP_BY_NAME, _SNAP_BY_ID
    if _SNAP_BY_NAME is None:
        by_name = _snapshot_singletons()
        _SNAP_BY_ID = {id(obj): name for name, obj in by_name.items()}
        _SNAP_BY_NAME = by_name
    return _SNAP_BY_NAME, _SNAP_BY_ID


class _SnapshotPickler(pickle.Pickler):
    """Pickler that externalizes calibration singletons and identifiers.

    Two kinds of persistent id, both plain strings (a string pid never
    re-enters ``persistent_id`` problematically — the prefixes below are
    not identifiers and are not registered):

    * ``c:<path>`` — a calibration singleton from the registry, matched
      by identity.
    * ``i:<text>`` — any ASCII identifier-like string.  These are the
      strings CPython interns (literals, attribute and keyword-argument
      names), which experiments share between Lab-held products and
      freshly computed objects; restoring them through :func:`sys.intern`
      re-merges them with the live interpreter's copies.
    """

    def __init__(self, file) -> None:
        super().__init__(file, protocol=_PICKLE_PROTOCOL)
        self._by_id = _snapshot_registry()[1]

    def persistent_id(self, obj: object) -> str | None:
        name = self._by_id.get(id(obj))
        if name is not None:
            return name
        if type(obj) is str and obj.isascii() and obj.isidentifier():
            return "i:" + obj
        return None


class _SnapshotUnpickler(pickle.Unpickler):
    """Unpickler that resolves snapshot pids to live canonical objects."""

    def __init__(self, file) -> None:
        super().__init__(file)
        self._by_name = _snapshot_registry()[0]

    def persistent_load(self, pid: object) -> object:
        if isinstance(pid, str):
            if pid.startswith("i:"):
                return sys.intern(pid[2:])
            try:
                return self._by_name[pid]
            except KeyError:
                pass
        raise CodecError(
            f"lab snapshot references unknown singleton {pid!r}")


def lab_snapshot_key(seed: int) -> str:
    """Digest of everything a warm-Lab snapshot depends on.

    Mirrors :func:`cache_key`: any change to the snapshot format, the
    engine format, the package version, the seed, or the testbed spec
    changes the key, so a stale snapshot simply misses.
    """
    material = ":".join((
        "lab-snapshot",
        str(LAB_SNAPSHOT_VERSION),
        str(ENGINE_CACHE_VERSION),
        __version__,
        str(seed),
        _testbed_repr(),
    ))
    return hashlib.sha256(material.encode()).hexdigest()


def _snapshot_path(cache_dir: str, seed: int) -> str:
    return os.path.join(cache_dir,
                        f"lab-{seed}-{lab_snapshot_key(seed)[:20]}.snap")


def snapshot_lab(lab: Lab) -> bytes:
    """Serialize a (preferably primed) Lab to a versioned snapshot blob."""
    buf = io.BytesIO()
    buf.write(_SNAP_HEADER.pack(_SNAP_MAGIC, LAB_SNAPSHOT_VERSION, lab.seed))
    _SnapshotPickler(buf).dump(lab)
    return buf.getvalue()


def restore_lab(blob: bytes, seed: int) -> Lab:
    """Deserialize a snapshot blob; raises :class:`CodecError` on mismatch."""
    if len(blob) < _SNAP_HEADER.size:
        raise CodecError("lab snapshot truncated")
    magic, version, snap_seed = _SNAP_HEADER.unpack_from(blob)
    if magic != _SNAP_MAGIC:
        raise CodecError("not a lab snapshot")
    if version != LAB_SNAPSHOT_VERSION:
        raise CodecError(f"lab snapshot version {version} != "
                         f"{LAB_SNAPSHOT_VERSION}")
    if snap_seed != seed:
        raise CodecError(f"lab snapshot seed {snap_seed} != {seed}")
    try:
        lab = _SnapshotUnpickler(io.BytesIO(blob[_SNAP_HEADER.size:])).load()
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"lab snapshot failed to load: {exc}") from None
    if not isinstance(lab, Lab) or lab.seed != seed:
        raise CodecError("lab snapshot holds the wrong object")
    return lab


def save_lab_snapshot(cache_dir: str, lab: Lab) -> str | None:
    """Atomically persist a Lab snapshot (best-effort, never raises)."""
    path = _snapshot_path(cache_dir, lab.seed)
    try:
        blob = snapshot_lab(lab)
    except Exception:
        return None
    try:
        os.makedirs(cache_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    except OSError:
        return None
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    return path


def load_lab_snapshot(cache_dir: str, seed: int) -> Lab | None:
    """Load a Lab snapshot, or None when absent/stale/corrupt (never raises)."""
    try:
        with open(_snapshot_path(cache_dir, seed), "rb") as fh:
            blob = fh.read()
    except OSError:
        return None
    try:
        return restore_lab(blob, seed)
    except ReproError:
        return None


def warm_lab(seed: int, cache_dir: str | None = None) -> Lab:
    """A fully primed Lab — deserialized from a snapshot when one exists.

    Priming (the memoized case-study and application pipeline runs plus
    the fio table) costs ~100x what loading the snapshot does.  On a
    miss the
    Lab is primed the slow way and, when ``cache_dir`` is given, saved
    so the next cold start skips the priming.
    """
    if cache_dir is not None:
        lab = load_lab_snapshot(cache_dir, seed)
        if lab is not None:
            return lab
    lab = Lab(seed=seed)
    lab.outcomes()
    lab.fio()
    lab.apps()
    if cache_dir is not None:
        save_lab_snapshot(cache_dir, lab)
    return lab


# -- workers --------------------------------------------------------------------

#: Per-worker-process Lab.  On fork-capable platforms the parent primes
#: this with the memoized shared pipeline runs before the pool starts,
#: so every worker inherits them copy-on-write; otherwise the pool
#: initializer builds a fresh Lab per worker.  Either way the memoized
#: state only accelerates — it never changes a produced number.
_WORKER_LAB: Lab | None = None


def _worker_init(seed: int) -> None:
    global _WORKER_LAB
    if _WORKER_LAB is None or _WORKER_LAB.seed != seed:
        _WORKER_LAB = Lab(seed=seed)


def _prime_shared_lab(seed: int, cache_dir: str | None = None) -> None:
    """Warm the pre-fork shared Lab, via snapshot when one is cached."""
    global _WORKER_LAB
    if _WORKER_LAB is None or _WORKER_LAB.seed != seed:
        _WORKER_LAB = warm_lab(seed, cache_dir)
    else:
        _WORKER_LAB.outcomes()
        _WORKER_LAB.fio()
        _WORKER_LAB.apps()


def _worker_run(experiment_id: str, seed: int) -> bytes | ExperimentResult:
    """Run one experiment and ship the result back as a codec frame.

    The flat frame crosses the pool pipe as one bytes object (which
    multiprocessing moves cheaply) instead of a pickled object graph.
    If the result resists encoding, the raw object is returned and the
    stock pickle transport carries it — a worker never dies over the
    transport format.
    """
    lab = _WORKER_LAB if _WORKER_LAB is not None else Lab(seed=seed)
    result = get_experiment(experiment_id)(lab)
    try:
        return encode_result(result)
    except Exception:
        return result


def _from_worker(payload: bytes | ExperimentResult) -> ExperimentResult:
    """Decode a worker payload, whichever transport carried it."""
    if isinstance(payload, bytes):
        return decode_result(payload)
    return payload


# -- the engine -----------------------------------------------------------------


def run_experiments(
    experiment_ids: list[str] | None = None,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> EngineReport:
    """Run experiments in parallel, consulting the on-disk cache first.

    Results come back in registry order regardless of completion order,
    and are bitwise-identical to the serial path for any ``jobs``.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    ids = list(EXPERIMENTS) if experiment_ids is None else list(experiment_ids)
    for eid in ids:
        get_experiment(eid)  # fail fast on unknown ids

    results: dict[str, ExperimentResult] = {}
    hits: list[str] = []
    misses: list[str] = []
    if cache_dir is not None:
        for eid in ids:
            cached = _cache_load(_cache_path(cache_dir, eid, seed))
            if cached is not None:
                results[eid] = cached
                hits.append(eid)
            else:
                misses.append(eid)
    else:
        misses = list(ids)

    if misses:
        if jobs == 1:
            lab = Lab(seed=seed)
            computed = {eid: get_experiment(eid)(lab) for eid in misses}
        else:
            if "fork" in multiprocessing.get_all_start_methods():
                _prime_shared_lab(seed, cache_dir)
                context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-fork platforms
                context = multiprocessing.get_context()
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(misses)),
                mp_context=context,
                initializer=_worker_init,
                initargs=(seed,),
            ) as pool:
                futures = {eid: pool.submit(_worker_run, eid, seed)
                           for eid in misses}
                computed = {eid: _from_worker(fut.result())
                            for eid, fut in futures.items()}
        if cache_dir is not None:
            for eid, result in computed.items():
                _cache_store(_cache_path(cache_dir, eid, seed), result)
        results.update(computed)

    ordered = {eid: results[eid] for eid in ids}
    return EngineReport(results=ordered, jobs=jobs, cache_dir=cache_dir,
                        cache_hits=tuple(hits), cache_misses=tuple(misses))
