"""Energy under storage faults: the ``ext-faults`` experiment.

The paper measures fault-free pipelines.  This extension asks what the
greenness comparison looks like on the storage the paper's testbed would
really age into: a disk throwing transient I/O errors and latent sector
errors, and — mid-run — failing outright.  Both pipelines run twice on
the same seeded :class:`~repro.faults.plan.FaultPlan` machinery:

* **baseline** — a zero-rate plan.  The wrapper is pure delegation, so
  this leg is bit-identical to an unwrapped run (the equivalence the
  test suite enforces).
* **faulted** — seeded transient + latent-sector rates plus one whole
  device failure at the midpoint of the baseline's op count.  The retry
  layer absorbs the soft errors; the device failure interrupts the run
  and :class:`~repro.faults.resilience.ResilientPipelineRunner` restarts
  it from the last durable point (post-processing resumes from its own
  synced dumps; in-situ from explicit checkpoints).

Every retry wait, redone iteration, and the restart itself lands on the
metered timeline, so the reported energy is the *billed* energy of the
recovered run.  A final block prices a degraded RAID 5 rebuild through
the same meters.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.errors import ConfigError
from repro.experiments.calibration import CASE_STUDIES
from repro.experiments.figures import ExperimentResult, Lab
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.resilience import ResilientPipelineRunner
from repro.faults.retry import RetryPolicy
from repro.machine.disk import HddModel
from repro.machine.node import Node
from repro.machine.raid import RaidArray, RaidLevel
from repro.machine.specs import paper_testbed
from repro.pipelines.base import PipelineConfig
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.post import PostProcessingPipeline
from repro.power.meters import MeterRig
from repro.rng import RngRegistry
from repro.trace.timeline import Timeline
from repro.units import GiB

__all__ = ["ext_faults", "run_faulted", "rebuild_cost"]

#: Injected soft-error mix for the faulted leg.
TRANSIENT_RATE = 0.02
SECTOR_RATE = 0.005
#: In-situ checkpoint cadence (iterations); both legs pay it, so the
#: overhead column isolates the *faults*, not the checkpoint insurance.
INSITU_CHECKPOINT_INTERVAL = 10
#: Used capacity reconstructed in the RAID 5 rebuild block.
REBUILD_SPAN_BYTES = 4 * GiB
#: RAID 5 member index failed and rebuilt in the rebuild block.
REBUILD_MEMBER = 2

PIPELINE_KINDS = {
    "post": PostProcessingPipeline,
    "insitu": InSituPipeline,
}


def run_faulted(kind: str, spec: FaultSpec, *, seed: int,
                case_index: int = 1, checkpoint_interval: int = 0):
    """Run one pipeline on a fault-injected HDD behind the retry layer.

    Returns ``(result, device)`` — the metered :class:`RunResult` and the
    :class:`~repro.faults.device.FaultyDevice` it ran on (so callers can
    probe ``ops_serviced`` to place a mid-run failure).
    """
    if kind not in PIPELINE_KINDS:
        raise ConfigError(
            f"unknown pipeline kind {kind!r}; have {sorted(PIPELINE_KINDS)}"
        )
    if case_index not in CASE_STUDIES:
        raise ConfigError(
            f"unknown case study {case_index}; have {sorted(CASE_STUDIES)}"
        )
    testbed = paper_testbed()
    device = FaultyDevice(HddModel(testbed.disk), FaultPlan(spec))
    node = Node(testbed, storage=device)
    runner = ResilientPipelineRunner(node=node, seed=seed)
    config = PipelineConfig(
        case=CASE_STUDIES[case_index],
        retry_policy=RetryPolicy(),
        checkpoint_interval=checkpoint_interval,
    )
    result = runner.run(PIPELINE_KINDS[kind](config))
    return result, device


def rebuild_cost(*, seed: int, used_bytes: int = REBUILD_SPAN_BYTES):
    """Price a degraded RAID 5 rebuild through the meters.

    Returns ``(report, profile)``: the rebuild's I/O accounting and the
    sampled power profile of the rebuild span on the paper's testbed.
    """
    testbed = paper_testbed()
    array = RaidArray([HddModel(testbed.disk) for _ in range(4)],
                      RaidLevel.RAID5)
    node = Node(testbed, storage=array)
    array.fail_member(REBUILD_MEMBER)
    report = array.rebuild(REBUILD_MEMBER, used_bytes=used_bytes)
    timeline = Timeline()
    timeline.record(
        "rebuild", report.duration_s, report.activity(),
        member=report.member, rebuilt_bytes=report.bytes_written,
    )
    rig = MeterRig(node, rng=RngRegistry(seed).fork("faults/rebuild"))
    profile = rig.sample(timeline)
    return report, profile


def ext_faults(lab: Lab) -> ExperimentResult:
    """Energy under injected storage faults: post vs in-situ, with recovery."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for kind in PIPELINE_KINDS:
        interval = INSITU_CHECKPOINT_INTERVAL if kind == "insitu" else 0
        base, device = run_faulted(
            kind, FaultSpec(seed=lab.seed), seed=lab.seed,
            checkpoint_interval=interval,
        )
        # Fail the device halfway through the op schedule the fault-free
        # run produced — deterministically mid-run for any case/config.
        fail_at = device.ops_serviced // 2
        spec = FaultSpec(
            seed=lab.seed, transient_rate=TRANSIENT_RATE,
            sector_rate=SECTOR_RATE, fail_at_op=fail_at,
        )
        faulted, _ = run_faulted(kind, spec, seed=lab.seed,
                                 checkpoint_interval=interval)
        overhead = (faulted.energy_j / base.energy_j - 1.0) * 100.0
        data[kind] = {
            "baseline_kj": base.energy_j / 1000,
            "faulted_kj": faulted.energy_j / 1000,
            "baseline_s": base.execution_time_s,
            "faulted_s": faulted.execution_time_s,
            "overhead_pct": overhead,
            "restarts": faulted.extra.get("restarts", 0),
            "io_retries": faulted.extra.get("io_retries", 0),
            "io_faults": faulted.extra.get("io_faults", 0),
            "fail_at_op": fail_at,
        }
        rows.append([
            kind, base.energy_j / 1000, faulted.energy_j / 1000, overhead,
            data[kind]["restarts"], data[kind]["io_retries"],
        ])
    report, profile = rebuild_cost(seed=lab.seed)
    data["raid5_rebuild"] = {
        "duration_s": report.duration_s,
        "energy_kj": profile.energy() / 1000,
        "bytes_read": float(report.bytes_read),
        "bytes_written": float(report.bytes_written),
    }
    text = format_table(
        ["Pipeline", "fault-free kJ", "faulted kJ", "overhead %",
         "restarts", "retries"],
        rows,
        title="Ext: energy under storage faults (case 1, mid-run failure)",
        float_fmt="{:.2f}",
    )
    text += (
        f"\nRAID 5 rebuild of one member "
        f"({report.bytes_written / GiB:.0f} GiB used): "
        f"{report.duration_s:.0f} s, "
        f"{profile.energy() / 1000:.1f} kJ on the paper's testbed."
        "\nFaults tax both pipelines, but post-processing restarts from "
        "its own dumps for free while in-situ must buy checkpoints."
    )
    return ExperimentResult(
        "ext-faults", "Energy under storage faults", data, text)
