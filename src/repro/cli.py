"""Command-line interface: reproduce paper artifacts from a shell.

Usage::

    python -m repro list                 # available experiment ids
    python -m repro run fig10            # reproduce one artifact
    python -m repro run all              # the whole evaluation section
    python -m repro run table3 --seed 7  # different measurement noise
    python -m repro run fig5 --csv out/  # also dump data series as CSV

The CLI is a thin shell over :mod:`repro.experiments`; everything it
prints comes from the same functions the benchmark harness asserts on.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis.plots import save_csv
from repro.errors import ReproError
from repro.experiments import EXPERIMENTS, Lab, run_experiment
from repro.power.profile import PowerProfile
from repro.rng import DEFAULT_SEED
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Greenness of In-Situ and "
            "Post-Processing Visualization Pipelines' (IPDPSW 2015)"
        ),
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiment ids")

    run = sub.add_parser("run", help="reproduce one artifact (or 'all')")
    run.add_argument("experiment",
                     help="experiment id from 'list', or 'all'")
    run.add_argument("--seed", type=int, default=DEFAULT_SEED,
                     help="measurement-noise seed (default: %(default)s)")
    run.add_argument("--csv", metavar="DIR", default=None,
                     help="also write any power-profile data as CSV here")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="run experiments over N worker processes "
                          "(default: %(default)s, in-process)")
    run.add_argument("--cache", metavar="DIR", default=None,
                     help="persist results here keyed by seed + testbed "
                          "spec; later runs load instead of recomputing")

    report = sub.add_parser(
        "report", help="write a consolidated Markdown replication report")
    report.add_argument("path", help="output file, e.g. out/REPORT.md")
    report.add_argument("--seed", type=int, default=DEFAULT_SEED)

    verify = sub.add_parser(
        "verify", help="check the reproduction against every paper anchor")
    verify.add_argument("--seed", type=int, default=DEFAULT_SEED)

    faults = sub.add_parser(
        "faults", help="run one pipeline under injected storage faults")
    faults.add_argument("--pipeline", choices=("post", "insitu"),
                        default="post",
                        help="pipeline to run (default: %(default)s)")
    faults.add_argument("--case", type=int, default=1, metavar="N",
                        help="case study index (default: %(default)s)")
    faults.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="fault-plan and measurement seed "
                             "(default: %(default)s)")
    faults.add_argument("--transient-rate", type=float, default=0.02,
                        help="per-op transient I/O error probability "
                             "(default: %(default)s)")
    faults.add_argument("--sector-rate", type=float, default=0.005,
                        help="per-read latent-sector-error probability "
                             "(default: %(default)s)")
    faults.add_argument("--bitflip-rate", type=float, default=0.0,
                        help="per-read DRAM bit-flip probability "
                             "(default: %(default)s)")
    faults.add_argument("--fail-at-op", type=int, default=None, metavar="N",
                        help="kill the device at absolute op N "
                             "(default: no device failure)")
    faults.add_argument("--checkpoint-interval", type=int, default=0,
                        metavar="N",
                        help="in-situ checkpoint cadence in iterations "
                             "(default: %(default)s, no checkpoints)")

    serve = sub.add_parser(
        "serve", help="serve experiments over JSON/HTTP from warm workers")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="TCP port (default: 8077)")
    serve.add_argument("--jobs", type=int, default=2, metavar="J",
                       help="concurrent compute workers, each holding "
                            "primed Labs (default: %(default)s)")
    serve.add_argument("--cache", metavar="DIR", default=None,
                       help="persistent disk tier shared with 'repro run "
                            "--cache' (default: memory tier only)")
    serve.add_argument("--mem-entries", type=int, default=None, metavar="N",
                       help="memory-tier LRU entry bound (default: 128)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")

    cluster = sub.add_parser(
        "cluster", help="serve experiments from N shard processes behind "
                        "a consistent-hash router")
    cluster.add_argument("--shards", type=int, default=2, metavar="N",
                         help="shard worker processes (default: %(default)s)")
    cluster.add_argument("--replicas", type=int, default=2, metavar="R",
                         help="serving copies of a hot key, including its "
                              "owner (default: %(default)s)")
    cluster.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: %(default)s)")
    cluster.add_argument("--port", type=int, default=None, metavar="P",
                         help="router TCP port (default: 8077); shards "
                              "bind ephemeral ports behind it")
    cluster.add_argument("--jobs", type=int, default=2, metavar="J",
                         help="compute workers per shard "
                              "(default: %(default)s)")
    cluster.add_argument("--cache", metavar="DIR", default=None,
                         help="disk tier shared by every shard; makes "
                              "hot-key replication a disk promotion "
                              "instead of a recompute")
    cluster.add_argument("--hot-threshold", type=int, default=None,
                         metavar="N", dest="hot_threshold",
                         help="cached hits before a key is replicated "
                              "(default: 8)")
    cluster.add_argument("--queue-depth", type=int, default=None,
                         metavar="N", dest="queue_depth",
                         help="per-shard admission watermark; above it "
                              "requests are shed with 503 + Retry-After "
                              "(default: 64)")
    cluster.add_argument("--verbose", action="store_true",
                         help="log one line per routed HTTP request")

    query = sub.add_parser(
        "query", help="run one experiment on a running 'repro serve' "
                      "or 'repro cluster'")
    query.add_argument("experiment", help="experiment id from 'list'")
    query.add_argument("--seed", type=int, default=DEFAULT_SEED,
                       help="measurement-noise seed (default: %(default)s)")
    query.add_argument("--host", default="127.0.0.1",
                       help="server address (default: %(default)s)")
    query.add_argument("--port", type=int, default=None, metavar="N",
                       help="server port (default: 8077)")
    query.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="reply read timeout in seconds (default: 300)")
    query.add_argument("--retries", type=int, default=None, metavar="N",
                       help="transport attempts before giving up "
                            "(default: 3, deterministic backoff)")
    query.add_argument("--json", action="store_true", dest="as_json",
                       help="print the raw JSON reply instead of the text")

    lint = sub.add_parser(
        "lint", help="run greenlint, the unit/determinism invariant checker")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: the installed repro package)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit machine-readable JSON instead of text "
                           "(alias for --format json)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default=None, dest="format",
                      help="output format: text (default), json, or "
                           "SARIF 2.1.0 for code-host annotation")
    lint.add_argument("--select", metavar="CODES", default=None,
                      help="comma-separated rule codes to run, e.g. GL1,GL3")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero on warnings as well as errors")
    lint.add_argument("--baseline", metavar="FILE", default=None,
                      help="subtract known findings recorded in FILE; "
                           "stale entries fail the run")
    lint.add_argument("--write-baseline", metavar="FILE", default=None,
                      dest="write_baseline",
                      help="record the run's findings as the new baseline "
                           "FILE and exit 0")
    lint.add_argument("--no-cache", action="store_true", dest="no_cache",
                      help="bypass the incremental per-file cache under "
                           "tools/out/lint-cache/")
    return parser


def _run_lint(args) -> int:
    """Handle ``repro lint``: exit 0 clean, 1 findings, 2 usage error."""
    from repro.lint import (apply_baseline, lint_paths, load_baseline,
                            render_json, render_sarif, render_text,
                            write_baseline)

    fmt = args.format or ("json" if args.as_json else "text")
    if args.as_json and args.format not in (None, "json"):
        print("error: --json conflicts with --format "
              f"{args.format}", file=sys.stderr)
        return 2
    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[fmt]
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    select = args.select.split(",") if args.select else None
    if args.no_cache:
        cache_dir = None
    else:
        from repro.lint.cache import DEFAULT_CACHE_DIR

        cache_dir = DEFAULT_CACHE_DIR
    try:
        result = lint_paths(paths, select=select, cache_dir=cache_dir)
        if args.write_baseline:
            n = write_baseline(args.write_baseline, result)
            print(f"wrote {n} finding{'s' if n != 1 else ''} to "
                  f"{args.write_baseline}")
            return 0
        stale = []
        if args.baseline:
            result, stale = apply_baseline(result,
                                           load_baseline(args.baseline))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(renderer(result))
    for code, path, message in stale:
        print(f"stale baseline entry: {path} {code} {message} "
              f"(fixed? regenerate with --write-baseline)",
              file=sys.stderr)
    failing = (result.errors() or stale
               or (args.strict and result.findings))
    return 1 if failing else 0


def _run_faults(args) -> int:
    """Handle ``repro faults``: fault-free vs faulted run of one pipeline."""
    from repro.experiments.faults import run_faulted
    from repro.faults.plan import FaultSpec

    try:
        base, device = run_faulted(
            args.pipeline, FaultSpec(seed=args.seed), seed=args.seed,
            case_index=args.case,
            checkpoint_interval=args.checkpoint_interval,
        )
        spec = FaultSpec(
            seed=args.seed,
            transient_rate=args.transient_rate,
            sector_rate=args.sector_rate,
            bitflip_rate=args.bitflip_rate,
            fail_at_op=args.fail_at_op,
        )
        result, _ = run_faulted(
            args.pipeline, spec, seed=args.seed, case_index=args.case,
            checkpoint_interval=args.checkpoint_interval,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    overhead = (result.energy_j / base.energy_j - 1.0) * 100.0
    print(f"pipeline {args.pipeline}, case {args.case}, seed {args.seed}")
    print(f"  fault-free: {base.energy_j / 1000:10.2f} kJ "
          f"{base.execution_time_s:8.1f} s")
    print(f"  faulted:    {result.energy_j / 1000:10.2f} kJ "
          f"{result.execution_time_s:8.1f} s  ({overhead:+.1f}% energy)")
    print(f"  faults={result.extra.get('io_faults', 0)} "
          f"retries={result.extra.get('io_retries', 0)} "
          f"restarts={result.extra.get('restarts', 0)} "
          f"baseline_ops={device.ops_serviced}")
    return 0


def _run_serve(args) -> int:
    """Handle ``repro serve``: block until interrupted."""
    from repro.service import DEFAULT_PORT, ExperimentService, ServiceConfig
    from repro.service.http import make_server

    port = DEFAULT_PORT if args.port is None else args.port
    config_kwargs = {"jobs": args.jobs, "cache_dir": args.cache}
    if args.mem_entries is not None:
        config_kwargs["mem_entries"] = args.mem_entries
    try:
        service = ExperimentService(ServiceConfig(**config_kwargs))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        server = make_server(args.host, port, service, verbose=args.verbose)
    except (ReproError, OSError) as exc:
        service.close()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.cache is not None:
        # Prime (or restore) the default-seed warm-Lab snapshot now, so
        # worker threads deserialize a ready Lab in milliseconds instead
        # of each paying the cold construction on their first request.
        from repro.experiments.engine import warm_lab
        warm_lab(DEFAULT_SEED, args.cache)
    print(f"serving {len(EXPERIMENTS)} experiments on "
          f"http://{args.host}:{port} (jobs={args.jobs}, "
          f"cache={args.cache or 'memory only'})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


def _run_cluster(args) -> int:
    """Handle ``repro cluster``: shard processes + router, until ^C."""
    from repro.cluster import ClusterConfig, SpawnedCluster
    from repro.service.http import DEFAULT_PORT

    port = DEFAULT_PORT if args.port is None else args.port
    config_kwargs = {"shards": args.shards, "replicas": args.replicas,
                     "jobs": args.jobs, "cache_dir": args.cache,
                     "host": args.host}
    if args.hot_threshold is not None:
        config_kwargs["hot_threshold"] = args.hot_threshold
    if args.queue_depth is not None:
        config_kwargs["max_queue_depth"] = args.queue_depth
    try:
        config = ClusterConfig(**config_kwargs)
        if args.cache is not None:
            # One snapshot primes every shard: they share the cache
            # directory, so each worker restores the warm Lab in
            # milliseconds instead of re-priming per process.
            from repro.experiments.engine import warm_lab
            warm_lab(DEFAULT_SEED, args.cache)
        cluster = SpawnedCluster(config, router_port=port,
                                 verbose=args.verbose)
        cluster.start()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shard_list = ", ".join(f"{info.name}:{info.port}"
                           for info in cluster.shard_infos)
    port = cluster.router_address[1]
    print(f"routing {len(EXPERIMENTS)} experiments on "
          f"http://{args.host}:{port} -> {args.shards} shard(s) "
          f"[{shard_list}] (replicas={args.replicas}, jobs={args.jobs}, "
          f"cache={args.cache or 'per-shard memory only'})")
    try:
        cluster.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down cluster")
    finally:
        cluster.stop()
    return 0


def _run_query(args) -> int:
    """Handle ``repro query``: one request against a running server."""
    import json as _json

    from repro.faults.retry import RetryPolicy
    from repro.service.client import (
        DEFAULT_READ_TIMEOUT_S,
        DEFAULT_RETRY,
        query,
    )
    from repro.service.http import DEFAULT_PORT

    port = DEFAULT_PORT if args.port is None else args.port
    timeout_s = (DEFAULT_READ_TIMEOUT_S if args.timeout is None
                 else args.timeout)
    retry = DEFAULT_RETRY
    if args.retries is not None:
        retry = RetryPolicy(max_attempts=args.retries,
                            backoff_base_s=retry.backoff_base_s,
                            backoff_factor=retry.backoff_factor,
                            jitter_fraction=0.0)
    try:
        reply = query(args.experiment, seed=args.seed,
                      host=args.host, port=port,
                      timeout_s=timeout_s, retry=retry)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(_json.dumps(reply, indent=2, sort_keys=True))
    else:
        print(reply.get("text", ""))
        routed = ""
        if "shard" in reply:  # served by a cluster router
            routed = (f" via {reply['shard']}"
                      f"{' (hot)' if reply.get('hot') else ''}")
        print(f"[{reply.get('source')}{routed} in "
              f"{reply.get('elapsed_ms')} ms, "
              f"digest {str(reply.get('digest'))[:12]}]", file=sys.stderr)
    return 0


def _dump_csv(result, directory: str) -> list[str]:
    """Write any PowerProfile payloads of a result as CSV files."""
    written: list[str] = []
    data = result.data
    profiles: dict[str, PowerProfile] = {}
    if isinstance(data, PowerProfile):
        profiles[result.id] = data
    elif isinstance(data, dict):
        for key, value in data.items():
            if isinstance(value, PowerProfile):
                label = "_".join(str(k) for k in key) if isinstance(key, tuple) else str(key)
                profiles[f"{result.id}_{label}"] = value
    for name, profile in profiles.items():
        path = os.path.join(directory, f"{name}.csv")
        save_csv(path, profile.to_columns())
        written.append(path)
    return written


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for eid in EXPERIMENTS:
            doc = (EXPERIMENTS[eid].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{eid:14s} {summary}")
        return 0

    if args.command == "lint":
        return _run_lint(args)

    if args.command == "faults":
        return _run_faults(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "cluster":
        return _run_cluster(args)

    if args.command == "query":
        return _run_query(args)

    if args.command == "verify":
        from repro.experiments.verification import (
            render_verification,
            run_verification,
        )

        checks = run_verification(Lab(seed=args.seed))
        print(render_verification(checks))
        return 0 if all(c.passed for c in checks) else 1

    if args.command == "report":
        from repro.experiments.report import write_report

        try:
            path = write_report(args.path, Lab(seed=args.seed))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {path}")
        return 0

    # command == "run"
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        if args.jobs > 1 or args.cache:
            from repro.experiments.engine import run_experiments

            report = run_experiments(ids, seed=args.seed, jobs=args.jobs,
                                     cache_dir=args.cache)
            results = list(report.results.values())
            if args.cache:
                print(f"cache: {len(report.cache_hits)} hit(s), "
                      f"{len(report.cache_misses)} miss(es)")
                print()
        else:
            lab = Lab(seed=args.seed)
            results = (run_experiment(eid, lab) for eid in ids)
        for result in results:
            print(result.text)
            print()
            if args.csv:
                for path in _dump_csv(result, args.csv):
                    print(f"wrote {path}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
