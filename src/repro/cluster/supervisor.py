"""Cluster lifecycles: wire shards and a router into one serving tier.

Two deployment shapes share all the routing/replication machinery:

* :class:`LocalCluster` hosts every shard server on a thread inside the
  current process.  Requests still cross real loopback HTTP, so tests
  and the ``check.sh`` smoke stage exercise the exact wire protocol,
  but computes share one GIL — it measures correctness, not scaling.
* :class:`SpawnedCluster` forks one OS process per shard
  (:func:`~repro.cluster.shard.run_shard`), so cold computes run on
  separate cores.  ``repro cluster`` and the scaling benchmark use it.

Both bind ephemeral ports, wait until every shard answers ``/health``,
and put a :class:`~repro.cluster.router.Router` (with its background
health prober) in front.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass

from repro.cluster.admission import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_RETRY_AFTER_S,
    AdmissionPolicy,
)
from repro.cluster.router import (
    DEFAULT_HOT_THRESHOLD,
    Router,
    RouterConfig,
    RouterHTTPServer,
    ShardInfo,
    make_router_server,
)
from repro.cluster.shard import ShardHTTPServer, make_shard_server, shard_names
from repro.errors import ConfigError, ServiceError
from repro.service.core import ExperimentService, ServiceConfig
from repro.units import MINUTE


@dataclass(frozen=True)
class ClusterConfig:
    """One knob set for a whole cluster (CLI surface of ``repro cluster``)."""

    shards: int = 2
    replicas: int = 2
    jobs: int = 2
    cache_dir: str | None = None
    hot_threshold: int = DEFAULT_HOT_THRESHOLD
    max_queue_depth: int = DEFAULT_QUEUE_DEPTH
    retry_after_s: float = DEFAULT_RETRY_AFTER_S
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {self.replicas}")

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(jobs=self.jobs, cache_dir=self.cache_dir)

    def admission_policy(self) -> AdmissionPolicy:
        return AdmissionPolicy(max_queue_depth=self.max_queue_depth,
                               retry_after_s=self.retry_after_s)

    def router_config(self) -> RouterConfig:
        return RouterConfig(replicas=self.replicas,
                            hot_threshold=self.hot_threshold)


class LocalCluster:
    """Shards on threads, router in front — all inside this process."""

    def __init__(self, config: ClusterConfig | None = None,
                 router_port: int = 0) -> None:
        self.config = config or ClusterConfig()
        self._router_port = router_port
        self._shard_servers: dict[str, ShardHTTPServer] = {}
        self._threads: list[threading.Thread] = []
        self.router: Router | None = None
        self.router_server: RouterHTTPServer | None = None

    def start(self) -> "LocalCluster":
        host = self.config.host
        infos = []
        try:
            for name in shard_names(self.config.shards):
                server = make_shard_server(
                    host, 0, name, config=self.config.service_config(),
                    admission=self.config.admission_policy())
                self._shard_servers[name] = server
                self._serve_on_thread(server, f"repro-{name}")
                infos.append(ShardInfo(name, host, server.port))
            self.router = Router(infos, self.config.router_config())
            self.router.start_health_checks()
            self.router_server = make_router_server(host, self._router_port,
                                                    self.router)
            self._serve_on_thread(self.router_server, "repro-router")
        except Exception:
            # Partial start: close the shards (and their serve threads)
            # that did come up before propagating the failure.
            self.stop()
            raise
        return self

    def _serve_on_thread(self, server: ShardHTTPServer | RouterHTTPServer,
                         name: str) -> None:
        thread = threading.Thread(target=server.serve_forever, name=name,
                                  daemon=True)
        thread.start()
        self._threads.append(thread)

    # -- test hooks ---------------------------------------------------------------

    def service(self, name: str) -> ExperimentService:
        """Direct access to one shard's in-process service (assertions)."""
        return self._shard_servers[name].service

    def shard_port(self, name: str) -> int:
        return self._shard_servers[name].port

    @property
    def router_address(self) -> tuple[str, int]:
        if self.router_server is None:
            raise ServiceError("cluster is not started")
        return self.config.host, self.router_server.port

    def stop_shard(self, name: str) -> None:
        """Kill one shard (keeps its entry in the ring: tests fail-over)."""
        server = self._shard_servers[name]
        server.shutdown()
        server.server_close()
        server.service.close(wait=False)

    def stop(self) -> None:
        if self.router is not None:
            self.router.close()
        if self.router_server is not None:
            self.router_server.shutdown()
            self.router_server.server_close()
        for server in self._shard_servers.values():
            try:
                server.shutdown()
                server.server_close()
            except OSError:  # pragma: no cover - already stopped
                pass
            server.service.close(wait=False)
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class SpawnedCluster:
    """Shards as forked OS processes, router in this process.

    The shards inherit a primed interpreter via fork (spawn elsewhere),
    bind ephemeral ports, and report them over pipes; the parent builds
    the router once every shard is reachable.  ``stop()`` terminates
    the shard processes — their caches are process-local (memory) or
    shared and durable (the disk tier), so nothing needs draining.
    """

    #: How long a forked shard may take to bind and report its port.
    STARTUP_TIMEOUT_S = MINUTE

    def __init__(self, config: ClusterConfig | None = None,
                 router_port: int = 0, verbose: bool = False) -> None:
        self.config = config or ClusterConfig()
        self._router_port = router_port
        self._verbose = verbose
        self._processes: dict[str, multiprocessing.process.BaseProcess] = {}
        self._infos: list[ShardInfo] = []
        self.router: Router | None = None
        self.router_server: RouterHTTPServer | None = None
        self._router_thread: threading.Thread | None = None

    def start(self) -> "SpawnedCluster":
        from repro.cluster.shard import run_shard

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        host = self.config.host
        pending = []
        try:
            for name in shard_names(self.config.shards):
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                try:
                    process = ctx.Process(
                        target=run_shard,
                        args=(child_conn, host, name,
                              self.config.service_config(),
                              self.config.admission_policy(), self._verbose),
                        name=f"repro-{name}", daemon=True)
                    process.start()
                finally:
                    # The parent's copy of the child end must close even
                    # when the fork itself fails, or EOF never reaches
                    # conn.poll below.
                    child_conn.close()
                self._processes[name] = process
                pending.append((name, parent_conn))
            for name, conn in pending:
                if not conn.poll(self.STARTUP_TIMEOUT_S):
                    raise ServiceError(f"shard {name} did not start in "
                                       f"{self.STARTUP_TIMEOUT_S:.0f}s")
                report = conn.recv()
                if "error" in report:
                    raise ServiceError(
                        f"shard {name} failed: {report['error']}")
                self._infos.append(ShardInfo(name, host, report["port"]))
        except Exception:
            # Partial start: close every pipe and terminate the shard
            # processes that did come up before propagating the failure.
            for _name, conn in pending:
                conn.close()
            self.stop()
            raise
        for _name, conn in pending:
            conn.close()
        self.router = Router(self._infos, self.config.router_config())
        self._wait_until_healthy()
        self.router.start_health_checks()
        self.router_server = make_router_server(host, self._router_port,
                                                self.router,
                                                verbose=self._verbose)
        return self

    def _wait_until_healthy(self) -> None:
        deadline = time.monotonic() + self.STARTUP_TIMEOUT_S
        assert self.router is not None
        while True:
            healthy = self.router.probe_now()
            if all(healthy.values()):
                return
            if time.monotonic() > deadline:
                dead = sorted(n for n, ok in healthy.items() if not ok)
                self.stop()
                raise ServiceError(f"shards never became healthy: {dead}")
            time.sleep(0.05)

    def serve_in_background(self) -> tuple[str, int]:
        """Run the router endpoint on a thread; its (host, port)."""
        if self.router_server is None:
            raise ServiceError("cluster is not started")
        if self._router_thread is None:
            self._router_thread = threading.Thread(
                target=self.router_server.serve_forever,
                name="repro-router", daemon=True)
            self._router_thread.start()
        return self.config.host, self.router_server.port

    def serve_forever(self) -> None:
        """Run the router endpoint on the calling thread (the CLI)."""
        if self.router_server is None:
            raise ServiceError("cluster is not started")
        self.router_server.serve_forever()

    @property
    def router_address(self) -> tuple[str, int]:
        if self.router_server is None:
            raise ServiceError("cluster is not started")
        return self.config.host, self.router_server.port

    @property
    def shard_infos(self) -> list[ShardInfo]:
        return list(self._infos)

    def terminate_shard(self, name: str) -> None:
        """Kill one shard process (fail-over experiments)."""
        process = self._processes[name]
        process.terminate()
        process.join(timeout=10)

    def stop(self) -> None:
        if self.router is not None:
            self.router.close()
        if self.router_server is not None:
            self.router_server.shutdown()
            self.router_server.server_close()
            self.router_server = None
        if self._router_thread is not None:
            self._router_thread.join(timeout=5)
            self._router_thread = None
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        for process in self._processes.values():
            process.join(timeout=10)
        self._processes.clear()

    def __enter__(self) -> "SpawnedCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
