"""Sharded, replicated experiment serving: one address, N warm shards.

``repro serve`` made one node answer repeat traffic at memory speed;
this package makes the serving tier horizontal.  A front
:class:`~repro.cluster.router.Router` consistent-hashes the engine's
sha256 cache keys onto shard workers (each a full
:class:`~repro.service.core.ExperimentService`), health-checks and
routes around dead shards, replicates hot keys across R shards with
coherent invalidation, and propagates per-shard admission control
(bounded queues, 503 + ``Retry-After`` shedding) as client
back-pressure.  ``repro cluster`` runs it from the CLI;
``benchmarks/bench_serve.py`` records the cluster-vs-single-node
scaling curve.
"""

from repro.cluster.admission import AdmissionGate, AdmissionPolicy
from repro.cluster.ring import HashRing
from repro.cluster.router import (
    Router,
    RouterConfig,
    RouterHTTPServer,
    ShardInfo,
    make_router_server,
)
from repro.cluster.shard import (
    ShardHTTPServer,
    make_shard_server,
    run_shard,
    shard_names,
)
from repro.cluster.supervisor import ClusterConfig, LocalCluster, SpawnedCluster

__all__ = [
    "AdmissionGate",
    "AdmissionPolicy",
    "ClusterConfig",
    "HashRing",
    "LocalCluster",
    "Router",
    "RouterConfig",
    "RouterHTTPServer",
    "ShardHTTPServer",
    "ShardInfo",
    "SpawnedCluster",
    "make_router_server",
    "make_shard_server",
    "run_shard",
    "shard_names",
]
