"""Admission control: bounded per-shard queues with load shedding.

A shard's capacity is its worker pool plus a bounded queue of waiting
requests.  :class:`AdmissionGate` tracks the number of admitted,
not-yet-completed ``/run`` requests; once the depth reaches the
configured watermark the shard *sheds* — it replies ``503`` with a
``Retry-After`` hint instead of queueing unboundedly, which is what
keeps an overloaded in-transit tier's latency bounded instead of
collapsing (the Catalyst-ADIOS2 lesson: explicit admission limits, not
merely parallelism).

The gate is deliberately tiny and lock-guarded; the HTTP handler brackets
each ``/run`` with ``admit()`` / ``release()`` and the stats endpoint
snapshots the counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigError

#: Default queue watermark: a few times the default worker count.
DEFAULT_QUEUE_DEPTH = 64
#: Default shed hint: long enough for a queued compute to drain.
DEFAULT_RETRY_AFTER_S = 0.05


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-shard admission knobs.

    ``max_queue_depth`` is the watermark: the number of concurrently
    admitted ``/run`` requests (executing plus queued) beyond which new
    arrivals are shed.  ``retry_after_s`` is the hint sent with the 503.
    """

    max_queue_depth: int = DEFAULT_QUEUE_DEPTH
    retry_after_s: float = DEFAULT_RETRY_AFTER_S

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.retry_after_s <= 0:
            raise ConfigError(
                f"retry_after_s must be positive, got {self.retry_after_s}")


class AdmissionGate:
    """Thread-safe depth counter enforcing an :class:`AdmissionPolicy`."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self._lock = threading.Lock()
        self._depth = 0  # gl: guarded-by=_lock
        self._peak_depth = 0  # gl: guarded-by=_lock
        self._admitted = 0  # gl: guarded-by=_lock
        self._shed = 0  # gl: guarded-by=_lock

    def admit(self) -> bool:
        """Try to enter the queue; False means the request is shed."""
        with self._lock:
            if self._depth >= self.policy.max_queue_depth:
                self._shed += 1
                return False
            self._depth += 1
            self._admitted += 1
            if self._depth > self._peak_depth:
                self._peak_depth = self._depth
            return True

    def release(self) -> None:
        """Leave the queue (pair with every successful :meth:`admit`)."""
        with self._lock:
            if self._depth <= 0:
                raise ConfigError("release() without a matching admit()")
            self._depth -= 1

    @property
    def depth(self) -> int:
        """Currently admitted, not-yet-completed requests."""
        with self._lock:
            return self._depth

    def stats(self) -> dict[str, int | float]:
        """Counter snapshot for the shard's /stats endpoint."""
        with self._lock:
            return {
                "depth": self._depth,
                "peak_depth": self._peak_depth,
                "admitted": self._admitted,
                "shed": self._shed,
                "max_queue_depth": self.policy.max_queue_depth,
                "retry_after_s": self.policy.retry_after_s,
            }
