"""Consistent hashing: place cache keys on shards, stably.

The router hashes the engine's sha256 :func:`~repro.experiments.engine.cache_key`
onto a ring of virtual nodes (``vnodes`` points per shard, each placed
by sha256 of ``"{shard}#{replica}"``).  A key's **preference list** is
the sequence of distinct shards met walking clockwise from the key's
point — the first entry owns the key, the rest are its fail-over /
replication targets in a fixed, deterministic order.

Consistent hashing is what makes the cluster elastic *and* cache-warm:
removing a shard (crash, drain) remaps only the keys that shard owned —
every other shard keeps serving its working set from its hot tier —
and virtual nodes keep the per-shard key share close to uniform.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from repro.errors import ConfigError

#: Virtual nodes per shard: enough to hold the worst shard's share
#: within a few percent of uniform for small clusters.
DEFAULT_VNODES = 128


def _point(material: str) -> int:
    """Ring coordinate of one label (64 bits of its sha256)."""
    return int.from_bytes(
        hashlib.sha256(material.encode()).digest()[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over named shards."""

    def __init__(self, shard_names: Sequence[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if not shard_names:
            raise ConfigError("a hash ring needs at least one shard")
        if len(set(shard_names)) != len(shard_names):
            raise ConfigError(f"duplicate shard names: {list(shard_names)}")
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.shard_names = tuple(shard_names)
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for name in shard_names:
            points.extend((_point(f"{name}#{i}"), name)
                          for i in range(vnodes))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [name for _, name in points]

    def preference(self, key: str, n: int | None = None,
                   alive: Iterable[str] | None = None) -> list[str]:
        """The first ``n`` distinct shards clockwise from ``key``.

        ``alive`` restricts the walk to healthy shards — dead ones are
        skipped, so their keys land on the next live successor (the
        "route around dead shards" behaviour).  Returns fewer than ``n``
        entries when fewer distinct live shards exist.
        """
        eligible = set(self.shard_names if alive is None else alive)
        eligible &= set(self.shard_names)
        want = len(eligible) if n is None else min(n, len(eligible))
        start = bisect.bisect_left(self._points, _point(key))
        chosen: list[str] = []
        total = len(self._points)
        for offset in range(total):
            owner = self._owners[(start + offset) % total]
            if owner in eligible and owner not in chosen:
                chosen.append(owner)
                if len(chosen) >= want:
                    break
        return chosen

    def primary(self, key: str,
                alive: Iterable[str] | None = None) -> str | None:
        """The live shard owning ``key`` (None when none are alive)."""
        owners = self.preference(key, n=1, alive=alive)
        return owners[0] if owners else None

    def share(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (balance diagnostics)."""
        counts = {name: 0 for name in self.shard_names}
        for key in keys:
            owner = self.primary(key)
            if owner is not None:
                counts[owner] += 1
        return counts
