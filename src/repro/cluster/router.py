"""The front router: one address in front of N shard workers.

The router speaks the same ``/run`` protocol as a single ``repro
serve`` endpoint — clients cannot tell a cluster from one node — and
adds the cluster behaviours on top:

* **placement** — the engine's sha256
  :func:`~repro.experiments.engine.cache_key` is consistent-hashed onto
  the shard ring (:class:`~repro.cluster.ring.HashRing`), so each key
  has one warm home and cache hit rates survive membership changes;
* **health** — a background prober marks shards dead/alive; forwarding
  failures mark a shard dead immediately and the ring walks route
  around it (keys fail over to their ring successor);
* **retries** — forwarding re-uses
  :class:`~repro.faults.retry.RetryPolicy`'s bounded
  deterministic-backoff schedule across the fail-over candidates;
* **hot-key replication** — keys whose *cached* hit count crosses
  ``hot_threshold`` are promoted: requests rotate across R replicas
  (ring successors), which warm themselves from the shared disk tier,
  so one scorching key stops serializing on a single shard.  Demoted or
  invalidated keys have their replica copies dropped (coherent
  invalidation via each shard's ``/invalidate``);
* **admission propagation** — a shard's 503 shed is passed through to
  the client with its ``Retry-After`` hint rather than spilled onto
  other shards (overload must reach the client as back-pressure, not
  amplify as retries);
* **observability** — ``/stats`` aggregates per-shard tiers, queue
  depths, and shed counts next to the router's own counters.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from repro.cluster.ring import HashRing
from repro.cluster.shard import shard_stats_totals
from repro.errors import ConfigError, ReproError, ServiceError
from repro.experiments.engine import cache_key
from repro.experiments.registry import EXPERIMENTS
from repro.faults.retry import RetryPolicy
from repro.rng import DEFAULT_SEED
from repro.service.client import ServiceClient
from repro.service.http import ClosingHTTPServer, ServiceRequestHandler
from repro.units import KiB
from repro.version import __version__

#: Forwarding schedule: up to three candidates, 20 ms / 40 ms pauses.
DEFAULT_FORWARD_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.02,
                                    backoff_factor=2.0, jitter_fraction=0.0)
#: Promotion threshold: cached hits before a key is replicated.
DEFAULT_HOT_THRESHOLD = 8
#: Bound on tracked keys; evicting a hot key demotes it coherently.
DEFAULT_HOT_KEYS_MAX = KiB


@dataclass(frozen=True)
class ShardInfo:
    """Address book entry for one shard worker."""

    name: str
    host: str
    port: int


@dataclass(frozen=True)
class RouterConfig:
    """Routing, replication, and health knobs of the front router."""

    replicas: int = 2
    hot_threshold: int = DEFAULT_HOT_THRESHOLD
    hot_keys_max: int = DEFAULT_HOT_KEYS_MAX
    health_interval_s: float = 0.5
    health_timeout_s: float = 2.0
    connect_timeout_s: float = 2.0
    read_timeout_s: float = 300.0
    forward_retry: RetryPolicy = field(default=DEFAULT_FORWARD_RETRY)

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {self.replicas}")
        if self.hot_threshold < 1:
            raise ConfigError(
                f"hot_threshold must be >= 1, got {self.hot_threshold}")
        if self.hot_keys_max < 1:
            raise ConfigError(
                f"hot_keys_max must be >= 1, got {self.hot_keys_max}")
        for knob in ("health_interval_s", "health_timeout_s",
                     "connect_timeout_s", "read_timeout_s"):
            if getattr(self, knob) <= 0:
                raise ConfigError(f"{knob} must be positive")


class _KeyHeat:
    """Mutable per-key promotion state (guarded by the tracker's lock)."""

    __slots__ = ("experiment_id", "seed", "cached_hits", "rotation")

    def __init__(self, experiment_id: str, seed: int) -> None:
        self.experiment_id = experiment_id
        self.seed = seed
        self.cached_hits = 0
        self.rotation = 0


class HotKeyTracker:
    """LRU-bounded per-key hit accounting driving promotion/demotion.

    Only *cached* replies (memory/disk tier) heat a key — a compute or
    a coalesced wait never does.  That rule keeps a cold-key storm from
    promoting mid-flight: until the first result exists somewhere, every
    request routes to the key's single owner, whose single-flight layer
    guarantees exactly one compute cluster-wide.
    """

    def __init__(self, threshold: int = DEFAULT_HOT_THRESHOLD,
                 max_keys: int = DEFAULT_HOT_KEYS_MAX) -> None:
        self.threshold = threshold
        self.max_keys = max_keys
        self._lock = threading.Lock()
        self._heat: OrderedDict[str, _KeyHeat] = OrderedDict()  # gl: guarded-by=_lock

    def is_hot(self, key: str) -> bool:
        with self._lock:
            heat = self._heat.get(key)
            return heat is not None and heat.cached_hits >= self.threshold

    def next_slot(self, key: str) -> int:
        """Round-robin counter spreading a hot key over its replicas."""
        with self._lock:
            heat = self._heat.get(key)
            if heat is None:
                return 0
            heat.rotation += 1
            return heat.rotation

    def record(self, key: str, experiment_id: str, seed: int,
               cached: bool) -> tuple[bool, list[tuple[str, int]]]:
        """Account one reply.

        Returns ``(promoted, demoted)``: whether this hit crossed the
        promotion threshold, and the (experiment, seed) pairs of any
        hot keys evicted by the LRU bound (their replicas must be
        invalidated to stay coherent).
        """
        with self._lock:
            heat = self._heat.get(key)
            if heat is None:
                heat = self._heat[key] = _KeyHeat(experiment_id, seed)
            else:
                self._heat.move_to_end(key)
            promoted = False
            if cached:
                heat.cached_hits += 1
                promoted = heat.cached_hits == self.threshold
            demoted: list[tuple[str, int]] = []
            while len(self._heat) > self.max_keys:
                _, evicted = self._heat.popitem(last=False)
                if evicted.cached_hits >= self.threshold:
                    demoted.append((evicted.experiment_id, evicted.seed))
            return promoted, demoted

    def reset(self, key: str) -> None:
        """Forget a key (after an explicit invalidation)."""
        with self._lock:
            self._heat.pop(key, None)

    def hot_count(self) -> int:
        with self._lock:
            return sum(1 for heat in self._heat.values()
                       if heat.cached_hits >= self.threshold)


class Router:
    """Route, replicate, and shed across a fixed set of shards."""

    def __init__(self, shards: list[ShardInfo],
                 config: RouterConfig | None = None) -> None:
        if not shards:
            raise ConfigError("a router needs at least one shard")
        self.config = config or RouterConfig()
        self._shards = {info.name: info for info in shards}
        if len(self._shards) != len(shards):
            raise ConfigError("duplicate shard names")
        self._ring = HashRing(list(self._shards))
        self._tracker = HotKeyTracker(self.config.hot_threshold,
                                      self.config.hot_keys_max)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._healthy = {name: True for name in self._shards}  # gl: guarded-by=_lock
        self._routed = {name: 0 for name in self._shards}  # gl: guarded-by=_lock
        self._requests = 0  # gl: guarded-by=_lock
        self._failovers = 0  # gl: guarded-by=_lock
        self._sheds = 0  # gl: guarded-by=_lock
        self._promotions = 0  # gl: guarded-by=_lock
        self._demotions = 0  # gl: guarded-by=_lock
        self._invalidations = 0  # gl: guarded-by=_lock
        self._no_shard_errors = 0  # gl: guarded-by=_lock
        self._started_monotonic = time.monotonic()
        self._stop = threading.Event()
        self._health_thread: threading.Thread | None = None

    # -- per-thread shard clients -------------------------------------------------

    def _client(self, name: str) -> ServiceClient:
        """This thread's keep-alive client for one shard."""
        clients: dict[str, ServiceClient] | None = getattr(
            self._local, "clients", None)
        if clients is None:
            clients = self._local.clients = {}
        client = clients.get(name)
        if client is None:
            info = self._shards[name]
            client = clients[name] = ServiceClient(
                info.host, info.port,
                connect_timeout_s=self.config.connect_timeout_s,
                read_timeout_s=self.config.read_timeout_s,
                # One attempt per hop: the router drives its own
                # fail-over loop across shards instead of hammering one.
                retry=RetryPolicy(max_attempts=1))
        return client

    # -- health -------------------------------------------------------------------

    def _alive(self) -> list[str]:
        with self._lock:
            return [name for name, ok in self._healthy.items() if ok]

    def _set_health(self, name: str, ok: bool) -> None:
        with self._lock:
            self._healthy[name] = ok

    def healthy(self) -> dict[str, bool]:
        """Health map snapshot (shard name -> alive)."""
        with self._lock:
            return dict(self._healthy)

    def start_health_checks(self) -> None:
        """Launch the background liveness prober (idempotent)."""
        if self._health_thread is not None:
            return
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-router-health", daemon=True)
        self._health_thread.start()

    def _health_loop(self) -> None:
        probes = {
            name: ServiceClient(
                info.host, info.port,
                connect_timeout_s=self.config.health_timeout_s,
                read_timeout_s=self.config.health_timeout_s,
                retry=RetryPolicy(max_attempts=1))
            for name, info in self._shards.items()
        }
        while not self._stop.wait(self.config.health_interval_s):
            for name, probe in probes.items():
                try:
                    probe.health()
                except ServiceError as exc:
                    # An HTTP answer (even an error) proves liveness;
                    # only transport failures mean the shard is gone.
                    self._set_health(name, exc.status is not None)
                else:
                    self._set_health(name, True)
        for probe in probes.values():
            probe.close()

    def probe_now(self) -> dict[str, bool]:
        """One synchronous probe round (tests and CLI startup waits)."""
        for name, info in self._shards.items():
            probe = ServiceClient(
                info.host, info.port,
                connect_timeout_s=self.config.health_timeout_s,
                read_timeout_s=self.config.health_timeout_s,
                retry=RetryPolicy(max_attempts=1))
            try:
                probe.health()
            except ServiceError as exc:
                self._set_health(name, exc.status is not None)
            else:
                self._set_health(name, True)
            finally:
                probe.close()
        return self.healthy()

    def close(self) -> None:
        """Stop the health prober."""
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5)
            self._health_thread = None

    # -- routing ------------------------------------------------------------------

    def _candidates(self, key: str, hot: bool) -> list[str]:
        """Forwarding order: owner (or rotated replica set), then successors."""
        prefs = self._ring.preference(key, alive=self._alive())
        if not prefs:
            return []
        if hot and self.config.replicas > 1:
            k = min(self.config.replicas, len(prefs))
            slot = self._tracker.next_slot(key) % k
            return prefs[slot:k] + prefs[:slot] + prefs[k:]
        return prefs

    # gl: idempotent — _sheds/_failovers deliberately count per-attempt
    # events; the forwarded /run itself is content-addressed on the shard.
    def route(self, experiment_id: str, seed: int = DEFAULT_SEED) -> dict:
        """Forward one /run to the right shard; the enriched reply dict.

        Raises :class:`~repro.errors.ServiceError` — with ``status=503``
        and a ``Retry-After`` hint when the target shed, with
        ``status=None`` when every candidate was unreachable.
        """
        key = cache_key(experiment_id, seed)
        with self._lock:
            self._requests += 1
        hot = self._tracker.is_hot(key)
        candidates = self._candidates(key, hot)
        if not candidates:
            with self._lock:
                self._no_shard_errors += 1
            raise ServiceError("no healthy shards")
        policy = self.config.forward_retry
        n_replicas = min(self.config.replicas, len(candidates)) if hot else 1
        attempts = min(len(candidates), max(policy.max_attempts, n_replicas))
        last_exc: ServiceError | None = None
        for attempt, name in enumerate(candidates[:attempts], start=1):
            try:
                reply = self._client(name).run(experiment_id, seed)
            except ServiceError as exc:
                last_exc = exc
                if exc.status == 503:
                    # The shard shed under load.  Another *replica* of a
                    # hot key may absorb the request; spilling a cold
                    # key onto non-owners would amplify the overload,
                    # so back-pressure propagates to the client instead.
                    with self._lock:
                        self._sheds += 1
                    if attempt < n_replicas:
                        continue
                    raise
                if exc.status is not None:
                    # The shard answered with a request-level error
                    # (unknown experiment, bad seed): not a shard fault.
                    raise
                self._set_health(name, False)
                with self._lock:
                    self._failovers += 1
                if attempt < attempts:
                    # Deterministic pause before the next candidate.
                    time.sleep(policy.backoff_s(attempt, jitter_u=0.5))
                continue
            return self._account(reply, key, experiment_id, seed, name,
                                 hot, attempt)
        raise ServiceError(
            f"no shard could serve {experiment_id!r} "
            f"(tried {attempts} candidate(s)): {last_exc}") from last_exc

    # gl: idempotent — runs once, on the success path that exits the
    # failover loop; its counters never see a retried attempt.
    def _account(self, reply: dict, key: str, experiment_id: str, seed: int,
                 shard: str, hot: bool, attempts: int) -> dict:
        """Book-keep a successful reply; enrich it with routing fields."""
        with self._lock:
            self._routed[shard] += 1
        cached = reply.get("source") in ("memory", "disk")
        promoted, demoted = self._tracker.record(key, experiment_id, seed,
                                                 cached)
        if promoted:
            with self._lock:
                self._promotions += 1
            self._replicate(key, experiment_id, seed)
        if demoted:
            with self._lock:
                self._demotions += len(demoted)
            self._demote(demoted)
        reply = dict(reply)
        reply["shard"] = shard
        reply["hot"] = hot or promoted
        reply["attempts"] = attempts
        return reply

    # -- replication & invalidation -----------------------------------------------

    def _replica_names(self, key: str) -> list[str]:
        """The hot key's replica set beyond its owner (live shards)."""
        prefs = self._ring.preference(key, alive=self._alive())
        return prefs[1:min(self.config.replicas, len(prefs))]

    def _replicate(self, key: str, experiment_id: str, seed: int) -> None:
        """Warm a freshly promoted key onto its replicas (background).

        Each replica pulls the result through its own service — a disk
        hit when the shards share a cache directory, a byte-identical
        recompute otherwise — and promotes it into its memory tier.
        """
        replicas = self._replica_names(key)
        if not replicas:
            return

        def warm() -> None:
            for name in replicas:
                try:
                    self._client(name).run(experiment_id, seed)
                except ServiceError:
                    # Best-effort: an unwarmed replica just computes (or
                    # disk-hits) lazily on its first routed request.
                    pass

        threading.Thread(target=warm, name="repro-router-replicate",
                         daemon=True).start()

    def _demote(self, demoted: list[tuple[str, int]]) -> None:
        """Drop replica copies of keys that fell out of the hot set."""
        def drop() -> None:
            for experiment_id, seed in demoted:
                key = cache_key(experiment_id, seed)
                for name in self._replica_names(key):
                    try:
                        self._client(name).invalidate(experiment_id, seed)
                    except ServiceError:
                        pass

        threading.Thread(target=drop, name="repro-router-demote",
                         daemon=True).start()

    def invalidate(self, experiment_id: str,
                   seed: int = DEFAULT_SEED) -> dict:
        """Coherently drop one key cluster-wide.

        Fans ``/invalidate`` out to every live shard (covering owner,
        replicas, and the shared disk entry) and resets the key's heat
        so it re-earns promotion.
        """
        key = cache_key(experiment_id, seed)
        outcomes: dict[str, bool] = {}
        for name in self._alive():
            try:
                reply = self._client(name).invalidate(experiment_id, seed)
            except ServiceError:
                outcomes[name] = False
            else:
                outcomes[name] = bool(reply.get("invalidated"))
        self._tracker.reset(key)
        with self._lock:
            self._invalidations += 1
        return {
            "experiment": experiment_id,
            "seed": seed,
            "invalidated": any(outcomes.values()),
            "shards": outcomes,
        }

    # -- observability ------------------------------------------------------------

    def shard_stats(self) -> dict[str, dict]:
        """Per-shard /stats payloads (an error entry for dead shards)."""
        per_shard: dict[str, dict] = {}
        for name in self._shards:
            try:
                per_shard[name] = self._client(name).stats()
            except ServiceError as exc:
                per_shard[name] = {"error": str(exc)}
        return per_shard

    def stats(self) -> dict:
        """Cross-shard aggregation plus the router's own counters."""
        per_shard = self.shard_stats()
        with self._lock:
            router = {
                "requests": self._requests,
                "routed": dict(self._routed),
                "failovers": self._failovers,
                "sheds": self._sheds,
                "promotions": self._promotions,
                "demotions": self._demotions,
                "invalidations": self._invalidations,
                "no_shard_errors": self._no_shard_errors,
                "healthy": dict(self._healthy),
                "hot_keys": self._tracker.hot_count(),
                "replicas": self.config.replicas,
                "hot_threshold": self.config.hot_threshold,
                "uptime_s": time.monotonic() - self._started_monotonic,
            }
        return {
            "router": router,
            "shards": per_shard,
            "totals": shard_stats_totals(per_shard),
        }

    @property
    def shards(self) -> list[ShardInfo]:
        return list(self._shards.values())


class RouterRequestHandler(ServiceRequestHandler):
    """The serve protocol fronted by a Router instead of a service."""

    server_version = f"repro-router/{__version__}"

    @property
    def _router(self) -> Router:
        return self.server.router

    def _handle_run(self) -> None:
        try:
            experiment_id, seed = self._run_params()
            reply = self._router.route(experiment_id, seed)
        except ConfigError as exc:
            self._error(400, str(exc))
        except ServiceError as exc:
            if exc.status == 503:
                hint = exc.retry_after_s
                headers = ({"Retry-After": f"{hint:g}"}
                           if hint is not None else None)
                self._reply(503, {"error": str(exc),
                                  "retry_after_s": hint}, headers=headers)
            elif exc.status is not None:
                self._error(exc.status, str(exc))
            else:
                self._error(502, str(exc))
        except ReproError as exc:
            self._error(500, str(exc))
        else:
            self._reply(200, reply)

    def _handle_invalidate(self) -> None:
        try:
            experiment_id, seed = self._run_params()
            outcome = self._router.invalidate(experiment_id, seed)
        except ConfigError as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(500, str(exc))
        else:
            self._reply(200, outcome)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        route = self._route()
        if route == "/health":
            healthy = self._router.healthy()
            self._reply(200, {
                "status": "ok" if any(healthy.values()) else "degraded",
                "version": __version__,
                "role": "router",
                "healthy": healthy,
            })
        elif route == "/stats":
            self._reply(200, self._router.stats())
        elif route == "/status":
            self._reply(200, {
                "version": __version__,
                "role": "router",
                "experiments": list(EXPERIMENTS),
                "shards": [{"name": s.name, "host": s.host, "port": s.port}
                           for s in self._router.shards],
                "replicas": self._router.config.replicas,
                "hot_threshold": self._router.config.hot_threshold,
                "healthy": self._router.healthy(),
            })
        elif route == "/run":
            self._handle_run()
        else:
            self._error(404, f"unknown route {route!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        route = self._route()
        if route == "/run":
            self._handle_run()
        elif route == "/invalidate":
            self._handle_invalidate()
        else:
            self._error(404, f"unknown route {route!r}")

    def _route(self) -> str:
        return urlsplit(self.path).path.rstrip("/") or "/"


class RouterHTTPServer(ClosingHTTPServer):
    """ThreadingHTTPServer that owns a Router."""

    def __init__(self, address: tuple[str, int], router: Router,
                 verbose: bool = False) -> None:
        super().__init__(address, RouterRequestHandler)
        self.router = router
        self.verbose = verbose


def make_router_server(host: str, port: int, router: Router,
                       verbose: bool = False) -> RouterHTTPServer:
    """Bind (but do not start) the router endpoint."""
    return RouterHTTPServer((host, port), router, verbose=verbose)
