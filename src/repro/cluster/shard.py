"""A shard worker: one :class:`ExperimentService` behind admission control.

A shard is the cluster's unit of capacity — the existing warm-Lab +
two-tier-cache + single-flight serving stack
(:class:`~repro.service.core.ExperimentService`), exposed over the same
JSON/HTTP protocol as ``repro serve`` plus two cluster-facing additions:

* **admission control** — every ``/run`` passes an
  :class:`~repro.cluster.admission.AdmissionGate`; past the queue
  watermark the shard sheds with ``503`` and a ``Retry-After`` hint
  instead of queueing unboundedly;
* **coherent invalidation** — ``POST /invalidate`` drops one key from
  both cache tiers, which the router fans out cluster-wide so
  replicated hot keys never serve a dropped entry.

Shards sharing one ``cache_dir`` share the engine's content-addressed
disk store (atomic tmp+rename writes make this multi-process safe) and
its warm-Lab snapshots, so a hot key replicated to R shards is computed
**once** cluster-wide: the owner computes and stores, replicas promote
the disk entry into their memory tiers.

:func:`run_shard` is the subprocess entry ``repro cluster`` forks one
process per shard through — separate processes, not threads, so cold
computes scale with cores instead of serializing on the GIL.
"""

from __future__ import annotations

import multiprocessing.connection
from typing import Any
from urllib.parse import urlsplit

from repro.cluster.admission import AdmissionGate, AdmissionPolicy
from repro.errors import ConfigError, ReproError
from repro.service.core import ExperimentService, ServiceConfig
from repro.service.http import (
    MAX_BODY_BYTES,
    ExperimentHTTPServer,
    ServiceRequestHandler,
)
from repro.version import __version__


class ShardRequestHandler(ServiceRequestHandler):
    """The serve protocol plus admission control and /invalidate."""

    server_version = f"repro-shard/{__version__}"

    @property
    def _gate(self) -> AdmissionGate:
        return self.server.gate

    @property
    def _shard_name(self) -> str:
        return self.server.shard_name

    def _drain_body(self) -> None:
        """Consume an unparsed request body so keep-alive stays in sync.

        Shedding replies before ``_run_params`` ever touches ``rfile``;
        leaving the POST body unread would make the *next* request on
        this keep-alive connection parse those bytes as a request line.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self.close_connection = True
        elif length:
            self.rfile.read(length)

    def _handle_run(self) -> None:
        gate = self._gate
        if not gate.admit():
            self._drain_body()
            hint = gate.policy.retry_after_s
            self._reply(503, {
                "error": f"shard {self._shard_name} overloaded "
                         f"(queue depth >= {gate.policy.max_queue_depth})",
                "shard": self._shard_name,
                "retry_after_s": hint,
            }, headers={"Retry-After": f"{hint:g}"})
            return
        try:
            super()._handle_run()
        finally:
            gate.release()

    def _handle_invalidate(self) -> None:
        try:
            experiment_id, seed = self._run_params()
            dropped = self._service.invalidate(experiment_id, seed)
        except ConfigError as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(500, str(exc))
        else:
            self._reply(200, {
                "invalidated": dropped,
                "experiment": experiment_id,
                "seed": seed,
                "shard": self._shard_name,
            })

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        route = self._route()
        if route == "/stats":
            stats = self._service.stats()
            stats["shard"] = self._shard_name
            stats["admission"] = self._gate.stats()
            self._reply(200, stats)
        elif route == "/health":
            self._reply(200, {
                "status": "ok",
                "version": __version__,
                "shard": self._shard_name,
                "depth": self._gate.depth,
            })
        else:
            super().do_GET()

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        if self._route() == "/invalidate":
            self._handle_invalidate()
        else:
            super().do_POST()

    def _route(self) -> str:
        return urlsplit(self.path).path.rstrip("/") or "/"


class ShardHTTPServer(ExperimentHTTPServer):
    """An ExperimentHTTPServer that also owns a name and a gate."""

    def __init__(self, address: tuple[str, int], service: ExperimentService,
                 name: str, gate: AdmissionGate,
                 verbose: bool = False) -> None:
        super().__init__(address, service, verbose=verbose,
                         handler=ShardRequestHandler)
        self.shard_name = name
        self.gate = gate


def make_shard_server(host: str, port: int, name: str,
                      service: ExperimentService | None = None,
                      config: ServiceConfig | None = None,
                      admission: AdmissionPolicy | None = None,
                      verbose: bool = False) -> ShardHTTPServer:
    """Bind (but do not start) one shard endpoint."""
    if service is None:
        service = ExperimentService(config)
    return ShardHTTPServer((host, port), service, name,
                           AdmissionGate(admission), verbose=verbose)


def run_shard(conn: multiprocessing.connection.Connection, host: str,
              name: str, service_config: ServiceConfig,
              admission: AdmissionPolicy,
              verbose: bool = False) -> None:
    """Subprocess entry: bind an ephemeral port, report it, serve forever.

    The parent learns the bound port over ``conn`` and stops the shard
    by terminating the process; the OS reclaims the socket.  Any bind
    failure is reported over the pipe instead of a port number.
    """
    try:
        service = ExperimentService(service_config)
    except ReproError as exc:
        conn.send({"error": str(exc)})
        conn.close()
        return
    try:
        server = make_shard_server(host, 0, name, service=service,
                                   admission=admission, verbose=verbose)
    except (ReproError, OSError) as exc:
        service.close(wait=False)
        conn.send({"error": str(exc)})
        conn.close()
        return
    conn.send({"port": server.port})
    conn.close()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        service.close(wait=False)


def shard_names(n: int) -> list[str]:
    """Canonical shard naming used by the ring, CLI, and stats."""
    if n < 1:
        raise ConfigError(f"a cluster needs at least one shard, got {n}")
    return [f"shard-{i}" for i in range(n)]


def shard_stats_totals(per_shard: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """Cluster-wide tier totals from per-shard /stats payloads.

    Shards that failed to answer (their entry carries ``"error"``) are
    skipped; the router reports them in its health map instead.
    """
    totals = {
        "requests": 0, "computed": 0, "disk_hits": 0, "memory_hits": 0,
        "coalesced": 0, "errors": 0, "invalidations": 0,
        "queue_depth": 0, "shed": 0,
    }
    for stats in per_shard.values():
        if "error" in stats:
            continue
        totals["requests"] += stats.get("requests", 0)
        totals["computed"] += stats.get("computed", 0)
        totals["disk_hits"] += stats.get("disk_hits", 0)
        totals["coalesced"] += stats.get("coalesced", 0)
        totals["errors"] += stats.get("errors", 0)
        totals["invalidations"] += stats.get("invalidations", 0)
        totals["memory_hits"] += stats.get("memory", {}).get("hits", 0)
        admission = stats.get("admission", {})
        totals["queue_depth"] += admission.get("depth", 0)
        totals["shed"] += admission.get("shed", 0)
    return totals
