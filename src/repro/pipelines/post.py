"""The traditional post-processing visualization pipeline (Fig 2a).

Phase 1 — *simulate + write*: run the solver; on every I/O iteration,
serialize the grid into a chunked container, write it through the page
cache, ``fsync``, and ``drop_caches`` (the paper's methodology for honest
disk I/O).

Phase 2 — *read + visualize*: for every dumped timestep, drop caches,
read the container cold, CRC-validate, reassemble the grid, optionally
verify it bit-for-bit against what was written, render a frame, and store
the image (buffered; image output is not the measured I/O load).
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.machine.node import Node
from repro.pipelines.base import (
    CHUNK_BYTES,
    PipelineConfig,
    RunResult,
    VerificationRecord,
    make_storage,
    record_stage,
    render_pipeline_frame,
)
from repro.pipelines.science import cached_solver
from repro.rng import RngRegistry
from repro.storage.reader import DataReader
from repro.storage.writer import DataWriter
from repro.trace.timeline import Timeline


class PostProcessingPipeline:
    """Simulate-to-disk, then read-back-and-render."""

    name = "post-processing"

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def run(self, node: Node, rng: RngRegistry | None = None) -> RunResult:
        """Execute the pipeline on ``node``; returns the unmetered RunResult."""
        rng = rng or RngRegistry()
        solver = cached_solver(rng, self.config.grid_scale,
                               self.config.solver_sub_steps)
        fs = make_storage(node, rng)
        writer = DataWriter(fs, chunk_bytes=CHUNK_BYTES,
                            sync_each=True, drop_caches_each=True)
        reader = DataReader(fs, drop_caches_first=True)
        timeline = Timeline()
        stages = self.config.stage_table
        result = RunResult(self.name, self.config.case, timeline)
        written_checksums: dict[int, int] = {}

        case = self.config.case
        io_iterations = set(case.io_iterations())

        # -- phase 1: simulate + write ------------------------------------------
        timeline.mark("simulate+write")
        for iteration in range(1, case.iterations + 1):
            solver.step(1)
            record_stage(timeline, "simulation", table=stages,
                         work_scale=self.config.sim_work_scale,
                         iteration=iteration)
            if iteration in io_iterations:
                report = writer.write_timestep(
                    solver.grid, iteration, physical_time=solver.time
                )
                if self.config.verify_data:
                    written_checksums[iteration] = hash(solver.grid.to_bytes())
                result.data_bytes_written += report.nbytes
                record_stage(
                    timeline, "nnwrite", table=stages,
                    disk_write_bytes=report.nbytes,
                    iteration=iteration, file=report.name,
                )

        # -- phase 2: read + visualize -------------------------------------------
        timeline.mark("read+visualize")
        for timestep in reader.available_timesteps():
            grid, report = reader.read_grid(timestep)
            result.data_bytes_read += report.nbytes
            record_stage(
                timeline, "nnread", table=stages,
                disk_read_bytes=report.nbytes,
                iteration=timestep, file=report.name,
            )
            if self.config.verify_data:
                result.verification.grids_checked += 1
                if hash(grid.to_bytes()) == written_checksums.get(timestep):
                    result.verification.grids_matched += 1
            _frame, encoded = render_pipeline_frame(grid.data, self.config)
            result.images_rendered += 1
            result.image_bytes += len(encoded)
            fs.write(f"frame{timestep:04d}.{self.config.image_format}", encoded)
            record_stage(timeline, "visualization", table=stages, iteration=timestep)

        if self.config.verify_data and not result.verification.ok:
            raise PipelineError(
                f"data corruption: {result.verification.grids_matched}/"
                f"{result.verification.grids_checked} grids round-tripped"
            )
        result.extra["files_written"] = len(writer.timesteps_written)
        result.extra["final_mean_temperature"] = solver.grid.mean()
        return result
