"""The traditional post-processing visualization pipeline (Fig 2a).

Phase 1 — *simulate + write*: run the solver; on every I/O iteration,
serialize the grid into a chunked container, write it through the page
cache, ``fsync``, and ``drop_caches`` (the paper's methodology for honest
disk I/O).

Phase 2 — *read + visualize*: for every dumped timestep, drop caches,
read the container cold, CRC-validate, reassemble the grid, optionally
verify it bit-for-bit against what was written, render a frame, and store
the image (buffered; image output is not the measured I/O load).

Resilience: the synced timestep dumps double as checkpoints.  When an
injected device failure escapes the retry layer, the run raises
:class:`~repro.errors.PipelineInterrupted` carrying an
:class:`~repro.pipelines.base.InterruptState`; a resilient runner repairs
the device and calls :meth:`PostProcessingPipeline.run` again with
``resume=state`` to continue from the last durable dump (phase 1) or the
last visualized timestep (phase 2).
"""

from __future__ import annotations

from repro.errors import (
    FaultError,
    PipelineError,
    PipelineInterrupted,
    RetryExhaustedError,
)
from repro.fingerprint import field_fingerprint
from repro.machine.node import Node
from repro.pipelines.base import (
    CHUNK_BYTES,
    InterruptState,
    PipelineConfig,
    RecoveryTracker,
    RunResult,
    VerificationRecord,
    make_storage,
    record_stage,
    render_pipeline_frame,
)
from repro.pipelines.science import cached_solver
from repro.rng import RngRegistry
from repro.storage.reader import DataReader
from repro.storage.writer import DataWriter
from repro.trace.timeline import Timeline


class PostProcessingPipeline:
    """Simulate-to-disk, then read-back-and-render."""

    name = "post-processing"

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def _interrupt(self, exc: Exception, phase: str, iteration: int,
                   fs, result: RunResult, checksums: dict[int, int]) -> None:
        """Package the interrupt state and re-raise as PipelineInterrupted."""
        resume_bytes = 0
        if phase == "write" and iteration > 0:
            name = f"ts{iteration:04d}.dat"
            if fs.exists(name):
                resume_bytes = fs.size(name)
        state = InterruptState(
            pipeline=self.name, phase=phase, iteration=iteration,
            fs=fs, result=result, checksums=checksums,
            resume_bytes=resume_bytes,
        )
        raise PipelineInterrupted(
            f"{self.name} interrupted in phase {phase!r} "
            f"(last durable iteration {iteration}): {exc}",
            state=state,
        ) from exc

    def run(self, node: Node, rng: RngRegistry | None = None,
            resume: InterruptState | None = None) -> RunResult:
        """Execute the pipeline on ``node``; returns the unmetered RunResult."""
        rng = rng or RngRegistry()
        solver = cached_solver(rng, self.config.grid_scale,
                               self.config.solver_sub_steps)
        if resume is not None:
            fs = resume.fs
            written_checksums = resume.checksums
            resume_phase = resume.phase
            durable = resume.iteration
        else:
            fs = make_storage(node, rng, retry=self.config.retry_policy)
            written_checksums = {}
            resume_phase = "write"
            durable = 0
        writer = DataWriter(fs, chunk_bytes=CHUNK_BYTES,
                            sync_each=True, drop_caches_each=True)
        reader = DataReader(fs, drop_caches_first=True)
        timeline = Timeline()
        stages = self.config.stage_table
        result = RunResult(self.name, self.config.case, timeline)
        tracker = RecoveryTracker(fs.queue, timeline)

        case = self.config.case
        io_iterations = set(case.io_iterations())
        visualized = 0

        if resume_phase == "write":
            # -- phase 1: simulate + write ----------------------------------------
            timeline.mark("simulate+write")
            if durable:
                # Restore solver state at the last durable dump: replayed
                # from the trajectory cache (the restart span already
                # charged the checkpoint read).
                solver.step(durable)
            for iteration in range(durable + 1, case.iterations + 1):
                solver.step(1)
                record_stage(timeline, "simulation", table=stages,
                             work_scale=self.config.sim_work_scale,
                             iteration=iteration)
                if iteration in io_iterations:
                    try:
                        report = writer.write_timestep(
                            solver.grid, iteration, physical_time=solver.time
                        )
                    except (FaultError, RetryExhaustedError) as exc:
                        tracker.poll(iteration=iteration)
                        name = writer.filename(iteration)
                        if fs.exists(name):
                            # Committed but not durably synced: discard so
                            # the restarted run re-dumps this timestep.
                            fs.delete(name)
                        self._interrupt(exc, "write", durable, fs, result,
                                        written_checksums)
                    tracker.poll(iteration=iteration)
                    if self.config.verify_data:
                        written_checksums[iteration] = field_fingerprint(solver.grid.data)
                    result.data_bytes_written += report.nbytes
                    record_stage(
                        timeline, "nnwrite", table=stages,
                        disk_write_bytes=report.nbytes,
                        iteration=iteration, file=report.name,
                    )
                    durable = iteration
        else:
            # Phase 1 completed before the interrupt: replay the physics
            # (cached, instantaneous) for the final-state metric and skip
            # already-visualized timesteps.
            solver.step(case.iterations)
            visualized = resume.iteration

        # -- phase 2: read + visualize -------------------------------------------
        timeline.mark("read+visualize")
        for timestep in reader.available_timesteps():
            if timestep <= visualized:
                continue
            try:
                grid, report = reader.read_grid(timestep)
            except (FaultError, RetryExhaustedError) as exc:
                tracker.poll(iteration=timestep)
                self._interrupt(exc, "read", visualized, fs, result,
                                written_checksums)
            tracker.poll(iteration=timestep)
            result.data_bytes_read += report.nbytes
            record_stage(
                timeline, "nnread", table=stages,
                disk_read_bytes=report.nbytes,
                iteration=timestep, file=report.name,
            )
            if self.config.verify_data:
                result.verification.grids_checked += 1
                if field_fingerprint(grid.data) == written_checksums.get(timestep):
                    result.verification.grids_matched += 1
            _frame, encoded = render_pipeline_frame(grid.data, self.config)
            result.images_rendered += 1
            result.image_bytes += len(encoded)
            frame_name = f"frame{timestep:04d}.{self.config.image_format}"
            if fs.exists(frame_name):
                # A restarted run re-renders the frame the interrupt ate.
                fs.delete(frame_name)
            try:
                fs.write(frame_name, encoded)
            except (FaultError, RetryExhaustedError) as exc:
                tracker.poll(iteration=timestep)
                self._interrupt(exc, "read", visualized, fs, result,
                                written_checksums)
            tracker.poll(iteration=timestep)
            record_stage(timeline, "visualization", table=stages, iteration=timestep)
            visualized = timestep

        if self.config.verify_data and not result.verification.ok:
            raise PipelineError(
                f"data corruption: {result.verification.grids_matched}/"
                f"{result.verification.grids_checked} grids round-tripped"
            )
        result.extra["files_written"] = sum(
            1 for name in fs.files if name.startswith(writer.prefix)
        )
        result.extra["final_mean_temperature"] = solver.grid.mean()
        result.extra["io_faults"] = fs.queue.stats.n_faults
        result.extra["io_retries"] = fs.queue.stats.n_retries
        return result
