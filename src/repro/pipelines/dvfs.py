"""Frequency scaling during I/O phases (Sec V.C's suggested technique).

The paper's savings breakdown observes that the static component
dominates and suggests that "other techniques such as frequency scaling
and data rearrangement may help".  This module implements the frequency
half of that sentence: rewrite a recorded timeline so that selected
(I/O-bound) stages run at a lowered core clock.

Two modeling decisions, both deliberate:

* **Durations are unchanged.**  The rewritten stages are disk-bound; to
  first order their wall time does not depend on the core clock (the
  1.5 %-utilized CPU is waiting on sync barriers, not computing).
* **Only the dynamic CPU term shrinks** (cubically, through the
  activity's ``cpu_freq_ratio``).  Package idle power — uncore, caches,
  leakage — is untouched, which is exactly why the ablation bench finds
  DVFS recovers only a sliver of the post-processing energy: the paper's
  point that the bill is dominated by the *static* floor.
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.trace.timeline import Timeline

#: Stages that are I/O-bound in the post-processing pipeline.
IO_STAGES = ("nnwrite", "nnread", "idle")


def apply_dvfs(timeline: Timeline, stage_ratios: dict[str, float]) -> Timeline:
    """Return a copy of ``timeline`` with per-stage frequency ratios.

    ``stage_ratios`` maps stage label -> frequency ratio in [0.1, 1].
    Stages not listed keep their recorded ratio.
    """
    for stage, ratio in stage_ratios.items():
        if not 0.1 <= ratio <= 1.0:
            raise PipelineError(
                f"frequency ratio for {stage!r} must be in [0.1, 1], got {ratio}"
            )
    out = Timeline(t0=timeline.t0)
    for span in timeline:
        activity = span.activity
        if span.stage in stage_ratios:
            activity = activity.replace(cpu_freq_ratio=stage_ratios[span.stage])
        out.record(span.stage, span.duration, activity, **dict(span.meta))
    for marker in timeline.markers:
        out.add_marker(marker)  # same times; durations unchanged
    return out


def io_phase_dvfs(timeline: Timeline, ratio: float = 0.5) -> Timeline:
    """Convenience: lower the clock during every I/O-bound stage."""
    return apply_dvfs(timeline, {stage: ratio for stage in IO_STAGES})
