"""Cinema-style in-situ image database (related-work extension).

Ahrens et al. [12] — the paper's own group — answer in-situ's loss of
exploratory analysis with an *image-based* approach: render many
parameter combinations per timestep into an image database, so post-hoc
"exploration" browses pre-rendered images instead of recomputing from
raw data.

This pipeline implements that idea on the reproduction's renderer: per
visualization event it renders the full cross product of a
:class:`CinemaSpec` (colormaps x contour-level sets x value windows),
stores every frame in the image database with a structured key, and
writes a queryable index.  The cost model is honest about what the
database costs: each extra parameter combination is a real render at
visualization-stage power.

The extension bench finds the crossover the paper's numbers imply: with
the proxy's cheap dumps, an image database of more than ~3 parameter
combinations per timestep costs *more* energy than just keeping the raw
data — in-situ cinema pays off only when dumps are expensive relative
to renders.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import PipelineError
from repro.calibration import STAGE
from repro.machine.node import Node
from repro.pipelines.base import (
    PipelineConfig,
    RunResult,
    make_solver,
    make_storage,
    record_stage,
)
from repro.rng import RngRegistry
from repro.trace.timeline import Timeline
from repro.viz.colormap import COLORMAPS
from repro.viz.render import render_field, render_with_contours


@dataclass(frozen=True)
class CinemaSpec:
    """Parameter space rendered per timestep."""

    colormaps: tuple[str, ...] = ("heat",)
    contour_sets: tuple[tuple[float, ...], ...] = ((),)
    value_windows: tuple[tuple[float, float] | None, ...] = (None,)

    def __post_init__(self) -> None:
        if not self.colormaps or not self.contour_sets or not self.value_windows:
            raise PipelineError("cinema spec dimensions cannot be empty")
        for name in self.colormaps:
            if name not in COLORMAPS:
                raise PipelineError(f"unknown colormap {name!r}")

    @property
    def combinations(self) -> list[tuple[str, tuple[float, ...], tuple[float, float] | None]]:
        """The full (colormap, contour set, value window) cross product."""
        return list(itertools.product(
            self.colormaps, self.contour_sets, self.value_windows,
        ))

    @property
    def n_combinations(self) -> int:
        """Frames rendered per visualization event."""
        return (len(self.colormaps) * len(self.contour_sets)
                * len(self.value_windows))


def default_spec(n_combinations: int) -> CinemaSpec:
    """A spec with roughly ``n_combinations`` frames per timestep."""
    if n_combinations < 1:
        raise PipelineError("need at least one combination")
    maps = ("heat", "viridis-like", "gray", "coolwarm")[: min(4, n_combinations)]
    remaining = max(1, n_combinations // len(maps))
    contour_sets: list[tuple[float, ...]] = [()]
    level_pool = (25.0, 30.0, 40.0, 55.0, 75.0, 100.0, 150.0)
    for i in range(remaining - 1):
        contour_sets.append((level_pool[i % len(level_pool)],))
    return CinemaSpec(colormaps=maps, contour_sets=tuple(contour_sets))


class CinemaPipeline:
    """In-situ rendering of a whole parameter space per timestep."""

    name = "cinema"

    def __init__(self, config: PipelineConfig,
                 spec: CinemaSpec | None = None) -> None:
        self.config = config
        self.spec = spec or CinemaSpec()

    def run(self, node: Node, rng: RngRegistry | None = None) -> RunResult:
        """Execute the pipeline on ``node``; returns the unmetered RunResult."""
        rng = rng or RngRegistry()
        solver = make_solver(rng, self.config.grid_scale,
                             self.config.solver_sub_steps)
        fs = make_storage(node, rng)
        timeline = Timeline()
        result = RunResult(self.name, self.config.case, timeline)
        combos = self.spec.combinations
        vis_cal = STAGE["visualization"]
        index_rows: list[str] = ["timestep,colormap,contours,window,file"]

        case = self.config.case
        io_iterations = set(case.io_iterations())

        timeline.mark("simulate+render-database")
        for iteration in range(1, case.iterations + 1):
            solver.step(1)
            record_stage(timeline, "simulation",
                         work_scale=self.config.sim_work_scale,
                         iteration=iteration)
            if iteration not in io_iterations:
                continue
            batch_bytes = 0
            for k, (cmap, levels, window) in enumerate(combos):
                vmin, vmax = window if window else (None, None)
                if levels:
                    frame = render_with_contours(
                        solver.grid.data, levels, colormap=cmap,
                        height=self.config.render_height,
                        width=self.config.render_width,
                    )
                else:
                    frame = render_field(
                        solver.grid.data, colormap=cmap,
                        height=self.config.render_height,
                        width=self.config.render_width,
                        vmin=vmin, vmax=vmax,
                    )
                encoded = frame.image.to_png(self.config.frame_png_level)
                name = f"db/ts{iteration:04d}_k{k:03d}.png"
                fs.write(name, encoded)
                batch_bytes += len(encoded)
                result.images_rendered += 1
                index_rows.append(
                    f"{iteration},{cmap},{'|'.join(map(str, levels))},"
                    f"{window},{name}"
                )
            result.image_bytes += batch_bytes
            # One render stage per combination, at visualization power.
            timeline.record(
                "visualization", vis_cal.duration_s * len(combos),
                vis_cal.activity(), iteration=iteration, frames=len(combos),
            )
            record_stage(timeline, "coupling",
                         disk_write_bytes=batch_bytes, iteration=iteration)

        fs.write("db/index.csv", "\n".join(index_rows).encode())
        if self.config.verify_data:
            self._verify(fs, result)
        result.extra["n_combinations"] = len(combos)
        result.extra["database_files"] = result.images_rendered
        result.extra["final_mean_temperature"] = solver.grid.mean()
        return result

    def _verify(self, fs, result: RunResult) -> None:
        """The database must be complete and every frame decodable."""
        from repro.viz.image import decode_png_size

        index, _ = fs.read("db/index.csv")
        rows = index.decode().splitlines()[1:]
        expected = len(self.config.case.io_iterations()) * self.spec.n_combinations
        if len(rows) != expected:
            raise PipelineError(
                f"index lists {len(rows)} frames, expected {expected}"
            )
        for row in rows:
            name = row.rsplit(",", 1)[-1]
            blob, _ = fs.read(name)
            size = decode_png_size(blob)
            result.verification.grids_checked += 1
            if size == (self.config.render_height, self.config.render_width):
                result.verification.grids_matched += 1
        if not result.verification.ok:
            raise PipelineError("image database contains undecodable frames")
