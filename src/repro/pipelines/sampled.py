"""Hybrid in-situ pipeline with data sampling (Sec V.C's third option).

Between the two extremes the paper measures — post-processing (full
exploratory power, full I/O energy) and in-situ (no raw data retained) —
sits the sampling hybrid of Woodring et al. [21]: visualize in situ *and*
persist a decimated copy of every dumped timestep, so coarse exploratory
analysis stays possible at a fraction of the bytes.

Energy shape this pipeline exposes (see the sampling ablation bench):
at the paper's 128 KiB dumps the write event is barrier-dominated, so
sampling saves almost nothing — consistent with the paper's finding that
only ~9 % of the pipeline energy is dynamic.  On volume-scaled dumps the
transfer term dominates and sampling's byte reduction translates into
energy directly.  The quality cost is measured, not assumed: every run
carries the reconstruction RMSE of its own sampled data.
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.fingerprint import field_fingerprint
from repro.machine.node import Node
from repro.pipelines.base import (
    CHUNK_BYTES,
    PipelineConfig,
    RunResult,
    make_solver,
    make_storage,
    record_stage,
)
from repro.rng import RngRegistry
from repro.sim.grid import Grid2D
from repro.storage.reader import DataReader
from repro.storage.sampling import sample_field
from repro.storage.writer import DataWriter
from repro.trace.timeline import Timeline
from repro.viz.render import render_field, render_with_contours


class SamplingInSituPipeline:
    """In-situ rendering plus decimated timestep dumps."""

    name = "in-situ+sampling"

    def __init__(self, config: PipelineConfig, sampling_factor: int = 4) -> None:
        if sampling_factor < 2:
            raise PipelineError(
                "sampling_factor must be >= 2 (1 would be full post-processing I/O)"
            )
        self.config = config
        self.sampling_factor = sampling_factor

    def run(self, node: Node, rng: RngRegistry | None = None) -> RunResult:
        """Execute the pipeline on ``node``; returns the unmetered RunResult."""
        rng = rng or RngRegistry()
        solver = make_solver(rng, self.config.grid_scale,
                             self.config.solver_sub_steps)
        fs = make_storage(node, rng)
        writer = DataWriter(fs, prefix="smp", chunk_bytes=CHUNK_BYTES,
                            sync_each=True, drop_caches_each=True)
        timeline = Timeline()
        stages = self.config.stage_table
        result = RunResult(self.name, self.config.case, timeline)
        sampling_reports = []
        written_checksums: dict[int, int] = {}

        case = self.config.case
        io_iterations = set(case.io_iterations())

        timeline.mark("simulate+visualize+sample")
        for iteration in range(1, case.iterations + 1):
            solver.step(1)
            record_stage(timeline, "simulation", table=stages,
                         work_scale=self.config.sim_work_scale,
                         iteration=iteration)
            if iteration not in io_iterations:
                continue
            # In-situ rendering, exactly as the plain in-situ pipeline.
            frame = self._render(solver.grid.data)
            result.images_rendered += 1
            record_stage(timeline, "visualization", table=stages, iteration=iteration)
            encoded = self._encode(frame)
            result.image_bytes += len(encoded)
            fs.write(f"frame{iteration:04d}.{self.config.image_format}", encoded)
            record_stage(timeline, "coupling", table=stages,
                         disk_write_bytes=len(encoded), iteration=iteration)
            # The sampled dump: decimate, quantify the loss, persist.
            sampled, report = sample_field(solver.grid.data,
                                           self.sampling_factor)
            sampling_reports.append(report)
            sampled_grid = Grid2D(*sampled.shape)
            sampled_grid.data[:] = sampled
            wreport = writer.write_timestep(sampled_grid, iteration,
                                            physical_time=solver.time)
            written_checksums[iteration] = field_fingerprint(sampled_grid.data)
            result.data_bytes_written += wreport.nbytes
            record_stage(timeline, "nnwrite", table=stages,
                         disk_write_bytes=wreport.nbytes,
                         iteration=iteration, file=wreport.name, sampled=True)

        if self.config.verify_data:
            self._verify(fs, written_checksums, result)

        result.extra["sampling_factor"] = self.sampling_factor
        result.extra["sampling_reports"] = sampling_reports
        if sampling_reports:
            result.extra["mean_nrmse"] = (
                sum(r.nrmse for r in sampling_reports) / len(sampling_reports)
            )
            result.extra["byte_fraction"] = sampling_reports[-1].byte_fraction
        result.extra["final_mean_temperature"] = solver.grid.mean()
        return result

    def _verify(self, fs, written_checksums: dict[int, int],
                result: RunResult) -> None:
        """Out-of-band check: sampled dumps round-trip bit-exactly.

        Sampling is lossy against the full field by design, but the
        *stored sample itself* must survive the storage stack unchanged.
        """
        reader = DataReader(fs, prefix="smp", drop_caches_first=False)
        for timestep in reader.available_timesteps():
            grid, _ = reader.read_grid(timestep)
            result.verification.grids_checked += 1
            if field_fingerprint(grid.data) == written_checksums.get(timestep):
                result.verification.grids_matched += 1
        if not result.verification.ok:
            raise PipelineError("sampled dump failed to round-trip")

    # -- helpers --------------------------------------------------------------------

    def _render(self, field):
        if self.config.contour_levels:
            return render_with_contours(
                field, self.config.contour_levels,
                height=self.config.render_height,
                width=self.config.render_width,
            )
        return render_field(
            field,
            height=self.config.render_height,
            width=self.config.render_width,
        )

    def _encode(self, frame) -> bytes:
        if self.config.image_format == "png":
            return frame.image.to_png(self.config.frame_png_level)
        return frame.image.to_ppm()
