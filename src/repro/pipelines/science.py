"""Trajectory cache for the proxy application's physics.

The solver's evolution is a pure function of (science seed, grid scale,
sub-steps): every stochastic input is a named RNG stream and the FTCS
update is deterministic.  Pipelines, however, re-integrate the same
trajectory over and over — the post-processing and in-situ runs of one
case study simulate identical physics by construction, and every figure
that re-runs a case study repeats it again.

This module removes that redundancy without changing a single produced
number.  The first solver created for a key runs live and records a
snapshot of the field at each timestep the pipeline actually observes
(its I/O iterations and the final state).  Subsequent solvers for the
same key replay those snapshots; if a replay is asked for a timestep
that was never recorded, it transparently materializes a fresh live
solver, fast-forwards it, and serves (and records) the real field.

Only pipelines that treat the solver as step-and-observe (``step``,
``grid``, ``time``) use the cache; pipelines that mutate solver state
directly (the multi-node decomposition) keep building live solvers.
"""

from __future__ import annotations

import numpy as np

from repro.calibration import SUB_STEPS
from repro.errors import SimulationError
from repro.pipelines.base import make_solver
from repro.rng import RngRegistry
from repro.sim.grid import Grid2D
from repro.units import MiB

#: Snapshot budget per process; past it, new trajectories fall back to
#: live integration (correctness is unaffected, only reuse).
SNAPSHOT_BUDGET_BYTES = 512 * MiB


class _Trajectory:
    """Recorded snapshots of one deterministic solver evolution."""

    def __init__(self, seed: int, grid_scale: int, sub_steps: int,
                 grid: Grid2D, dt: float) -> None:
        self.seed = seed
        self.grid_scale = grid_scale
        self.sub_steps = sub_steps
        self.nx, self.ny = grid.nx, grid.ny
        self.lx, self.ly = grid.lx, grid.ly
        self.dt = dt
        #: steps_taken -> immutable field copy at that point.
        self.snapshots: dict[int, np.ndarray] = {}

    def grid_at(self, steps: int) -> Grid2D | None:
        """A read-only Grid2D view of the recorded field, or None."""
        snap = self.snapshots.get(steps)
        if snap is None:
            return None
        grid = Grid2D.from_array(snap, self.lx, self.ly)
        return grid


class ScienceCache:
    """Per-process store of solver trajectories, keyed by their inputs."""

    def __init__(self, budget_bytes: int = SNAPSHOT_BUDGET_BYTES) -> None:
        self.budget_bytes = budget_bytes
        self._spent_bytes = 0
        self._trajectories: dict[tuple[int, int, int], _Trajectory] = {}

    def record(self, trajectory: _Trajectory, steps: int,
               data: np.ndarray) -> None:
        """Store a snapshot of ``data`` at ``steps`` if the budget allows."""
        if steps in trajectory.snapshots:
            return
        if self._spent_bytes + data.nbytes > self.budget_bytes:
            return
        snap = data.copy()
        snap.flags.writeable = False
        trajectory.snapshots[steps] = snap
        self._spent_bytes += snap.nbytes

    def solver_for(self, rng: RngRegistry, grid_scale: int = 1,
                   sub_steps: int = SUB_STEPS):
        """A solver for the keyed trajectory: recording on first use,
        replaying afterwards."""
        key = (rng.seed, int(grid_scale), int(sub_steps))
        trajectory = self._trajectories.get(key)
        if trajectory is None:
            solver = make_solver(rng, grid_scale, sub_steps)
            trajectory = _Trajectory(rng.seed, grid_scale, sub_steps,
                                     solver.grid, solver.dt)
            self._trajectories[key] = trajectory
            return _RecordingSolver(solver, trajectory, self)
        return _ReplaySolver(trajectory, self)

    def clear(self) -> None:
        """Drop every recorded trajectory (mainly for tests)."""
        self._trajectories.clear()
        self._spent_bytes = 0


class _RecordingSolver:
    """Wraps a live solver; snapshots the field whenever it is observed."""

    def __init__(self, solver, trajectory: _Trajectory,
                 cache: ScienceCache) -> None:
        self._solver = solver
        self._trajectory = trajectory
        self._cache = cache

    def step(self, n: int = 1) -> None:
        self._solver.step(n)

    @property
    def grid(self) -> Grid2D:
        grid = self._solver.grid
        self._cache.record(self._trajectory, self._solver.steps_taken,
                           grid.data)
        return grid

    def __getattr__(self, name: str):
        return getattr(self._solver, name)


class _ReplaySolver:
    """Serves recorded snapshots; falls back to a live solver on a miss.

    The fallback integrates the same key from scratch, so everything it
    produces is bit-identical to the recording run — the cache is purely
    an execution-time optimization.
    """

    def __init__(self, trajectory: _Trajectory, cache: ScienceCache) -> None:
        self._trajectory = trajectory
        self._cache = cache
        self._steps = 0
        self._live = None
        self._grid_cache: tuple[int, Grid2D | None] = (-1, None)

    def step(self, n: int = 1) -> None:
        if n < 0:
            raise SimulationError("cannot step backwards")
        self._steps += n
        if self._live is not None and n:
            self._live.step(n)

    @property
    def steps_taken(self) -> int:
        return self._steps

    @property
    def time(self) -> float:
        t = self._trajectory
        return self._steps * t.sub_steps * t.dt

    @property
    def grid(self) -> Grid2D:
        cached_steps, cached_grid = self._grid_cache
        if cached_steps == self._steps and cached_grid is not None:
            return cached_grid
        grid = self._trajectory.grid_at(self._steps)
        if grid is None:
            live = self._materialize()
            grid = live.grid
            self._cache.record(self._trajectory, self._steps, grid.data)
        self._grid_cache = (self._steps, grid)
        return grid

    def _materialize(self):
        if self._live is None:
            t = self._trajectory
            self._live = make_solver(RngRegistry(t.seed), t.grid_scale,
                                     t.sub_steps)
            if self._steps:
                self._live.step(self._steps)
        return self._live

    def __getattr__(self, name: str):
        return getattr(self._materialize(), name)


#: The process-wide cache all step-and-observe pipelines share.
_CACHE = ScienceCache()


def cached_solver(rng: RngRegistry, grid_scale: int = 1,
                  sub_steps: int = SUB_STEPS):
    """Process-cached :func:`~repro.pipelines.base.make_solver` equivalent.

    Returns a solver whose observable behaviour (``step``/``grid``/
    ``time``) is bit-identical to a fresh live solver for the same
    ``rng.seed``; repeated trajectories are served from snapshots.
    """
    return _CACHE.solver_for(rng, grid_scale, sub_steps)
