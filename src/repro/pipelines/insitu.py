"""The in-situ visualization pipeline (Fig 2b).

Simulation and visualization share the loop: on every I/O iteration the
current field is rendered immediately — no simulation dump ever touches
the disk.  Only the rendered images are written (buffered, no sync; a
256x256 PNG is a small fraction of the raw field stream).

The per-event "coupling" cost models what the paper's measurements imply
in-situ visualization really costs beyond the render itself: image
encoding/output and the interference of running visualization inside the
simulation's address space (cache pollution, synchronization points).
See :mod:`repro.experiments.calibration` for the derivation.

Resilience: with ``checkpoint_interval > 0`` the loop dumps the field to
a durable (synced) checkpoint file every so many iterations — in-situ has
no timestep dumps to restart from, so without checkpoints a mid-run
device failure costs the whole run.  A failure escaping the retry layer
raises :class:`~repro.errors.PipelineInterrupted`; a resilient runner
repairs the device and re-enters with ``resume=state`` to continue from
the last checkpoint.
"""

from __future__ import annotations

from repro.errors import FaultError, PipelineInterrupted, RetryExhaustedError
from repro.machine.node import Node
from repro.pipelines.base import (
    CHUNK_BYTES,
    InterruptState,
    PipelineConfig,
    RecoveryTracker,
    RunResult,
    make_storage,
    record_stage,
    render_pipeline_frame,
)
from repro.pipelines.science import cached_solver
from repro.rng import RngRegistry
from repro.storage.writer import DataWriter
from repro.trace.timeline import Timeline


class InSituPipeline:
    """Simulate and render in the same loop; no raw data hits the disk."""

    name = "in-situ"

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def _interrupt(self, exc: Exception, iteration: int, fs,
                   result: RunResult, ck_writer: DataWriter | None) -> None:
        """Package the interrupt state and re-raise as PipelineInterrupted."""
        resume_bytes = 0
        if ck_writer is not None and iteration > 0:
            name = ck_writer.filename(iteration)
            if fs.exists(name):
                resume_bytes = fs.size(name)
        state = InterruptState(
            pipeline=self.name, phase="loop", iteration=iteration,
            fs=fs, result=result, resume_bytes=resume_bytes,
        )
        raise PipelineInterrupted(
            f"{self.name} interrupted at durable iteration {iteration}: {exc}",
            state=state,
        ) from exc

    def run(self, node: Node, rng: RngRegistry | None = None,
            resume: InterruptState | None = None) -> RunResult:
        """Execute the pipeline on ``node``; returns the unmetered RunResult."""
        rng = rng or RngRegistry()
        solver = cached_solver(rng, self.config.grid_scale,
                               self.config.solver_sub_steps)
        if resume is not None:
            fs = resume.fs
            durable = resume.iteration
        else:
            fs = make_storage(node, rng, retry=self.config.retry_policy)
            durable = 0
        interval = self.config.checkpoint_interval
        ck_writer = None
        if interval > 0:
            # Durable checkpoints; caches are kept warm (the loop reuses
            # the field immediately), unlike the post pipeline's dumps.
            ck_writer = DataWriter(fs, prefix="ck", chunk_bytes=CHUNK_BYTES,
                                   sync_each=True, drop_caches_each=False)
        timeline = Timeline()
        stages = self.config.stage_table
        result = RunResult(self.name, self.config.case, timeline)
        tracker = RecoveryTracker(fs.queue, timeline)

        case = self.config.case
        io_iterations = set(case.io_iterations())

        timeline.mark("simulate+visualize")
        if durable:
            # Restore the field from the last checkpoint: replayed from
            # the trajectory cache (the restart span already charged the
            # checkpoint read).
            solver.step(durable)
        for iteration in range(durable + 1, case.iterations + 1):
            solver.step(1)
            record_stage(timeline, "simulation", table=stages,
                         work_scale=self.config.sim_work_scale,
                         iteration=iteration)
            if iteration in io_iterations:
                _frame, encoded = render_pipeline_frame(solver.grid.data,
                                                        self.config)
                result.images_rendered += 1
                record_stage(timeline, "visualization", table=stages, iteration=iteration)
                result.image_bytes += len(encoded)
                name = f"frame{iteration:04d}.{self.config.image_format}"
                if fs.exists(name):
                    # A restarted run re-renders frames the interrupt ate.
                    fs.delete(name)
                try:
                    fs.write(name, encoded)  # buffered; no sync
                except (FaultError, RetryExhaustedError) as exc:
                    tracker.poll(iteration=iteration)
                    self._interrupt(exc, durable, fs, result, ck_writer)
                tracker.poll(iteration=iteration)
                record_stage(
                    timeline, "coupling", table=stages,
                    disk_write_bytes=len(encoded),
                    iteration=iteration, file=name,
                )
            if interval > 0 and iteration % interval == 0:
                try:
                    report = ck_writer.write_timestep(
                        solver.grid, iteration, physical_time=solver.time
                    )
                except (FaultError, RetryExhaustedError) as exc:
                    tracker.poll(iteration=iteration)
                    ck_name = ck_writer.filename(iteration)
                    if fs.exists(ck_name):
                        # Committed but not durably synced: discard it.
                        fs.delete(ck_name)
                    self._interrupt(exc, durable, fs, result, ck_writer)
                tracker.poll(iteration=iteration)
                result.data_bytes_written += report.nbytes
                record_stage(
                    timeline, "nnwrite", table=stages,
                    disk_write_bytes=report.nbytes,
                    iteration=iteration, file=report.name, checkpoint=True,
                )
                durable = iteration

        result.extra["final_mean_temperature"] = solver.grid.mean()
        result.extra["files_written"] = result.images_rendered
        result.extra["io_faults"] = fs.queue.stats.n_faults
        result.extra["io_retries"] = fs.queue.stats.n_retries
        return result
