"""The in-situ visualization pipeline (Fig 2b).

Simulation and visualization share the loop: on every I/O iteration the
current field is rendered immediately — no simulation dump ever touches
the disk.  Only the rendered images are written (buffered, no sync; a
256x256 PNG is a small fraction of the raw field stream).

The per-event "coupling" cost models what the paper's measurements imply
in-situ visualization really costs beyond the render itself: image
encoding/output and the interference of running visualization inside the
simulation's address space (cache pollution, synchronization points).
See :mod:`repro.experiments.calibration` for the derivation.
"""

from __future__ import annotations

from repro.machine.node import Node
from repro.pipelines.base import (
    PipelineConfig,
    RunResult,
    make_storage,
    record_stage,
    render_pipeline_frame,
)
from repro.pipelines.science import cached_solver
from repro.rng import RngRegistry
from repro.trace.timeline import Timeline


class InSituPipeline:
    """Simulate and render in the same loop; no raw data hits the disk."""

    name = "in-situ"

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def run(self, node: Node, rng: RngRegistry | None = None) -> RunResult:
        """Execute the pipeline on ``node``; returns the unmetered RunResult."""
        rng = rng or RngRegistry()
        solver = cached_solver(rng, self.config.grid_scale,
                               self.config.solver_sub_steps)
        fs = make_storage(node, rng)
        timeline = Timeline()
        stages = self.config.stage_table
        result = RunResult(self.name, self.config.case, timeline)

        case = self.config.case
        io_iterations = set(case.io_iterations())

        timeline.mark("simulate+visualize")
        for iteration in range(1, case.iterations + 1):
            solver.step(1)
            record_stage(timeline, "simulation", table=stages,
                         work_scale=self.config.sim_work_scale,
                         iteration=iteration)
            if iteration in io_iterations:
                _frame, encoded = render_pipeline_frame(solver.grid.data,
                                                        self.config)
                result.images_rendered += 1
                record_stage(timeline, "visualization", table=stages, iteration=iteration)
                result.image_bytes += len(encoded)
                name = f"frame{iteration:04d}.{self.config.image_format}"
                fs.write(name, encoded)  # buffered; no sync
                record_stage(
                    timeline, "coupling", table=stages,
                    disk_write_bytes=len(encoded),
                    iteration=iteration, file=name,
                )

        result.extra["final_mean_temperature"] = solver.grid.mean()
        result.extra["files_written"] = result.images_rendered
        return result
