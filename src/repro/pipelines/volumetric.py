"""3-D in-situ pipeline with volume rendering (related-work path).

The in-situ systems the paper cites (Yu et al.'s combustion work,
Childs et al.'s volume rendering, Peterka's Blue Gene studies) render
*volumes*.  This pipeline runs the 3-D heat solver and ray-casts the
temperature volume in situ, optionally from several axes per event (a
small Cinema-style view set).

Cost model: the volume-render stage cost scales with the composited
sample count relative to the 2-D render the visualization stage was
calibrated on (a 64^3 volume traversed at 64 samples/ray shades ~16x the
pixels of the 256^2 raster).
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.calibration import STAGE
from repro.machine.node import Node
from repro.pipelines.base import PipelineConfig, RunResult, make_storage
from repro.rng import RngRegistry
from repro.sim.heat import BoundaryCondition
from repro.sim.heat3d import Grid3D, HeatSolver3D, HeatSource3D
from repro.trace.timeline import Timeline
from repro.viz.volume import VolumeCamera, render_volume


def make_solver3d(rng: RngRegistry, n: int = 48,
                  sub_steps: int = 1) -> HeatSolver3D:
    """The 3-D proxy: n^3 field with a hot inner box."""
    grid = Grid3D(n, n, n)
    gen = rng.get("initial-condition-3d")
    grid.data[:] = 20.0 + gen.normal(0.0, 0.05, grid.data.shape)
    lo, hi = n // 4, n // 2
    source = HeatSource3D((lo, lo, lo), (hi, hi, hi), rate=45.0)
    return HeatSolver3D(grid, alpha=1.0e-4, sources=(source,),
                        boundary_value=20.0, sub_steps=sub_steps)


class VolumetricInSituPipeline:
    """Simulate a 3-D field and ray-cast it in situ."""

    name = "in-situ-3d"

    def __init__(self, config: PipelineConfig, resolution: int = 48,
                 axes: tuple[int, ...] = (0,), samples: int = 48) -> None:
        if not axes or any(a not in (0, 1, 2) for a in axes):
            raise PipelineError("axes must be a non-empty subset of {0, 1, 2}")
        if resolution < 3:
            raise PipelineError("resolution must be >= 3")
        self.config = config
        self.resolution = resolution
        self.axes = tuple(axes)
        self.samples = samples

    def _render_cost_factor(self) -> float:
        """Volume shading work relative to the calibrated 2-D render."""
        rays = self.resolution * self.resolution
        shaded = rays * min(self.samples, self.resolution)
        reference = self.config.render_height * self.config.render_width
        return shaded / reference

    def run(self, node: Node, rng: RngRegistry | None = None) -> RunResult:
        """Execute the pipeline on ``node``; returns the unmetered RunResult."""
        rng = rng or RngRegistry()
        solver = make_solver3d(rng, self.resolution,
                               self.config.solver_sub_steps)
        fs = make_storage(node, rng)
        timeline = Timeline()
        result = RunResult(self.name, self.config.case, timeline)
        sim_cal = STAGE["simulation"]
        vis_cal = STAGE["visualization"]
        render_factor = self._render_cost_factor()

        case = self.config.case
        io_iterations = set(case.io_iterations())
        # Modeled sim cost scales with cell count vs the 2-D reference.
        sim_scale = solver.grid.n_cells / (128 * 128)

        timeline.mark("simulate3d+raycast")
        for iteration in range(1, case.iterations + 1):
            solver.step(1)
            timeline.record("simulation",
                            sim_cal.duration_for(work_scale=sim_scale),
                            sim_cal.activity(), iteration=iteration)
            if iteration not in io_iterations:
                continue
            batch_bytes = 0
            for axis in self.axes:
                image = render_volume(
                    solver.grid.data,
                    VolumeCamera(axis=axis, samples=self.samples),
                )
                encoded = image.to_png(self.config.frame_png_level)
                batch_bytes += len(encoded)
                fs.write(f"vol{iteration:04d}_ax{axis}.png", encoded)
                result.images_rendered += 1
            result.image_bytes += batch_bytes
            timeline.record(
                "visualization",
                vis_cal.duration_s * render_factor * len(self.axes),
                vis_cal.activity(), iteration=iteration,
            )
            record_bytes = batch_bytes
            timeline.record(
                "coupling", STAGE["coupling"].duration_s,
                STAGE["coupling"].activity(disk_write_bytes=record_bytes),
                iteration=iteration,
            )

        lo, hi = solver.grid.minmax()
        result.extra["field_range"] = (lo, hi)
        result.extra["final_mean_temperature"] = float(solver.grid.data.mean())
        result.extra["render_cost_factor"] = render_factor
        return result
