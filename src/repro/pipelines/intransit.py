"""In-transit visualization pipeline (related-work extension).

Bennett et al. [10] combine in-situ with *in-transit* processing: the
simulation ships data over the interconnect to dedicated staging nodes
that run the analysis asynchronously, so the simulation neither writes to
disk nor pays the visualization's compute cost.

Modeled here as two timelines:

* the **compute node**: simulate; on I/O iterations, send the field to the
  staging node (alpha-beta link cost, NIC activity);
* the **staging node**: receive and visualize, overlapping the compute
  node's next iterations; it idles while waiting.

The runner meters both nodes; total energy is their sum, which is the
fair comparison against single-node pipelines (the paper's future-work
multi-node question is exactly whether shipping beats storing).
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.calibration import STAGE
from repro.machine.network import LinkModel
from repro.machine.node import Node
from repro.pipelines.base import (
    PipelineConfig,
    RunResult,
    make_solver,
    record_stage,
)
from repro.rng import RngRegistry
from repro.trace.events import Activity
from repro.trace.timeline import Timeline
from repro.viz.render import render_field


class InTransitPipeline:
    """Simulation + staging-node pair coupled by the interconnect."""

    name = "in-transit"

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def run(self, node: Node, rng: RngRegistry | None = None) -> RunResult:
        """Execute the pipeline on ``node``; returns the unmetered RunResult."""
        rng = rng or RngRegistry()
        solver = make_solver(rng, self.config.grid_scale,
                             self.config.solver_sub_steps)
        link = LinkModel(node.spec.network)
        compute = Timeline()
        staging = Timeline()
        result = RunResult(self.name, self.config.case, compute)

        case = self.config.case
        io_iterations = set(case.io_iterations())
        vis_cal = STAGE["visualization"]

        compute.mark("simulate+send")
        staging.mark("receive+visualize")
        for iteration in range(1, case.iterations + 1):
            solver.step(1)
            record_stage(compute, "simulation",
                         work_scale=self.config.sim_work_scale,
                         iteration=iteration)
            if iteration not in io_iterations:
                continue
            payload = solver.grid.to_bytes()
            send_time = link.transfer_time(len(payload))
            rate = len(payload) / send_time
            compute.record(
                "staging-send", send_time,
                Activity(cpu_util=0.02, dram_bytes_per_s=min(rate, 2e9),
                         net_bytes_per_s=rate),
                iteration=iteration, nbytes=len(payload),
            )
            # Staging side: idle until the send lands, then receive+render.
            arrival = compute.now
            if staging.now < arrival:
                staging.idle(arrival - staging.now)
            staging.record(
                "receive", send_time,
                Activity(cpu_util=0.02, dram_bytes_per_s=min(rate, 2e9),
                         net_bytes_per_s=rate),
                iteration=iteration,
            )
            frame = render_field(
                solver.grid.data,
                height=self.config.render_height,
                width=self.config.render_width,
            )
            result.images_rendered += 1
            result.image_bytes += frame.nbytes
            staging.record(
                "visualization", vis_cal.duration_s,
                vis_cal.activity(), iteration=iteration,
            )

        # The run ends when both nodes are done; the compute node idles
        # out any staging tail (it cannot exit before its partner).
        if staging.now > compute.now:
            compute.idle(staging.now - compute.now, reason="staging tail")
        elif compute.now > staging.now:
            staging.idle(compute.now - staging.now)

        if result.images_rendered != len(io_iterations):
            raise PipelineError("staging node dropped frames")
        result.extra["staging_timeline"] = staging
        result.extra["final_mean_temperature"] = solver.grid.mean()
        return result
