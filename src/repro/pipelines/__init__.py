"""The paper's subject systems: visualization pipelines.

* :class:`~repro.pipelines.post.PostProcessingPipeline` — simulate and
  dump every selected timestep (phase 1), then read everything back and
  visualize (phase 2), with sync + drop-caches between stages (Fig 2a).
* :class:`~repro.pipelines.insitu.InSituPipeline` — visualize alongside
  the simulation, writing only rendered images (Fig 2b).
* :class:`~repro.pipelines.intransit.InTransitPipeline` — ship data to a
  staging node for asynchronous visualization (the Bennett et al. hybrid
  the related work covers; extension).

:class:`~repro.pipelines.runner.PipelineRunner` executes a pipeline on a
node, meters it, and returns a :class:`~repro.pipelines.base.RunResult`.
"""

from repro.pipelines.base import PipelineConfig, RunResult, VerificationRecord
from repro.pipelines.post import PostProcessingPipeline
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.intransit import InTransitPipeline
from repro.pipelines.sampled import SamplingInSituPipeline
from repro.pipelines.cluster import ClusterInSituPipeline
from repro.pipelines.cinema import CinemaPipeline, CinemaSpec
from repro.pipelines.volumetric import VolumetricInSituPipeline
from repro.pipelines.dvfs import apply_dvfs, io_phase_dvfs
from repro.pipelines.runner import PipelineRunner

__all__ = [
    "PipelineConfig",
    "RunResult",
    "VerificationRecord",
    "PostProcessingPipeline",
    "InSituPipeline",
    "InTransitPipeline",
    "SamplingInSituPipeline",
    "ClusterInSituPipeline",
    "CinemaPipeline",
    "CinemaSpec",
    "VolumetricInSituPipeline",
    "apply_dvfs",
    "io_phase_dvfs",
    "PipelineRunner",
]
