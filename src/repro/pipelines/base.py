"""Pipeline plumbing: configuration, results, and the shared stage toolkit.

A pipeline *really runs*: the heat solver integrates the PDE, dumps flow
through the page cache and filesystem into the disk model, the renderer
produces PNG images.  Wall-clock time and power, however, come from the
calibrated cost model (see :mod:`repro.experiments.calibration`) so runs
are deterministic and land where the paper's testbed did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import PipelineError
from repro.fingerprint import field_fingerprint
from repro.calibration import (
    CHUNK_BYTES,
    STAGE,
    SUB_STEPS,
    CaseStudyConfig,
)
from repro.faults.retry import RetryPolicy, RetrySession
from repro.machine.node import Node
from repro.power.profile import PowerProfile
from repro.rng import RngRegistry
from repro.sim.grid import Grid2D
from repro.sim.heat import HeatSolver, HeatSource
from repro.system.blockdev import BlockQueue
from repro.system.filesystem import FileSystem
from repro.system.pagecache import PageCache
from repro.trace.events import Activity
from repro.trace.timeline import Timeline
from repro.viz.render import RenderResult, render_field, render_with_contours


@dataclass(frozen=True)
class PipelineConfig:
    """Shared pipeline knobs.

    Attributes
    ----------
    case:
        Which of the paper's application configurations to run.
    render_height / render_width:
        Output image resolution of the visualization stage.
    image_format:
        ``"png"`` or ``"ppm"`` for saved frames.
    contour_levels:
        Isocontour levels burned into each frame (empty = none).
    verify_data:
        Post-processing only: compare every read-back grid against the
        grid that was written (end-to-end storage validation).
    """

    case: CaseStudyConfig
    render_height: int = 256
    render_width: int = 256
    image_format: str = "png"
    #: zlib effort for PNG frames.  Frames are a pipeline *product*, not
    #: the measured I/O load (coupling cost scales with the encoded size,
    #: which the calibration already absorbs), so the default favours
    #: encode speed over a few KiB of frame size.
    frame_png_level: int = 1
    contour_levels: tuple[float, ...] = ()
    verify_data: bool = True
    #: Grid-scale ablation: the field is (128*scale)^2 float64, so the
    #: per-timestep dump volume grows as scale^2 (1 = the paper's 128 KiB).
    grid_scale: int = 1
    #: Physics sub-steps per pipeline timestep (modeled time unaffected).
    solver_sub_steps: int = SUB_STEPS
    #: If False, the simulation stage's modeled cost stays at the paper's
    #: 1.588 s even on scaled grids — modeling the exascale premise that
    #: compute capability grows with the problem while I/O does not.
    scale_sim_with_grid: bool = True
    #: Per-stage calibration overrides, e.g. a faster I/O byte rate for a
    #: deep-memory-hierarchy (NVRAM-staging) study.  Stored as a tuple of
    #: (stage name, StageCalibration) pairs so the config stays hashable.
    stage_overrides: tuple = ()
    #: Bounded-retry policy for faulted device operations (None = no
    #: retries: any injected fault propagates).  Fault-free runs are
    #: bit-identical with or without a policy.
    retry_policy: RetryPolicy | None = None
    #: In-situ resilience: write a durable checkpoint of the field every
    #: this many iterations (0 = never).  Post-processing runs checkpoint
    #: implicitly through their synced timestep dumps.
    checkpoint_interval: int = 0

    def __post_init__(self) -> None:
        if self.image_format not in ("png", "ppm"):
            raise PipelineError(f"unknown image format {self.image_format!r}")
        if not 0 <= self.frame_png_level <= 9:
            raise PipelineError("frame_png_level must be a zlib level in [0, 9]")
        if self.render_height <= 0 or self.render_width <= 0:
            raise PipelineError("render resolution must be positive")
        if self.grid_scale < 1 or self.grid_scale > 64:
            raise PipelineError("grid_scale must be in [1, 64]")
        if self.solver_sub_steps < 1:
            raise PipelineError("solver_sub_steps must be >= 1")
        if self.checkpoint_interval < 0:
            raise PipelineError("checkpoint_interval must be >= 0")

    @property
    def sim_work_scale(self) -> float:
        """Simulation-stage cost multiplier (cell count ratio)."""
        if not self.scale_sim_with_grid:
            return 1.0
        return float(self.grid_scale ** 2)

    @property
    def stage_table(self) -> dict:
        """The calibrated stage table with this config's overrides applied."""
        table = dict(STAGE)
        for name, cal in self.stage_overrides:
            if name not in table:
                raise PipelineError(f"override for unknown stage {name!r}")
            table[name] = cal
        return table


@dataclass
class VerificationRecord:
    """End-to-end data-integrity outcome of a run."""

    grids_checked: int = 0
    grids_matched: int = 0

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return self.grids_checked == self.grids_matched


@dataclass
class RunResult:
    """Everything a pipeline run produced."""

    pipeline: str
    case: CaseStudyConfig
    timeline: Timeline
    profile: PowerProfile | None = None
    images_rendered: int = 0
    image_bytes: int = 0
    data_bytes_written: int = 0
    data_bytes_read: int = 0
    verification: VerificationRecord = field(default_factory=VerificationRecord)
    extra: dict[str, Any] = field(default_factory=dict)

    # -- headline metrics (require a metered profile) ---------------------------

    def _require_profile(self) -> PowerProfile:
        if self.profile is None:
            raise PipelineError("run has not been metered yet")
        return self.profile

    @property
    def execution_time_s(self) -> float:
        """Wall-clock (simulated) duration of the run."""
        return self.timeline.duration

    @property
    def energy_j(self) -> float:
        """Full-system energy of the metered run (J)."""
        return self._require_profile().energy()

    @property
    def average_power_w(self) -> float:
        """Average full-system power of the metered run (W)."""
        return self._require_profile().average()

    @property
    def peak_power_w(self) -> float:
        """Peak full-system power of the metered run (W)."""
        return self._require_profile().peak()

    @property
    def work_units(self) -> float:
        """Science accomplished: solver timesteps (same for both pipelines
        within a case study, which is what makes Fig 11's efficiency
        comparison meaningful)."""
        return float(self.case.iterations)

    @property
    def energy_efficiency(self) -> float:
        """Work per joule (Fig 11's metric, before normalization)."""
        e = self.energy_j
        if e <= 0:
            raise PipelineError("non-positive energy")
        return self.work_units / e


@dataclass
class InterruptState:
    """Where a pipeline stood when a device failure interrupted it.

    Carried on :class:`~repro.errors.PipelineInterrupted` so a resilient
    runner can repair the device and re-enter ``pipeline.run(...,
    resume=state)``.  ``iteration`` is the last *durable* iteration (post
    phase 1: last synced dump; in-situ: last checkpoint) or, in the read
    phase, the last fully visualized timestep.  The surviving filesystem
    keeps all committed files and the queue's cumulative fault counters.
    """

    pipeline: str
    phase: str
    iteration: int
    fs: FileSystem
    result: RunResult
    checksums: dict[int, int] = field(default_factory=dict)
    #: Checkpoint bytes a restart has to re-read to restore solver state.
    resume_bytes: int = 0


class RecoveryTracker:
    """Turn a queue's accumulated fault time into explicit timeline spans.

    Healthy stage durations come from the calibrated stage table; the
    extra wall time burned by failed attempts and backoff waits is not in
    that table, so the pipeline polls this tracker after each I/O
    operation (and before surfacing an interrupt) to emit a ``recovery``
    span covering the fault-time delta.  The device is erroring or
    waiting during that window, not streaming, so the span carries idle
    activity — the node's static floor still prices it.
    """

    def __init__(self, queue: BlockQueue, timeline: Timeline) -> None:
        self.queue = queue
        self.timeline = timeline
        self._fault_time = queue.stats.fault_time
        self._faults = queue.stats.n_faults
        self._retries = queue.stats.n_retries

    def poll(self, **meta: Any) -> None:
        """Record a ``recovery`` span for any new fault time."""
        stats = self.queue.stats
        delta = stats.fault_time - self._fault_time
        if delta <= 0:
            return
        faults = stats.n_faults - self._faults
        retries = stats.n_retries - self._retries
        self._fault_time = stats.fault_time
        self._faults = stats.n_faults
        self._retries = stats.n_retries
        self.timeline.record("recovery", delta, Activity(),
                             faults=faults, retries=retries, **meta)


def make_solver(rng: RngRegistry, grid_scale: int = 1,
                sub_steps: int = SUB_STEPS) -> HeatSolver:
    """The proxy application instance: 128 KB grid, hot-corner source.

    ``grid_scale`` multiplies the resolution in each dimension for the
    data-volume ablation (the source patch scales with it so the physics
    stays self-similar).
    """
    n = 128 * grid_scale
    grid = Grid2D(n, n)
    gen = rng.get("initial-condition")
    grid.data[:] = 20.0 + gen.normal(0.0, 0.05, grid.shape)
    source = HeatSource(row0=24 * grid_scale, row1=40 * grid_scale,
                        col0=24 * grid_scale, col1=40 * grid_scale, rate=45.0)
    return HeatSolver(
        grid, alpha=1.0e-4, sources=(source,), boundary_value=20.0,
        sub_steps=sub_steps,
    )


#: (field fingerprint, render knobs) -> (frame, encoded bytes).  Both
#: pipelines of a comparison visualize the identical physics, so half of
#: all frames are repeats; FIFO-bounded so long sweeps stay flat.
_FRAME_CACHE: dict[tuple, tuple[RenderResult, bytes]] = {}
_FRAME_CACHE_MAX_ENTRIES = 256


def render_pipeline_frame(data: np.ndarray,
                          config: PipelineConfig) -> tuple[RenderResult, bytes]:
    """Render + encode one output frame for ``config``, deduplicated.

    Rendering is a pure function of the field contents and the render
    knobs, so frames are cached under a content fingerprint: the paired
    pipelines (and repeated experiments) visualize identical fields and
    skip the raster + encode entirely on the second sighting.
    """
    fingerprint = field_fingerprint(data)
    key = None
    if fingerprint is not None:
        key = (fingerprint, config.render_height, config.render_width,
               config.contour_levels, config.image_format,
               config.frame_png_level)
        hit = _FRAME_CACHE.get(key)  # greenlint: ignore[GL18]  (keyed on the field fingerprint + full render config: value-deterministic)
        if hit is not None:
            return hit
    if config.contour_levels:
        frame = render_with_contours(
            data, config.contour_levels,
            height=config.render_height, width=config.render_width,
        )
    else:
        frame = render_field(
            data, height=config.render_height, width=config.render_width,
        )
    if config.image_format == "png":
        encoded = frame.image.to_png(config.frame_png_level)
    else:
        encoded = frame.image.to_ppm()
    if key is not None:
        if len(_FRAME_CACHE) >= _FRAME_CACHE_MAX_ENTRIES:
            try:
                _FRAME_CACHE.pop(next(iter(_FRAME_CACHE)))
            except (KeyError, RuntimeError, StopIteration):
                pass  # a concurrent serving thread evicted first
        _FRAME_CACHE[key] = (frame, encoded)
    return frame, encoded


def make_storage(node: Node, rng: RngRegistry,
                 layout: str = "contiguous",
                 retry: RetryPolicy | None = None) -> FileSystem:
    """A fresh filesystem over the node's storage device.

    ``retry`` arms the block queue with a bounded-retry session whose
    jitter stream comes from the run's rng (deterministic per seed).
    """
    session = None
    if retry is not None:
        session = RetrySession(retry, rng.get("fault-backoff-jitter"))
    queue = BlockQueue(node.storage, retry=session)
    cache = PageCache(queue, capacity_bytes=node.spec.dram.capacity_bytes // 2)
    return FileSystem(queue, cache=cache, layout=layout, rng=rng)


def record_stage(
    timeline: Timeline,
    stage: str,
    disk_read_bytes: float = 0.0,
    disk_write_bytes: float = 0.0,
    work_scale: float = 1.0,
    table: dict | None = None,
    **meta: Any,
):
    """Append a span for ``stage`` using its calibrated cost.

    Stages with a payload term (nnwrite/nnread) scale their duration
    with the bytes actually moved; at the paper's 128 KiB payloads the
    term is negligible against the sync/drop-caches barrier.
    ``work_scale`` multiplies the base term (simulation on bigger grids).
    ``table`` overrides the global calibration (stage-override studies).
    """
    cal = (table or STAGE)[stage]
    payload = disk_read_bytes + disk_write_bytes
    duration = cal.duration_for(payload if payload > 0 else None, work_scale)
    activity = cal.activity(disk_read_bytes, disk_write_bytes, duration)
    return timeline.record(stage, duration, activity, **meta)


__all__ = [
    "InterruptState",
    "PipelineConfig",
    "RecoveryTracker",
    "RunResult",
    "VerificationRecord",
    "make_solver",
    "make_storage",
    "record_stage",
    "render_pipeline_frame",
    "CHUNK_BYTES",
]
