"""Multi-node decomposed in-situ pipeline (future-work extension).

The paper's Section VI asks for "evaluation on a multi-node system to
study the effect of network I/O in addition to disk I/O".  This pipeline
runs the proxy app domain-decomposed over an N-node cluster:

* each node integrates its tile (the numerics really run decomposed,
  through :class:`~repro.sim.decomposition.BlockDecomposition`, with real
  halo exchanges whose wire bytes are priced by the link model);
* on visualization iterations every node renders its tile and the tiles
  are composited with a binary-swap schedule whose traffic is priced by
  :func:`~repro.viz.compositing.compositing_bytes`;
* no raw data touches any disk (in-situ).

The cluster is symmetric, so the run is represented by one node's
timeline; total cluster energy = N x the metered node energy (the runner
fills ``extra["total_energy_j"]`` from ``extra["energy_multiplier"]``).

The strong-scaling shape the ablation bench pins down: wall time falls
~1/N until halo + compositing latency floors it, while *total* energy
passes through a minimum and then grows — every extra node adds a
~105 W static floor that shrinking per-node work cannot pay for.
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.machine.network import LinkModel
from repro.machine.node import Node
from repro.calibration import STAGE
from repro.pipelines.base import PipelineConfig, RunResult, make_solver
from repro.rng import RngRegistry
from repro.sim.decomposition import BlockDecomposition
from repro.trace.events import Activity
from repro.trace.timeline import Timeline
from repro.viz.compositing import compositing_bytes
from repro.viz.render import render_field


def choose_mesh(n_nodes: int, interior: int) -> tuple[int, int]:
    """Most-square (pr, pc) factorization of ``n_nodes`` dividing ``interior``."""
    if n_nodes < 1:
        raise PipelineError("need at least one node")
    best: tuple[int, int] | None = None
    for pr in range(1, n_nodes + 1):
        if n_nodes % pr:
            continue
        pc = n_nodes // pr
        if interior % pr or interior % pc:
            continue
        if best is None or abs(pr - pc) < abs(best[0] - best[1]):
            best = (pr, pc)
    if best is None:
        raise PipelineError(
            f"{n_nodes} nodes cannot tile a {interior}x{interior} interior"
        )
    return best


class ClusterInSituPipeline:
    """Domain-decomposed in-situ visualization over N symmetric nodes."""

    name = "cluster-in-situ"

    def __init__(self, config: PipelineConfig, n_nodes: int) -> None:
        if n_nodes < 1:
            raise PipelineError("n_nodes must be >= 1")
        self.config = config
        self.n_nodes = n_nodes

    def _composite_ranks(self) -> int:
        """Binary-swap rank count: next power of two >= n_nodes.

        Binary-swap compositing wants a power-of-two rank count; any
        node count is accepted, and non-power-of-two counts are priced
        as if the schedule were padded to the next power of two — the
        padded ranks' exchange traffic is what the composite stage
        bills.
        """
        n = 1
        while n < self.n_nodes:
            n <<= 1
        return n

    def run(self, node: Node, rng: RngRegistry | None = None) -> RunResult:
        """Execute the pipeline on ``node``; returns the unmetered RunResult."""
        rng = rng or RngRegistry()
        solver = make_solver(rng, self.config.grid_scale,
                             self.config.solver_sub_steps)
        interior = solver.grid.nx - 2
        pr, pc = choose_mesh(self.n_nodes, interior)
        decomp = BlockDecomposition(solver.grid, pr, pc)
        link = LinkModel(node.spec.network)

        timeline = Timeline()
        result = RunResult(self.name, self.config.case, timeline)
        case = self.config.case
        io_iterations = set(case.io_iterations())
        sim_cal = STAGE["simulation"]
        vis_cal = STAGE["visualization"]

        # Per-node shares: compute parallelizes over nodes; render over tiles.
        sim_duration = sim_cal.duration_for(
            work_scale=self.config.sim_work_scale) / self.n_nodes
        vis_duration = vis_cal.duration_s / self.n_nodes
        halo_bytes_per_node = decomp.halo_bytes_per_exchange() / max(1, self.n_nodes)
        image_bytes = self.config.render_height * self.config.render_width * 4
        swap_bytes_per_node = (
            compositing_bytes(self._composite_ranks(), image_bytes)
            / self._composite_ranks()
        )

        timeline.mark("decomposed simulate+visualize")
        for iteration in range(1, case.iterations + 1):
            # Real decomposed physics: each sub-step sweeps the tiles,
            # then the driver applies the global source/boundary terms
            # and scatters them back (one extra halo refresh).
            for _ in range(self.config.solver_sub_steps):
                decomp.step(solver.alpha, solver.dt)
                for s in solver.sources:
                    solver.grid.data[s.row0 : s.row1, s.col0 : s.col1] += (
                        s.rate * solver.dt
                    )
                solver.apply_boundary()
                decomp.scatter()
            solver.steps_taken += 1
            timeline.record("simulation", sim_duration, sim_cal.activity(),
                            iteration=iteration)
            if halo_bytes_per_node > 0:
                halo_time = self.config.solver_sub_steps * link.transfer_time(
                    halo_bytes_per_node)
                rate = halo_bytes_per_node * self.config.solver_sub_steps / halo_time
                timeline.record(
                    "halo-exchange", halo_time,
                    Activity(cpu_util=0.02,
                             net_bytes_per_s=min(rate, link.spec.link_bw_bytes_per_s)),
                    iteration=iteration,
                )
            if iteration not in io_iterations:
                continue
            frame = render_field(
                solver.grid.data,
                height=self.config.render_height,
                width=self.config.render_width,
            )
            result.images_rendered += 1
            result.image_bytes += frame.nbytes
            timeline.record("visualization", vis_duration, vis_cal.activity(),
                            iteration=iteration)
            if swap_bytes_per_node > 0:  # single node composites locally
                swap_time = link.transfer_time(swap_bytes_per_node)
                timeline.record(
                    "compositing", swap_time,
                    Activity(cpu_util=0.05,
                             net_bytes_per_s=min(swap_bytes_per_node / swap_time,
                                                 link.spec.link_bw_bytes_per_s)),
                    iteration=iteration,
                )

        result.extra["n_nodes"] = self.n_nodes
        result.extra["mesh"] = (pr, pc)
        result.extra["energy_multiplier"] = self.n_nodes
        result.extra["halo_bytes_per_exchange"] = decomp.halo_bytes_per_exchange()
        result.extra["final_mean_temperature"] = solver.grid.mean()
        return result
