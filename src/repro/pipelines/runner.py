"""Pipeline runner: execute, meter, and package results.

Binds a pipeline to a node and a meter rig, mirroring the paper's setup:
run the application while the Wattsup and RAPL paths log at 1 Hz, then
derive every metric from the logged profile.
"""

from __future__ import annotations

from repro.machine.node import Node
from repro.pipelines.base import PipelineConfig, RunResult
from repro.power.meters import MeterRig
from repro.rng import RngRegistry


class PipelineRunner:
    """Runs pipelines on one node with one measurement setup."""

    def __init__(
        self,
        node: Node | None = None,
        sample_hz: float = 1.0,
        jitter: float = 1.0,
        seed: int | None = None,
    ) -> None:
        self.node = node or Node()
        self.sample_hz = sample_hz
        self.jitter = jitter
        self.rng = RngRegistry() if seed is None else RngRegistry(seed)

    def run(self, pipeline, run_id: str | None = None) -> RunResult:
        """Execute ``pipeline`` and meter its timeline.

        Each run gets a forked RNG namespace so back-to-back runs in one
        process are independent but the whole experiment is reproducible.
        """
        label = run_id or f"{pipeline.name}/{pipeline.config.case.name}"
        # The *science* stream is keyed by the case study only, so both
        # pipelines of a comparison simulate the identical physics; the
        # measurement-noise stream is keyed by the full run label.
        science_rng = self.rng.fork(f"science/{pipeline.config.case.name}")
        # Give each run a pristine storage device (fresh mount).  Every
        # storage model declares the BlockDevice protocol, reset included.
        self.node.storage.reset()
        result = self._execute(pipeline, science_rng)
        rig = MeterRig(self.node, sample_hz=self.sample_hz,
                       jitter=self.jitter, rng=self.rng.fork(f"meters/{label}"))
        result.profile = rig.sample(result.timeline)

        multiplier = result.extra.get("energy_multiplier")
        if multiplier is not None:
            # Symmetric-cluster pipelines: one node was metered; the
            # cluster total is N identical nodes.
            result.extra["total_energy_j"] = result.profile.energy() * multiplier

        staging_timeline = result.extra.get("staging_timeline")
        if staging_timeline is not None:
            staging_profile = rig.sample(staging_timeline)
            result.extra["staging_profile"] = staging_profile
            result.extra["staging_energy_j"] = staging_profile.energy()
            result.extra["total_energy_j"] = (
                result.profile.energy() + staging_profile.energy()
            )
        return result

    def _execute(self, pipeline, science_rng: RngRegistry) -> RunResult:
        """Execution hook: subclasses may wrap the run with recovery logic
        (see :class:`~repro.faults.resilience.ResilientPipelineRunner`)."""
        return pipeline.run(self.node, science_rng)

    def compare(self, pipelines) -> list[RunResult]:
        """Run several pipelines under identical conditions."""
        return [self.run(p) for p in pipelines]
