"""Calibrated constants anchoring the reproduction to the paper.

The paper reports *observables* (stage-time shares, phase powers, fio
timings) but not the low-level parameters that produced them (how many
cores the proxy app used, what its per-iteration wall time was, how long a
sync-plus-drop-caches write event took).  This module pins those
parameters so the machine model reproduces the observables, and records
every derivation.

Derivations
-----------

**Stage durations** (per event, seconds).  Fig 4 gives the share of total
time per stage and case study; case 1 (I/O every iteration, 50 iterations)
splits 33 % / 30 % / 27 % / 10 % across simulate / write / read /
visualize.  The total run time follows from energy arithmetic: Fig 10 +
Section V.C give the traditional case-1 energy as ~30 kJ, and the phase
powers (Section V.A: ~143 W simulating, ~115 W doing I/O, ~121 W
visualizing) then force T1 = 240.6 s.  Dividing the Fig 4 shares by 50
events each:

    sim   = 0.33 * 240.6 / 50 = 1.588 s / iteration
    write = 0.30 * 240.6 / 50 = 1.444 s / event   (includes fsync + drop)
    read  = 0.27 * 240.6 / 50 = 1.299 s / event   (cold, after cache drop)
    vis   = 0.10 * 240.6 / 50 = 0.481 s / event

These per-event costs, held constant across case studies, reproduce
Fig 4's case-2 (50/22/21/7) and case-3 (80/9/8/3) splits exactly — the
paper's numbers are consistent with a linear per-event model.

**In-situ coupling cost.**  In-situ energy (43 % below traditional at
~8 % higher average power, Figs 8/10) forces T_insitu(case 1) = 127.5 s =
50 x (1.588 + 0.961): each in-situ visualization event costs the 0.481 s
render plus an equal "coupling" cost (image encode + buffered image
write + interference with the simulation), drawn at visualization power.

**Stage activities.**  Chosen so the node model lands on the measured
powers (with the 104.8 W static floor from Table II):

    simulate : 30 % CPU, 5 GB/s DRAM           -> 143.0 W  (Sec V.A)
    visualize: 13 % CPU, 1.95 GB/s DRAM        -> 121.0 W  (Sec V.A)
    write    : 1.5 % CPU, 0.3 GB/s, seek 0.80  -> 114.8 W  (Table II)
    read     : 1.5 % CPU, 0.3 GB/s, seek 0.83  -> 115.1 W  (Table II)

**Known inconsistency.**  The text's claim that in-situ execution time is
"92 %, 52 %, 26 % lower" contradicts Figs 8 and 10 (energy = power x
time); the energy-consistent reductions are ~47/35/14 %.  We reproduce
the consistent set; see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.trace.events import Activity
from repro.units import GiB, KiB


@dataclass(frozen=True)
class StageCalibration:
    """One stage's calibrated duration and component activity.

    ``duration_s`` is the event cost at the paper's reference payload
    (``reference_bytes``).  Stages with a ``bytes_per_s`` term scale with
    payload — at the paper's 128 KiB the byte term is negligible (the
    sync/drop-caches barrier dominates the event), but data-volume
    ablations (exascale-style dumps) need the transfer term to grow.
    """

    duration_s: float
    cpu_util: float
    dram_bytes_per_s: float
    disk_seek_duty: float = 0.0
    bytes_per_s: float = 0.0
    reference_bytes: int = 0

    def duration_for(self, nbytes: float | None = None,
                     work_scale: float = 1.0) -> float:
        """Event duration for a payload of ``nbytes`` (None = reference).

        ``work_scale`` multiplies the base (compute/barrier) term — the
        simulation stage scales with cell count when the grid-scale
        ablation grows the problem.
        """
        if work_scale <= 0:
            raise ConfigError("work_scale must be positive")
        base = self.duration_s * work_scale
        if nbytes is None or self.bytes_per_s <= 0:
            return base
        extra = (nbytes - self.reference_bytes) / self.bytes_per_s
        return max(0.05 * self.duration_s, base + extra)

    def activity(self, disk_read_bytes: float = 0.0,
                 disk_write_bytes: float = 0.0,
                 duration_s: float | None = None) -> Activity:
        """Activity for one event, byte rates derived from actual bytes."""
        duration = self.duration_s if duration_s is None else duration_s
        return Activity(
            cpu_util=self.cpu_util,
            dram_bytes_per_s=self.dram_bytes_per_s,
            disk_read_bytes_per_s=disk_read_bytes / duration,
            disk_write_bytes_per_s=disk_write_bytes / duration,
            disk_seek_duty=self.disk_seek_duty,
        )


#: Per-stage calibration (see module docstring for derivations).
STAGE: dict[str, StageCalibration] = {
    "simulation": StageCalibration(
        duration_s=1.588, cpu_util=0.30, dram_bytes_per_s=5.0e9,
    ),
    "nnwrite": StageCalibration(
        duration_s=1.444, cpu_util=0.015, dram_bytes_per_s=0.3e9,
        disk_seek_duty=0.80,
        bytes_per_s=4 * GiB / 27.0,   # sustained media write rate
        reference_bytes=128 * KiB,
    ),
    "nnread": StageCalibration(
        duration_s=1.299, cpu_util=0.015, dram_bytes_per_s=0.3e9,
        disk_seek_duty=0.83,
        bytes_per_s=4 * GiB / 35.9,   # sustained media read rate
        reference_bytes=128 * KiB,
    ),
    "visualization": StageCalibration(
        duration_s=0.481, cpu_util=0.13, dram_bytes_per_s=1.95e9,
    ),
    # In-situ image output + simulation/visualization coupling overhead.
    "coupling": StageCalibration(
        duration_s=0.481, cpu_util=0.13, dram_bytes_per_s=1.95e9,
    ),
}

#: The proxy app runs fifty timesteps in every configuration (Sec IV.C).
ITERATIONS = 50

#: Grid and chunk size are both 128 KB (Sec IV.C).
CHUNK_BYTES = 128 * KiB

#: Physics sub-steps folded into one pipeline timestep.  Chosen so the
#: *real* numerics per timestep stay cheap on the host while the modeled
#: wall time is the calibrated 1.588 s.
SUB_STEPS = 4


@dataclass(frozen=True)
class CaseStudyConfig:
    """One of the paper's three application configurations (Sec IV.C).

    ``total_iterations`` defaults to the paper's fifty; ablations may
    shorten or lengthen the run (the per-event cost model is linear, so
    derived *ratios* are iteration-count invariant).
    """

    index: int
    io_period: int          # visualize/dump every N-th iteration
    description: str
    total_iterations: int = ITERATIONS
    #: Explicit dump schedule (1-based iteration numbers); overrides the
    #: periodic cadence when set.  Lets synthetic applications model
    #: bursty output (an AMR code dumping more around regrid events).
    io_schedule: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.total_iterations < 1 or self.io_period < 1:
            raise ConfigError("iterations and io_period must be >= 1")
        if self.io_schedule is not None:
            bad = [i for i in self.io_schedule
                   if not 1 <= i <= self.total_iterations]
            if bad:
                raise ConfigError(f"io_schedule entries out of range: {bad}")

    @property
    def name(self) -> str:
        """Human-readable name of this configuration."""
        return f"Case Study {self.index}"

    @property
    def iterations(self) -> int:
        """Number of pipeline timesteps in this configuration."""
        return self.total_iterations

    def io_iterations(self) -> list[int]:
        """Iterations (1-based) on which I/O and visualization happen.

        Case 3's "every eighth iteration" yields 6 events over 50
        iterations (8, 16, ..., 48), consistent with Fig 4's 9 % write
        share.
        """
        if self.io_schedule is not None:
            return sorted(set(self.io_schedule))
        return [i for i in range(1, self.iterations + 1) if i % self.io_period == 0]


CASE_STUDIES: dict[int, CaseStudyConfig] = {
    1: CaseStudyConfig(1, 1, "I/O and visualization every iteration"),
    2: CaseStudyConfig(2, 2, "I/O and visualization every alternate iteration"),
    3: CaseStudyConfig(3, 8, "I/O and visualization every eighth iteration"),
}


# -- expected observables (used by benches to check reproduction shape) --------

#: Paper-reported values, for EXPERIMENTS.md comparisons.
PAPER = {
    "energy_savings_pct": {1: 43.0, 2: 30.0, 3: 18.0},
    "avg_power_increase_pct": {1: 8.0, 2: 5.0, 3: 3.0},
    "fig4_shares": {
        1: {"simulation": 0.33, "nnwrite": 0.30, "nnread": 0.27, "visualization": 0.10},
        2: {"simulation": 0.50, "nnwrite": 0.22, "nnread": 0.21, "visualization": 0.07},
        3: {"simulation": 0.80, "nnwrite": 0.09, "nnread": 0.08, "visualization": 0.03},
    },
    "table2": {
        "nnread": {"total_w": 115.1, "dynamic_w": 10.3},
        "nnwrite": {"total_w": 114.8, "dynamic_w": 10.0},
    },
    "phase_power_w": {"simulation": 143.0, "visualization": 121.0},
    "static_floor_w": 104.8,
    "savings_static_fraction": 0.91,
    "table3": {
        "seq_read": {"time_s": 35.9, "system_w": 118.0, "disk_dyn_w": 13.5,
                     "disk_dyn_kj": 0.4, "system_kj": 4.2},
        "rand_read": {"time_s": 2230.0, "system_w": 107.0, "disk_dyn_w": 2.5,
                      "disk_dyn_kj": 5.5, "system_kj": 238.6},
        "seq_write": {"time_s": 27.0, "system_w": 115.4, "disk_dyn_w": 10.9,
                      # The paper prints 2.9 kJ; 10.9 W x 27 s = 0.29 kJ —
                      # a likely factor-of-10 typo we flag in EXPERIMENTS.md.
                      "disk_dyn_kj": 0.29, "system_kj": 3.1},
        "rand_write": {"time_s": 31.0, "system_w": 117.9, "disk_dyn_w": 13.4,
                       "disk_dyn_kj": 0.4, "system_kj": 3.6},
    },
}
