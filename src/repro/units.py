"""Unit constants and formatting helpers.

The paper mixes SI and binary units (a "128 KB" grid is 128 KiB of float64
data; disk bandwidth is quoted in Gbps; energies in kJ).  Centralizing the
constants here keeps every model honest about which convention it uses.

All internal computation uses base SI units: seconds, bytes, watts, joules,
hertz.  Helpers convert for display only.
"""

from __future__ import annotations

from repro.errors import ConfigError

# ---------------------------------------------------------------------------
# Byte sizes (binary, as used for memory/grid sizes)
# ---------------------------------------------------------------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal byte sizes (as used by disk vendors and network links)
KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

# ---------------------------------------------------------------------------
# Frequency
# ---------------------------------------------------------------------------
MHZ = 1e6
GHZ = 1e9

# ---------------------------------------------------------------------------
# Energy / power
# ---------------------------------------------------------------------------
KJ = 1e3   # kilojoule in joules
MJ = 1e6

#: Energy-counter quantum of the RAPL interface on Sandy Bridge:
#: 1 / 2**16 J  (the ENERGY_STATUS MSR increments in units of 15.3 uJ).
RAPL_ENERGY_UNIT_J = 1.0 / (1 << 16)


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``131072 -> '128.0 KiB'``."""
    n = float(n)
    for unit, suffix in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.1f} {suffix}"
    return f"{n:.0f} B"


def fmt_seconds(t: float) -> str:
    """Format a duration, e.g. ``0.00123 -> '1.23 ms'``, ``95 -> '1m35.0s'``."""
    if t < 0:
        return "-" + fmt_seconds(-t)
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.2f} ms"
    if t < MINUTE:
        return f"{t:.2f} s"
    m, s = divmod(t, MINUTE)
    return f"{int(m)}m{s:.1f}s"


def fmt_power(w: float) -> str:
    """Format a power value, e.g. ``143.217 -> '143.2 W'``."""
    if abs(w) >= 1e6:
        return f"{w / 1e6:.2f} MW"
    if abs(w) >= 1e3:
        return f"{w / 1e3:.2f} kW"
    return f"{w:.1f} W"


def fmt_energy(j: float) -> str:
    """Format an energy value, e.g. ``32650 -> '32.65 kJ'``."""
    if abs(j) >= MJ:
        return f"{j / MJ:.2f} MJ"
    if abs(j) >= KJ:
        return f"{j / KJ:.2f} kJ"
    return f"{j:.1f} J"


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert a link/interface rate in gigabits per second to bytes/s.

    Table I quotes the SATA interface as "6.0 Gbps"; that is a *decimal*
    gigabit rate.
    """
    return gbps * 1e9 / 8.0


def rpm_to_rev_time(rpm: float) -> float:
    """Full-revolution time in seconds of a platter spinning at ``rpm``."""
    if rpm <= 0:
        raise ConfigError(f"rpm must be positive, got {rpm}")
    return 60.0 / rpm
