"""RGB image buffer and pure-Python PPM / PNG encoders.

No imaging libraries: PPM is trivial, and PNG is assembled from zlib
streams and hand-built chunks (signature, IHDR, IDAT, IEND with CRCs).
The PNG output is byte-level tested against the spec in the test suite.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.errors import RenderError


class Image:
    """HxWx3 uint8 RGB image."""

    def __init__(self, height: int, width: int) -> None:
        if height <= 0 or width <= 0:
            raise RenderError(f"image dimensions must be positive, got {height}x{width}")
        self.pixels = np.zeros((height, width, 3), dtype=np.uint8)

    @classmethod
    def from_array(cls, rgb: np.ndarray) -> "Image":
        """Wrap an existing HxWx3 uint8 array."""
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise RenderError(f"expected HxWx3 array, got shape {rgb.shape}")
        img = cls(rgb.shape[0], rgb.shape[1])
        img.pixels = np.ascontiguousarray(rgb, dtype=np.uint8)
        return img

    @property
    def height(self) -> int:
        """Image height in pixels."""
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        """Image width in pixels."""
        return self.pixels.shape[1]

    @property
    def nbytes(self) -> int:
        """Size of the stored data in bytes."""
        return self.pixels.nbytes

    def fill(self, r: int, g: int, b: int) -> None:
        """Set every pixel to the given color."""
        self.pixels[:, :] = (r, g, b)

    def to_ppm(self) -> bytes:
        """Encode as binary PPM (P6)."""
        return encode_ppm(self.pixels)

    def to_png(self, compress_level: int = 6) -> bytes:
        """Encode as PNG (``compress_level`` is zlib's 0..9 knob)."""
        return encode_png(self.pixels, compress_level)


def encode_ppm(rgb: np.ndarray) -> bytes:
    """Binary PPM (P6) encoding."""
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise RenderError(f"expected HxWx3 array, got shape {rgb.shape}")
    h, w = rgb.shape[:2]
    header = f"P6\n{w} {h}\n255\n".encode()
    return header + np.ascontiguousarray(rgb, dtype=np.uint8).tobytes()


def _png_chunk(tag: bytes, payload: bytes) -> bytes:
    body = tag + payload
    return struct.pack(">I", len(payload)) + body + struct.pack(
        ">I", zlib.crc32(body) & 0xFFFFFFFF
    )


PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def encode_png(rgb: np.ndarray, compress_level: int = 6) -> bytes:
    """Minimal 8-bit truecolor PNG encoding (filter type 0 per scanline)."""
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise RenderError(f"expected HxWx3 array, got shape {rgb.shape}")
    if rgb.dtype != np.uint8:
        raise RenderError(f"expected uint8 pixels, got {rgb.dtype}")
    h, w = rgb.shape[:2]
    ihdr = struct.pack(">IIBBBBB", w, h, 8, 2, 0, 0, 0)  # 8-bit RGB
    # Prepend filter byte 0 to every scanline.
    raw = np.empty((h, 1 + w * 3), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = rgb.reshape(h, w * 3)
    idat = zlib.compress(raw.tobytes(), compress_level)
    return (
        PNG_SIGNATURE
        + _png_chunk(b"IHDR", ihdr)
        + _png_chunk(b"IDAT", idat)
        + _png_chunk(b"IEND", b"")
    )


def decode_png_size(png: bytes) -> tuple[int, int]:
    """Read (height, width) back out of a PNG header (validation helper)."""
    if png[:8] != PNG_SIGNATURE:
        raise RenderError("not a PNG: bad signature")
    if png[12:16] != b"IHDR":
        raise RenderError("not a PNG: first chunk is not IHDR")
    w, h = struct.unpack(">II", png[16:24])
    return h, w
