"""Minimal ray-cast volume renderer (related-work extension).

The in-situ literature the paper builds on is largely volume rendering
(Yu et al., Childs et al., Peterka et al.).  This module provides an
axis-aligned orthographic ray caster with emission-absorption compositing
— enough to exercise a "render a 3-D field in situ" pipeline variant and
the compositing module's parallel-image path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RenderError
from repro.viz.colormap import Colormap, get_colormap
from repro.viz.image import Image
from repro.viz.render import normalize


@dataclass(frozen=True)
class VolumeCamera:
    """Orthographic camera looking down one axis of the volume.

    ``axis`` selects the traversal direction (0, 1, or 2); ``samples``
    caps the number of composited slabs (subsampled evenly when the
    volume is deeper).
    """

    axis: int = 0
    samples: int = 64
    opacity_scale: float = 4.0

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise RenderError("axis must be 0, 1 or 2")
        if self.samples < 1:
            raise RenderError("need at least one sample along the ray")
        if self.opacity_scale <= 0:
            raise RenderError("opacity scale must be positive")


def render_volume(
    volume: np.ndarray,
    camera: VolumeCamera = VolumeCamera(),
    colormap: Colormap | str = "heat",
) -> Image:
    """Emission-absorption composite of a 3-D scalar field.

    Front-to-back compositing:  C += (1 - A) * a_i * c_i;  A += (1 - A) * a_i.
    """
    vol = np.asarray(volume, dtype=float)
    if vol.ndim != 3:
        raise RenderError(f"expected 3-D volume, got {vol.ndim}-D")
    cmap = get_colormap(colormap) if isinstance(colormap, str) else colormap
    vol = np.moveaxis(vol, camera.axis, 0)
    depth = vol.shape[0]
    take = np.linspace(0, depth - 1, min(camera.samples, depth)).astype(int)
    norm = normalize(vol)

    h, w = vol.shape[1], vol.shape[2]
    color_acc = np.zeros((h, w, 3))
    alpha_acc = np.zeros((h, w, 1))
    base_alpha = min(1.0, camera.opacity_scale / len(take))
    for k in take:
        slab = norm[k]
        rgb = cmap(slab).astype(float) / 255.0
        a = (slab * base_alpha)[..., None]
        weight = (1.0 - alpha_acc) * a
        color_acc += weight * rgb
        alpha_acc += weight
    out = np.clip(color_acc * 255.0, 0, 255).astype(np.uint8)
    return Image.from_array(out)
