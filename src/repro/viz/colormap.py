"""Colormaps built from control-point interpolation.

Sequential maps are monotone in relative luminance (property-tested) so
that hotter always reads as brighter — the basic perceptual requirement
for a temperature field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RenderError


@dataclass(frozen=True)
class Colormap:
    """Piecewise-linear RGB colormap over [0, 1].

    ``stops`` are (position, (r, g, b)) control points with positions
    strictly increasing from 0 to 1 and channels in [0, 255].
    """

    name: str
    stops: tuple[tuple[float, tuple[int, int, int]], ...]

    def __post_init__(self) -> None:
        if len(self.stops) < 2:
            raise RenderError("colormap needs at least two stops")
        positions = [p for p, _ in self.stops]
        if positions[0] != 0.0 or positions[-1] != 1.0:
            raise RenderError("colormap stops must span [0, 1]")
        if any(b <= a for a, b in zip(positions, positions[1:])):
            raise RenderError("colormap stop positions must strictly increase")
        for _, rgb in self.stops:
            if len(rgb) != 3 or any(not 0 <= c <= 255 for c in rgb):
                raise RenderError(f"bad color {rgb}")
        # Interpolation tables, built once: __call__ sits inside the
        # per-frame rasterize loop (frozen dataclass, hence the setattr).
        object.__setattr__(self, "_positions", np.array(positions))
        object.__setattr__(
            self, "_colors",
            np.array([rgb for _, rgb in self.stops], dtype=float))

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Map values in [0, 1] to uint8 RGB; out-of-range values clip."""
        return self.map_unit(np.clip(np.asarray(values, dtype=float), 0.0, 1.0))

    def map_unit(self, v: np.ndarray) -> np.ndarray:
        """Map an already-clipped float array in [0, 1] to uint8 RGB.

        The fused render path normalizes (and clips) the field itself, so
        re-clipping here would be a wasted full-array pass; results are
        bit-identical to ``__call__`` for in-range input.
        """
        colors = self._colors
        out = np.empty(v.shape + (3,), dtype=np.uint8)
        for ch in range(3):
            out[..., ch] = np.interp(v, self._positions, colors[:, ch]).round()
        return out

    def luminance(self, values: np.ndarray) -> np.ndarray:
        """Rec. 709 relative luminance of the mapped colors (0-255 scale)."""
        rgb = self(values).astype(float)
        return 0.2126 * rgb[..., 0] + 0.7152 * rgb[..., 1] + 0.0722 * rgb[..., 2]


#: Black-body style map for temperature fields (the default).
HEAT = Colormap("heat", (
    (0.00, (0, 0, 0)),
    (0.35, (128, 0, 0)),
    (0.60, (255, 64, 0)),
    (0.85, (255, 200, 32)),
    (1.00, (255, 255, 255)),
))

#: Blue-to-yellow perceptual-ish sequential map.
VIRIDIS_LIKE = Colormap("viridis-like", (
    (0.00, (68, 1, 84)),
    (0.25, (59, 82, 139)),
    (0.50, (33, 145, 140)),
    (0.75, (94, 201, 98)),
    (1.00, (253, 231, 37)),
))

#: Simple grayscale.
GRAY = Colormap("gray", (
    (0.0, (0, 0, 0)),
    (1.0, (255, 255, 255)),
))

#: Diverging map for signed anomalies (not luminance-monotone by design).
COOLWARM = Colormap("coolwarm", (
    (0.0, (59, 76, 192)),
    (0.5, (221, 221, 221)),
    (1.0, (180, 4, 38)),
))

COLORMAPS: dict[str, Colormap] = {
    cm.name: cm for cm in (HEAT, VIRIDIS_LIKE, GRAY, COOLWARM)
}

#: Maps expected to be monotone in luminance (tested property).
SEQUENTIAL = ("heat", "viridis-like", "gray")


def get_colormap(name: str) -> Colormap:
    """Look up a registered colormap by name."""
    try:
        return COLORMAPS[name]
    except KeyError:
        raise RenderError(
            f"unknown colormap {name!r}; have {sorted(COLORMAPS)}"
        ) from None
