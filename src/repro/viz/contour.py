"""Marching-squares isocontour extraction.

Vectorized case classification (one pass over all cells) with per-segment
linear interpolation of edge crossings.  Coordinates are returned in
(row, col) field space, with each segment as ((r0, c0), (r1, c1)).

The ambiguous saddle cases (5 and 10) are resolved with the cell-center
average, the standard disambiguation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RenderError

Segment = tuple[tuple[float, float], tuple[float, float]]

# Edge identifiers within a cell whose corners are
#   tl=(r, c)   tr=(r, c+1)
#   bl=(r+1, c) br=(r+1, c+1)
# Edges: 0=top (tl-tr), 1=right (tr-br), 2=bottom (bl-br), 3=left (tl-bl).
_CASE_EDGES: dict[int, tuple[tuple[int, int], ...]] = {
    0: (), 15: (),
    1: ((3, 0),), 14: ((3, 0),),
    2: ((0, 1),), 13: ((0, 1),),
    3: ((3, 1),), 12: ((3, 1),),
    4: ((1, 2),), 11: ((1, 2),),
    6: ((0, 2),), 9: ((0, 2),),
    7: ((3, 2),), 8: ((3, 2),),
    # Saddles handled separately: 5 and 10.
}


def _interp(a: float, b: float, level: float) -> float:
    """Fractional position of ``level`` between corner values a and b."""
    if a == b:
        return 0.5
    t = (level - a) / (b - a)
    return min(1.0, max(0.0, t))


#: Per-case (edge0, edge1) lookup in array form (saddles get a dummy 0;
#: they are resolved per cell by the center average).
_LUT_E0 = np.zeros(16, dtype=np.int64)
_LUT_E1 = np.zeros(16, dtype=np.int64)
for _k, _pairs in _CASE_EDGES.items():
    if _pairs:
        _LUT_E0[_k], _LUT_E1[_k] = _pairs[0]
del _k, _pairs


def _validated_field(field: np.ndarray) -> np.ndarray:
    """The field as a checked float array (shared across a frame's levels)."""
    arr = np.asarray(field, dtype=float)
    if arr.ndim != 2 or arr.shape[0] < 2 or arr.shape[1] < 2:
        raise RenderError("field must be 2-D with at least 2x2 samples")
    if not np.isfinite(arr).all():
        raise RenderError("field contains non-finite values")
    return arr


def _level_segments(arr: np.ndarray, level: float) -> list[Segment]:
    """One level's segments over a validated field, in one vectorized sweep.

    Cells stay in row-major order and each cell's segments in case-table
    order, matching (bit for bit) the scalar per-cell walk this replaces:
    every edge crossing uses the same ``(level - a) / (b - a)`` and
    clamp, every saddle the same left-associated center average.
    """
    tl = arr[:-1, :-1]
    tr = arr[:-1, 1:]
    bl = arr[1:, :-1]
    br = arr[1:, 1:]
    case = (
        (tl >= level).astype(np.uint8)
        | ((tr >= level).astype(np.uint8) << 1)
        | ((br >= level).astype(np.uint8) << 2)
        | ((bl >= level).astype(np.uint8) << 3)
    )
    rows, cols = np.nonzero((case != 0) & (case != 15))
    if rows.size == 0:
        return []
    v_tl = tl[rows, cols]
    v_tr = tr[rows, cols]
    v_bl = bl[rows, cols]
    v_br = br[rows, cols]

    def interp(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        equal = a == b
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (level - a) / (b - a)
        np.clip(t, 0.0, 1.0, out=t)
        t[equal] = 0.5
        return t

    # Edge crossing points, one row per edge id (0=top 1=right 2=bottom 3=left).
    point_r = np.empty((4, rows.size))
    point_c = np.empty((4, rows.size))
    point_r[0] = rows
    point_c[0] = cols + interp(v_tl, v_tr)
    point_r[1] = rows + interp(v_tr, v_br)
    point_c[1] = cols + 1
    point_r[2] = rows + 1
    point_c[2] = cols + interp(v_bl, v_br)
    point_r[3] = rows + interp(v_tl, v_bl)
    point_c[3] = cols

    k = case[rows, cols].astype(np.int64)
    saddle = (k == 5) | (k == 10)
    cell_idx = np.arange(rows.size)
    e0 = _LUT_E0[k]
    e1 = _LUT_E1[k]
    if saddle.any():
        s = np.nonzero(saddle)[0]
        center = v_tl[s] + v_tr[s]
        center += v_bl[s]
        center += v_br[s]
        center /= 4.0
        # Case 5 above-center and case 10 below-center share the
        # ((0, 1), (2, 3)) pairing; the other two share ((0, 3), (1, 2)).
        joined = (k[s] == 5) == (center >= level)
        e0_b = np.where(joined, 2, 1)
        e1_b = np.where(joined, 3, 2)
        e0[s] = 0
        e1[s] = np.where(joined, 1, 3)
        # Interleave each saddle's second segment right after its first.
        order = np.argsort(np.concatenate((cell_idx, s)), kind="stable")
        cell_idx = np.concatenate((cell_idx, s))[order]
        e0 = np.concatenate((e0, e0_b))[order]
        e1 = np.concatenate((e1, e1_b))[order]
    r0 = point_r[e0, cell_idx]
    c0 = point_c[e0, cell_idx]
    r1 = point_r[e1, cell_idx]
    c1 = point_c[e1, cell_idx]
    return list(zip(zip(r0.tolist(), c0.tolist()),
                    zip(r1.tolist(), c1.tolist())))


def marching_squares(field: np.ndarray, level: float) -> list[Segment]:
    """Extract the ``level`` isocontour of a 2-D scalar field."""
    return _level_segments(_validated_field(field), level)


def contour_length(segments: list[Segment]) -> float:
    """Total polyline length (field-space units)."""
    total = 0.0
    for (r0, c0), (r1, c1) in segments:
        total += float(np.hypot(r1 - r0, c1 - c0))
    return total
