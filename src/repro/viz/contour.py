"""Marching-squares isocontour extraction.

Vectorized case classification (one pass over all cells) with per-segment
linear interpolation of edge crossings.  Coordinates are returned in
(row, col) field space, with each segment as ((r0, c0), (r1, c1)).

The ambiguous saddle cases (5 and 10) are resolved with the cell-center
average, the standard disambiguation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RenderError

Segment = tuple[tuple[float, float], tuple[float, float]]

# Edge identifiers within a cell whose corners are
#   tl=(r, c)   tr=(r, c+1)
#   bl=(r+1, c) br=(r+1, c+1)
# Edges: 0=top (tl-tr), 1=right (tr-br), 2=bottom (bl-br), 3=left (tl-bl).
_CASE_EDGES: dict[int, tuple[tuple[int, int], ...]] = {
    0: (), 15: (),
    1: ((3, 0),), 14: ((3, 0),),
    2: ((0, 1),), 13: ((0, 1),),
    3: ((3, 1),), 12: ((3, 1),),
    4: ((1, 2),), 11: ((1, 2),),
    6: ((0, 2),), 9: ((0, 2),),
    7: ((3, 2),), 8: ((3, 2),),
    # Saddles handled separately: 5 and 10.
}


def _interp(a: float, b: float, level: float) -> float:
    """Fractional position of ``level`` between corner values a and b."""
    if a == b:
        return 0.5
    t = (level - a) / (b - a)
    return min(1.0, max(0.0, t))


def marching_squares(field: np.ndarray, level: float) -> list[Segment]:
    """Extract the ``level`` isocontour of a 2-D scalar field."""
    arr = np.asarray(field, dtype=float)
    if arr.ndim != 2 or arr.shape[0] < 2 or arr.shape[1] < 2:
        raise RenderError("field must be 2-D with at least 2x2 samples")
    if not np.isfinite(arr).all():
        raise RenderError("field contains non-finite values")

    tl = arr[:-1, :-1]
    tr = arr[:-1, 1:]
    bl = arr[1:, :-1]
    br = arr[1:, 1:]
    case = (
        (tl >= level).astype(np.uint8)
        | ((tr >= level).astype(np.uint8) << 1)
        | ((br >= level).astype(np.uint8) << 2)
        | ((bl >= level).astype(np.uint8) << 3)
    )
    rows, cols = np.nonzero((case != 0) & (case != 15))

    segments: list[Segment] = []
    for r, c in zip(rows.tolist(), cols.tolist()):
        v_tl, v_tr = float(arr[r, c]), float(arr[r, c + 1])
        v_bl, v_br = float(arr[r + 1, c]), float(arr[r + 1, c + 1])

        def edge_point(edge: int) -> tuple[float, float]:
            if edge == 0:   # top
                return (float(r), c + _interp(v_tl, v_tr, level))
            if edge == 1:   # right
                return (r + _interp(v_tr, v_br, level), float(c + 1))
            if edge == 2:   # bottom
                return (float(r + 1), c + _interp(v_bl, v_br, level))
            return (r + _interp(v_tl, v_bl, level), float(c))  # left

        k = int(case[r, c])
        if k in (5, 10):
            center = (v_tl + v_tr + v_bl + v_br) / 4.0
            if k == 5:  # tl and br above
                pairs = ((0, 1), (2, 3)) if center >= level else ((0, 3), (1, 2))
            else:       # tr and bl above
                pairs = ((0, 3), (1, 2)) if center >= level else ((0, 1), (2, 3))
        else:
            pairs = _CASE_EDGES[k]
        for e0, e1 in pairs:
            segments.append((edge_point(e0), edge_point(e1)))
    return segments


def contour_length(segments: list[Segment]) -> float:
    """Total polyline length (field-space units)."""
    total = 0.0
    for (r0, c0), (r1, c1) in segments:
        total += float(np.hypot(r1 - r0, c1 - c0))
    return total
