"""Animated PNG (APNG) encoder for in-situ frame sequences.

"Real-time" in-situ visualization produces a frame stream; this module
packs it into a single self-playing file using the APNG extension
(acTL / fcTL / fdAT chunks over a standard PNG), pure Python like the
still-image encoder.  Any modern browser plays the result.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.errors import RenderError
from repro.viz.image import PNG_SIGNATURE, _png_chunk


def _scanlines(rgb: np.ndarray) -> bytes:
    h, w = rgb.shape[:2]
    raw = np.empty((h, 1 + w * 3), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = rgb.reshape(h, w * 3)
    return raw.tobytes()


def encode_apng(frames, fps: float = 10.0, loops: int = 0,
                compress_level: int = 6) -> bytes:
    """Encode uint8 HxWx3 frames into an animated PNG.

    ``loops=0`` plays forever.  All frames must share one shape.
    """
    frames = [np.asarray(f) for f in frames]
    if not frames:
        raise RenderError("no frames to animate")
    shape = frames[0].shape
    if len(shape) != 3 or shape[2] != 3:
        raise RenderError(f"frames must be HxWx3, got {shape}")
    for f in frames:
        if f.shape != shape:
            raise RenderError("all frames must share a shape")
        if f.dtype != np.uint8:
            raise RenderError(f"frames must be uint8, got {f.dtype}")
    if fps <= 0:
        raise RenderError("fps must be positive")
    if loops < 0:
        raise RenderError("loops must be >= 0")

    h, w = shape[:2]
    delay_den = 1000
    delay_num = max(1, round(delay_den / fps))

    out = bytearray(PNG_SIGNATURE)
    out += _png_chunk(b"IHDR", struct.pack(">IIBBBBB", w, h, 8, 2, 0, 0, 0))
    out += _png_chunk(b"acTL", struct.pack(">II", len(frames), loops))

    seq = 0
    for i, frame in enumerate(frames):
        fctl = struct.pack(
            ">IIIIIHHBB", seq, w, h, 0, 0, delay_num, delay_den, 0, 0
        )
        out += _png_chunk(b"fcTL", fctl)
        seq += 1
        compressed = zlib.compress(_scanlines(frame), compress_level)
        if i == 0:
            out += _png_chunk(b"IDAT", compressed)
        else:
            out += _png_chunk(b"fdAT", struct.pack(">I", seq) + compressed)
            seq += 1
    out += _png_chunk(b"IEND", b"")
    return bytes(out)


def apng_chunks(blob: bytes) -> list[tuple[bytes, bytes]]:
    """Parse (tag, payload) chunk pairs; CRCs validated (inspection helper)."""
    if blob[:8] != PNG_SIGNATURE:
        raise RenderError("not a PNG: bad signature")
    chunks = []
    pos = 8
    while pos < len(blob):
        if pos + 12 > len(blob):
            raise RenderError("truncated chunk")
        (length,) = struct.unpack(">I", blob[pos : pos + 4])
        tag = blob[pos + 4 : pos + 8]
        payload = blob[pos + 8 : pos + 8 + length]
        (crc,) = struct.unpack(">I", blob[pos + 8 + length : pos + 12 + length])
        if crc != (zlib.crc32(tag + payload) & 0xFFFFFFFF):
            raise RenderError(f"chunk {tag!r} failed CRC")
        chunks.append((tag, payload))
        pos += 12 + length
    return chunks
