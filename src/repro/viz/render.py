"""Scalar-field rasterization.

`render_field` is the in-situ pipeline's workhorse: normalize the
temperature field, resample it to the output resolution, push it through a
colormap, and (optionally) burn in isocontours.  Work accounting for the
cost model (pixels shaded, bytes produced) rides along on the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RenderError
from repro.viz.colormap import Colormap, get_colormap
from repro.viz.contour import marching_squares
from repro.viz.image import Image


def resample_nearest(field: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resample of a 2-D field to (height, width)."""
    if field.ndim != 2:
        raise RenderError(f"expected 2-D field, got {field.ndim}-D")
    if height <= 0 or width <= 0:
        raise RenderError("target resolution must be positive")
    rows = np.minimum(
        (np.arange(height) * field.shape[0] / height).astype(int),
        field.shape[0] - 1,
    )
    cols = np.minimum(
        (np.arange(width) * field.shape[1] / width).astype(int),
        field.shape[1] - 1,
    )
    return field[np.ix_(rows, cols)]


def normalize(field: np.ndarray, vmin: float | None = None,
              vmax: float | None = None) -> np.ndarray:
    """Scale a field to [0, 1]; a constant field maps to 0.5."""
    lo = float(field.min()) if vmin is None else vmin
    hi = float(field.max()) if vmax is None else vmax
    if hi <= lo:
        return np.full_like(field, 0.5, dtype=float)
    return np.clip((field - lo) / (hi - lo), 0.0, 1.0)


@dataclass(frozen=True)
class RenderResult:
    """A rendered frame plus its work accounting."""

    image: Image
    pixels_shaded: int
    contour_segments: int

    @property
    def nbytes(self) -> int:
        """Size of the stored data in bytes."""
        return self.image.nbytes


def render_field(
    field: np.ndarray,
    colormap: Colormap | str = "heat",
    height: int = 256,
    width: int = 256,
    vmin: float | None = None,
    vmax: float | None = None,
) -> RenderResult:
    """Colormapped raster of a scalar field."""
    cmap = get_colormap(colormap) if isinstance(colormap, str) else colormap
    resampled = resample_nearest(np.asarray(field, dtype=float), height, width)
    rgb = cmap(normalize(resampled, vmin, vmax))
    return RenderResult(Image.from_array(rgb), pixels_shaded=height * width,
                        contour_segments=0)


def render_with_contours(
    field: np.ndarray,
    levels: tuple[float, ...],
    colormap: Colormap | str = "heat",
    height: int = 256,
    width: int = 256,
    line_color: tuple[int, int, int] = (255, 255, 255),
) -> RenderResult:
    """Colormapped raster with isocontour overlays burned in."""
    if not levels:
        raise RenderError("need at least one contour level")
    base = render_field(field, colormap, height, width)
    pixels = base.image.pixels
    arr = np.asarray(field, dtype=float)
    sy = height / arr.shape[0]
    sx = width / arr.shape[1]
    n_segments = 0
    for level in levels:
        for (r0, c0), (r1, c1) in marching_squares(arr, level):
            n_segments += 1
            # Rasterize the segment with a coarse DDA walk.
            steps = max(2, int(4 * max(abs(r1 - r0) * sy, abs(c1 - c0) * sx)) + 1)
            ts = np.linspace(0.0, 1.0, steps)
            rows = np.clip(((r0 + (r1 - r0) * ts) * sy).astype(int), 0, height - 1)
            cols = np.clip(((c0 + (c1 - c0) * ts) * sx).astype(int), 0, width - 1)
            pixels[rows, cols] = line_color
    return RenderResult(base.image, pixels_shaded=height * width,
                        contour_segments=n_segments)
