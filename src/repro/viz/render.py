"""Scalar-field rasterization.

`render_field` is the in-situ pipeline's workhorse: normalize the
temperature field, resample it to the output resolution, push it through a
colormap, and (optionally) burn in isocontours.  Work accounting for the
cost model (pixels shaded, bytes produced) rides along on the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RenderError
from repro.viz.colormap import Colormap, get_colormap
from repro.viz.contour import _level_segments, _validated_field
from repro.viz.image import Image


def _resample_indices(field: np.ndarray, height: int,
                      width: int) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-neighbour source row/col index vectors for a resample."""
    if field.ndim != 2:
        raise RenderError(f"expected 2-D field, got {field.ndim}-D")
    if height <= 0 or width <= 0:
        raise RenderError("target resolution must be positive")
    rows = np.minimum(
        (np.arange(height) * field.shape[0] / height).astype(int),
        field.shape[0] - 1,
    )
    cols = np.minimum(
        (np.arange(width) * field.shape[1] / width).astype(int),
        field.shape[1] - 1,
    )
    return rows, cols


def _gather(a: np.ndarray, rows: np.ndarray, cols: np.ndarray,
            height: int, width: int) -> np.ndarray:
    """Select ``a[rows, :][:, cols]``, the resample gather.

    Integer upscales (image a whole multiple of the source) reduce to
    block duplication, which ``np.repeat`` performs several times faster
    than a fancy two-axis index; either route selects the same elements.
    """
    src_h, src_w = a.shape[0], a.shape[1]
    if height % src_h == 0 and width % src_w == 0 and height >= src_h \
            and width >= src_w:
        return np.repeat(np.repeat(a, height // src_h, axis=0),
                         width // src_w, axis=1)
    return a[rows][:, cols]


def resample_nearest(field: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resample of a 2-D field to (height, width)."""
    rows, cols = _resample_indices(field, height, width)
    return _gather(field, rows, cols, height, width)


def normalize(field: np.ndarray, vmin: float | None = None,
              vmax: float | None = None) -> np.ndarray:
    """Scale a field to [0, 1]; a constant field maps to 0.5."""
    lo = float(field.min()) if vmin is None else vmin
    hi = float(field.max()) if vmax is None else vmax
    if hi <= lo:
        return np.full_like(field, 0.5, dtype=float)
    return np.clip((field - lo) / (hi - lo), 0.0, 1.0)


@dataclass(frozen=True)
class RenderResult:
    """A rendered frame plus its work accounting."""

    image: Image
    pixels_shaded: int
    contour_segments: int

    @property
    def nbytes(self) -> int:
        """Size of the stored data in bytes."""
        return self.image.nbytes


def _normalize_unit(field: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """In-place-chained :func:`normalize` given precomputed bounds.

    Same op sequence as ``normalize`` (subtract, divide, clip) with the
    divide and clip running in place, so the result is bit-identical
    while two full-size temporaries disappear.
    """
    if hi <= lo:
        return np.full_like(field, 0.5, dtype=float)
    v = field - lo
    v /= hi - lo
    return np.clip(v, 0.0, 1.0, out=v)


def render_field(
    field: np.ndarray,
    colormap: Colormap | str = "heat",
    height: int = 256,
    width: int = 256,
    vmin: float | None = None,
    vmax: float | None = None,
) -> RenderResult:
    """Colormapped raster of a scalar field.

    Fused sweep: normalize and colormap run on whichever side of the
    resample touches fewer samples.  Upscaling (the in-situ default:
    coarse sim grid, finer image) maps each *source* cell once and
    gathers the finished RGB rows/cols; every per-pixel value equals the
    unfused resample→normalize→colormap chain bit for bit, because all
    three stages are pointwise and the nearest-neighbour gather is pure
    duplication (min/max over duplicated samples select the same values).
    """
    cmap = get_colormap(colormap) if isinstance(colormap, str) else colormap
    arr = np.asarray(field, dtype=float)
    rows, cols = _resample_indices(arr, height, width)
    if height >= arr.shape[0] and width >= arr.shape[1]:
        # Upscale: every source cell appears in the output (the index
        # maps are surjective), so bounds over the source equal bounds
        # over the resampled image exactly.
        lo = float(arr.min()) if vmin is None else vmin
        hi = float(arr.max()) if vmax is None else vmax
        rgb_small = cmap.map_unit(_normalize_unit(arr, lo, hi))
        rgb = _gather(rgb_small, rows, cols, height, width)
    else:
        resampled = _gather(arr, rows, cols, height, width)
        lo = float(resampled.min()) if vmin is None else vmin
        hi = float(resampled.max()) if vmax is None else vmax
        rgb = cmap.map_unit(_normalize_unit(resampled, lo, hi))
    return RenderResult(Image.from_array(rgb), pixels_shaded=height * width,
                        contour_segments=0)


def render_with_contours(
    field: np.ndarray,
    levels: tuple[float, ...],
    colormap: Colormap | str = "heat",
    height: int = 256,
    width: int = 256,
    line_color: tuple[int, int, int] = (255, 255, 255),
) -> RenderResult:
    """Colormapped raster with isocontour overlays burned in."""
    if not levels:
        raise RenderError("need at least one contour level")
    base = render_field(field, colormap, height, width)
    pixels = base.image.pixels
    # Validate (and isfinite-scan) the field once for the whole frame;
    # each level then classifies cells in its own vectorized sweep.
    arr = _validated_field(field)
    sy = height / arr.shape[0]
    sx = width / arr.shape[1]
    n_segments = 0
    for level in levels:
        for (r0, c0), (r1, c1) in _level_segments(arr, level):
            n_segments += 1
            # Rasterize the segment with a coarse DDA walk.
            steps = max(2, int(4 * max(abs(r1 - r0) * sy, abs(c1 - c0) * sx)) + 1)
            ts = np.linspace(0.0, 1.0, steps)
            rows = np.clip(((r0 + (r1 - r0) * ts) * sy).astype(int), 0, height - 1)
            cols = np.clip(((c0 + (c1 - c0) * ts) * sx).astype(int), 0, width - 1)
            pixels[rows, cols] = line_color
    return RenderResult(base.image, pixels_shaded=height * width,
                        contour_segments=n_segments)
