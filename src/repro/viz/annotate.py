"""Frame annotation: colorbars and bitmap-font labels.

Production in-situ frames carry their own legend — once the raw data is
gone, an unlabeled image is uninterpretable.  This module burns a
colorbar with tick labels and free-text captions into rendered frames,
using a small built-in 5x7 bitmap font (digits, uppercase, and the
punctuation a value label needs), so frames remain self-describing with
no font dependencies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RenderError
from repro.viz.colormap import Colormap, get_colormap
from repro.viz.image import Image

# 5x7 bitmap glyphs, row-major, '#' = on.  Enough for value labels.
_GLYPHS: dict[str, tuple[str, ...]] = {
    "0": ("#####", "#...#", "#..##", "#.#.#", "##..#", "#...#", "#####"),
    "1": ("..#..", ".##..", "..#..", "..#..", "..#..", "..#..", "#####"),
    "2": ("#####", "....#", "....#", "#####", "#....", "#....", "#####"),
    "3": ("#####", "....#", "....#", "#####", "....#", "....#", "#####"),
    "4": ("#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"),
    "5": ("#####", "#....", "#....", "#####", "....#", "....#", "#####"),
    "6": ("#####", "#....", "#....", "#####", "#...#", "#...#", "#####"),
    "7": ("#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."),
    "8": ("#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"),
    "9": ("#####", "#...#", "#...#", "#####", "....#", "....#", "#####"),
    ".": (".....", ".....", ".....", ".....", ".....", ".##..", ".##.."),
    "-": (".....", ".....", ".....", "#####", ".....", ".....", "....."),
    "+": (".....", "..#..", "..#..", "#####", "..#..", "..#..", "....."),
    "=": (".....", ".....", "#####", ".....", "#####", ".....", "....."),
    " ": (".....",) * 7,
    "C": (".####", "#....", "#....", "#....", "#....", "#....", ".####"),
    "K": ("#...#", "#..#.", "#.#..", "##...", "#.#..", "#..#.", "#...#"),
    "T": ("#####", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."),
    "S": (".####", "#....", "#....", ".###.", "....#", "....#", "####."),
    "W": ("#...#", "#...#", "#...#", "#.#.#", "#.#.#", "##.##", "#...#"),
    "J": ("..###", "...#.", "...#.", "...#.", "...#.", "#..#.", ".##.."),
    ":": (".....", ".##..", ".##..", ".....", ".##..", ".##..", "....."),
}

GLYPH_H, GLYPH_W = 7, 5


def draw_text(image: Image, text: str, row: int, col: int,
              color: tuple[int, int, int] = (255, 255, 255),
              scale: int = 1) -> None:
    """Burn ``text`` into ``image`` at (row, col), in place.

    Unknown characters render as blanks; text is clipped at the image
    border rather than raising (labels near edges are routine).
    """
    if scale < 1:
        raise RenderError("scale must be >= 1")
    pixels = image.pixels
    cursor = col
    for ch in text.upper():
        glyph = _GLYPHS.get(ch, _GLYPHS[" "])
        for gr, line in enumerate(glyph):
            for gc, bit in enumerate(line):
                if bit != "#":
                    continue
                r0 = row + gr * scale
                c0 = cursor + gc * scale
                r1 = min(r0 + scale, image.height)
                c1 = min(c0 + scale, image.width)
                if r0 < image.height and c0 < image.width and r0 >= 0 and c0 >= 0:
                    pixels[r0:r1, c0:c1] = color
        cursor += (GLYPH_W + 1) * scale


def text_width(text: str, scale: int = 1) -> int:
    """Pixel width :func:`draw_text` will use for ``text``."""
    return len(text) * (GLYPH_W + 1) * scale


def draw_colorbar(
    image: Image,
    colormap: Colormap | str,
    vmin: float,
    vmax: float,
    width: int = 14,
    margin: int = 4,
    ticks: int = 3,
) -> None:
    """Burn a vertical colorbar with tick labels onto the right edge."""
    if vmax <= vmin:
        raise RenderError("vmax must exceed vmin")
    if ticks < 2:
        raise RenderError("need at least two ticks")
    cmap = get_colormap(colormap) if isinstance(colormap, str) else colormap
    h = image.height
    bar_h = h - 2 * margin
    if bar_h < 10 or image.width < width + 2 * margin + 30:
        raise RenderError("image too small for a colorbar")
    col0 = image.width - margin - width
    # Gradient: top = vmax, bottom = vmin.
    values = np.linspace(1.0, 0.0, bar_h)
    strip = cmap(values)[:, None, :].repeat(width, axis=1)
    image.pixels[margin : margin + bar_h, col0 : col0 + width] = strip
    # Border.
    image.pixels[margin, col0 : col0 + width] = 255
    image.pixels[margin + bar_h - 1, col0 : col0 + width] = 255
    image.pixels[margin : margin + bar_h, col0] = 255
    image.pixels[margin : margin + bar_h, col0 + width - 1] = 255
    # Tick labels.
    for i in range(ticks):
        frac = i / (ticks - 1)
        value = vmax - frac * (vmax - vmin)
        row = margin + int(frac * (bar_h - 1)) - GLYPH_H // 2
        label = f"{value:.0f}"
        col = col0 - text_width(label) - 2
        draw_text(image, label, max(0, row), max(0, col))


def annotate_frame(
    image: Image,
    colormap: Colormap | str,
    vmin: float,
    vmax: float,
    caption: str | None = None,
) -> Image:
    """Colorbar + optional caption, in place; returns the image."""
    draw_colorbar(image, colormap, vmin, vmax)
    if caption:
        draw_text(image, caption, row=image.height - GLYPH_H - 3, col=4)
    return image
