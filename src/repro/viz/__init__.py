"""Software visualization stack.

The in-situ pipeline genuinely renders the evolving temperature field:
colormapped rasters (:mod:`repro.viz.render`), marching-squares contours
(:mod:`repro.viz.contour`), PPM/PNG encodings (:mod:`repro.viz.image`).
Extensions cover the related work's parallel-rendering machinery: a small
ray-cast volume renderer (:mod:`repro.viz.volume`) and binary-swap style
image compositing (:mod:`repro.viz.compositing`).
"""

from repro.viz.image import Image, encode_png, encode_ppm
from repro.viz.colormap import Colormap, COLORMAPS, get_colormap
from repro.viz.render import render_field, resample_nearest, render_with_contours
from repro.viz.contour import marching_squares
from repro.viz.volume import VolumeCamera, render_volume
from repro.viz.compositing import binary_swap_schedule, composite_over
from repro.viz.annotate import annotate_frame, draw_colorbar, draw_text
from repro.viz.movie import encode_apng

__all__ = [
    "Image",
    "encode_png",
    "encode_ppm",
    "Colormap",
    "COLORMAPS",
    "get_colormap",
    "render_field",
    "render_with_contours",
    "resample_nearest",
    "marching_squares",
    "VolumeCamera",
    "render_volume",
    "binary_swap_schedule",
    "composite_over",
    "annotate_frame",
    "draw_colorbar",
    "draw_text",
    "encode_apng",
]
