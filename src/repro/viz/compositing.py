"""Parallel image compositing (related-work extension).

Implements the communication schedule of binary-swap compositing (Yu et
al.'s 2-3 swap is its generalization) plus the *over* operator, so the
multi-node extension can price the compositing traffic of a distributed
in-situ renderer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RenderError


def composite_over(front_rgba: np.ndarray, back_rgba: np.ndarray) -> np.ndarray:
    """Porter-Duff *over* on premultiplied float RGBA arrays."""
    if front_rgba.shape != back_rgba.shape or front_rgba.shape[-1] != 4:
        raise RenderError("over operator needs equal-shaped RGBA arrays")
    fa = front_rgba[..., 3:4]
    return front_rgba + (1.0 - fa) * back_rgba


def binary_swap_schedule(n_ranks: int) -> list[list[tuple[int, int]]]:
    """Exchange schedule for binary-swap compositing over 2^k ranks.

    Returns one list of (rank, partner) pairs per round; each pair
    appears once (rank < partner).  After k = log2(n) rounds every rank
    owns 1/n of the final image.
    """
    if n_ranks < 1 or (n_ranks & (n_ranks - 1)) != 0:
        raise RenderError(f"binary swap needs a power-of-two rank count, got {n_ranks}")
    rounds: list[list[tuple[int, int]]] = []
    stride = 1
    while stride < n_ranks:
        pairs = []
        for rank in range(n_ranks):
            partner = rank ^ stride
            if rank < partner:
                pairs.append((rank, partner))
        rounds.append(pairs)
        stride <<= 1
    return rounds


def binary_swap_composite(layers: list[np.ndarray]) -> np.ndarray:
    """Full binary-swap run executed in one process.

    ``layers[i]`` is rank i's rendered RGBA layer, depth-ordered front
    (rank 0) to back.  Each round splits the active region in half and
    exchanges; the final gather concatenates every rank's shard.  The
    result must equal (and is tested against) a straight sequential
    front-to-back over-composite.
    """
    n = len(layers)
    if n == 0:
        raise RenderError("no layers to composite")
    shape = layers[0].shape
    if any(l.shape != shape for l in layers):
        raise RenderError("all layers must share a shape")
    if n == 1:
        return layers[0].copy()
    # own[rank] = (start_row, end_row, buffer) of the region rank holds.
    height = shape[0]
    own = [(0, height, layer.astype(float).copy()) for layer in layers]
    for pairs in binary_swap_schedule(n):
        new_own = list(own)
        for a, b in pairs:
            a0, a1, buf_a = own[a]
            b0, b1, buf_b = own[b]
            if (a0, a1) != (b0, b1):
                raise RenderError("binary swap invariant broken: regions differ")
            mid = (a0 + a1) // 2
            # Depth order is by rank: a < b means a's layer is in front.
            top = composite_over(buf_a[: mid - a0], buf_b[: mid - b0])
            bottom = composite_over(buf_a[mid - a0 :], buf_b[mid - b0 :])
            new_own[a] = (a0, mid, top)
            new_own[b] = (mid, a1, bottom)
        own = new_own
    out = np.zeros(shape, dtype=float)
    for start, end, buf in own:
        out[start:end] = buf
    return out


def compositing_bytes(n_ranks: int, image_bytes: int) -> int:
    """Total wire bytes of one binary-swap composite.

    Each round every rank sends half of its current region: n/2 pairs
    exchange 2 messages of image_bytes / 2^round each.
    """
    if n_ranks < 1 or (n_ranks & (n_ranks - 1)) != 0:
        raise RenderError("binary swap needs a power-of-two rank count")
    total = 0
    shard = image_bytes // 2
    stride = 1
    while stride < n_ranks:
        total += n_ranks * shard
        shard //= 2
        stride <<= 1
    return total
