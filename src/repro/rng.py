"""Deterministic random-number streams.

Every stochastic element of the reproduction (meter noise, seek distances,
random I/O offsets, initial conditions) draws from a named stream derived
from a single experiment seed, so that:

* the same experiment configuration always produces the same numbers, and
* adding a new consumer of randomness does not perturb existing streams
  (streams are keyed by name, not by draw order).
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20150525  # IPDPSW 2015 workshop date


def stream(name: str, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for ``name``.

    The stream is derived by hashing ``(seed, name)`` so that distinct names
    give statistically independent streams and the mapping is stable across
    processes and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    # 4 words of 64 bits each seed the SeedSequence entropy pool.
    entropy = [int.from_bytes(digest[i : i + 8], "little") for i in range(0, 32, 8)]
    return np.random.default_rng(np.random.SeedSequence(entropy))


class RngRegistry:
    """A per-experiment registry of named random streams.

    Instances are cheap; pipelines create one per run so that two runs with
    the same seed are bit-identical even when executed in one process.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = stream(name, self.seed)
        return self._streams[name]

    def fork(self, suffix: str) -> "RngRegistry":
        """Return a registry whose streams are all distinct from this one's.

        Useful to give each pipeline run its own namespace:
        ``rig = parent.fork("run-3")``.
        """
        child_seed = int.from_bytes(
            hashlib.sha256(f"{self.seed}/{suffix}".encode()).digest()[:8], "little"
        )
        return RngRegistry(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
