"""Terminal charts and CSV export for the reproduced figures.

The benchmark harness prints every figure as an ASCII rendering and can
save the underlying series as CSV, so the reproduction is inspectable
without any plotting dependency.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

from repro.errors import ReproError
from repro.trace.export import series_to_csv


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Horizontal bar chart (used for Figs 7-11's grouped bars)."""
    if len(labels) != len(values):
        raise ReproError("labels and values must align")
    if not values:
        raise ReproError("nothing to plot")
    if width < 10:
        raise ReproError("width too small")
    peak = max(values)
    if peak <= 0:
        raise ReproError("values must contain something positive")
    label_w = max(len(l) for l in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{label.ljust(label_w)} |{bar} {value:.1f}{unit}")
    return "\n".join(lines)


def ascii_series(
    t: Sequence[float],
    channels: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 78,
    title: str | None = None,
) -> str:
    """Multi-channel line chart (used for the Fig 5/6 power profiles).

    Each channel gets a distinct glyph; samples are decimated/averaged to
    the plot width.
    """
    if not channels:
        raise ReproError("no channels")
    n = len(t)
    if n == 0 or any(len(c) != n for c in channels.values()):
        raise ReproError("channel lengths must match the time base")
    glyphs = "*o+x.#"
    all_vals = [v for c in channels.values() for v in c]
    lo, hi = min(all_vals), max(all_vals)
    if hi <= lo:
        hi = lo + 1.0
    cols = min(width, n)
    grid = [[" "] * cols for _ in range(height)]

    def bucket(series: Sequence[float], col: int) -> float:
        i0 = col * n // cols
        i1 = max(i0 + 1, (col + 1) * n // cols)
        window = series[i0:i1]
        return sum(window) / len(window)

    for ci, (name, series) in enumerate(channels.items()):
        glyph = glyphs[ci % len(glyphs)]
        for col in range(cols):
            v = bucket(series, col)
            row = height - 1 - int((v - lo) / (hi - lo) * (height - 1))
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:8.1f} +" + "-" * cols)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{lo:8.1f} +" + "-" * cols)
    lines.append(" " * 10 + f"t = {t[0]:.0f} .. {t[-1]:.0f} s")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(channels)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def save_csv(path: str, columns: Mapping[str, Sequence[float]]) -> str:
    """Write parallel columns to ``path`` as CSV; returns the path."""
    text = series_to_csv(columns)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path
