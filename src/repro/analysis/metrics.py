"""Greenness metrics for a single pipeline run.

"Greenness (i.e., power, energy, and energy efficiency)" — this module
packages the paper's four comparison metrics plus context into one
report object the examples print.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipelines.base import RunResult
from repro.units import fmt_energy, fmt_power, fmt_seconds


@dataclass(frozen=True)
class GreennessReport:
    """The paper's metric set for one run."""

    pipeline: str
    case: str
    execution_time_s: float
    average_power_w: float
    peak_power_w: float
    energy_j: float
    efficiency_work_per_j: float
    images_rendered: int
    data_bytes_written: int
    data_bytes_read: int

    @classmethod
    def from_run(cls, run: RunResult) -> "GreennessReport":
        """Build a report from a metered pipeline run."""
        return cls(
            pipeline=run.pipeline,
            case=run.case.name,
            execution_time_s=run.execution_time_s,
            average_power_w=run.average_power_w,
            peak_power_w=run.peak_power_w,
            energy_j=run.energy_j,
            efficiency_work_per_j=run.energy_efficiency,
            images_rendered=run.images_rendered,
            data_bytes_written=run.data_bytes_written,
            data_bytes_read=run.data_bytes_read,
        )

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"{self.pipeline} pipeline — {self.case}",
            f"  execution time : {fmt_seconds(self.execution_time_s)}",
            f"  average power  : {fmt_power(self.average_power_w)}",
            f"  peak power     : {fmt_power(self.peak_power_w)}",
            f"  energy         : {fmt_energy(self.energy_j)}",
            f"  efficiency     : {self.efficiency_work_per_j * 1000:.3f} timesteps/kJ",
            f"  frames rendered: {self.images_rendered}",
        ]
        if self.data_bytes_written or self.data_bytes_read:
            lines.append(
                f"  simulation I/O : {self.data_bytes_written} B written, "
                f"{self.data_bytes_read} B read"
            )
        else:
            lines.append("  simulation I/O : none (in-situ)")
        return "\n".join(lines)
