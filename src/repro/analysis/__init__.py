"""Analysis and reporting layer.

Turns metered pipeline runs into the paper's quantities: greenness
reports (:mod:`~repro.analysis.metrics`), the Figs 7-11 comparison
(:mod:`~repro.analysis.comparison`), the Section V.C savings breakdown
(:mod:`~repro.analysis.savings`), the Section V.D what-if analysis
(:mod:`~repro.analysis.whatif`), and terminal-friendly tables and charts
(:mod:`~repro.analysis.tables`, :mod:`~repro.analysis.plots`).
"""

from repro.analysis.metrics import GreennessReport
from repro.analysis.comparison import ComparisonRow, compare_cases
from repro.analysis.savings import analyze_savings
from repro.analysis.whatif import WhatIfReport, whatif_reorganization
from repro.analysis.powercap import CapReport, fit_under_cap
from repro.analysis.phases import DetectedPhase, detect_phases
from repro.analysis.sensitivity import headline_savings, sensitivity_analysis
from repro.analysis.tables import format_table
from repro.analysis.plots import ascii_bars, ascii_series, save_csv

__all__ = [
    "GreennessReport",
    "ComparisonRow",
    "compare_cases",
    "analyze_savings",
    "WhatIfReport",
    "whatif_reorganization",
    "CapReport",
    "fit_under_cap",
    "DetectedPhase",
    "detect_phases",
    "headline_savings",
    "sensitivity_analysis",
    "format_table",
    "ascii_bars",
    "ascii_series",
    "save_csv",
]
