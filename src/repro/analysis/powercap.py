"""Power-cap analysis: running the pipelines under a node power budget.

Fig 9's framing — peak power "is an important metric for power-capped
systems" — invites the obvious what-if: if the node must stay under a
cap, what does each pipeline's run look like?

Model: the only throttle available is CPU DVFS.  For every span whose
power exceeds the cap, find the frequency ratio that brings it under
(dynamic CPU power scales cubically), stretch the span's duration by the
inverse ratio if it is compute-bound (CPU-dominated stages slow linearly
with clock; I/O-bound stages do not), and re-meter.  Spans that cannot
fit under the cap even at the minimum ratio are reported as violations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.machine.node import Node
from repro.trace.events import Activity
from repro.trace.timeline import Timeline

#: Stages whose wall time stretches when the clock drops.
COMPUTE_BOUND = ("simulation", "visualization", "coupling", "compositing")

MIN_RATIO = 0.1


@dataclass(frozen=True)
class CapReport:
    """Outcome of fitting one timeline under a cap."""

    cap_w: float
    capped_timeline: Timeline
    throttled_spans: int
    violating_spans: int
    slowdown: float              # capped duration / original duration

    @property
    def feasible(self) -> bool:
        """True when every span fits under the cap."""
        return self.violating_spans == 0


def _ratio_for_cap(node: Node, activity: Activity, cap_w: float) -> float:
    """Largest frequency ratio keeping this activity's power under the cap.

    Solves cap = P_other + cpu_idle + cpu_dyn_max * util^alpha * r^3.
    """
    full = node.power(activity.replace(cpu_freq_ratio=1.0))
    if full.system <= cap_w:
        return 1.0
    non_cpu_dynamic = full.system - full.package
    cpu_spec = node.spec.cpu
    dyn_budget = cap_w - non_cpu_dynamic - cpu_spec.idle_w
    full_dyn = full.package - cpu_spec.idle_w
    if full_dyn <= 0 or dyn_budget <= 0:
        return MIN_RATIO  # cannot throttle into compliance via DVFS
    ratio = (dyn_budget / full_dyn) ** (1.0 / 3.0)
    return max(MIN_RATIO, min(1.0, ratio))


def fit_under_cap(timeline: Timeline, node: Node, cap_w: float) -> CapReport:
    """Rewrite a run so instantaneous power stays under ``cap_w``."""
    if cap_w <= 0:
        raise ReproError("cap must be positive")
    if cap_w <= node.static_power_w:
        raise ReproError(
            f"cap {cap_w} W is below the node's {node.static_power_w:.1f} W "
            "static floor; no DVFS setting can comply"
        )
    out = Timeline(t0=timeline.t0)
    throttled = 0
    violations = 0
    # Markers must track their neighbouring spans as durations stretch.
    pending = sorted(timeline.markers, key=lambda m: m.t)
    for span in timeline:
        while pending and pending[0].t <= span.t0 + 1e-12:
            out.mark(pending.pop(0).name)
        ratio = _ratio_for_cap(node, span.activity, cap_w)
        activity = span.activity
        duration = span.duration
        if ratio < 1.0:
            throttled += 1
            activity = activity.replace(cpu_freq_ratio=ratio)
            # Float-comparison slack in watts, not a time constant.
            if node.power(activity).system > cap_w + 1e-6:  # greenlint: ignore[GL2]
                violations += 1
            if span.stage in COMPUTE_BOUND:
                duration = span.duration / ratio
        out.record(span.stage, duration, activity, **dict(span.meta))
    for marker in pending:
        out.mark(marker.name)
    slowdown = out.duration / timeline.duration if timeline.duration > 0 else 1.0
    return CapReport(
        cap_w=cap_w,
        capped_timeline=out,
        throttled_spans=throttled,
        violating_spans=violations,
        slowdown=slowdown,
    )
