"""ASCII table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """Render a fixed-width table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``.  Columns are right-aligned except the first.
    """
    if not headers:
        raise ReproError("table needs headers")
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        rendered_rows.append([
            float_fmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        return "  ".join(parts)

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(headers))
    lines.append(sep)
    lines.extend(fmt_line(r) for r in rendered_rows)
    return "\n".join(lines)
