"""Calibration sensitivity analysis.

A reproduction whose conclusions silently hinge on one calibrated
constant is fragile; this module quantifies that.  It computes the
headline metric — case-study-1 in-situ energy savings — analytically
from the linear stage model (the same arithmetic the pipeline engine
produces, without running it), then perturbs each calibration parameter
and reports the sensitivity.

The analytic model: for a case study with S simulation events and K I/O
events,

    T_post  = S*t_sim + K*(t_write + t_read + t_vis)
    E_post  = S*t_sim*P_sim + K*(t_write*P_write + t_read*P_read + t_vis*P_vis)
    T_situ  = S*t_sim + K*(t_vis + t_couple)
    E_situ  = S*t_sim*P_sim + K*(t_vis*P_vis + t_couple*P_couple)

with stage powers evaluated through the node model, so CPU/DRAM/disk
coefficients and the static floor all participate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.calibration import CASE_STUDIES, STAGE, CaseStudyConfig, StageCalibration
from repro.errors import ReproError
from repro.machine.node import Node
from repro.machine.specs import MachineSpec, paper_testbed
from repro.units import KiB


def headline_savings(
    stage_table: dict[str, StageCalibration] | None = None,
    node: Node | None = None,
    case: CaseStudyConfig | None = None,
) -> float:
    """Case-study in-situ energy-savings fraction, analytically."""
    table = stage_table or STAGE
    node = node or Node()
    case = case or CASE_STUDIES[1]
    s_events = case.iterations
    k_events = len(case.io_iterations())

    def stage_energy(name: str, disk_read=0.0, disk_write=0.0) -> tuple[float, float]:
        cal = table[name]
        duration = cal.duration_s
        activity = cal.activity(disk_read, disk_write)
        return duration, duration * node.power(activity).system

    t_sim, e_sim = stage_energy("simulation")
    payload = 128 * KiB
    t_wr, e_wr = stage_energy("nnwrite", disk_write=payload)
    t_rd, e_rd = stage_energy("nnread", disk_read=payload)
    t_vis, e_vis = stage_energy("visualization")
    t_cp, e_cp = stage_energy("coupling")

    e_post = s_events * e_sim + k_events * (e_wr + e_rd + e_vis)
    e_situ = s_events * e_sim + k_events * (e_vis + e_cp)
    if e_post <= 0:
        raise ReproError("non-positive post-processing energy")
    return 1.0 - e_situ / e_post


@dataclass(frozen=True)
class SensitivityEntry:
    """Effect of scaling one parameter by +/- ``delta``."""

    parameter: str
    baseline: float
    low: float     # headline with the parameter scaled by (1 - delta)
    high: float    # scaled by (1 + delta)

    @property
    def swing(self) -> float:
        """Total headline movement across the perturbation range."""
        return abs(self.high - self.low)


def _scaled_stage(table, name: str, field: str, factor: float):
    out = dict(table)
    out[name] = replace(out[name], **{field: getattr(out[name], field) * factor})
    return out


def sensitivity_analysis(delta: float = 0.10) -> list[SensitivityEntry]:
    """Perturb each calibration parameter by +/- ``delta``; rank by swing.

    Parameters covered: every stage duration, the simulation/visualization
    CPU activity, and the node's static floor (rest-of-system power).
    """
    if not 0 < delta < 1:
        raise ReproError("delta must be in (0, 1)")
    baseline = headline_savings()
    entries: list[SensitivityEntry] = []

    for name in ("simulation", "nnwrite", "nnread", "visualization", "coupling"):
        lows_highs = []
        for factor in (1 - delta, 1 + delta):
            table = _scaled_stage(STAGE, name, "duration_s", factor)
            lows_highs.append(headline_savings(stage_table=table))
        entries.append(SensitivityEntry(
            f"duration[{name}]", baseline, lows_highs[0], lows_highs[1]))

    for name in ("simulation", "visualization"):
        lows_highs = []
        for factor in (1 - delta, 1 + delta):
            table = _scaled_stage(STAGE, name, "cpu_util", factor)
            lows_highs.append(headline_savings(stage_table=table))
        entries.append(SensitivityEntry(
            f"cpu_util[{name}]", baseline, lows_highs[0], lows_highs[1]))

    lows_highs = []
    for factor in (1 - delta, 1 + delta):
        spec = paper_testbed()
        spec = MachineSpec(
            name=spec.name, cpu=spec.cpu, dram=spec.dram, disk=spec.disk,
            network=spec.network,
            rest_of_system_w=spec.rest_of_system_w * factor,
        )
        lows_highs.append(headline_savings(node=Node(spec)))
    entries.append(SensitivityEntry(
        "static_floor[rest-of-system]", baseline, lows_highs[0], lows_highs[1]))

    return sorted(entries, key=lambda e: e.swing, reverse=True)
