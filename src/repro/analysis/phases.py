"""Power-phase detection from measured profiles.

Section V.A reads Fig 5 by eye: "power profiles for the post-processing
pipeline ... indicate the presence of distinct power phases in the
application."  This module automates that reading: a change-point
detector over the metered system-power series that recovers the phase
boundaries without access to the timeline, plus per-phase statistics.

Method: single/multi change-point search minimizing within-segment
variance (the classic least-squares segmentation, solved by dynamic
programming over candidate boundaries at sample resolution), with a
minimum-segment-length constraint so meter noise cannot fragment the
profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.power.profile import PowerProfile


@dataclass(frozen=True)
class DetectedPhase:
    """One detected constant-power segment."""

    start_s: float
    end_s: float
    mean_w: float

    @property
    def duration_s(self) -> float:
        """Length of the detected phase in seconds."""
        return self.end_s - self.start_s


def _segment_cost(prefix: np.ndarray, prefix_sq: np.ndarray,
                  i: int, j: int) -> float:
    """Sum of squared deviations of samples[i:j] from their mean."""
    n = j - i
    s = prefix[j] - prefix[i]
    sq = prefix_sq[j] - prefix_sq[i]
    return float(sq - s * s / n)


def detect_phases(
    profile: PowerProfile,
    max_phases: int = 3,
    min_phase_s: float = 10.0,
    channel: str = "system",
    penalty_w2: float | None = None,
) -> list[DetectedPhase]:
    """Segment a power series into constant-power phases.

    The number of phases is chosen automatically: boundaries are added
    while they reduce the total within-segment variance by more than a
    penalty (default: 4 * sample variance of the meter noise estimate),
    up to ``max_phases``.
    """
    if max_phases < 1:
        raise ReproError("max_phases must be >= 1")
    samples = profile[channel]
    n = len(samples)
    if n == 0:
        raise ReproError("empty profile")
    min_len = max(1, int(min_phase_s / profile.dt))
    if n < 2 * min_len:
        max_phases = 1

    prefix = np.concatenate([[0.0], np.cumsum(samples)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(samples ** 2)])

    if penalty_w2 is None:
        # Noise scale from first differences (robust to level shifts).
        diffs = np.diff(samples)
        noise_var = float(np.median(diffs ** 2)) / 2.0 if len(diffs) else 1.0
        penalty_w2 = 8.0 * max(noise_var, 0.25) * n ** 0.5

    # Dynamic programming: best[k][j] = min cost of splitting samples[:j]
    # into k segments.  n is a few hundred at 1 Hz; O(max_phases * n^2).
    INF = float("inf")
    best = np.full((max_phases + 1, n + 1), INF)
    back = np.zeros((max_phases + 1, n + 1), dtype=int)
    best[0][0] = 0.0
    for k in range(1, max_phases + 1):
        for j in range(k * min_len, n + 1):
            lo = max((k - 1) * min_len, 0)
            hi = j - min_len + 1
            # Vectorized over the candidate split points i: same
            # arithmetic as _segment_cost, first-minimum tie-breaking.
            counts = j - np.arange(lo, hi)
            s = prefix[j] - prefix[lo:hi]
            sq = prefix_sq[j] - prefix_sq[lo:hi]
            costs = best[k - 1][lo:hi] + (sq - s * s / counts)
            i_best = int(np.argmin(costs))
            if costs[i_best] < best[k][j]:
                best[k][j] = costs[i_best]
                back[k][j] = lo + i_best

    # Model selection: add segments while the improvement beats the penalty.
    chosen = 1
    for k in range(2, max_phases + 1):
        if best[k][n] < best[chosen][n] - penalty_w2:
            chosen = k

    # Reconstruct boundaries.
    bounds = [n]
    k, j = chosen, n
    while k > 0:
        i = int(back[k][j])
        bounds.append(i)
        j, k = i, k - 1
    bounds = sorted(bounds)

    phases = []
    for i, j in zip(bounds, bounds[1:]):
        seg = samples[i:j]
        phases.append(DetectedPhase(
            start_s=i * profile.dt,
            end_s=j * profile.dt,
            mean_w=float(seg.mean()),
        ))
    return phases


def phase_boundary_error(profile: PowerProfile,
                         detected: list[DetectedPhase]) -> float:
    """Worst distance (s) between detected boundaries and the profile's
    ground-truth markers (excluding the run's start marker)."""
    truth = [m.t for m in profile.markers if m.t > 0]
    if not truth:
        raise ReproError("profile carries no interior markers to compare")
    inner = [p.start_s for p in detected[1:]]
    if len(inner) != len(truth):
        return float("inf")
    return max(abs(a - b) for a, b in zip(sorted(inner), sorted(truth)))
