"""Section V.C: where do the in-situ energy savings come from?

Procedure, exactly as the paper describes it:

1. Profile the nnread and nnwrite stages of the post-processing run and
   extract their average *dynamic* power (Table II).
2. Multiply the average I/O dynamic power by the execution-time
   difference between the pipelines — that is the *dynamic* (data
   movement) saving.
3. Everything else is *static* saving: energy not spent keeping a
   100-watt-class system powered for the extra minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.machine.node import Node
from repro.power.breakdown import SavingsBreakdown, savings_breakdown, stage_power_table
from repro.workloads.proxyapp import CaseStudyOutcome


@dataclass(frozen=True)
class SavingsAnalysis:
    """Savings breakdown plus the Table II inputs used to compute it."""

    case_index: int
    breakdown: SavingsBreakdown
    nnread_total_w: float
    nnread_dynamic_w: float
    nnwrite_total_w: float
    nnwrite_dynamic_w: float

    @property
    def io_dynamic_power_w(self) -> float:
        """Average dynamic power of the two I/O stages (Table II input)."""
        return (self.nnread_dynamic_w + self.nnwrite_dynamic_w) / 2.0


def analyze_savings(outcome: CaseStudyOutcome, node: Node,
                    stage_table=None) -> SavingsAnalysis:
    """Run the Section V.C analysis on one case study's paired runs.

    ``stage_table`` supplies Table II (per-stage power from *isolated*
    stage runs, the paper's method).  Without it, the table is estimated
    from the interleaved post-processing profile, which at 1 Hz blends a
    little simulation power into the I/O samples.
    """
    post = outcome.post
    if post.profile is None or outcome.insitu.profile is None:
        raise ReproError("runs must be metered before savings analysis")
    table = stage_table if stage_table is not None else stage_power_table(
        post.timeline, post.profile, static_w=node.static_power_w
    )
    if "nnread" not in table or "nnwrite" not in table:
        raise ReproError(
            "post-processing run has no I/O stages to attribute savings to"
        )
    io_dyn = (table["nnread"].avg_dynamic_w + table["nnwrite"].avg_dynamic_w) / 2.0
    breakdown = savings_breakdown(
        baseline_energy_j=post.energy_j,
        baseline_time_s=post.execution_time_s,
        insitu_energy_j=outcome.insitu.energy_j,
        insitu_time_s=outcome.insitu.execution_time_s,
        io_dynamic_power_w=io_dyn,
    )
    return SavingsAnalysis(
        case_index=outcome.case_index,
        breakdown=breakdown,
        nnread_total_w=table["nnread"].avg_total_w,
        nnread_dynamic_w=table["nnread"].avg_dynamic_w,
        nnwrite_total_w=table["nnwrite"].avg_total_w,
        nnwrite_dynamic_w=table["nnwrite"].avg_dynamic_w,
    )
