"""Head-to-head pipeline comparison — the data behind Figs 7-11.

Given the paired case-study outcomes, produce per-case rows holding both
pipelines' execution time (Fig 7), average power (Fig 8), peak power
(Fig 9), energy (Fig 10) and normalized energy efficiency (Fig 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ReproError
from repro.workloads.proxyapp import CaseStudyOutcome


@dataclass(frozen=True)
class ComparisonRow:
    """One case study's two-pipeline comparison."""

    case_index: int
    time_post_s: float
    time_insitu_s: float
    avg_power_post_w: float
    avg_power_insitu_w: float
    peak_power_post_w: float
    peak_power_insitu_w: float
    energy_post_j: float
    energy_insitu_j: float

    # -- derived (the paper's headline percentages) ------------------------------

    @property
    def time_reduction_pct(self) -> float:
        """In-situ execution-time reduction (%)."""
        return 100.0 * (1.0 - self.time_insitu_s / self.time_post_s)

    @property
    def avg_power_increase_pct(self) -> float:
        """In-situ average-power increase (%)."""
        return 100.0 * (self.avg_power_insitu_w / self.avg_power_post_w - 1.0)

    @property
    def peak_power_delta_pct(self) -> float:
        """In-situ peak-power delta (%)."""
        return 100.0 * (self.peak_power_insitu_w / self.peak_power_post_w - 1.0)

    @property
    def energy_savings_pct(self) -> float:
        """In-situ energy savings (%)."""
        return 100.0 * (1.0 - self.energy_insitu_j / self.energy_post_j)

    @property
    def efficiency_post(self) -> float:
        """Post-processing energy efficiency (work per joule, unnormalized)."""
        return 1.0 / self.energy_post_j

    @property
    def efficiency_insitu(self) -> float:
        """In-situ energy efficiency (work per joule, unnormalized)."""
        return 1.0 / self.energy_insitu_j

    @property
    def efficiency_improvement_pct(self) -> float:
        """In-situ efficiency improvement (%)."""
        return 100.0 * (self.efficiency_insitu / self.efficiency_post - 1.0)

    # -- energy-delay product (the joint metric power-aware HPC optimizes) -----

    @property
    def edp_post(self) -> float:
        """Energy-delay product (J*s) of the post-processing run."""
        return self.energy_post_j * self.time_post_s

    @property
    def edp_insitu(self) -> float:
        """Energy-delay product (J*s) of the in-situ run."""
        return self.energy_insitu_j * self.time_insitu_s

    @property
    def edp_improvement_pct(self) -> float:
        """EDP reduction from in-situ.  Because in-situ wins on *both*
        factors, this exceeds the energy savings alone (~70 % for the
        paper's case 1)."""
        return 100.0 * (1.0 - self.edp_insitu / self.edp_post)


def compare_cases(outcomes: Mapping[int, CaseStudyOutcome]) -> list[ComparisonRow]:
    """Build comparison rows from case-study outcomes, sorted by case."""
    if not outcomes:
        raise ReproError("no case-study outcomes to compare")
    rows = []
    for idx in sorted(outcomes):
        o = outcomes[idx]
        rows.append(ComparisonRow(
            case_index=idx,
            time_post_s=o.post.execution_time_s,
            time_insitu_s=o.insitu.execution_time_s,
            avg_power_post_w=o.post.average_power_w,
            avg_power_insitu_w=o.insitu.average_power_w,
            peak_power_post_w=o.post.peak_power_w,
            peak_power_insitu_w=o.insitu.peak_power_w,
            energy_post_j=o.post.energy_j,
            energy_insitu_j=o.insitu.energy_j,
        ))
    return rows


def normalized_efficiency(rows: list[ComparisonRow]) -> dict[int, tuple[float, float]]:
    """Fig 11: per-case (post, insitu) efficiency normalized to the best.

    The figure normalizes within the whole chart; the best efficiency
    (in-situ, case 3 in the paper) maps to 1.0.
    """
    if not rows:
        raise ReproError("no rows")
    best = max(max(r.efficiency_post, r.efficiency_insitu) for r in rows)
    return {
        r.case_index: (r.efficiency_post / best, r.efficiency_insitu / best)
        for r in rows
    }
