"""Section V.D: the hypothetical reorganized post-processing pipeline.

The paper's argument: an application with *random* I/O behaviour would
save 242.2 kJ (238.6 random read + 3.6 random write) by going in-situ —
but software-directed data reorganization can turn its I/O sequential,
after which post-processing only costs 7.3 kJ (4.2 seq read + 3.1 seq
write), "while at the same time retaining all of the exploratory
analysis capabilities".

This module runs that arithmetic on *measured* fio results and also
accounts for the cost the paper leaves implicit: the one-time rewrite
pass that reorganizes the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ReproError
from repro.workloads.fio import FioResult


@dataclass(frozen=True)
class WhatIfReport:
    """Energy accounting of the Section V.D hypothetical."""

    random_io_energy_j: float        # post-processing with random I/O
    sequential_io_energy_j: float    # post-processing after reorganization
    reorg_overhead_j: float          # one-time rewrite cost

    @property
    def insitu_would_save_j(self) -> float:
        """Energy in-situ saves over the *random* post-processing I/O
        (the paper's 242.2 kJ)."""
        return self.random_io_energy_j

    @property
    def reorg_residual_j(self) -> float:
        """Energy still spent after reorganization (the paper's 7.3 kJ),
        excluding the one-time rewrite."""
        return self.sequential_io_energy_j

    @property
    def reorg_saves_j(self) -> float:
        """Energy saved per analysis pass after reorganization."""
        return self.random_io_energy_j - self.sequential_io_energy_j

    @property
    def reorg_saves_fraction(self) -> float:
        """Saved fraction of the random-I/O energy."""
        if self.random_io_energy_j <= 0:
            return 0.0
        return self.reorg_saves_j / self.random_io_energy_j

    @property
    def break_even_passes(self) -> float:
        """Analysis passes needed before the rewrite pays for itself.

        Each pass over reorganized data saves (random - sequential) energy;
        the rewrite costs ``reorg_overhead_j`` once.
        """
        per_pass = self.reorg_saves_j
        if per_pass <= 0:
            return float("inf")
        return self.reorg_overhead_j / per_pass


def whatif_reorganization(
    fio_results: Mapping[str, FioResult],
    reorg_overhead_j: float | None = None,
) -> WhatIfReport:
    """Build the Section V.D report from Table III measurements.

    ``reorg_overhead_j`` defaults to one sequential read plus one
    sequential write of the dataset — what the rewrite pass costs on an
    otherwise idle system.
    """
    required = {"seq_read", "seq_write", "rand_read", "rand_write"}
    missing = required - set(fio_results)
    if missing:
        raise ReproError(f"missing fio results: {sorted(missing)}")
    random_j = (
        fio_results["rand_read"].system_energy_j
        + fio_results["rand_write"].system_energy_j
    )
    sequential_j = (
        fio_results["seq_read"].system_energy_j
        + fio_results["seq_write"].system_energy_j
    )
    if reorg_overhead_j is None:
        reorg_overhead_j = sequential_j
    return WhatIfReport(
        random_io_energy_j=random_j,
        sequential_io_energy_j=sequential_j,
        reorg_overhead_j=reorg_overhead_j,
    )
