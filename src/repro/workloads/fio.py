"""fio-equivalent disk benchmark (Table III).

"We read and write 4 GB of data to sequential and random locations in the
disk using this benchmark" — four jobs, run against the modeled drive
with full power metering:

=============  ==========  ===========  ==========================
job            operation   block size   mechanism dominating cost
=============  ==========  ===========  ==========================
seq_read       read        128 KiB      media streaming rate
rand_read      read        16 KiB       seek + rotation per op
seq_write      write       1 MiB        write-back drain at media rate
rand_write     write       256 KiB      cache-coalesced drain + penalty
=============  ==========  ===========  ==========================

Each job produces a one-span timeline whose disk activity comes from the
serviced request statistics; the meter rig then reports system power and
energy exactly as the paper's Table III does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.device import BlockDevice
from repro.machine.disk import OpKind
from repro.machine.node import Node
from repro.power.meters import MeterRig
from repro.power.profile import PowerProfile
from repro.rng import RngRegistry
from repro.system.blockdev import IoStats
from repro.trace.timeline import Timeline
from repro.units import GiB, KiB, MiB
from repro.workloads.patterns import offsets_for


@dataclass(frozen=True)
class FioJob:
    """One benchmark job definition."""

    name: str
    op: OpKind
    pattern: str                 # "sequential" or "shuffled"
    size_bytes: int = 4 * GiB
    block_bytes: int = 128 * KiB
    #: Device region the job's file occupies (start offset).
    region_offset: int = 1 * GiB

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.block_bytes <= 0:
            raise ConfigError("sizes must be positive")
        if self.pattern not in ("sequential", "shuffled"):
            raise ConfigError(f"fio pattern must be sequential/shuffled, got {self.pattern!r}")


#: The paper's four jobs with calibrated block sizes (see DiskSpec notes).
FIO_JOBS: dict[str, FioJob] = {
    "seq_read": FioJob("seq_read", OpKind.READ, "sequential", block_bytes=128 * KiB),
    "rand_read": FioJob("rand_read", OpKind.READ, "shuffled", block_bytes=16 * KiB),
    "seq_write": FioJob("seq_write", OpKind.WRITE, "sequential", block_bytes=1 * MiB),
    "rand_write": FioJob("rand_write", OpKind.WRITE, "shuffled", block_bytes=256 * KiB),
}


@dataclass
class FioResult:
    """Table III row material for one job."""

    job: FioJob
    elapsed_s: float
    io: IoStats
    profile: PowerProfile
    static_w: float

    @property
    def system_power_w(self) -> float:
        """Average full-system power over the job (W)."""
        return self.profile.average()

    @property
    def system_energy_j(self) -> float:
        """Full-system energy over the job (J)."""
        return self.profile.energy()

    @property
    def disk_dynamic_power_w(self) -> float:
        """Average disk power above idle during the job."""
        activity = self.io.activity(self.elapsed_s)
        return self._disk_dyn(activity)

    def _disk_dyn(self, activity) -> float:
        # Reconstructed from the same coefficients the node model uses.
        spec = self._disk_spec
        return (
            spec.read_energy_per_byte_j * activity.disk_read_bytes_per_s
            + spec.write_energy_per_byte_j * activity.disk_write_bytes_per_s
            + spec.actuator_w * activity.disk_seek_duty
        )

    @property
    def disk_dynamic_energy_j(self) -> float:
        """Disk dynamic energy over the job (J)."""
        return self.disk_dynamic_power_w * self.elapsed_s

    _disk_spec = None  # set by the runner


class FioRunner:
    """Executes fio jobs against a node's drive with metering."""

    def __init__(self, node: Node | None = None, seed: int | None = None) -> None:
        self.node = node or Node()
        self.rng = RngRegistry() if seed is None else RngRegistry(seed)

    def run(self, job: FioJob) -> FioResult:
        """Execute one fio job against the node's drive, fully metered."""
        disk: BlockDevice = self.node.storage
        disk.reset()
        rng = self.rng.fork(f"fio/{job.name}")
        stats = IoStats()

        # One batched path for every op, pattern and device.
        offsets = offsets_for(job.pattern, region_bytes=job.size_bytes,
                              block_bytes=job.block_bytes,
                              region_offset=job.region_offset, rng=rng)
        if job.op is OpKind.READ:
            stats.add(disk.service_batch(offsets, job.block_bytes, job.op))
        else:
            stats.add(disk.submit_write_batch(offsets, job.block_bytes))
            stats.add_drain(disk.flush_cache())

        elapsed = stats.busy_time
        timeline = Timeline()
        timeline.mark(job.name)
        timeline.record(job.name, elapsed, stats.activity(elapsed),
                        nbytes=job.size_bytes)
        rig = MeterRig(self.node, rng=rng.fork("meters"))
        profile = rig.sample(timeline)
        result = FioResult(job=job, elapsed_s=elapsed, io=stats,
                           profile=profile, static_w=self.node.static_power_w)
        result._disk_spec = disk.spec
        return result

    def run_table3(self) -> dict[str, FioResult]:
        """All four Table III jobs."""
        return {name: self.run(job) for name, job in FIO_JOBS.items()}
