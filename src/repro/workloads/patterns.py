"""Block-request stream builders.

Translates the abstract access orders of :mod:`repro.storage.layout` into
concrete :class:`~repro.machine.disk.DiskRequest` streams over a device
region — the form the fio runner and the runtime advisor consume.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.machine.disk import DiskRequest, OpKind
from repro.rng import RngRegistry
from repro.storage.layout import access_order, access_order_array


def request_stream(
    op: OpKind,
    pattern: str,
    region_bytes: int,
    block_bytes: int,
    region_offset: int = 0,
    rng: RngRegistry | None = None,
) -> list[DiskRequest]:
    """Build the request stream for one benchmark job.

    ``pattern`` is any :mod:`repro.storage.layout` policy.  The region is
    divided into ``region_bytes // block_bytes`` blocks; each is visited
    once (or per the policy's repeat structure for ``zipf``).
    """
    if region_bytes <= 0 or block_bytes <= 0:
        raise ConfigError("region and block sizes must be positive")
    if block_bytes > region_bytes:
        raise ConfigError("block larger than region")
    n_blocks = region_bytes // block_bytes
    order = access_order(n_blocks, pattern, rng=rng)
    return [
        DiskRequest(op, region_offset + index * block_bytes, block_bytes)
        for index in order
    ]


def offsets_for(
    pattern: str,
    region_bytes: int,
    block_bytes: int,
    region_offset: int = 0,
    rng: RngRegistry | None = None,
) -> np.ndarray:
    """Vectorized variant: just the byte offsets, for batched servicing."""
    if region_bytes <= 0 or block_bytes <= 0:
        raise ConfigError("region and block sizes must be positive")
    n_blocks = region_bytes // block_bytes
    order = access_order_array(n_blocks, pattern, rng=rng)
    return region_offset + order * block_bytes
