"""Case-study convenience wrappers.

The figure-reproduction code and the examples all need "run case study N
through both pipelines on a fresh node"; this module is that one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.calibration import CASE_STUDIES
from repro.pipelines.base import PipelineConfig, RunResult
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.post import PostProcessingPipeline
from repro.pipelines.runner import PipelineRunner


@dataclass(frozen=True)
class CaseStudyOutcome:
    """Paired runs of one case study."""

    case_index: int
    post: RunResult
    insitu: RunResult

    @property
    def energy_savings_fraction(self) -> float:
        """In-situ energy saving relative to post-processing."""
        return 1.0 - self.insitu.energy_j / self.post.energy_j

    @property
    def time_savings_fraction(self) -> float:
        """In-situ time saving relative to post-processing."""
        return 1.0 - self.insitu.execution_time_s / self.post.execution_time_s

    @property
    def avg_power_increase_fraction(self) -> float:
        """In-situ average-power increase over post-processing."""
        return self.insitu.average_power_w / self.post.average_power_w - 1.0

    @property
    def efficiency_improvement_fraction(self) -> float:
        """In-situ energy-efficiency gain over post-processing."""
        return (
            self.insitu.energy_efficiency / self.post.energy_efficiency - 1.0
        )


def run_case_study(
    case_index: int,
    runner: PipelineRunner | None = None,
    **config_kwargs,
) -> CaseStudyOutcome:
    """Run one case study through both pipelines."""
    if case_index not in CASE_STUDIES:
        raise ConfigError(
            f"unknown case study {case_index}; have {sorted(CASE_STUDIES)}"
        )
    runner = runner or PipelineRunner()
    config = PipelineConfig(case=CASE_STUDIES[case_index], **config_kwargs)
    post = runner.run(PostProcessingPipeline(config))
    insitu = runner.run(InSituPipeline(config))
    return CaseStudyOutcome(case_index=case_index, post=post, insitu=insitu)


def run_all_cases(runner: PipelineRunner | None = None,
                  **config_kwargs) -> dict[int, CaseStudyOutcome]:
    """Run all three case studies (the Figs 7-11 data set)."""
    runner = runner or PipelineRunner()
    return {
        idx: run_case_study(idx, runner, **config_kwargs)
        for idx in sorted(CASE_STUDIES)
    }
