"""Block-level I/O trace capture and replay.

The paper's future-work runtime "makes use of our characterization
studies"; characterization starts with traces.  This module records the
exact block requests a workload issued and replays them against any
device/scheduler combination — the standard methodology for answering
"what would this application's I/O have cost on that hardware?" without
re-running the application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.machine.disk import DiskRequest, OpKind
from repro.system.blockdev import BlockQueue, IoStats
from repro.system.iosched import IoScheduler


@dataclass(frozen=True)
class TraceEntry:
    """One recorded request with its submission order index."""

    index: int
    op: str          # "read" / "write"
    offset: int
    nbytes: int

    def to_request(self) -> DiskRequest:
        """Materialize this entry as a :class:`DiskRequest`."""
        return DiskRequest(OpKind(self.op), self.offset, self.nbytes)


@dataclass
class IoTrace:
    """An ordered block-request trace."""

    entries: list[TraceEntry] = field(default_factory=list)

    def append(self, request: DiskRequest) -> None:
        """Record one request at the end of the trace."""
        self.entries.append(TraceEntry(
            index=len(self.entries), op=request.op.value,
            offset=request.offset, nbytes=request.nbytes,
        ))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def bytes_read(self) -> int:
        """Total bytes read across the trace."""
        return sum(e.nbytes for e in self.entries if e.op == "read")

    @property
    def bytes_written(self) -> int:
        """Total bytes written across the trace."""
        return sum(e.nbytes for e in self.entries if e.op == "write")

    # -- serialization (simple CSV so traces are diffable/shippable) --------

    def to_csv(self) -> str:
        """Serialize as diffable CSV text."""
        lines = ["index,op,offset,nbytes"]
        lines += [f"{e.index},{e.op},{e.offset},{e.nbytes}"
                  for e in self.entries]
        return "\n".join(lines)

    @classmethod
    def from_csv(cls, text: str) -> "IoTrace":
        """Parse CSV text produced by :meth:`to_csv`."""
        lines = [l for l in text.splitlines() if l.strip()]
        if not lines or lines[0] != "index,op,offset,nbytes":
            raise ConfigError("not an I/O trace CSV")
        trace = cls()
        for line in lines[1:]:
            idx, op, offset, nbytes = line.split(",")
            if op not in ("read", "write"):
                raise ConfigError(f"bad op {op!r} in trace")
            trace.entries.append(TraceEntry(int(idx), op, int(offset),
                                            int(nbytes)))
        return trace


class RecordingQueue(BlockQueue):
    """A block queue that captures every submitted request."""

    def __init__(self, device, scheduler: IoScheduler | None = None) -> None:
        super().__init__(device, scheduler)
        self.trace = IoTrace()

    def submit(self, requests, through_cache: bool = True) -> IoStats:
        """Dispatch a batch (recording it first); returns batch stats."""
        for request in requests:
            self.trace.append(request)
        return super().submit(requests, through_cache=through_cache)


def replay(trace: IoTrace, device, scheduler: IoScheduler | None = None,
           batch: int = 32, through_cache: bool = True) -> IoStats:
    """Replay a trace against ``device`` in submission order.

    Requests are dispatched in windows of ``batch`` (the scheduler's
    reordering horizon — a real block layer cannot sort requests it has
    not yet received).  Returns the aggregate stats; the write cache is
    flushed at the end so write costs are fully accounted.
    """
    if batch < 1:
        raise ConfigError("batch must be >= 1")
    queue = BlockQueue(device, scheduler)
    total = IoStats()
    pending: list[DiskRequest] = []
    for entry in trace.entries:
        pending.append(entry.to_request())
        if len(pending) >= batch:
            total = total.merge(queue.submit(pending, through_cache))
            pending = []
    if pending:
        total = total.merge(queue.submit(pending, through_cache))
    total = total.merge(queue.flush())
    return total
