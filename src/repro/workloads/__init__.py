"""Workload generators.

* :mod:`repro.workloads.patterns` — block-request stream builders over a
  device region (sequential / random / strided / zipf).
* :mod:`repro.workloads.fio` — the fio-equivalent disk benchmark of
  Table III: 4 GB sequential/random x read/write jobs with full power
  metering.
* :mod:`repro.workloads.proxyapp` — convenience wrappers running the
  paper's three case studies through both pipelines.
"""

from repro.workloads.patterns import request_stream
from repro.workloads.fio import FIO_JOBS, FioJob, FioResult, FioRunner
from repro.workloads.proxyapp import run_case_study, run_all_cases
from repro.workloads.replay import IoTrace, RecordingQueue, replay

__all__ = [
    "request_stream",
    "FioJob",
    "FioResult",
    "FioRunner",
    "FIO_JOBS",
    "run_case_study",
    "run_all_cases",
    "IoTrace",
    "RecordingQueue",
    "replay",
]
