"""Synthetic real-application profiles (future-work item 1).

The paper's future work begins with "evaluation of real-world
applications such as MPAS [32] and xRAGE [33]".  Those codes are not
available here; what *is* reproducible is the pipeline-relevant shape of
their behaviour, mapped onto the proxy app's knobs:

* **proxy-heat** — the paper's own configuration (baseline).
* **mpas-ocean-like** — MPAS-Ocean-style global ocean simulation:
  large per-step analysis output (x8 the paper's dump) at a similar
  per-node compute slice (the real mesh is spread over many nodes).
* **xrage-like** — xRAGE-style AMR radiation-hydro: moderate dumps (x4),
  bursty output concentrated around regrid/dump events rather than a
  fixed cadence.

Each profile yields a ready :class:`~repro.pipelines.base.PipelineConfig`;
`run_app` pushes it through both pipelines so the in-situ question can be
asked per application class.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.calibration import CASE_STUDIES, CaseStudyConfig
from repro.errors import ConfigError
from repro.pipelines.base import PipelineConfig
from repro.pipelines.runner import PipelineRunner
from repro.workloads.proxyapp import CaseStudyOutcome


@dataclass(frozen=True)
class AppProfile:
    """Pipeline-relevant shape of an application."""

    name: str
    description: str
    case: CaseStudyConfig
    grid_scale: int = 1
    scale_sim_with_grid: bool = True
    solver_sub_steps: int = 2

    def config(self, **overrides) -> PipelineConfig:
        """Build the PipelineConfig for this application profile."""
        kwargs = dict(
            case=self.case,
            grid_scale=self.grid_scale,
            scale_sim_with_grid=self.scale_sim_with_grid,
            solver_sub_steps=self.solver_sub_steps,
            verify_data=False,  # app sweeps favour runtime; tests cover integrity
        )
        kwargs.update(overrides)
        return PipelineConfig(**kwargs)


def _bursty_schedule(iterations: int, bursts: tuple[int, ...],
                     burst_len: int) -> tuple[int, ...]:
    """Dump schedule with dense output around regrid events."""
    out: set[int] = set()
    for start in bursts:
        for i in range(start, min(start + burst_len, iterations) + 1):
            out.add(i)
    return tuple(sorted(out))


APP_PROFILES: dict[str, AppProfile] = {
    "proxy-heat": AppProfile(
        name="proxy-heat",
        description="the paper's proxy heat-transfer app, case study 1",
        case=CASE_STUDIES[1],
    ),
    "mpas-ocean-like": AppProfile(
        name="mpas-ocean-like",
        description=("ocean-model shape: x8 state, per-step analysis "
                     "output, compute scaling with the mesh"),
        case=replace(CASE_STUDIES[1], index=1,
                     description="per-step output, large state",
                     total_iterations=20),
        grid_scale=8,
        # Per-node compute stays at the calibrated per-step cost: real
        # MPAS runs spread the mesh over many nodes, so the pipeline-
        # relevant shape is a per-step dump much larger than the paper's
        # against a similar compute slice.
        scale_sim_with_grid=False,
        solver_sub_steps=1,
    ),
    "xrage-like": AppProfile(
        name="xrage-like",
        description=("AMR hydro shape: x4 state, bursty dumps around "
                     "regrid events, heavy per-step compute"),
        case=replace(
            CASE_STUDIES[2], index=2,
            description="bursty AMR-style dump schedule",
            total_iterations=40,
            io_schedule=_bursty_schedule(40, bursts=(5, 18, 31), burst_len=3),
        ),
        grid_scale=4,
        scale_sim_with_grid=False,
        solver_sub_steps=1,
    ),
}


def get_app(name: str) -> AppProfile:
    """Look up an application profile by name."""
    try:
        return APP_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown application profile {name!r}; have {sorted(APP_PROFILES)}"
        ) from None


def run_app(name: str, runner: PipelineRunner | None = None) -> CaseStudyOutcome:
    """Run one application profile through both pipelines."""
    from repro.pipelines.insitu import InSituPipeline
    from repro.pipelines.post import PostProcessingPipeline

    profile = get_app(name)
    runner = runner or PipelineRunner()
    config = profile.config()
    post = runner.run(PostProcessingPipeline(config), run_id=f"app/{name}/post")
    insitu = runner.run(InSituPipeline(config), run_id=f"app/{name}/insitu")
    return CaseStudyOutcome(case_index=profile.case.index, post=post,
                            insitu=insitu)
