"""Timeline: the ordered record of what a pipeline run did.

A :class:`Timeline` is an append-only sequence of non-overlapping
:class:`~repro.trace.events.Span` records plus named phase markers.  It is
both the *clock* of a run (``now`` advances as spans are appended) and the
*ledger* sampled later by the measurement rig.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import ConfigError, PipelineError
from repro.trace.events import IDLE, Activity, PhaseMarker, Span


@dataclass
class StageTotals:
    """Aggregate accounting for one stage label."""

    stage: str
    total_time: float = 0.0
    span_count: int = 0

    def fraction_of(self, total: float) -> float:
        """This stage's share of ``total`` seconds (0 if ``total`` is 0)."""
        return self.total_time / total if total > 0 else 0.0


class Timeline:
    """Append-only, gap-free record of spans on a simulated clock.

    Spans must be appended in time order.  Gaps are not allowed: callers that
    want to represent idle time append an explicit ``"idle"`` span, so that
    sampling the timeline at any instant inside ``[0, now)`` always finds a
    span (the meters need a power value for every tick).
    """

    def __init__(self, t0: float = 0.0) -> None:
        self._spans: list[Span] = []
        self._starts: list[float] = []  # parallel array for bisect
        self._markers: list[PhaseMarker] = []
        self._t0 = float(t0)
        self._now = float(t0)

    # -- construction -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (end of the last span)."""
        return self._now

    @property
    def t0(self) -> float:
        """Simulated start time of the timeline."""
        return self._t0

    @property
    def duration(self) -> float:
        """Length of this span/timeline in simulated seconds."""
        return self._now - self._t0

    def record(
        self,
        stage: str,
        duration: float,
        activity: Activity = IDLE,
        **meta: Any,
    ) -> Span:
        """Append a span of ``duration`` seconds starting at ``now``."""
        if duration < 0:
            raise PipelineError(f"negative span duration: {duration}")
        span = Span(stage, self._now, self._now + duration, activity, meta)
        self._spans.append(span)
        self._starts.append(span.t0)
        self._now = span.t1
        return span

    def idle(self, duration: float, **meta: Any) -> Span:
        """Append an explicit idle span."""
        return self.record("idle", duration, IDLE, **meta)

    def mark(self, name: str) -> PhaseMarker:
        """Drop a named phase marker at the current time."""
        marker = PhaseMarker(name, self._now)
        self._markers.append(marker)
        return marker

    def add_marker(self, marker: PhaseMarker) -> None:
        """Install a marker at an explicit time (must not precede t0)."""
        if marker.t < self._t0:
            raise PipelineError(
                f"marker {marker.name!r} at t={marker.t} precedes t0={self._t0}"
            )
        self._markers.append(marker)

    def extend(self, other: "Timeline") -> None:
        """Append every span of ``other`` (shifted to start at ``now``)."""
        shift = self._now - other.t0
        for span in other.spans:
            self.record(span.stage, span.duration, span.activity, **dict(span.meta))
        for marker in other.markers:
            self._markers.append(PhaseMarker(marker.name, marker.t + shift))

    # -- queries ------------------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        """Recorded spans, in time order."""
        return tuple(self._spans)

    @property
    def markers(self) -> tuple[PhaseMarker, ...]:
        """Phase markers recorded so far."""
        return tuple(self._markers)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def span_at(self, t: float) -> Span | None:
        """The span covering simulated instant ``t``, or None outside the run.

        O(log n) via bisect on span start times (spans are ordered, gap-free).
        """
        if not self._spans or t < self._t0 or t >= self._now:
            return None
        i = bisect.bisect_right(self._starts, t) - 1
        span = self._spans[i]
        return span if span.contains(t) else None

    def activity_at(self, t: float) -> Activity:
        """Activity at instant ``t`` (idle outside the recorded run)."""
        span = self.span_at(t)
        return span.activity if span is not None else IDLE

    def stage_totals(self) -> dict[str, StageTotals]:
        """Per-stage time totals, keyed by stage label."""
        totals: dict[str, StageTotals] = {}
        for span in self._spans:
            agg = totals.setdefault(span.stage, StageTotals(span.stage))
            agg.total_time += span.duration
            agg.span_count += 1
        return totals

    def stage_fractions(self, include_idle: bool = True) -> dict[str, float]:
        """Per-stage share of total run time (Fig 4's quantity).

        With ``include_idle=False`` the denominator excludes explicit idle
        spans, matching the paper's Fig 4 (which shows only the four active
        stages summing to 100 %).
        """
        totals = self.stage_totals()
        if not include_idle:
            totals.pop("idle", None)
        denom = sum(s.total_time for s in totals.values())
        return {name: agg.fraction_of(denom) for name, agg in totals.items()}

    def phase_bounds(self) -> dict[str, tuple[float, float]]:
        """Intervals between consecutive markers, keyed by the opening
        marker's name.  The final phase closes at ``now``."""
        bounds: dict[str, tuple[float, float]] = {}
        for i, marker in enumerate(self._markers):
            end = self._markers[i + 1].t if i + 1 < len(self._markers) else self._now
            bounds[marker.name] = (marker.t, end)
        return bounds

    def slice(self, t0: float, t1: float) -> "Timeline":
        """New timeline containing the (clipped) spans overlapping [t0, t1)."""
        if t1 < t0:
            raise ConfigError("t1 must be >= t0")
        out = Timeline(t0=t0)
        for span in self._spans:
            lo, hi = max(span.t0, t0), min(span.t1, t1)
            if hi > lo:
                out.record(span.stage, hi - lo, span.activity, **dict(span.meta))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Timeline(spans={len(self._spans)}, duration={self.duration:.2f}s, "
            f"markers={[m.name for m in self._markers]})"
        )
