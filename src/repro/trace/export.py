"""Export timelines and sampled series to portable formats (CSV records).

The paper's figures are time series (Fig 5, Fig 6) and bar charts (Figs
7-11).  The benchmark harness dumps each as CSV next to an ASCII rendering,
so downstream users can re-plot with their own tooling.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Mapping, Sequence

from repro.errors import ConfigError
from repro.trace.timeline import Timeline
from repro.units import US

#: Stage labels emitted by the fault/recovery machinery rather than the
#: pipelines themselves; exporters categorize them separately so the cost
#: of resilience is visually separable from the science.
RESILIENCE_STAGES = frozenset({"recovery", "restart", "rebuild"})


def timeline_to_records(timeline: Timeline) -> list[dict[str, Any]]:
    """Flatten a timeline into one dict per span (meta flattened in)."""
    records = []
    for span in timeline.spans:
        rec: dict[str, Any] = {
            "stage": span.stage,
            "t0": span.t0,
            "t1": span.t1,
            "duration": span.duration,
            "cpu_util": span.activity.cpu_util,
            "dram_bytes_per_s": span.activity.dram_bytes_per_s,
            "disk_read_bytes_per_s": span.activity.disk_read_bytes_per_s,
            "disk_write_bytes_per_s": span.activity.disk_write_bytes_per_s,
            "disk_seek_duty": span.activity.disk_seek_duty,
            "net_bytes_per_s": span.activity.net_bytes_per_s,
        }
        for key, value in span.meta.items():
            rec[f"meta.{key}"] = value
        records.append(rec)
    return records


def _records_to_csv(records: Sequence[Mapping[str, Any]]) -> str:
    if not records:
        return ""
    fields: list[str] = []
    for rec in records:
        for key in rec:
            if key not in fields:
                fields.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields, restval="")
    writer.writeheader()
    writer.writerows(records)
    return buf.getvalue()


def timeline_to_csv(timeline: Timeline) -> str:
    """Render a timeline as CSV text (one row per span)."""
    return _records_to_csv(timeline_to_records(timeline))


def timeline_to_chrome_trace(timeline: Timeline, pid: int = 1,
                             tid: int = 1) -> str:
    """Render a timeline as a Chrome trace-event JSON document.

    Load the result in ``chrome://tracing`` / Perfetto to inspect a
    pipeline run interactively.  Spans become complete events (``"X"``),
    phase markers become instant events (``"i"``); timestamps are in
    microseconds per the trace-event spec.
    """
    import json

    events = []
    for span in timeline.spans:
        events.append({
            "name": span.stage,
            "ph": "X",
            "cat": ("resilience" if span.stage in RESILIENCE_STAGES
                    else "pipeline"),
            "ts": span.t0 / US,
            "dur": span.duration / US,
            "pid": pid,
            "tid": tid,
            "args": {
                "cpu_util": span.activity.cpu_util,
                "disk_read_Bps": span.activity.disk_read_bytes_per_s,
                "disk_write_Bps": span.activity.disk_write_bytes_per_s,
                **{str(k): str(v) for k, v in span.meta.items()},
            },
        })
    for marker in timeline.markers:
        events.append({
            "name": marker.name,
            "ph": "i",
            "ts": marker.t / US,
            "pid": pid,
            "tid": tid,
            "s": "t",
        })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def series_to_csv(columns: Mapping[str, Sequence[float]]) -> str:
    """Render parallel columns (e.g. ``{"t": ..., "system_w": ...}``) as CSV.

    All columns must have equal length.
    """
    lengths = {name: len(col) for name, col in columns.items()}
    if len(set(lengths.values())) > 1:
        raise ConfigError(f"column lengths differ: {lengths}")
    names = list(columns)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(names)
    n = next(iter(lengths.values()), 0)
    for i in range(n):
        writer.writerow([columns[name][i] for name in names])
    return buf.getvalue()
