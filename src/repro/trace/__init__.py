"""Execution-trace substrate.

Pipelines record what the machine was doing, and when, as a sequence of
:class:`~repro.trace.events.Span` records on a
:class:`~repro.trace.timeline.Timeline`.  The power-measurement rig later
*samples* the timeline to synthesize the 1 Hz power series the paper plots.
"""

from repro.trace.events import Activity, PhaseMarker, Span
from repro.trace.timeline import StageTotals, Timeline
from repro.trace.export import (
    series_to_csv,
    timeline_to_chrome_trace,
    timeline_to_csv,
    timeline_to_records,
)

__all__ = [
    "Activity",
    "PhaseMarker",
    "Span",
    "StageTotals",
    "Timeline",
    "timeline_to_csv",
    "timeline_to_records",
    "timeline_to_chrome_trace",
    "series_to_csv",
]
